//! Record a workload to disk in the `cioq-trace v1` format, replay it, and
//! verify bit-identical results — the reproducibility workflow.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use cioq_switch::prelude::*;
use std::io::BufReader;

fn main() {
    let cfg = SwitchConfig::cioq(4, 8, 2);
    let gen = OnOffBursty::new(0.7, 8.0, ValueDist::Uniform { max: 16 });
    let trace = gen_trace(&gen, &cfg, 200, 2024);

    // Record.
    let path = std::env::temp_dir().join("cioq_demo.trace");
    let mut file = std::fs::File::create(&path).expect("create trace file");
    trace.write_to(&mut file).expect("write trace");
    drop(file);
    println!("recorded {} packets to {}", trace.len(), path.display());

    // Replay.
    let file = std::fs::File::open(&path).expect("open trace file");
    let replayed = Trace::read_from(&mut BufReader::new(file)).expect("parse trace");
    assert_eq!(trace, replayed, "round-trip must be lossless");

    // Identical runs on both copies.
    let a = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
    let b = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &replayed).unwrap();
    assert_eq!(a.benefit, b.benefit);
    assert_eq!(a.transmitted, b.transmitted);
    assert_eq!(a.losses.total_count(), b.losses.total_count());
    println!(
        "replay verified: benefit {} / {} packets, byte-identical behaviour",
        a.benefit, a.transmitted
    );

    std::fs::remove_file(&path).ok();
}
