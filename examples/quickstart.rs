//! Quickstart: build a switch, run the paper's algorithms, measure a
//! certified competitive ratio.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cioq_switch::prelude::*;

fn main() {
    // An 8x8 CIOQ switch: buffers of 4 packets everywhere, speedup 1.
    let cfg = SwitchConfig::cioq(8, 4, 1);

    // 500 slots of Bernoulli-uniform traffic at load 0.9 with Zipf values.
    let gen = BernoulliUniform::new(
        0.9,
        ValueDist::Zipf {
            max: 64,
            exponent: 1.1,
        },
    );
    let trace = gen_trace(&gen, &cfg, 500, 42);
    println!(
        "workload: {} packets, total value {}",
        trace.len(),
        trace.total_value()
    );

    // Run GM (unit-value oriented) and PG (value-aware) on the same input.
    let gm = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
    let pg = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();

    for report in [&gm, &pg] {
        report.check_conservation().unwrap();
        println!(
            "{:<16} benefit={:<8} delivered={:<5}/{:<5} drops={:<4} mean latency={:.2} slots",
            report.policy,
            report.benefit,
            report.transmitted,
            report.arrived,
            report.losses.total_count(),
            report.mean_latency(),
        );
    }

    // Certified competitive ratios: OPT-upper-bound / benefit.
    let gm_ratio = certified_ratio(&cfg, &trace, gm.benefit);
    let pg_ratio = certified_ratio(&cfg, &trace, pg.benefit);
    println!("GM ratio <= {gm_ratio:.3}   (Theorem 1 guarantees <= 3)");
    println!(
        "PG ratio <= {pg_ratio:.3}   (Theorem 2 guarantees <= {:.3})",
        params::PG_RATIO
    );
    assert!(
        pg.benefit >= gm.benefit,
        "value-awareness should pay off here"
    );
}
