//! Live competitive analysis: run the lower-bound adversaries against GM
//! and PG and report *exact* competitive ratios (IQ-model configurations,
//! where the flow bound is provably exact OPT).
//!
//! ```sh
//! cargo run --release --example adversarial_attack
//! ```

use cioq_switch::prelude::*;

fn main() {
    println!("== Oblivious flood vs GM (theory: ratio = 2 - 1/m) ==");
    let b = 4;
    for m in [2usize, 4, 8, 16] {
        let cfg = SwitchConfig::iq_model(m, b);
        let trace = gm_iq_flood(m, b);
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        let opt = gm_iq_flood_opt_benefit(m, b);
        // Cross-check the closed form against the flow machinery.
        assert_eq!(opt_upper_bound(&cfg, &trace).best(), opt);
        println!(
            "  m={m:<3} GM={:<5} OPT={:<5} ratio={:.4} (theory {:.4})",
            report.benefit.0,
            opt,
            opt as f64 / report.benefit.0 as f64,
            2.0 - 1.0 / m as f64
        );
    }

    println!("\n== Adaptive flood vs GM(rotate): adversary watches the queues ==");
    for m in [4usize, 8, 16] {
        let cfg = SwitchConfig::iq_model(m, b);
        let mut adversary = AdaptiveFloodSource::new(m, b, None);
        let slots = adversary.horizon_slots();
        let mut gm = GreedyMatching::with_edge_policy(GmEdgePolicy::RotateByCycle);
        let report = run_cioq_with_source(&cfg, &mut gm, &mut adversary, slots).unwrap();
        let trace = adversary.emitted_trace();
        let opt = opt_upper_bound(&cfg, &trace).best();
        println!(
            "  m={m:<3} GM(rotate)={:<5} OPT={:<5} ratio={:.4}",
            report.benefit.0,
            opt,
            opt as f64 / report.benefit.0 as f64
        );
    }

    println!("\n== Weighted flood vs PG (limit 2 - 1/m for large base value) ==");
    for m in [2usize, 4, 8, 16] {
        let cfg = SwitchConfig::iq_model(m, b);
        let trace = pg_weighted_flood(m, b, 1000);
        let report = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        let opt = opt_upper_bound(&cfg, &trace).best();
        println!(
            "  m={m:<3} PG={:<9} OPT={:<9} ratio={:.4} (limit {:.4})",
            report.benefit.0,
            opt,
            opt as f64 / report.benefit.0 as f64,
            2.0 - 1.0 / m as f64
        );
    }

    println!("\nAll measured ratios sit below the theorems' guarantees (3 and 5.83),");
    println!("and the flood families approach the known IQ-model lower bound of 2.");
}
