//! Buffered crossbar with QoS classes: CPG at the paper's optimal (β★, α★)
//! versus the prior single-parameter algorithm (α = β, Kesselman et al.)
//! and the unit-value CGU, under bursty multi-class traffic.
//!
//! ```sh
//! cargo run --release --example crossbar_qos
//! ```

use cioq_switch::prelude::*;

fn main() {
    // 8x8 buffered crossbar: small crosspoint buffers (the expensive
    // resource), modest port buffers.
    let cfg = SwitchConfig::crossbar(8, 4, 2, 1);
    println!("switch: 8x8 buffered crossbar, B_in=B_out=4, B_crossbar=2, speedup 1");
    println!(
        "CPG parameters: beta*={:.4} alpha*={:.4} (Theorem 4 bound {:.2})\n",
        params::cpg_beta_star(),
        params::cpg_alpha_star(),
        params::cpg_ratio_star()
    );

    // Bursty flows with three service classes via Zipf values.
    let gen = OnOffBursty::new(
        0.85,
        12.0,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.0,
        },
    );
    let trace = gen_trace(&gen, &cfg, 600, 99);
    println!(
        "workload: {} packets / {} value over 600 slots\n",
        trace.len(),
        trace.total_value()
    );

    let cpg = run_crossbar(&cfg, &mut CrossbarPreemptiveGreedy::new(), &trace).unwrap();
    let single = run_crossbar(
        &cfg,
        &mut CrossbarPreemptiveGreedy::single_parameter(),
        &trace,
    )
    .unwrap();
    let cgu = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();

    let bound = opt_upper_bound(&cfg, &trace).best();
    println!("OPT upper bound: {bound}\n");
    println!(
        "{:<30} {:>10} {:>9} {:>10} {:>10}",
        "policy", "benefit", "ratio<=", "preempted", "rejected"
    );
    for r in [&cpg, &single, &cgu] {
        r.check_conservation().unwrap();
        println!(
            "{:<30} {:>10} {:>9.3} {:>10} {:>10}",
            r.policy,
            r.benefit.0,
            bound as f64 / r.benefit.0 as f64,
            r.losses.preempted_input + r.losses.preempted_crossbar + r.losses.preempted_output,
            r.losses.rejected,
        );
    }

    assert!(
        cpg.benefit >= cgu.benefit,
        "value-aware CPG should dominate unit-value CGU on weighted traffic"
    );
}
