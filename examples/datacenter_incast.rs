//! Datacenter incast: many senders converge on one egress port — the
//! partition/aggregate pattern that motivates combined input/output
//! queueing. Compares the paper's PG against the expensive maximum-weight
//! baseline and the practical iSLIP scheduler under QoS-weighted traffic.
//!
//! ```sh
//! cargo run --release --example datacenter_incast
//! ```

use cioq_switch::prelude::*;

fn main() {
    // 16-port leaf switch, shallow buffers, no speedup: the hard regime.
    let cfg = SwitchConfig::cioq(16, 4, 1);

    // Every 10 slots all 16 inputs fire a 2-packet burst at one egress,
    // over 0.3 background load. Values are bimodal: 10% of packets are
    // high-priority (value 100), the rest best-effort (value 1).
    let gen = Incast::new(
        10,
        2,
        0.3,
        ValueDist::Bimodal {
            high: 100,
            p_high: 0.1,
        },
    );
    let trace = gen_trace(&gen, &cfg, 400, 7);
    println!(
        "incast workload: {} packets, {} total value\n",
        trace.len(),
        trace.total_value()
    );

    let mut results = Vec::new();
    let pg = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
    results.push(pg);
    let krw = run_cioq(&cfg, &mut MaxWeightMatching::new(), &trace).unwrap();
    results.push(krw);
    let islip = run_cioq(&cfg, &mut IslipPolicy::new(2), &trace).unwrap();
    results.push(islip);
    let gm = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
    results.push(gm);

    let bounds = opt_upper_bound(&cfg, &trace);
    println!("OPT upper bound: {}\n", bounds.best());
    println!(
        "{:<26} {:>10} {:>8} {:>9} {:>9} {:>8}",
        "policy", "benefit", "ratio<=", "hi-drops", "drops", "latency"
    );
    // High-priority value lost = value of drops beyond best-effort.
    let hi_lost = |r: &RunReport| r.losses.total_value() - r.losses.total_count() as u128;
    for r in &results {
        r.check_conservation().unwrap();
        println!(
            "{:<26} {:>10} {:>8.3} {:>9} {:>9} {:>8.2}",
            r.policy,
            r.benefit.0,
            bounds.best() as f64 / r.benefit.0 as f64,
            hi_lost(r) / 99, // each high-priority drop loses 99 extra value
            r.losses.total_count(),
            r.mean_latency(),
        );
    }

    // The value-aware policies must protect high-priority traffic at least
    // as well as the value-oblivious ones. (Total benefit can go either way
    // by a sliver — iSLIP sometimes delivers a few more best-effort packets
    // — but PG must never lose more high-priority value.)
    let pg_hi_lost = hi_lost(&results[0]);
    let islip_hi_lost = hi_lost(&results[2]);
    assert!(
        pg_hi_lost <= islip_hi_lost,
        "PG should protect high-priority traffic at least as well as iSLIP \
         on weighted incast (PG lost {pg_hi_lost}, iSLIP lost {islip_hi_lost})"
    );
}
