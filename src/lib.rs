//! # cioq-switch
//!
//! Online packet scheduling for CIOQ and buffered crossbar switches — a
//! full reproduction of Al-Bawani, Englert & Westermann, *Online Packet
//! Scheduling for CIOQ and Buffered Crossbar Switches* (SPAA 2016 /
//! Algorithmica 2018), as a production-quality Rust workspace.
//!
//! This facade crate re-exports the public API of every workspace crate:
//!
//! * [`model`] — packets, ports, time, values, switch configuration.
//! * [`queues`] — bounded non-FIFO value-sorted queues.
//! * [`matching`] — greedy maximal, Hopcroft–Karp, Hungarian, iSLIP.
//! * [`flow`] — Dinic max-flow and max-profit flow (OPT bounds).
//! * [`sim`] — the phased switch simulator, policy traits, traces, stats.
//! * [`algorithms`] — the paper's GM / PG / CGU / CPG and the baselines.
//! * [`opt`] — exact OPT (small) and certified OPT upper bounds (large).
//! * [`traffic`] — workload generators and adversarial constructions.
//! * [`experiments`] — the sweep harness behind EXPERIMENTS.md.
//!
//! ## Quickstart
//!
//! ```
//! use cioq_switch::prelude::*;
//!
//! // An 8x8 CIOQ switch, buffers of 4, speedup 1.
//! let cfg = SwitchConfig::cioq(8, 4, 1);
//!
//! // 100 slots of Bernoulli-uniform unit-value traffic at load 0.8.
//! let gen = BernoulliUniform::new(0.8, ValueDist::Unit);
//! let trace = gen_trace(&gen, &cfg, 100, 42);
//!
//! // Run the paper's 3-competitive Greedy Matching algorithm.
//! let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
//! assert!(report.benefit.0 > 0);
//! report.check_conservation().unwrap();
//!
//! // Compare against a certified upper bound on the clairvoyant optimum.
//! let ratio = certified_ratio(&cfg, &trace, report.benefit);
//! assert!(ratio < 3.0 + 1e-9); // far below it, in fact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cioq_core as algorithms;
pub use cioq_experiments as experiments;
pub use cioq_flow as flow;
pub use cioq_matching as matching;
pub use cioq_model as model;
pub use cioq_opt as opt;
pub use cioq_queues as queues;
pub use cioq_sim as sim;
pub use cioq_traffic as traffic;

/// Everything needed for typical use, one import away.
pub mod prelude {
    pub use cioq_core::baselines::{IslipPolicy, MaxMatching, MaxWeightMatching};
    pub use cioq_core::{
        params, BuildMode, CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GmEdgePolicy,
        GreedyMatching, PreemptiveGreedy, SelectionOrder,
    };
    pub use cioq_model::{
        Benefit, FabricKind, Packet, PacketId, PortId, SlotId, SwitchConfig, Topology, Value,
    };
    pub use cioq_opt::{certified_ratio, exact_opt, opt_upper_bound, BruteForceLimits, OptBounds};
    pub use cioq_sim::{
        run_cioq, run_cioq_linked, run_cioq_with_source, run_crossbar, run_crossbar_linked,
        run_crossbar_with_source, Admission, ArrivalSource, CioqPolicy, CrossbarPolicy, DelayLine,
        DelayMatrix, Engine, FabricLink, Immediate, PacketPick, RunOptions, RunReport, Trace,
        TraceSource, Transfer, TransmitChoice,
    };
    pub use cioq_traffic::adversary::{
        escalation_bait, gm_iq_flood, gm_iq_flood_opt_benefit, pg_weighted_flood,
        AdaptiveFloodSource, EscalationParams,
    };
    pub use cioq_traffic::{
        gen_trace, BernoulliUniform, Hotspot, Incast, OnOffBursty, PermutationTraffic, TrafficGen,
        ValueDist,
    };
}
