//! Per-rule fixtures: each rule fires on a positive fixture, stays quiet
//! on the allowlisted/justified variant, and ignores `#[cfg(test)]` code.

use cioq_analysis::scan_str;

fn rules_at(path: &str, src: &str) -> Vec<&'static str> {
    scan_str(path, src).into_iter().map(|f| f.rule).collect()
}

// ---- D1: unordered collections in determinism-critical crates --------

#[test]
fn d1_hashmap_in_sim_fires() {
    let src =
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let rules = rules_at("crates/sim/src/engine.rs", src);
    assert!(
        rules.contains(&"D1"),
        "HashMap in sim must fire D1: {rules:?}"
    );
}

#[test]
fn d1_out_of_scope_crate_is_clean() {
    let src =
        "use std::collections::HashMap;\nfn f() { let _m: HashMap<u32, u32> = HashMap::new(); }\n";
    assert!(rules_at("crates/opt/src/network.rs", src).is_empty());
}

#[test]
fn d1_allowlisted_is_clean() {
    let src = "// detlint: allow(D1) reason=\"sorted before iteration\"\nuse std::collections::HashSet;\n";
    assert!(rules_at("crates/queues/src/grid.rs", src).is_empty());
}

#[test]
fn d1_in_string_or_comment_is_clean() {
    let src = "// HashMap would break determinism\nfn f() -> &'static str { \"HashMap\" }\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).is_empty());
}

// ---- D2: wall clock / entropy outside bench --------------------------

#[test]
fn d2_instant_now_fires() {
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    let rules = rules_at("crates/experiments/src/suite.rs", src);
    assert!(
        rules.contains(&"D2"),
        "Instant::now must fire D2: {rules:?}"
    );
}

#[test]
fn d2_system_time_and_thread_rng_fire() {
    let src = "fn f() { let _t = SystemTime::now(); let _r = rand::thread_rng(); }\n";
    let rules = rules_at("crates/traffic/src/lib.rs", src);
    assert_eq!(rules.iter().filter(|r| **r == "D2").count(), 2);
}

#[test]
fn d2_bench_is_exempt() {
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert!(rules_at("crates/bench/src/lib.rs", src).is_empty());
}

#[test]
fn d2_allowlisted_is_clean() {
    let src = "fn f() {\n    // detlint: allow(D2) reason=\"wall time reported, never drives simulation\"\n    let _t = std::time::Instant::now();\n}\n";
    assert!(rules_at("crates/experiments/src/suite.rs", src).is_empty());
}

#[test]
fn d2_instant_without_now_is_clean() {
    let src = "fn f(t: std::time::Instant) -> std::time::Instant { t }\n";
    assert!(rules_at("crates/experiments/src/suite.rs", src).is_empty());
}

// ---- D3: thread creation outside sim::shard --------------------------

#[test]
fn d3_thread_spawn_fires() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    let rules = rules_at("crates/experiments/src/runner.rs", src);
    assert!(
        rules.contains(&"D3"),
        "thread::spawn must fire D3: {rules:?}"
    );
}

#[test]
fn d3_scoped_spawn_fires() {
    let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
    let rules = rules_at("crates/experiments/src/runner.rs", src);
    assert!(rules.contains(&"D3"));
}

#[test]
fn d3_shard_module_is_exempt() {
    let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
    assert!(rules_at("crates/sim/src/shard.rs", src).is_empty());
}

#[test]
fn d3_allowlisted_is_clean() {
    let src = "fn f() {\n    // detlint: allow(D3) reason=\"per-seed sweep parallelism, output order restored by index\"\n    std::thread::scope(|s| {\n        // detlint: allow(D3) reason=\"see scope above\"\n        s.spawn(|| {});\n    });\n}\n";
    assert!(rules_at("crates/experiments/src/runner.rs", src).is_empty());
}

#[test]
fn d3_in_cfg_test_is_clean() {
    let src =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
    assert!(rules_at("crates/experiments/src/runner.rs", src).is_empty());
}

// ---- D4: unsafe / atomic ordering justification ----------------------

#[test]
fn d4_unsafe_without_safety_fires() {
    let src = "fn f(p: *const u32) -> u32 { unsafe { *p } }\n";
    let rules = rules_at("crates/model/src/lib.rs", src);
    assert!(rules.contains(&"D4"));
}

#[test]
fn d4_unsafe_with_safety_is_clean() {
    let src = "fn f(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid and aligned.\n    unsafe { *p }\n}\n";
    assert!(rules_at("crates/model/src/lib.rs", src).is_empty());
}

#[test]
fn d4_ordering_in_sync_without_comment_fires() {
    let src = "fn f(a: &std::sync::atomic::AtomicU64) -> u64 { a.load(Ordering::Acquire) }\n";
    let rules = rules_at("crates/sim/src/sync.rs", src);
    assert!(rules.contains(&"D4"));
}

#[test]
fn d4_ordering_with_comment_is_clean() {
    let src = "fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    // ORDERING: Acquire pairs with the Release store in bump().\n    a.load(Ordering::Acquire)\n}\n";
    assert!(rules_at("crates/sim/src/sync.rs", src).is_empty());
}

#[test]
fn d4_ordering_outside_sync_is_clean() {
    let src = "fn f(a: &std::sync::atomic::AtomicU64) -> u64 { a.load(Ordering::Acquire) }\n";
    assert!(rules_at("crates/sim/src/shard.rs", src).is_empty());
}

#[test]
fn d4_ordering_import_is_clean() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n";
    assert!(rules_at("crates/sim/src/sync.rs", src).is_empty());
}

// ---- D5: bare unwrap in engine slot loops ----------------------------

#[test]
fn d5_unwrap_in_engine_fires() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let rules = rules_at("crates/sim/src/engine.rs", src);
    assert!(rules.contains(&"D5"));
}

#[test]
fn d5_expect_is_exempt() {
    let src = "fn f(x: Option<u32>) -> u32 { x.expect(\"invariant: checked above\") }\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).is_empty());
}

#[test]
fn d5_unwrap_outside_engine_is_clean() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(rules_at("crates/sim/src/stats.rs", src).is_empty());
}

#[test]
fn d5_allowlisted_is_clean() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // detlint: allow(D5) reason=\"index proven in-bounds by construction\"\n    x.unwrap()\n}\n";
    assert!(rules_at("crates/sim/src/shard.rs", src).is_empty());
}

#[test]
fn d5_unwrap_in_test_module_is_clean() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1u32).unwrap(); }\n}\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).is_empty());
}

// ---- D6: snapshot coverage of checkpointed state ---------------------

#[test]
fn d6_unannotated_field_fires() {
    let src = "pub struct InFlight {\n    values: Vec<Vec<(u16, u64)>>,\n}\n";
    let rules = rules_at("crates/queues/src/inflight.rs", src);
    assert!(
        rules.contains(&"D6"),
        "unannotated field of a snapshotted type must fire D6: {rules:?}"
    );
}

#[test]
fn d6_justified_fields_are_clean() {
    let src = "pub struct InFlight {\n    /// In-flight entries. snapshot: transient — rebuilt by replaying\n    /// `dispatch` for every serialized landing on restore.\n    values: Vec<Vec<(u16, u64)>>,\n    total: u64, // snapshot: serialized — part of the residual accounting\n}\n";
    assert!(rules_at("crates/queues/src/inflight.rs", src).is_empty());
}

#[test]
fn d6_unlisted_type_is_clean() {
    // The snapshot wire structs are not state owners; only the types in
    // the D6 list are audited.
    let src = "pub struct EngineSnapshot {\n    slot: u64,\n}\n";
    assert!(rules_at("crates/sim/src/snapshot.rs", src).is_empty());
}

#[test]
fn d6_out_of_scope_path_is_clean() {
    let src = "pub struct SortedQueue {\n    items: Vec<u32>,\n}\n";
    assert!(rules_at("crates/experiments/src/lib.rs", src).is_empty());
}

#[test]
fn d6_tuple_struct_is_clean() {
    let src = "pub struct FaultRuntime(Vec<u32>);\n";
    assert!(rules_at("crates/sim/src/fault.rs", src).is_empty());
}

#[test]
fn d6_allowlisted_is_clean() {
    let src = "pub struct DelayCalendar {\n    // detlint: allow(D6) reason=\"migration shim, removed next PR\"\n    buckets: Vec<Vec<u32>>,\n}\n";
    assert!(rules_at("crates/sim/src/transport.rs", src).is_empty());
}

#[test]
fn d6_in_cfg_test_is_clean() {
    let src =
        "#[cfg(test)]\nmod tests {\n    struct SortedQueue {\n        items: Vec<u32>,\n    }\n}\n";
    assert!(rules_at("crates/queues/src/sorted_queue.rs", src).is_empty());
}

// ---- D7: allocation in `// detlint: hot` slot-loop functions ---------

#[test]
fn d7_vec_new_in_hot_fn_fires() {
    let src = "// detlint: hot\nfn slot_phase() { let v: Vec<u32> = Vec::new(); drop(v); }\n";
    let rules = rules_at("crates/sim/src/engine.rs", src);
    assert!(
        rules.contains(&"D7"),
        "Vec::new in a hot fn must fire D7: {rules:?}"
    );
}

#[test]
fn d7_vec_macro_in_hot_fn_fires() {
    let src = "// detlint: hot\nfn slot_phase() { let v = vec![1u32, 2]; drop(v); }\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).contains(&"D7"));
}

#[test]
fn d7_box_new_in_hot_fn_fires() {
    let src = "// detlint: hot\nfn slot_phase() { let b = Box::new(1u32); drop(b); }\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).contains(&"D7"));
}

#[test]
fn d7_to_vec_in_hot_fn_fires() {
    let src = "// detlint: hot\nfn slot_phase(xs: &[u32]) -> Vec<u32> { xs.to_vec() }\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).contains(&"D7"));
}

#[test]
fn d7_collect_in_hot_fn_fires() {
    let src =
        "// detlint: hot\nfn slot_phase(xs: &[u32]) -> Vec<u32> { xs.iter().copied().collect() }\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).contains(&"D7"));
}

#[test]
fn d7_allocation_outside_hot_fn_is_clean() {
    let src = "fn setup() -> Vec<u32> { Vec::new() }\n// detlint: hot\nfn slot_phase() {}\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).is_empty());
}

#[test]
fn d7_allocation_after_hot_fn_body_is_clean() {
    // The audit ends at the hot function's closing brace.
    let src = "// detlint: hot\nfn slot_phase() {}\nfn teardown() -> Vec<u32> { Vec::new() }\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).is_empty());
}

#[test]
fn d7_allowlisted_with_reason_is_clean() {
    let src = "// detlint: hot\nfn slot_phase(err: bool) {\n    if err {\n        // detlint: allow(D7) reason=\"cold error path, invariant already failed\"\n        let _ = vec![0u32];\n    }\n}\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).is_empty());
}

#[test]
fn d7_prose_mention_of_annotation_is_not_an_annotation() {
    // Doc text discussing `// detlint: hot` must not mark the next fn hot.
    let src = "/// Functions marked `// detlint: hot` never allocate.\nfn setup() -> Vec<u32> { Vec::new() }\n";
    assert!(rules_at("crates/sim/src/engine.rs", src).is_empty());
}

// ---- canonical serialization -----------------------------------------

#[test]
fn baseline_roundtrip_is_canonical() {
    use cioq_analysis::{diff_baseline, parse_baseline, render_baseline};
    let src = "use std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = scan_str("crates/sim/src/engine.rs", src);
    assert_eq!(findings.len(), 2, "one D1 and one D5: {findings:?}");
    let text = render_baseline(&findings);
    let parsed = parse_baseline(&text).expect("rendered baseline parses");
    let diff = diff_baseline(&findings, &parsed);
    assert!(diff.is_clean(), "roundtrip must be lossless: {diff:?}");
    // Rendering is order-insensitive: reversed input, identical bytes.
    let mut rev = findings.clone();
    rev.reverse();
    assert_eq!(render_baseline(&rev), text);
}

#[test]
fn baseline_without_header_is_rejected() {
    use cioq_analysis::parse_baseline;
    assert!(parse_baseline("").is_err());
    assert!(parse_baseline("D1\tx.rs:1\tbad\n").is_err());
}
