//! Tier-1 enforcement: `cargo test` itself fails if the workspace drifts
//! from the committed detlint baseline, so the determinism rulebook is
//! enforced even without the dedicated CI job.

use cioq_analysis::{diff_baseline, find_root, parse_baseline, scan_workspace, BASELINE_PATH};

#[test]
fn workspace_matches_committed_baseline() {
    let root = find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/analysis");
    let findings = scan_workspace(&root).expect("workspace scan succeeds");
    let text = std::fs::read_to_string(root.join(BASELINE_PATH))
        .expect("committed baseline exists (regenerate with --write-baseline)");
    let baseline = parse_baseline(&text).expect("baseline header intact");
    let diff = diff_baseline(&findings, &baseline);
    assert!(
        diff.is_clean(),
        "detlint drift — new: {:#?}, stale: {:#?}; fix the violation, add an \
         allowlist comment, or run `cargo run -p cioq-analysis -- --write-baseline`",
        diff.added,
        diff.removed
    );
}

#[test]
fn synthetic_violation_is_detected() {
    // The acceptance check from the issue, inverted into a test: seeding a
    // HashMap use into engine.rs must produce a D1 finding that is NOT in
    // the committed baseline.
    let src = "fn f() { for (k, v) in std::collections::HashMap::<u32, u32>::new() { let _ = (k, v); } }\n";
    let findings = cioq_analysis::scan_str("crates/sim/src/engine.rs", src);
    assert!(findings.iter().any(|f| f.rule == "D1"));

    let root = find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/analysis");
    let text = std::fs::read_to_string(root.join(BASELINE_PATH)).expect("baseline exists");
    let baseline = parse_baseline(&text).expect("baseline header intact");
    let diff = diff_baseline(&findings, &baseline);
    assert!(
        !diff.added.is_empty(),
        "a synthetic D1 violation must register as baseline drift"
    );
}
