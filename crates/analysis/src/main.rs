//! detlint CLI: scan the workspace and diff against the committed
//! baseline.
//!
//! ```text
//! detlint                    # print current findings
//! detlint --check            # diff vs baseline; exit 1 on any drift
//! detlint --write-baseline   # regenerate crates/analysis/detlint.baseline
//! detlint --root DIR ...     # scan a different workspace root
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cioq_analysis::{
    diff_baseline, find_root, parse_baseline, render_baseline, scan_workspace, BASELINE_PATH,
};

fn main() -> ExitCode {
    let mut check = false;
    let mut write = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--write-baseline" => write = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("detlint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: detlint [--root DIR] [--check | --write-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if check && write {
        eprintln!("detlint: --check and --write-baseline are mutually exclusive");
        return ExitCode::from(2);
    }

    let root = match root_arg.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("detlint: could not locate the workspace root (pass --root DIR)");
            return ExitCode::from(2);
        }
    };

    let findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if write {
        let text = render_baseline(&findings);
        let path = root.join(BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "detlint: wrote {} finding(s) to {}",
            findings.len(),
            BASELINE_PATH
        );
        return ExitCode::SUCCESS;
    }

    if check {
        let path = root.join(BASELINE_PATH);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("detlint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("detlint: {e}");
                return ExitCode::FAILURE;
            }
        };
        let diff = diff_baseline(&findings, &baseline);
        if diff.is_clean() {
            println!(
                "detlint: clean — {} finding(s), all match the baseline",
                findings.len()
            );
            return ExitCode::SUCCESS;
        }
        for line in &diff.added {
            eprintln!("+ {line}");
        }
        for line in &diff.removed {
            eprintln!("- {line}");
        }
        eprintln!(
            "detlint: baseline drift — {} new, {} stale; fix the violation(s), \
             add a `// detlint: allow(<rule>) reason=\"…\"` comment, or rerun \
             with --write-baseline and commit the diff",
            diff.added.len(),
            diff.removed.len()
        );
        return ExitCode::FAILURE;
    }

    for f in &findings {
        println!("{f}");
    }
    println!("detlint: {} finding(s)", findings.len());
    ExitCode::SUCCESS
}
