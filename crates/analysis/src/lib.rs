//! detlint: determinism and concurrency static analysis for the
//! cioq-switch workspace.
//!
//! The reproduction's headline claims — sharded ≡ sequential
//! bit-identity, delay-line equivalence, topology independence — all rest
//! on the absence of nondeterminism sources in the simulation crates.
//! detlint audits that mechanically: a dependency-free token scan of the
//! workspace source tree enforces the rulebook in [`rules`], findings are
//! serialized canonically (sorted, one line each) and diffed against a
//! committed baseline, and CI blocks on any drift. See the README's
//! "Determinism & static analysis" section for the rule table and the
//! allowlist syntax.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Header line stamped at the top of the baseline file so a truncated or
/// hand-mangled baseline is detected rather than silently treated as
/// "no findings".
pub const BASELINE_HEADER: &str =
    "# detlint baseline v1 (regenerate: cargo run -p cioq-analysis -- --write-baseline)";

/// Workspace-relative path of the committed baseline.
pub const BASELINE_PATH: &str = "crates/analysis/detlint.baseline";

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule identifier (`"D1"` … `"D7"`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub what: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\t{}:{}\t{}",
            self.rule, self.path, self.line, self.what
        )
    }
}

/// Scan one file's source text. `rel_path` must be workspace-relative
/// with `/` separators — the rulebook keys its scopes off it. Returns
/// findings that survive the allowlist, sorted.
pub fn scan_str(rel_path: &str, source: &str) -> Vec<Finding> {
    let lx = lexer::lex(source);
    let mask = lexer::cfg_test_mask(&lx.toks);
    let mut findings = rules::scan_file(rel_path, &lx, &mask);
    findings.sort();
    findings
}

/// Directory names never descended into: build output, vendored deps,
/// integration tests/benches/examples (test code is exempt from the
/// rulebook, matching the `#[cfg(test)]` mask for inline modules).
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", ".git", ".github",
];

/// Walk the workspace at `root` and scan every non-test `.rs` file.
/// Returns all findings, sorted into canonical order.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let source =
            fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        findings.extend(scan_str(rel, &source));
    }
    findings.sort();
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Serialize findings canonically: header line, then one sorted line per
/// finding, trailing newline. Byte-stable across runs and platforms so CI
/// can hash-compare the baseline.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort();
    let mut out = String::from(BASELINE_HEADER);
    out.push('\n');
    for f in sorted {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Parse a baseline file back into its canonical finding lines.
/// Returns `Err` if the header is missing (corrupt or truncated file).
pub fn parse_baseline(text: &str) -> Result<BTreeSet<String>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == BASELINE_HEADER => {}
        _ => return Err(format!("baseline missing header line `{BASELINE_HEADER}`")),
    }
    Ok(lines
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// The result of diffing current findings against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings present now but absent from the baseline (new violations).
    pub added: Vec<String>,
    /// Baseline lines with no matching finding (stale entries — the
    /// violation was fixed; regenerate the baseline to drop them).
    pub removed: Vec<String>,
}

impl BaselineDiff {
    /// Whether the scan matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Diff current findings against baseline lines.
pub fn diff_baseline(findings: &[Finding], baseline: &BTreeSet<String>) -> BaselineDiff {
    let current: BTreeSet<String> = findings.iter().map(ToString::to_string).collect();
    BaselineDiff {
        added: current.difference(baseline).cloned().collect(),
        removed: baseline.difference(&current).cloned().collect(),
    }
}

/// Locate the workspace root by walking ancestors of `start` looking for
/// a `Cargo.toml` that declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
