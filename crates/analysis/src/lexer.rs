//! A hand-rolled Rust token scanner: just enough lexing to drive the
//! detlint rulebook without a parser dependency (the build environment is
//! vendored-only, so `syn`-style crates are off the table — and the rules
//! only need identifiers, punctuation, and comment association anyway).
//!
//! The scanner understands line comments, (nested) block comments, string
//! and raw-string literals, byte strings, char literals vs lifetimes, and
//! numeric literals, so rule patterns never fire on text inside strings or
//! comments. Output is a flat token stream with line numbers plus a
//! per-line comment table that the justification rules (`// SAFETY:`,
//! `// ORDERING:`, `// detlint: allow(...)`) read.

use std::collections::{HashMap, HashSet};

/// One lexical token. Literal contents are deliberately dropped: no rule
/// matches inside a literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident {
        /// The identifier text.
        text: String,
        /// 1-based source line of the first character.
        line: u32,
    },
    /// A single punctuation character.
    Punct {
        /// The character.
        ch: char,
        /// 1-based source line.
        line: u32,
    },
    /// A string/char/numeric literal (contents dropped).
    Lit {
        /// 1-based source line of the first character.
        line: u32,
    },
}

impl Tok {
    /// Source line of the token.
    pub fn line(&self) -> u32 {
        match self {
            Tok::Ident { line, .. } | Tok::Punct { line, .. } | Tok::Lit { line } => *line,
        }
    }

    /// The identifier text, when this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident { text, .. } => Some(text),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct { ch, .. } if *ch == c)
    }
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub toks: Vec<Tok>,
    /// Comment text by line: every line that carries (part of) a comment
    /// maps to the concatenated comment text on that line.
    pub comments: HashMap<u32, String>,
    /// Lines that carry at least one token (used to tell comment-only
    /// lines from code lines when associating justification comments).
    pub token_lines: HashSet<u32>,
    /// For each line with tokens, the last punctuation character on it
    /// (used to spot statement boundaries in upward comment scans).
    pub last_punct: HashMap<u32, char>,
}

impl Lexed {
    /// Whether `line` consists of comment/whitespace only.
    pub fn is_comment_only(&self, line: u32) -> bool {
        self.comments.contains_key(&line) && !self.token_lines.contains(&line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comment tables.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let note_comment = |out: &mut Lexed, line: u32, text: &str| {
        let entry = out.comments.entry(line).or_default();
        if !entry.is_empty() {
            entry.push(' ');
        }
        entry.push_str(text.trim());
    };
    let push = |out: &mut Lexed, tok: Tok| {
        out.token_lines.insert(tok.line());
        if let Tok::Punct { ch, line } = tok {
            out.last_punct.insert(line, ch);
        }
        out.toks.push(tok);
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            note_comment(&mut out, line, &text);
            continue;
        }
        // Block comment, possibly nested, possibly spanning lines.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            let mut seg = String::from("/*");
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    note_comment(&mut out, line, &seg);
                    seg.clear();
                    line += 1;
                    i += 1;
                    continue;
                }
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    seg.push_str("/*");
                    i += 2;
                    continue;
                }
                if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    seg.push_str("*/");
                    i += 2;
                    continue;
                }
                seg.push(chars[i]);
                i += 1;
            }
            if !seg.is_empty() {
                note_comment(&mut out, line, &seg);
            }
            continue;
        }
        // Raw strings / byte strings: r"...", r#"..."#, br"...", b"...".
        if c == 'r' || c == 'b' {
            if let Some((next_i, next_line)) = try_raw_or_byte_string(&chars, i, line) {
                push(&mut out, Tok::Lit { line });
                i = next_i;
                line = next_line;
                continue;
            }
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            push(&mut out, Tok::Ident { text, line });
            continue;
        }
        // Ordinary string literal.
        if c == '"' {
            push(&mut out, Tok::Lit { line });
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: consume to the closing quote.
                push(&mut out, Tok::Lit { line });
                i += 2;
                while i < n && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                // Plain char literal 'x'.
                push(&mut out, Tok::Lit { line });
                i += 3;
                continue;
            }
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                // Lifetime: skip the quote and let the identifier path
                // consume the name (rules never match lifetime names, and
                // a stray `static` ident is harmless).
                i += 1;
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let _ = start;
                continue;
            }
            i += 1;
            continue;
        }
        // Numeric literal (good enough: stops before `..` ranges).
        if c.is_ascii_digit() {
            push(&mut out, Tok::Lit { line });
            i += 1;
            while i < n {
                let d = chars[i];
                let in_number = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.' && i + 1 < n && chars[i + 1].is_ascii_digit());
                if !in_number {
                    break;
                }
                i += 1;
            }
            continue;
        }
        push(&mut out, Tok::Punct { ch: c, line });
        i += 1;
    }
    out
}

/// If position `i` starts a raw string (`r"`, `r#"`, `br"`, …) or byte
/// string (`b"`), consume it and return `(next index, next line)`.
fn try_raw_or_byte_string(chars: &[char], i: usize, mut line: u32) -> Option<(usize, u32)> {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == '"' {
            // Byte string b"...": same escape rules as a plain string.
            j += 1;
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    '"' => return Some((j + 1, line)),
                    _ => j += 1,
                }
            }
            return Some((j, line));
        }
        if j >= n || chars[j] != 'r' {
            return None;
        }
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || chars[j] != '"' {
            return None;
        }
        j += 1;
        // Scan for `"` followed by `hashes` hash marks; no escapes.
        while j < n {
            if chars[j] == '\n' {
                line += 1;
                j += 1;
                continue;
            }
            if chars[j] == '"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < n && chars[k] == '#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some((k, line));
                }
            }
            j += 1;
        }
        return Some((j, line));
    }
    None
}

/// Compute a skip mask over `toks`: `true` for every token inside a
/// `#[cfg(test)]`-gated item (the attribute itself, any stacked attributes,
/// and the item body through its balanced braces or terminating `;`).
/// Test modules legitimately spawn threads, unwrap, and use wall clocks;
/// the rulebook governs shipped code.
pub fn cfg_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            if let Some(close) = matching(toks, i + 1, '[', ']') {
                if attr_is_cfg_test(&toks[i + 2..close]) {
                    let mut j = close + 1;
                    // Stacked attributes between #[cfg(test)] and the item.
                    while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
                        match matching(toks, j + 1, '[', ']') {
                            Some(c) => j = c + 1,
                            None => break,
                        }
                    }
                    // The item: ends at the first top-level `;` or at the
                    // matching brace of its first `{`.
                    let mut end = j;
                    while end < toks.len() {
                        if toks[end].is_punct(';') {
                            break;
                        }
                        if toks[end].is_punct('{') {
                            end = matching(toks, end, '{', '}').unwrap_or(toks.len() - 1);
                            break;
                        }
                        end += 1;
                    }
                    let end = end.min(toks.len() - 1);
                    for s in skip.iter_mut().take(end + 1).skip(i) {
                        *s = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    skip
}

/// Whether the attribute body (tokens between `[` and `]`) is a
/// `cfg(...)` whose predicate mentions `test`.
fn attr_is_cfg_test(body: &[Tok]) -> bool {
    let first_is_cfg = body.first().and_then(Tok::ident) == Some("cfg");
    first_is_cfg && body.iter().any(|t| t.ident() == Some("test"))
}

/// Index of the token matching the opener at `open` (which must hold an
/// `open_ch` punct), balancing nested pairs.
fn matching(toks: &[Tok], open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0usize;
    for (idx, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* SystemTime in /* a nested */ block */
            let s = "Instant::now() inside a string";
            let r = r#"thread_rng in a raw string"#;
            let c = 'x';
            let real = HashSet::new();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"HashSet".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
    }

    #[test]
    fn comments_are_recorded_per_line() {
        let src = "let a = 1; // SAFETY: fine\n// ORDERING: also fine\nlet b = 2;\n";
        let lx = lex(src);
        assert!(lx.comments[&1].contains("SAFETY:"));
        assert!(lx.comments[&2].contains("ORDERING:"));
        assert!(!lx.is_comment_only(1), "line 1 has code");
        assert!(lx.is_comment_only(2));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lx = lex(src);
        assert!(lx.toks.iter().any(|t| t.ident() == Some("str")));
    }

    #[test]
    fn cfg_test_mask_covers_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lx = lex(src);
        let mask = cfg_test_mask(&lx.toks);
        let unwrap_idx = lx
            .toks
            .iter()
            .position(|t| t.ident() == Some("unwrap"))
            .expect("unwrap token present");
        assert!(mask[unwrap_idx], "test-module body is masked");
        let after_idx = lx
            .toks
            .iter()
            .position(|t| t.ident() == Some("after"))
            .expect("after token present");
        assert!(!mask[after_idx], "code after the test module is live");
    }

    #[test]
    fn cfg_attr_is_not_a_test_gate() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn live() { x.unwrap(); }\n";
        let lx = lex(src);
        let mask = cfg_test_mask(&lx.toks);
        let unwrap_idx = lx
            .toks
            .iter()
            .position(|t| t.ident() == Some("unwrap"))
            .expect("unwrap token present");
        assert!(!mask[unwrap_idx], "cfg_attr does not gate the item out");
    }
}
