//! The detlint rulebook: determinism and concurrency rules D1–D7.
//!
//! Each rule is a pattern over the token stream of one file, filtered by
//! the file's workspace-relative path. Findings are suppressed by an
//! allowlist comment `// detlint: allow(<rule>) reason="…"` on the same
//! line or on a contiguous run of comment lines directly above the
//! offending statement, and by justification comments (`// SAFETY:`,
//! `// ORDERING:`) for rule D4.

use crate::lexer::{Lexed, Tok};
use crate::Finding;

/// Crates whose hot paths must not iterate unordered collections (D1) —
/// an unordered `HashMap`/`HashSet` walk is the canonical way to break
/// sharded ≡ sequential bit-identity.
const D1_SCOPE: &[&str] = &[
    "crates/sim/",
    "crates/core/",
    "crates/matching/",
    "crates/queues/",
];

/// The only tree allowed to read wall clocks or entropy (D2): benchmarks
/// measure real time by definition. Everything else must run on simulated
/// slots and seeded RNGs.
const D2_EXEMPT: &[&str] = &["crates/bench/"];

/// The modules sanctioned to create threads (D3): the sharded engine's
/// phase-stepped scoped workers, proven bit-identical to the sequential
/// path by the lockstep suites, and the streaming seam's producer pump —
/// a feeder thread whose timing never reaches the transcript (proven
/// depth-independent and trace-identical by the streaming parity suite).
const D3_EXEMPT: &[&str] = &["crates/sim/src/shard.rs", "crates/sim/src/stream.rs"];

/// Engine slot-loop modules where every `unwrap()` must be allowlisted
/// (D5); `expect("invariant message")` documents itself and is exempt.
const D5_SCOPE: &[&str] = &["crates/sim/src/engine.rs", "crates/sim/src/shard.rs"];

/// Types whose complete state crosses a checkpoint boundary (D6): every
/// field must carry a `// snapshot:` comment stating whether it is
/// serialized into [`EngineSnapshot`] or transient (and how it is
/// rebuilt on restore). A silently-added field is the canonical way to
/// break kill/restore equivalence — the snapshot codec won't know about
/// it, and the restored run diverges.
const D6_TYPES: &[&str] = &[
    "SwitchState",
    "StatsRecorder",
    "LossBreakdown",
    "WindowedStats",
    "SortedQueue",
    "InFlight",
    "DelayCalendar",
    "FaultRuntime",
    "StreamingSource",
];

/// Crates holding the snapshotted types (D6). The snapshot codec itself
/// (`crates/sim/src/snapshot.rs`) defines the wire structs and is not a
/// state owner, so `EngineSnapshot` is deliberately absent from
/// [`D6_TYPES`].
const D6_SCOPE: &[&str] = &["crates/sim/", "crates/queues/"];

/// The memory-ordering names of `std::sync::atomic::Ordering` (D4b).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// How many comment-only lines above a finding are searched for an
/// allowlist or justification comment.
const COMMENT_SCAN_LINES: u32 = 8;

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Whether any comment attached to `line` (same line, or the contiguous
/// comment-only block directly above) contains `needle`.
fn comment_near(lx: &Lexed, line: u32, needle: &str) -> bool {
    if let Some(c) = lx.comments.get(&line) {
        if c.contains(needle) {
            return true;
        }
    }
    let mut l = line;
    let mut budget = COMMENT_SCAN_LINES;
    while l > 1 && budget > 0 {
        l -= 1;
        budget -= 1;
        if lx.is_comment_only(l) {
            if lx.comments[&l].contains(needle) {
                return true;
            }
            continue;
        }
        if lx.token_lines.contains(&l) {
            // A code line above: the comment block (if any) has ended —
            // unless this line is a statement continuation (doesn't end in
            // `;`/`{`/`}`), in which case the comment may sit above the
            // statement's first line. Keep scanning in that case.
            match lx.last_punct.get(&l) {
                Some(';') | Some('{') | Some('}') => return false,
                _ => continue,
            }
        }
        // Blank line: stop, the comment must be adjacent.
        return false;
    }
    false
}

/// Whether a finding of `rule` at `line` carries a
/// `// detlint: allow(<rule>)` comment.
fn allowlisted(lx: &Lexed, line: u32, rule: &str) -> bool {
    comment_near(lx, line, &format!("detlint: allow({rule})"))
}

fn push(
    findings: &mut Vec<Finding>,
    lx: &Lexed,
    rule: &'static str,
    path: &str,
    line: u32,
    what: String,
) {
    if !allowlisted(lx, line, rule) {
        findings.push(Finding {
            rule,
            path: path.to_string(),
            line,
            what,
        });
    }
}

/// Run the full rulebook over one lexed file. `live` masks out tokens in
/// `#[cfg(test)]` regions; `path` is workspace-relative with `/` separators.
pub fn scan_file(path: &str, lx: &Lexed, mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lx.toks;
    let live = |i: usize| !mask[i];

    let d1 = in_scope(path, D1_SCOPE);
    let d2 = !in_scope(path, D2_EXEMPT);
    let d3 = !in_scope(path, D3_EXEMPT);
    let d4b = path.ends_with("sync.rs");
    let d5 = D5_SCOPE.contains(&path);

    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        let line = toks[i].line();
        let Some(id) = toks[i].ident() else {
            // D4a: `unsafe` is a keyword but lexes as an identifier, so
            // only identifier tokens matter; skip punctuation/literals.
            continue;
        };

        // D1: unordered collections in determinism-critical crates.
        if d1 && (id == "HashMap" || id == "HashSet") {
            push(
                &mut findings,
                lx,
                "D1",
                path,
                line,
                format!("unordered collection `{id}` in determinism-critical crate (use BTreeMap/BTreeSet or a Vec with explicit sort)"),
            );
        }

        // D2: wall clock / entropy outside bench.
        if d2 {
            if (id == "Instant" || id == "SystemTime")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).and_then(Tok::ident) == Some("now")
            {
                push(
                    &mut findings,
                    lx,
                    "D2",
                    path,
                    line,
                    format!("wall-clock read `{id}::now()` outside crates/bench"),
                );
            } else if id == "SystemTime" || id == "thread_rng" {
                push(
                    &mut findings,
                    lx,
                    "D2",
                    path,
                    line,
                    format!("nondeterminism source `{id}` outside crates/bench"),
                );
            }
        }

        // D3: thread creation outside the sanctioned shard module.
        if d3
            && (id == "spawn" || id == "scope")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            // Match `thread::spawn(` / `thread::scope(` and method-style
            // `scope.spawn(` is caught by the plain `.spawn(` arm below.
            let receiver = (0..i.saturating_sub(2))
                .rev()
                .find(|&j| live(j))
                .and_then(|j| toks[j].ident());
            if receiver == Some("thread") {
                push(
                    &mut findings,
                    lx,
                    "D3",
                    path,
                    line,
                    format!("thread creation `thread::{id}(` outside sim::shard"),
                );
            }
        }
        if d3
            && id == "spawn"
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            push(
                &mut findings,
                lx,
                "D3",
                path,
                line,
                "scoped thread spawn `.spawn(` outside sim::shard".to_string(),
            );
        }

        // D4a: unsafe without a SAFETY comment.
        if id == "unsafe" && !comment_near(lx, line, "SAFETY:") {
            push(
                &mut findings,
                lx,
                "D4",
                path,
                line,
                "`unsafe` without a `// SAFETY:` comment".to_string(),
            );
        }

        // D4b: atomic Ordering in sync.rs without an ORDERING comment.
        if d4b
            && id == "Ordering"
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(ord) = toks.get(i + 3).and_then(Tok::ident) {
                if ATOMIC_ORDERINGS.contains(&ord) && !comment_near(lx, line, "ORDERING:") {
                    push(
                        &mut findings,
                        lx,
                        "D4",
                        path,
                        line,
                        format!("atomic `Ordering::{ord}` in sync.rs without a `// ORDERING:` justification"),
                    );
                }
            }
        }

        // D5: bare unwrap() in engine slot-loop modules.
        if d5
            && id == "unwrap"
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            push(
                &mut findings,
                lx,
                "D5",
                path,
                line,
                "bare `.unwrap()` in engine slot loop (use an invariant-message `expect()` or a ConfigError)".to_string(),
            );
        }
    }

    scan_d6(path, lx, mask, &mut findings);
    scan_d7(path, lx, mask, &mut findings);
    findings
}

/// D6: every field of a snapshotted type needs a `// snapshot:` comment.
///
/// Finds `struct <Name>` for each name in [`D6_TYPES`], walks the braced
/// body tracking brace depth, and treats each `ident :` pair at depth 1
/// (a single colon — `::` path segments are excluded) as a field
/// declaration. A field whose attached comment block does not mention
/// `snapshot:` is a finding: either the field is serialized by the
/// snapshot codec (say so), or it is transient and the comment must say
/// how restore reconstructs it.
fn scan_d6(path: &str, lx: &Lexed, mask: &[bool], findings: &mut Vec<Finding>) {
    if !in_scope(path, D6_SCOPE) {
        return;
    }
    let toks = &lx.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if mask[i] || toks[i].ident() != Some("struct") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Tok::ident) else {
            i += 1;
            continue;
        };
        if !D6_TYPES.contains(&name) {
            i += 2;
            continue;
        }
        // Advance past generics/where-clause to the body. A `;` or `(`
        // first means a unit or tuple struct — no named fields to audit.
        let mut j = i + 2;
        let body_open = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('{') => break Some(j),
                Some(t) if t.is_punct(';') || t.is_punct('(') => break None,
                Some(_) => j += 1,
            }
        };
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let mut depth = 1usize;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            if toks[k].is_punct('{') {
                depth += 1;
            } else if toks[k].is_punct('}') {
                depth -= 1;
            } else if depth == 1 && !mask[k] {
                // A field: identifier followed by a single `:` (not a
                // `::` path). Visibility (`pub`, `pub(crate)`) and type
                // tokens never match this shape at body depth.
                if let Some(field) = toks[k].ident() {
                    if toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                        && !comment_near(lx, toks[k].line(), "snapshot:")
                    {
                        push(
                            findings,
                            lx,
                            "D6",
                            path,
                            toks[k].line(),
                            format!(
                                "field `{field}` of snapshotted type `{name}` lacks a `// snapshot:` comment (serialized or transient-with-rebuild)"
                            ),
                        );
                    }
                }
            }
            k += 1;
        }
        i = k;
    }
}

/// D7: no heap allocation in a function annotated `// detlint: hot`.
///
/// The annotation marks a slot-loop body the allocation census
/// (`alloc_census`, `--features alloc-audit`) proves allocation-free;
/// this rule keeps it that way between census runs. Inside the annotated
/// function's braced body, `Vec::new`, `vec![`, `Box::new`, `.to_vec(`
/// and `.collect` are findings unless carrying an allow comment with a
/// reason (`// detlint: allow(D7) reason="…"`) — e.g. a cold error path
/// that only allocates after an invariant has already failed.
fn scan_d7(path: &str, lx: &Lexed, mask: &[bool], findings: &mut Vec<Finding>) {
    let mut hot_lines: Vec<u32> = lx
        .comments
        .iter()
        .filter(|&(_, c)| {
            // Only the annotation itself (`// detlint: hot`), not prose
            // that merely mentions it — e.g. this rule's own doc comment.
            c.trim_start_matches('/')
                .trim_start()
                .starts_with("detlint: hot")
        })
        .map(|(&l, _)| l)
        .collect();
    hot_lines.sort_unstable();
    let toks = &lx.toks;
    for &hot in &hot_lines {
        // The annotated function: first `fn` past the annotation line.
        let Some(fn_i) =
            (0..toks.len()).find(|&i| toks[i].line() > hot && toks[i].ident() == Some("fn"))
        else {
            continue;
        };
        // Body opens at the first `{` outside the parameter list; a `;`
        // first means a bodyless trait method — nothing to audit.
        let mut j = fn_i + 1;
        let mut paren = 0usize;
        let open = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('(') => paren += 1,
                Some(t) if t.is_punct(')') => paren -= 1,
                Some(t) if t.is_punct('{') && paren == 0 => break Some(j),
                Some(t) if t.is_punct(';') && paren == 0 => break None,
                Some(_) => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        let mut depth = 1usize;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            if toks[k].is_punct('{') {
                depth += 1;
            } else if toks[k].is_punct('}') {
                depth -= 1;
            } else if !mask[k] {
                if let Some(id) = toks[k].ident() {
                    let line = toks[k].line();
                    let after_dot = k >= 1 && toks[k - 1].is_punct('.');
                    let path_new = toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                        && toks.get(k + 3).and_then(Tok::ident) == Some("new");
                    let what = match id {
                        "vec" if toks.get(k + 1).is_some_and(|t| t.is_punct('!')) => {
                            Some("`vec![` allocates".to_string())
                        }
                        "Vec" | "Box" if path_new => Some(format!("`{id}::new()` allocates")),
                        "to_vec" if after_dot => Some("`.to_vec()` allocates".to_string()),
                        "collect" if after_dot => Some("`.collect()` allocates".to_string()),
                        _ => None,
                    };
                    if let Some(what) = what {
                        push(
                            findings,
                            lx,
                            "D7",
                            path,
                            line,
                            format!("{what} in a `// detlint: hot` slot-loop function"),
                        );
                    }
                }
            }
            k += 1;
        }
    }
}
