//! Plain-text and markdown table rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:<w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Print the plain-text rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a ratio with an inequality marker when it is only an upper bound.
pub fn fmt_ratio(ratio: f64, exact: bool) -> String {
    if exact {
        format!("{ratio:.3}")
    } else {
        format!("<= {ratio:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["longer-name".into(), "23".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("longer-name"));
        let header_line = s.lines().nth(1).unwrap();
        assert!(header_line.starts_with("name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("md", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(1.5, true), "1.500");
        assert_eq!(fmt_ratio(1.5, false), "<= 1.500");
    }
}
