//! Competitive-ratio measurement: algorithm benefit vs certified OPT bound.

use crate::policies::{run_policy, PolicyKind};
use cioq_model::{Benefit, SwitchConfig};
use cioq_opt::{exact_opt, opt_upper_bound, opt_upper_bound_is_exact, BruteForceLimits};
use cioq_sim::Trace;

/// One measured row: a policy on a workload, with its ratio against OPT.
#[derive(Debug, Clone)]
pub struct RatioRow {
    /// Policy label.
    pub policy: String,
    /// Algorithm benefit.
    pub benefit: u128,
    /// The OPT value compared against (exact or certified upper bound).
    pub opt_bound: u128,
    /// `opt_bound / benefit` — an upper bound on (or the exact value of)
    /// the empirical competitive ratio.
    pub ratio: f64,
    /// Whether `opt_bound` is exact OPT (IQ configs / brute force) rather
    /// than a relaxation bound.
    pub exact: bool,
    /// The theorem's guarantee for this policy, if any.
    pub theoretical: Option<f64>,
}

/// Measure a policy's ratio on a trace. Tries exact OPT first when the
/// instance is tiny (`try_exact`), otherwise uses the flow bounds.
pub fn measure_ratio(
    kind: PolicyKind,
    cfg: &SwitchConfig,
    trace: &Trace,
    try_exact: bool,
) -> RatioRow {
    let report = run_policy(kind, cfg, trace).expect("policy must run cleanly");
    let exact_value = if try_exact {
        exact_opt(
            cfg,
            trace,
            BruteForceLimits {
                max_states: 200_000,
            },
        )
        .map(|b| b.0)
    } else {
        None
    };
    let (opt_bound, exact) = match exact_value {
        Some(v) => (v, true),
        None => {
            let bounds = opt_upper_bound(cfg, trace);
            (bounds.best(), opt_upper_bound_is_exact(cfg))
        }
    };
    RatioRow {
        policy: kind.label(),
        benefit: report.benefit.0,
        opt_bound,
        ratio: Benefit(opt_bound).ratio_over(report.benefit),
        exact,
        theoretical: kind.theoretical_ratio(),
    }
}

impl RatioRow {
    /// `true` when the measurement is consistent with the theorem bound
    /// (always true for non-exact bounds if ratio ≤ bound; a violation with
    /// an *exact* bound would falsify the implementation).
    pub fn within_theorem(&self) -> bool {
        match self.theoretical {
            Some(t) => !self.exact || self.ratio <= t + 1e-9,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::PortId;

    #[test]
    fn measures_exact_on_tiny_instances() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(0), 1), (0, PortId(1), PortId(1), 1)]);
        let row = measure_ratio(PolicyKind::Gm, &cfg, &trace, true);
        assert!(row.exact);
        assert_eq!(row.benefit, 2);
        assert_eq!(row.opt_bound, 2);
        assert_eq!(row.ratio, 1.0);
        assert!(row.within_theorem());
    }

    #[test]
    fn falls_back_to_flow_bound() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let trace = Trace::from_tuples([(0, PortId(0), PortId(1), 4)]);
        let row = measure_ratio(PolicyKind::Gm, &cfg, &trace, false);
        assert!(!row.exact, "2x2 CIOQ flow bound is not certified exact");
        assert_eq!(row.opt_bound, 4);
    }
}
