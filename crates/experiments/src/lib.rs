//! # cioq-experiments
//!
//! The experiment harness behind every table and figure in EXPERIMENTS.md:
//! policy registry, competitive-ratio measurement against the certified OPT
//! bounds of `cioq-opt`, a parallel sweep runner (std scoped threads),
//! and plain-text/markdown table rendering.
//!
//! Each experiment is a binary (`src/bin/exp_*.rs`); `exp_all` runs the
//! whole suite. Binaries accept `--quick` for a reduced-scale run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod policies;
mod ratio;
mod runner;
pub mod suite;
mod table;

pub use policies::{run_policy, PolicyKind};
pub use ratio::{measure_ratio, RatioRow};
pub use runner::{parallel_map, parallel_map_with_threads, with_sweep_threads};
pub use table::{fmt_ratio, Table};

/// Whether `--quick` was passed to the current binary (reduced scale for
/// CI/tests).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Scale a slot count down in quick mode.
pub fn scaled_slots(full: u64) -> u64 {
    if quick_mode() {
        (full / 8).max(16)
    } else {
        full
    }
}
