//! S2 — latency-aware fabric sweep: run GM/PG/CGU/CPG through `DelayLine`
//! transports at d ∈ {0, 1, 2, 4, 8}, reporting competitive-ratio and
//! backlog degradation versus the zero-latency fabric, with a sharded
//! (K ∈ {2, 4}) agreement tripwire per point. Pass `--quick` for reduced
//! scale, `--markdown` for markdown output.

use cioq_experiments::suite;

fn main() {
    let quick = cioq_experiments::quick_mode();
    let markdown = std::env::args().any(|a| a == "--markdown");
    for table in suite::s2_delay(quick) {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            table.print();
        }
    }
}
