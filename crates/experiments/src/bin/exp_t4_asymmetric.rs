//! Experiment T4: see DESIGN.md §5 and EXPERIMENTS.md. Pass `--quick`
//! for a reduced-scale run, `--markdown` for markdown output.
fn main() {
    let quick = cioq_experiments::quick_mode();
    let markdown = std::env::args().any(|a| a == "--markdown");
    for table in cioq_experiments::suite::t4_asymmetric(quick) {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            table.print();
        }
    }
}
