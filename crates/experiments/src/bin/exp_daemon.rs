//! Service-daemon soak: run the streaming seam for ~10⁶ slots without ever
//! materialising the trace, and prove the service-mode contract end to end:
//!
//! * **Backpressure engages and is harmless** — a shallow channel forces
//!   the producer to block at least once, nothing is dropped, and the
//!   transcript is byte-identical to a deep-channel run of the same
//!   workload (run A depth 4 vs run C depth 64 through the service API).
//! * **Kill/restore mid-stream** — run B restores from a middle
//!   checkpoint's serialized bytes, re-attaches a fast-forwarded generator
//!   at the checkpoint's stream cursor, and must reproduce run A's report
//!   and re-emit byte-identical checkpoints from there on.
//! * **Bounded memory** — resident-set growth across all three runs stays
//!   under a bound far below the size of the materialised trace the
//!   streaming seam avoids (Linux only; skipped elsewhere).
//!
//! Pass `--quick` for reduced scale, `--markdown` for markdown output.
//! Exits non-zero on any divergence, missing backpressure, or RSS growth.

use cioq_core::GreedyMatching;
use cioq_experiments::Table;
use cioq_model::{Packet, PacketId, SwitchConfig};
use cioq_sim::{serve_cioq, Engine, EngineSnapshot, RunOptions, RunOutcome, StreamSender};
use cioq_traffic::{stream_gen, stream_gen_from, BernoulliUniform, SlotGen, ValueDist};

/// Allowed resident-set growth across the whole soak. The avoided
/// materialised trace alone would be ~`load · n · slots` packets (tens of
/// MiB at full scale), so staying under this bound demonstrates the
/// streaming path really is O(per-slot). Tightened from 64 MiB once the
/// channel recycled its batch buffers ([`StreamSender::send_reusing`]):
/// a steady-state producer/consumer pair now allocates nothing per slot,
/// so RSS should be flat to within allocator slop.
const RSS_BOUND_MIB: u64 = 16;

fn options(every: u64) -> RunOptions {
    RunOptions {
        checkpoint_every: Some(every),
        ..RunOptions::default()
    }
}

/// `VmRSS` in KiB from `/proc/self/status`, or `None` off Linux.
fn rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Feed `slots` slots of the generator through the sender, numbering
/// packets in emission order (the [`cioq_sim::Trace::from_tuples`]
/// numbering), exactly as [`stream_gen`] does — used for the service-API
/// run, whose producer closure owns the generator.
fn pump_slots(tx: StreamSender, cfg: SwitchConfig, mut sg: impl SlotGen, slots: u64) {
    let mut tuples = Vec::new();
    let mut batch = Vec::new();
    let mut next_id: u64 = 0;
    for slot in 0..slots {
        tuples.clear();
        sg.fill_slot(&cfg, slot, &mut tuples);
        for &(i, j, v) in &tuples {
            batch.push(Packet::new(PacketId(next_id), v, slot, i, j));
            next_id += 1;
        }
        if tx.send_reusing(slot, &mut batch).is_err() {
            return;
        }
    }
}

fn checkpoints_identical(a: &[EngineSnapshot], b: &[EngineSnapshot]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bytes() == y.to_bytes())
}

struct Row {
    name: &'static str,
    depth: usize,
    outcome: RunOutcome,
    stalls: u64,
    verdict: Result<(), String>,
}

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let slots = cioq_experiments::scaled_slots(1_000_000);
    let every = (slots / 64).max(8);
    let cfg = SwitchConfig::cioq(4, 3, 2);
    let gen = BernoulliUniform::new(
        0.6,
        ValueDist::Bimodal {
            high: 40,
            p_high: 0.2,
        },
    );
    let seed = 0x5eed;
    let rss_start = rss_kib();

    // Run A: shallow channel, engine started only after the producer has
    // filled the buffer and blocked — backpressure engages deterministically
    // before the first slot is consumed.
    let (mut source_a, pump_a) = stream_gen(gen.slots(seed), &cfg, slots, 4);
    source_a.wait_backpressure();
    let engine = Engine::try_new(cfg.clone(), options(every)).expect("valid options");
    let full = engine
        .run_cioq_full(&mut GreedyMatching::new(), &mut source_a)
        .expect("streamed run");
    let stalls_a = source_a.stalls();
    drop(source_a);
    pump_a.join();
    let verdict_a = if stalls_a == 0 {
        Err("backpressure never engaged".to_string())
    } else if full.report.accepted == 0 {
        Err("stream run admitted nothing".to_string())
    } else {
        Ok(())
    };

    // Run B: kill at the middle checkpoint, restore through the wire
    // format, re-feed from the checkpoint's stream cursor with a fresh
    // fast-forwarded generator.
    let mid = &full.checkpoints[full.checkpoints.len() / 2];
    let decoded = EngineSnapshot::from_bytes(&mid.to_bytes()).expect("decode own bytes");
    let restored = Engine::restore(&decoded, options(every)).expect("restore own checkpoint");
    let (mut source_b, pump_b) =
        stream_gen_from(gen.slots(seed), &cfg, slots, 4, decoded.stream_cursor());
    let resumed = restored
        .run_cioq_full(&mut GreedyMatching::new(), &mut source_b)
        .expect("resumed streamed run");
    let stalls_b = source_b.stalls();
    drop(source_b);
    pump_b.join();
    let tail: Vec<EngineSnapshot> = full
        .checkpoints
        .iter()
        .filter(|c| c.slot() >= decoded.slot())
        .cloned()
        .collect();
    let verdict_b = if resumed.report != full.report {
        Err("resumed report diverged".to_string())
    } else if !checkpoints_identical(&resumed.checkpoints, &tail) {
        Err("resumed checkpoint tail diverged".to_string())
    } else {
        Ok(())
    };

    // Run C: same workload through the service API with a deep channel —
    // the transcript must not depend on the channel depth.
    let cfg_c = cfg.clone();
    let sg_c = gen.slots(seed);
    let served = serve_cioq(
        cfg.clone(),
        options(every),
        &mut GreedyMatching::new(),
        64,
        move |tx| pump_slots(tx, cfg_c, sg_c, slots),
    )
    .expect("service run");
    let verdict_c = if served.outcome.report != full.report {
        Err("deep-channel report diverged".to_string())
    } else if !checkpoints_identical(&served.outcome.checkpoints, &full.checkpoints) {
        Err("deep-channel checkpoints diverged".to_string())
    } else {
        Ok(())
    };

    let rss_end = rss_kib();
    let rss_verdict = match (rss_start, rss_end) {
        (Some(start), Some(end)) => {
            let growth_mib = end.saturating_sub(start) / 1024;
            if growth_mib >= RSS_BOUND_MIB {
                Err(format!(
                    "RSS grew {growth_mib} MiB (bound {RSS_BOUND_MIB} MiB)"
                ))
            } else {
                Ok(())
            }
        }
        _ => Ok(()), // not Linux: no /proc, skip the bound
    };

    let rows = [
        Row {
            name: "A stream",
            depth: 4,
            outcome: full,
            stalls: stalls_a,
            verdict: verdict_a,
        },
        Row {
            name: "B restore",
            depth: 4,
            outcome: resumed,
            stalls: stalls_b,
            verdict: verdict_b,
        },
        Row {
            name: "C service",
            depth: 64,
            outcome: served.outcome,
            stalls: served.stalls,
            verdict: verdict_c,
        },
    ];

    let mut table = Table::new(
        "Service daemon soak: streamed ingestion, kill/restore, depth independence",
        &[
            "run",
            "depth",
            "slots",
            "arrived",
            "accepted",
            "transmitted",
            "stalls",
            "ckpts",
            "verdict",
        ],
    );
    let mut failures = 0;
    for row in &rows {
        if row.verdict.is_err() {
            failures += 1;
        }
        table.push(vec![
            row.name.to_string(),
            row.depth.to_string(),
            row.outcome.report.slots.to_string(),
            row.outcome.report.arrived.to_string(),
            row.outcome.report.accepted.to_string(),
            row.outcome.report.transmitted.to_string(),
            row.stalls.to_string(),
            row.outcome.checkpoints.len().to_string(),
            match &row.verdict {
                Ok(()) => "ok".to_string(),
                Err(e) => format!("FAIL: {e}"),
            },
        ]);
    }

    if markdown {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
    match (&rss_start, &rss_end) {
        (Some(s), Some(e)) => println!("rss: {} -> {} KiB", s, e),
        _ => println!("rss: unavailable (no /proc), bound skipped"),
    }
    if let Err(e) = rss_verdict {
        eprintln!("{e}");
        failures += 1;
    }
    if failures > 0 {
        eprintln!("{failures} soak check(s) failed");
        std::process::exit(1);
    }
    println!("soak ok: streamed, restored and service runs byte-identical; backpressure engaged");
}
