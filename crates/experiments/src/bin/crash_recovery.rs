//! Crash-recovery harness: drive kill/restore cycles under seeded fault
//! plans and prove the headline guarantee end to end — for every policy ×
//! fabric, an uninterrupted checkpointed run is compared against a run
//! killed at each checkpoint slot and restored from the snapshot bytes.
//! The resumed run must reproduce the uninterrupted `RunReport` exactly
//! and re-emit byte-identical checkpoints from the kill slot onward.
//!
//! Pass `--quick` for reduced scale, `--markdown` for markdown output.
//! Exits non-zero if any kill/restore cycle diverges.

use cioq_core::{CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy};
use cioq_experiments::Table;
use cioq_model::{SwitchConfig, Topology};
use cioq_sim::{
    DelayLine, DelayMatrix, Engine, EngineSnapshot, FabricLink, FaultPlan, Immediate, RunOptions,
    RunOutcome, Trace, TraceSource,
};
use cioq_traffic::{gen_trace, OnOffBursty, ValueDist};

#[derive(Clone, Copy)]
enum PolicyKind {
    Gm,
    Pg,
    Cgu,
    Cpg,
}

impl PolicyKind {
    fn label(self) -> &'static str {
        match self {
            PolicyKind::Gm => "GM",
            PolicyKind::Pg => "PG",
            PolicyKind::Cgu => "CGU",
            PolicyKind::Cpg => "CPG",
        }
    }

    fn is_crossbar(self) -> bool {
        matches!(self, PolicyKind::Cgu | PolicyKind::Cpg)
    }
}

fn options(link: &dyn FabricLink, faults: &FaultPlan, every: u64) -> RunOptions {
    RunOptions {
        checkpoint_every: Some(every),
        faults: Some(faults.clone()),
        ..RunOptions::default()
    }
    .link(link)
}

/// One run to completion: fresh from the trace start, or resumed from a
/// checkpoint (the policy is rebuilt — its caches are a deterministic
/// function of the restored queue state).
fn run(
    kind: PolicyKind,
    cfg: &SwitchConfig,
    trace: &Trace,
    link: &dyn FabricLink,
    faults: &FaultPlan,
    every: u64,
    resume: Option<&EngineSnapshot>,
) -> RunOutcome {
    let engine = match resume {
        Some(snap) => {
            Engine::restore(snap, options(link, faults, every)).expect("restore own checkpoint")
        }
        None => Engine::new(cfg.clone(), options(link, faults, every)),
    };
    let mut source = match resume {
        Some(snap) => TraceSource::resume_at(trace, snap.slot()),
        None => TraceSource::new(trace),
    };
    let outcome = if kind.is_crossbar() {
        match kind {
            PolicyKind::Cgu => {
                engine.run_crossbar_full(&mut CrossbarGreedyUnit::new(), &mut source)
            }
            _ => engine.run_crossbar_full(&mut CrossbarPreemptiveGreedy::new(), &mut source),
        }
    } else {
        match kind {
            PolicyKind::Gm => engine.run_cioq_full(&mut GreedyMatching::new(), &mut source),
            _ => engine.run_cioq_full(&mut PreemptiveGreedy::new(), &mut source),
        }
    };
    outcome.expect("faulted run must degrade gracefully, not error")
}

/// Kill at every checkpoint of the uninterrupted run, restore from the
/// serialized bytes, and count divergences.
fn kill_restore_cycles(
    kind: PolicyKind,
    cfg: &SwitchConfig,
    trace: &Trace,
    link: &dyn FabricLink,
    faults: &FaultPlan,
    every: u64,
) -> (RunOutcome, usize, usize) {
    let full = run(kind, cfg, trace, link, faults, every, None);
    let mut kills = 0;
    let mut failures = 0;
    for snap in &full.checkpoints {
        kills += 1;
        // Restore through the wire format: what a daemon would reload.
        let decoded = EngineSnapshot::from_bytes(&snap.to_bytes()).expect("decode own bytes");
        let resumed = run(kind, cfg, trace, link, faults, every, Some(&decoded));
        let k = snap.slot();
        let tail: Vec<&EngineSnapshot> =
            full.checkpoints.iter().filter(|c| c.slot() >= k).collect();
        let report_ok = resumed.report == full.report;
        let tail_ok = resumed.checkpoints.len() == tail.len()
            && resumed
                .checkpoints
                .iter()
                .zip(&tail)
                .all(|(a, b)| a.to_bytes() == b.to_bytes());
        if !report_ok || !tail_ok {
            failures += 1;
            eprintln!(
                "DIVERGED: {} kill at slot {k}: report_ok={report_ok} tail_ok={tail_ok}",
                kind.label()
            );
        }
    }
    (full, kills, failures)
}

fn main() {
    let quick = cioq_experiments::quick_mode();
    let markdown = std::env::args().any(|a| a == "--markdown");
    let slots = cioq_experiments::scaled_slots(96);
    let every = if quick { 8 } else { 12 };
    let n = 6;
    let gen = OnOffBursty::new(
        0.85,
        6.0,
        ValueDist::Bimodal {
            high: 40,
            p_high: 0.2,
        },
    );

    let matrix = DelayMatrix::new(Topology::two_tier(n, n, 3, 0, 2).expect("two-tier topology"));
    let fabrics: Vec<(&str, &dyn FabricLink)> = if quick {
        vec![("delay-line d=2", &DelayLine { d: 2 })]
    } else {
        vec![
            ("immediate", &Immediate),
            ("delay-line d=2", &DelayLine { d: 2 }),
            ("two-tier matrix", &matrix),
        ]
    };
    let seeds: &[u64] = if quick { &[0x7a] } else { &[0x7a, 0x7b] };

    let mut table = Table::new(
        "Crash recovery: kill at every checkpoint, restore from bytes, replay",
        &[
            "policy", "fabric", "seed", "ckpts", "kills", "dropped", "retx", "verdict",
        ],
    );
    let mut total_failures = 0;
    for kind in [
        PolicyKind::Gm,
        PolicyKind::Pg,
        PolicyKind::Cgu,
        PolicyKind::Cpg,
    ] {
        let cfg = if kind.is_crossbar() {
            SwitchConfig::crossbar(n, 3, 2, 2)
        } else {
            SwitchConfig::cioq(n, 3, 2)
        };
        for &(fabric_name, link) in &fabrics {
            for &seed in seeds {
                let trace = gen_trace(&gen, &cfg, slots, seed);
                let faults = FaultPlan::seeded(seed, n, n, slots, 6);
                let (full, kills, failures) =
                    kill_restore_cycles(kind, &cfg, &trace, link, &faults, every);
                total_failures += failures;
                table.push(vec![
                    kind.label().to_string(),
                    fabric_name.to_string(),
                    format!("{seed:#x}"),
                    full.checkpoints.len().to_string(),
                    kills.to_string(),
                    full.report.losses.dropped.to_string(),
                    full.report.retransmitted.to_string(),
                    if failures == 0 {
                        "ok".to_string()
                    } else {
                        format!("{failures} DIVERGED")
                    },
                ]);
            }
        }
    }

    if markdown {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
    if total_failures > 0 {
        eprintln!("{total_failures} kill/restore cycle(s) diverged");
        std::process::exit(1);
    }
    println!("all kill/restore cycles byte-identical");
}
