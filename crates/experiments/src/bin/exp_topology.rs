//! S3 — topology-aware fabric sweep: run GM/PG/CGU/CPG through
//! `DelayMatrix` transports over a two-tier rack model (2 racks,
//! chassis-local intra-rack pairs, cross-rack latency inter ∈
//! {0, 1, 2, 4, 8}), reporting competitive-ratio and backlog degradation
//! versus the immediate fabric, with a sharded (K = 2) agreement tripwire
//! per point. Pass `--quick` for reduced scale, `--markdown` for markdown
//! output.

use cioq_experiments::suite;

fn main() {
    let quick = cioq_experiments::quick_mode();
    let markdown = std::env::args().any(|a| a == "--markdown");
    for table in suite::s3_topology(quick) {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            table.print();
        }
    }
}
