//! S1 — sharded engine sweep: run GM/PG/CGU/CPG under the sharded slot
//! engine at K ∈ {1, 2, 4}, checking agreement with the sequential engine
//! and reporting wall-clock per run. Pass `--quick` for reduced scale,
//! `--markdown` for markdown output.

use cioq_experiments::suite;

fn main() {
    let quick = cioq_experiments::quick_mode();
    let markdown = std::env::args().any(|a| a == "--markdown");
    for table in suite::s1_sharded(quick) {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            table.print();
        }
    }
}
