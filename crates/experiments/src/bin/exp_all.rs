//! Run the entire experiment suite (every table and figure of
//! EXPERIMENTS.md) in order. Pass `--quick` for a reduced-scale run,
//! `--markdown` for markdown output.
use cioq_experiments::{suite, Table};
use std::time::Instant;

fn main() {
    let quick = cioq_experiments::quick_mode();
    let markdown = std::env::args().any(|a| a == "--markdown");
    // detlint: allow(D2) reason="progress log timestamps only; never feeds simulation state"
    let start = Instant::now();
    type Experiment = (&'static str, fn(bool) -> Vec<Table>);
    let experiments: Vec<Experiment> = vec![
        ("T1", suite::t1_summary),
        ("F3", suite::f3_gm_load),
        ("F4", suite::f4_pg_beta),
        ("F5", suite::f5_speedup),
        ("F6", suite::f6_matching_cost),
        ("F7", suite::f7_crossbar_buffer),
        ("F8", suite::f8_adversarial),
        ("T2", suite::t2_value_distributions),
        ("T3", suite::t3_bursty),
        ("T4", suite::t4_asymmetric),
        ("T5", suite::t5_ablation),
        ("S1", suite::s1_sharded),
        ("S2", suite::s2_delay),
        ("S3", suite::s3_topology),
    ];
    for (id, run) in experiments {
        // detlint: allow(D2) reason="progress log timestamps only; never feeds simulation state"
        let t0 = Instant::now();
        let tables = run(quick);
        eprintln!(
            "[{:>8.1?}] experiment {id} done in {:.1?}",
            start.elapsed(),
            t0.elapsed()
        );
        for table in tables {
            if markdown {
                println!("{}", table.to_markdown());
            } else {
                table.print();
            }
        }
    }
    eprintln!("suite finished in {:.1?}", start.elapsed());
}
