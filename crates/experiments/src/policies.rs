//! A nameable policy registry, so sweeps can enumerate policies as data.

use cioq_core::baselines::{IslipPolicy, MaxMatching, MaxWeightMatching};
use cioq_core::{
    CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, SelectionOrder,
};
use cioq_model::SwitchConfig;
use cioq_sim::{run_cioq, run_crossbar, PolicyError, RunReport, Trace};

/// Every policy the experiments can run, as plain data (so sweep points can
/// be sent across threads and printed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// GM — greedy maximal matching (Thm 1). CIOQ.
    Gm,
    /// GM with rotating edge order (ablation). CIOQ.
    GmRotate,
    /// PG with parameter β (Thm 2; β = 1+√2 at `PolicyKind::pg_default`). CIOQ.
    Pg(f64),
    /// PG ablation without preemption. CIOQ.
    PgNoPreempt,
    /// Kesselman–Rosén maximum-matching baseline. CIOQ.
    KrMaxMatching,
    /// Kesselman–Rosén maximum-weight-matching baseline with β. CIOQ.
    KrMaxWeight(f64),
    /// iSLIP with k iterations. CIOQ.
    Islip(usize),
    /// CGU — crossbar greedy unit (Thm 3). Buffered crossbar.
    Cgu,
    /// CGU with round-robin selection (ablation). Buffered crossbar.
    CguRoundRobin,
    /// CPG with (β, α) (Thm 4). Buffered crossbar.
    Cpg(f64, f64),
    /// CPG with α = β (the prior algorithm of [21]). Buffered crossbar.
    CpgSingleParam,
}

impl PolicyKind {
    /// PG at its optimal β.
    pub fn pg_default() -> Self {
        PolicyKind::Pg(cioq_core::params::PG_BETA)
    }

    /// CPG at its optimal (β★, α★).
    pub fn cpg_default() -> Self {
        PolicyKind::Cpg(
            cioq_core::params::cpg_beta_star(),
            cioq_core::params::cpg_alpha_star(),
        )
    }

    /// Whether this policy runs on a buffered crossbar (vs plain CIOQ).
    pub fn is_crossbar(&self) -> bool {
        matches!(
            self,
            PolicyKind::Cgu
                | PolicyKind::CguRoundRobin
                | PolicyKind::Cpg(..)
                | PolicyKind::CpgSingleParam
        )
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Gm => "GM".into(),
            PolicyKind::GmRotate => "GM(rotate)".into(),
            PolicyKind::Pg(b) => format!("PG(b={b:.3})"),
            PolicyKind::PgNoPreempt => "PG(no-preempt)".into(),
            PolicyKind::KrMaxMatching => "KR-MaxMatching".into(),
            PolicyKind::KrMaxWeight(b) => format!("KR-MaxWeight(b={b:.3})"),
            PolicyKind::Islip(k) => format!("iSLIP-{k}"),
            PolicyKind::Cgu => "CGU".into(),
            PolicyKind::CguRoundRobin => "CGU(rr)".into(),
            PolicyKind::Cpg(b, a) => format!("CPG(b={b:.2},a={a:.2})"),
            PolicyKind::CpgSingleParam => "CPG(a=b)".into(),
        }
    }

    /// The theorem bound this policy carries, if any (for tables).
    pub fn theoretical_ratio(&self) -> Option<f64> {
        match self {
            PolicyKind::Gm | PolicyKind::GmRotate => Some(3.0),
            PolicyKind::Pg(b) if *b > 1.0 => Some(cioq_core::params::pg_ratio(*b)),
            PolicyKind::KrMaxMatching => Some(3.0),
            PolicyKind::Cgu | PolicyKind::CguRoundRobin => Some(3.0),
            PolicyKind::Cpg(b, a) if *b > 1.0 && *a > 1.0 => {
                Some(cioq_core::params::cpg_ratio(*b, *a))
            }
            PolicyKind::KrMaxWeight(_) => Some(6.0),
            _ => None,
        }
    }
}

/// Run a policy on a recorded trace (drains after arrivals end).
pub fn run_policy(
    kind: PolicyKind,
    cfg: &SwitchConfig,
    trace: &Trace,
) -> Result<RunReport, PolicyError> {
    match kind {
        PolicyKind::Gm => run_cioq(cfg, &mut GreedyMatching::new(), trace),
        PolicyKind::GmRotate => run_cioq(
            cfg,
            &mut GreedyMatching::with_edge_policy(cioq_core::GmEdgePolicy::RotateByCycle),
            trace,
        ),
        PolicyKind::Pg(beta) => run_cioq(cfg, &mut PreemptiveGreedy::with_beta(beta), trace),
        PolicyKind::PgNoPreempt => {
            run_cioq(cfg, &mut PreemptiveGreedy::without_preemption(), trace)
        }
        PolicyKind::KrMaxMatching => run_cioq(cfg, &mut MaxMatching::new(), trace),
        PolicyKind::KrMaxWeight(beta) => {
            run_cioq(cfg, &mut MaxWeightMatching::with_beta(beta), trace)
        }
        PolicyKind::Islip(k) => run_cioq(cfg, &mut IslipPolicy::new(k), trace),
        PolicyKind::Cgu => run_crossbar(cfg, &mut CrossbarGreedyUnit::new(), trace),
        PolicyKind::CguRoundRobin => run_crossbar(
            cfg,
            &mut CrossbarGreedyUnit::with_selection(SelectionOrder::RoundRobin),
            trace,
        ),
        PolicyKind::Cpg(beta, alpha) => run_crossbar(
            cfg,
            &mut CrossbarPreemptiveGreedy::with_params(beta, alpha),
            trace,
        ),
        PolicyKind::CpgSingleParam => run_crossbar(
            cfg,
            &mut CrossbarPreemptiveGreedy::single_parameter(),
            trace,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::PortId;

    #[test]
    fn registry_runs_every_cioq_policy() {
        let cfg = SwitchConfig::cioq(2, 4, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(1), 3),
            (0, PortId(1), PortId(0), 5),
            (1, PortId(0), PortId(0), 2),
        ]);
        for kind in [
            PolicyKind::Gm,
            PolicyKind::GmRotate,
            PolicyKind::pg_default(),
            PolicyKind::PgNoPreempt,
            PolicyKind::KrMaxMatching,
            PolicyKind::KrMaxWeight(2.0),
            PolicyKind::Islip(2),
        ] {
            assert!(!kind.is_crossbar());
            let r = run_policy(kind, &cfg, &trace).unwrap();
            assert_eq!(r.benefit.0, 10, "{} must deliver all", kind.label());
        }
    }

    #[test]
    fn registry_runs_every_crossbar_policy() {
        let cfg = SwitchConfig::crossbar(2, 4, 2, 1);
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(1), 3), (0, PortId(1), PortId(0), 5)]);
        for kind in [
            PolicyKind::Cgu,
            PolicyKind::CguRoundRobin,
            PolicyKind::cpg_default(),
            PolicyKind::CpgSingleParam,
        ] {
            assert!(kind.is_crossbar());
            let r = run_policy(kind, &cfg, &trace).unwrap();
            assert_eq!(r.benefit.0, 8, "{} must deliver all", kind.label());
        }
    }

    #[test]
    fn theoretical_ratios_present() {
        assert_eq!(PolicyKind::Gm.theoretical_ratio(), Some(3.0));
        let pg = PolicyKind::pg_default().theoretical_ratio().unwrap();
        assert!((pg - 5.828).abs() < 1e-3);
        let cpg = PolicyKind::cpg_default().theoretical_ratio().unwrap();
        assert!((cpg - 14.83).abs() < 0.01);
        assert_eq!(PolicyKind::Islip(2).theoretical_ratio(), None);
    }
}
