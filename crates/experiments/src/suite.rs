//! The experiment suite: one function per table/figure of EXPERIMENTS.md.
//!
//! Every function is deterministic (fixed seeds), returns renderable
//! [`Table`]s, and is exercised at reduced scale by integration tests and
//! `--quick` runs. See DESIGN.md §5 for the experiment index.

use crate::policies::PolicyKind;
use crate::ratio::measure_ratio;
use crate::runner::parallel_map;
use crate::table::{fmt_ratio, Table};
use cioq_matching::{
    greedy_maximal, greedy_maximal_weighted, hopcroft_karp, hungarian_max_weight, BipartiteGraph,
    EdgeOrder, Islip,
};
use cioq_model::SwitchConfig;
use cioq_opt::{opt_upper_bound, opt_upper_bound_is_exact};
use cioq_sim::{run_cioq_with_source, Trace};
use cioq_traffic::adversary::{
    escalation_bait, gm_iq_flood, gm_iq_flood_opt_benefit, pg_weighted_flood,
    pg_weighted_flood_opt_benefit, AdaptiveFloodSource, EscalationParams,
};
use cioq_traffic::{gen_trace, BernoulliUniform, Hotspot, Incast, OnOffBursty, ValueDist};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const SEED: u64 = 0x5EED_CAFE;

fn slots(full: u64, quick: bool) -> u64 {
    if quick {
        (full / 8).max(16)
    } else {
        full
    }
}

/// Whether a sharded run's report agrees with its sequential reference on
/// every tripwire field the systems suites (S1/S2/S3) compare. Sharding is
/// bit-identical by construction, so this is a tripwire, not a tolerance.
fn reports_agree(a: &cioq_sim::RunReport, b: &cioq_sim::RunReport) -> bool {
    a.benefit == b.benefit
        && a.transmitted == b.transmitted
        && a.transferred == b.transferred
        && a.losses == b.losses
        && a.slots == b.slots
        && a.residual_count == b.residual_count
        && a.fabric_delay == b.fabric_delay
}

/// T1 — headline summary: worst measured ratio per algorithm over the
/// adversarial + stochastic suite, against the theorem bounds.
///
/// Workloads are matched to each theorem's value model: GM / CGU /
/// KR-MaxMatching carry their 3-competitive guarantee on **unit-value**
/// inputs only, so they are measured on the unit suite; PG / CPG /
/// KR-MaxWeight are measured on the weighted suite as well.
pub fn t1_summary(quick: bool) -> Vec<Table> {
    let t = slots(256, quick);
    let m = if quick { 4 } else { 8 };
    let b = if quick { 2 } else { 4 };

    // Unit-value workloads.
    let iq_cfg = SwitchConfig::iq_model(m, b);
    let flood = gm_iq_flood(m, b);
    let cioq_cfg = SwitchConfig::cioq(4, 4, 1);
    let hot = gen_trace(
        &Hotspot::new(0.9, 0.7, 0, ValueDist::Unit),
        &cioq_cfg,
        t,
        SEED + 1,
    );
    let bursty_unit = gen_trace(
        &OnOffBursty::new(0.9, 12.0, ValueDist::Unit),
        &cioq_cfg,
        t,
        SEED,
    );

    // Weighted workloads.
    let wflood = pg_weighted_flood(m, b, 1000);
    let esc = escalation_bait(EscalationParams {
        m,
        b,
        gamma: 2.8,
        phases: if quick { 6 } else { 12 },
    });
    let bursty_zipf = gen_trace(
        &OnOffBursty::new(
            0.9,
            12.0,
            ValueDist::Zipf {
                max: 64,
                exponent: 1.1,
            },
        ),
        &cioq_cfg,
        t,
        SEED,
    );

    let unit_policies = [
        PolicyKind::Gm,
        PolicyKind::KrMaxMatching,
        PolicyKind::Islip(2),
    ];
    let weighted_policies = [
        PolicyKind::pg_default(),
        PolicyKind::KrMaxWeight(cioq_core::params::PG_BETA),
    ];
    let xbar_cfg = SwitchConfig::crossbar(4, 4, 2, 1);
    let xbar_bursty_unit = gen_trace(
        &OnOffBursty::new(0.9, 12.0, ValueDist::Unit),
        &xbar_cfg,
        t,
        SEED,
    );
    let xbar_bursty_zipf = gen_trace(
        &OnOffBursty::new(
            0.9,
            12.0,
            ValueDist::Zipf {
                max: 64,
                exponent: 1.1,
            },
        ),
        &xbar_cfg,
        t,
        SEED,
    );

    struct Point {
        kind: PolicyKind,
        cfg: SwitchConfig,
        trace: Trace,
        workload: &'static str,
    }
    let mut points = Vec::new();
    for &kind in &unit_policies {
        points.push(Point {
            kind,
            cfg: iq_cfg.clone(),
            trace: flood.clone(),
            workload: "flood",
        });
        points.push(Point {
            kind,
            cfg: cioq_cfg.clone(),
            trace: bursty_unit.clone(),
            workload: "bursty-unit",
        });
        points.push(Point {
            kind,
            cfg: cioq_cfg.clone(),
            trace: hot.clone(),
            workload: "hotspot",
        });
    }
    for &kind in &weighted_policies {
        points.push(Point {
            kind,
            cfg: iq_cfg.clone(),
            trace: flood.clone(),
            workload: "flood",
        });
        points.push(Point {
            kind,
            cfg: iq_cfg.clone(),
            trace: wflood.clone(),
            workload: "weighted-flood",
        });
        points.push(Point {
            kind,
            cfg: iq_cfg.clone(),
            trace: esc.clone(),
            workload: "escalation",
        });
        points.push(Point {
            kind,
            cfg: cioq_cfg.clone(),
            trace: bursty_zipf.clone(),
            workload: "bursty-zipf",
        });
        points.push(Point {
            kind,
            cfg: cioq_cfg.clone(),
            trace: hot.clone(),
            workload: "hotspot",
        });
    }
    points.push(Point {
        kind: PolicyKind::Cgu,
        cfg: xbar_cfg.clone(),
        trace: xbar_bursty_unit,
        workload: "bursty-unit",
    });
    points.push(Point {
        kind: PolicyKind::cpg_default(),
        cfg: xbar_cfg.clone(),
        trace: xbar_bursty_zipf,
        workload: "bursty-zipf",
    });
    let cioq_policies: Vec<PolicyKind> = unit_policies
        .iter()
        .chain(&weighted_policies)
        .copied()
        .collect();
    let xbar_policies = [PolicyKind::Cgu, PolicyKind::cpg_default()];

    let rows = parallel_map(&points, |p| {
        let row = measure_ratio(p.kind, &p.cfg, &p.trace, false);
        (p.kind, p.workload, row)
    });

    let mut table = Table::new(
        "T1 — measured worst ratios vs theorem bounds",
        &[
            "policy",
            "theorem",
            "worst measured ratio",
            "worst workload",
            "verdict",
        ],
    );
    for &kind in cioq_policies.iter().chain(&xbar_policies) {
        let worst = rows
            .iter()
            .filter(|(k, _, _)| *k == kind)
            .max_by(|a, b| a.2.ratio.total_cmp(&b.2.ratio))
            .expect("every policy has points");
        let (_, workload, row) = worst;
        let theorem = row
            .theoretical
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "none".into());
        let verdict = if row.within_theorem() {
            "ok"
        } else {
            "VIOLATION"
        };
        table.push(vec![
            row.policy.clone(),
            theorem,
            fmt_ratio(row.ratio, row.exact),
            workload.to_string(),
            verdict.to_string(),
        ]);
    }
    vec![table]
}

/// F3 — GM ratio and throughput vs offered load (Thm 1 at work).
pub fn f3_gm_load(quick: bool) -> Vec<Table> {
    let t = slots(512, quick);
    let n = 8;
    let loads: Vec<f64> = (1..=10).map(|x| x as f64 / 10.0).collect();
    let mut points = Vec::new();
    for &b in &[2usize, 8] {
        for &s in &[1u32, 2] {
            for &load in &loads {
                points.push((b, s, load));
            }
        }
    }
    let rows = parallel_map(&points, |&(b, s, load)| {
        let cfg = SwitchConfig::cioq(n, b, s);
        let trace = gen_trace(
            &BernoulliUniform::new(load, ValueDist::Unit),
            &cfg,
            t,
            SEED ^ (b as u64) ^ ((s as u64) << 8) ^ ((load * 100.0) as u64),
        );
        let row = measure_ratio(PolicyKind::Gm, &cfg, &trace, false);
        let delivered = row.benefit as f64 / trace.len().max(1) as f64;
        (b, s, load, delivered, row)
    });

    let mut table = Table::new(
        "F3 — GM vs offered load (N=8, Bernoulli uniform, unit values)",
        &["B", "speedup", "load", "delivered frac", "ratio vs OPT-UB"],
    );
    for (b, s, load, delivered, row) in rows {
        table.push(vec![
            b.to_string(),
            s.to_string(),
            format!("{load:.1}"),
            format!("{delivered:.3}"),
            fmt_ratio(row.ratio, row.exact),
        ]);
    }
    vec![table]
}

/// F4 — PG's β trade-off (Thm 2): theoretical curve + measured ratios.
pub fn f4_pg_beta(quick: bool) -> Vec<Table> {
    let m = if quick { 3 } else { 6 };
    let b = if quick { 2 } else { 4 };
    let betas = [1.2, 1.5, 2.0, cioq_core::params::PG_BETA, 3.0, 4.0, 6.0];

    let esc = escalation_bait(EscalationParams {
        m,
        b,
        gamma: 3.0,
        phases: if quick { 6 } else { 14 },
    });
    let iq_cfg = SwitchConfig::iq_model(m, b);
    // A β-sensitive regime: shallow output buffers, speedup 2, bimodal
    // incast — the output-queue eligibility threshold `v(g) > β·v(l)`
    // decides whether gold packets displace queued best-effort ones.
    let stress_cfg = SwitchConfig::builder(8, 8)
        .speedup(2)
        .input_capacity(4)
        .output_capacity(2)
        .build()
        .expect("valid");
    // Uniform small values: consecutive value ratios fall between the
    // swept βs, so the eligibility threshold genuinely changes behaviour.
    let stress = gen_trace(
        &Incast::new(4, 2, 0.5, ValueDist::Uniform { max: 8 }),
        &stress_cfg,
        slots(256, quick),
        SEED,
    );

    let points: Vec<f64> = betas.to_vec();
    let rows = parallel_map(&points, |&beta| {
        let esc_row = measure_ratio(PolicyKind::Pg(beta), &iq_cfg, &esc, false);
        let stress_row = measure_ratio(PolicyKind::Pg(beta), &stress_cfg, &stress, false);
        (beta, esc_row, stress_row)
    });

    let mut table = Table::new(
        "F4 — PG beta sweep (theory: ratio(beta) = beta + 2*beta/(beta-1), optimum 1+sqrt(2))",
        &[
            "beta",
            "theory bound",
            "escalation (IQ, exact)",
            "incast uniform (<=)",
            "incast benefit",
        ],
    );
    for (beta, esc_row, stress_row) in rows {
        table.push(vec![
            format!("{beta:.3}"),
            format!("{:.3}", cioq_core::params::pg_ratio(beta)),
            fmt_ratio(esc_row.ratio, esc_row.exact),
            fmt_ratio(stress_row.ratio, stress_row.exact),
            stress_row.benefit.to_string(),
        ]);
    }
    vec![table]
}

/// F5 — throughput/ratio vs speedup ŝ = 1..6 for all algorithms.
pub fn f5_speedup(quick: bool) -> Vec<Table> {
    let t = slots(256, quick);
    let speedups: Vec<u32> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 3, 4, 6]
    };
    let policies = [
        PolicyKind::Gm,
        PolicyKind::pg_default(),
        PolicyKind::KrMaxMatching,
        PolicyKind::Islip(2),
        PolicyKind::Cgu,
        PolicyKind::cpg_default(),
    ];
    let mut points = Vec::new();
    for &s in &speedups {
        for &p in &policies {
            points.push((s, p));
        }
    }
    let rows = parallel_map(&points, |&(s, kind)| {
        // Shallow buffers + full uniform load: the fabric, not the output
        // line, is the bottleneck, so speedup genuinely buys throughput.
        let cfg = if kind.is_crossbar() {
            SwitchConfig::crossbar(8, 2, 1, s)
        } else {
            SwitchConfig::cioq(8, 2, s)
        };
        // Same seed across speedups: every point sees the same arrivals,
        // so the speedup axis is the only thing varying.
        let trace = gen_trace(&BernoulliUniform::new(1.0, ValueDist::Unit), &cfg, t, SEED);
        let row = measure_ratio(kind, &cfg, &trace, false);
        let frac = row.benefit as f64 / trace.len().max(1) as f64;
        (s, kind, frac, row)
    });

    let mut table = Table::new(
        "F5 — delivered fraction and ratio vs speedup (uniform load 1.0, B=2)",
        &["speedup", "policy", "delivered frac", "ratio vs OPT-UB"],
    );
    for (s, kind, frac, row) in rows {
        table.push(vec![
            s.to_string(),
            kind.label(),
            format!("{frac:.3}"),
            fmt_ratio(row.ratio, row.exact),
        ]);
    }
    vec![table]
}

/// F6 — the efficiency claim: per-cycle matching cost, greedy vs maximum.
pub fn f6_matching_cost(quick: bool) -> Vec<Table> {
    let sizes: Vec<usize> = if quick {
        vec![8, 16, 32]
    } else {
        vec![8, 16, 32, 64, 128, 256]
    };
    let reps = if quick { 20 } else { 100 };

    let mut table = Table::new(
        "F6 — scheduling cost per cycle (dense random graphs, microseconds)",
        &[
            "N",
            "edges",
            "greedy (GM)",
            "greedy-w (PG)",
            "Hopcroft-Karp",
            "Hungarian",
            "iSLIP-2",
        ],
    );
    for &n in &sizes {
        let mut rng = SmallRng::seed_from_u64(SEED + n as u64);
        // Dense eligibility: ~50% of crosspoints have backlog.
        let mut g = BipartiteGraph::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if rng.gen::<f64>() < 0.5 {
                    g.add_edge(i, j, rng.gen_range(1..1000));
                }
            }
        }
        let time_us = |f: &mut dyn FnMut()| -> f64 {
            // Warm-up.
            f();
            // detlint: allow(D2) reason="matching-cost table reports wall time; never feeds simulation state"
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_secs_f64() * 1e6 / reps as f64
        };
        let greedy_us = time_us(&mut || {
            std::hint::black_box(greedy_maximal(&g, EdgeOrder::Insertion));
        });
        let greedy_w_us = time_us(&mut || {
            std::hint::black_box(greedy_maximal_weighted(&g));
        });
        let hk_us = time_us(&mut || {
            std::hint::black_box(hopcroft_karp(&g));
        });
        let hungarian_us = if n <= 128 || !quick {
            time_us(&mut || {
                std::hint::black_box(hungarian_max_weight(&g));
            })
        } else {
            f64::NAN
        };
        let mut islip = Islip::new(n, n, 2);
        let islip_us = time_us(&mut || {
            std::hint::black_box(islip.match_cycle(&g));
        });
        table.push(vec![
            n.to_string(),
            g.n_edges().to_string(),
            format!("{greedy_us:.1}"),
            format!("{greedy_w_us:.1}"),
            format!("{hk_us:.1}"),
            format!("{hungarian_us:.1}"),
            format!("{islip_us:.1}"),
        ]);
    }
    vec![table]
}

/// F7 — crossbar buffer size sweep: what the crosspoint buffers buy.
pub fn f7_crossbar_buffer(quick: bool) -> Vec<Table> {
    let t = slots(256, quick);
    let caps: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 3, 4, 6, 8]
    };
    let mut points = Vec::new();
    for &bc in &caps {
        for kind in [PolicyKind::Cgu, PolicyKind::cpg_default()] {
            points.push((bc, kind));
        }
    }
    let rows = parallel_map(&points, |&(bc, kind)| {
        let cfg = SwitchConfig::crossbar(8, 4, bc, 1);
        let trace = gen_trace(
            &Incast::new(
                8,
                2,
                0.4,
                ValueDist::Zipf {
                    max: 16,
                    exponent: 1.0,
                },
            ),
            &cfg,
            t,
            SEED,
        );
        let row = measure_ratio(kind, &cfg, &trace, false);
        (bc, kind, row)
    });
    // Reference: plain CIOQ with the same traffic.
    let cioq_cfg = SwitchConfig::cioq(8, 4, 1);
    let cioq_trace = gen_trace(
        &Incast::new(
            8,
            2,
            0.4,
            ValueDist::Zipf {
                max: 16,
                exponent: 1.0,
            },
        ),
        &cioq_cfg,
        t,
        SEED,
    );
    let gm_row = measure_ratio(PolicyKind::Gm, &cioq_cfg, &cioq_trace, false);
    let pg_row = measure_ratio(PolicyKind::pg_default(), &cioq_cfg, &cioq_trace, false);

    let mut table = Table::new(
        "F7 — crossbar buffer size sweep (incast traffic)",
        &["B_crossbar", "policy", "benefit", "ratio vs OPT-UB"],
    );
    table.push(vec![
        "(cioq)".into(),
        gm_row.policy.clone(),
        gm_row.benefit.to_string(),
        fmt_ratio(gm_row.ratio, gm_row.exact),
    ]);
    table.push(vec![
        "(cioq)".into(),
        pg_row.policy.clone(),
        pg_row.benefit.to_string(),
        fmt_ratio(pg_row.ratio, pg_row.exact),
    ]);
    for (bc, _kind, row) in rows {
        table.push(vec![
            bc.to_string(),
            row.policy.clone(),
            row.benefit.to_string(),
            fmt_ratio(row.ratio, row.exact),
        ]);
    }
    vec![table]
}

/// F8 — the lower-bound constructions: measured ratios approaching the
/// known bounds (2 for greedy unit on IQ; escalation for weighted).
pub fn f8_adversarial(quick: bool) -> Vec<Table> {
    let ms: Vec<usize> = if quick {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 16, 32]
    };
    let b = if quick { 2 } else { 4 };

    let flood_rows = parallel_map(&ms, |&m| {
        let cfg = SwitchConfig::iq_model(m, b);
        let trace = gm_iq_flood(m, b);
        let row = measure_ratio(PolicyKind::Gm, &cfg, &trace, false);
        // Exactness cross-check: flow bound == closed-form OPT.
        let formula = gm_iq_flood_opt_benefit(m, b);
        assert_eq!(
            row.opt_bound, formula,
            "per-output bound must equal the closed-form OPT on IQ floods"
        );
        (m, row)
    });
    let mut flood = Table::new(
        "F8a — oblivious flood vs GM on IQ (exact OPT; theory: ratio = 2 - 1/m)",
        &["m", "B", "measured ratio", "2 - 1/m"],
    );
    for (m, row) in flood_rows {
        flood.push(vec![
            m.to_string(),
            b.to_string(),
            format!("{:.4}", row.ratio),
            format!("{:.4}", 2.0 - 1.0 / m as f64),
        ]);
    }

    // Adaptive adversary against the rotation-hardened GM variant.
    let adaptive_rows = parallel_map(&ms, |&m| {
        let cfg = SwitchConfig::iq_model(m, b);
        let mut adversary = AdaptiveFloodSource::new(m, b, None);
        let mut gm =
            cioq_core::GreedyMatching::with_edge_policy(cioq_core::GmEdgePolicy::RotateByCycle);
        let slots = adversary.horizon_slots();
        let report =
            run_cioq_with_source(&cfg, &mut gm, &mut adversary, slots).expect("adaptive run");
        let trace = adversary.emitted_trace();
        let opt = opt_upper_bound(&cfg, &trace).best();
        let exact = opt_upper_bound_is_exact(&cfg);
        (m, opt as f64 / report.benefit.0.max(1) as f64, exact)
    });
    let mut adaptive = Table::new(
        "F8b — adaptive flood vs GM(rotate) on IQ (exact OPT)",
        &["m", "B", "measured ratio"],
    );
    for (m, ratio, exact) in adaptive_rows {
        adaptive.push(vec![m.to_string(), b.to_string(), fmt_ratio(ratio, exact)]);
    }

    // Weighted flood against PG: the unit lower bound carries over.
    let w = 1000;
    let wflood_rows = parallel_map(&ms, |&m| {
        let cfg = SwitchConfig::iq_model(m, b);
        let trace = pg_weighted_flood(m, b, w);
        let row = measure_ratio(PolicyKind::pg_default(), &cfg, &trace, false);
        assert_eq!(
            row.opt_bound,
            pg_weighted_flood_opt_benefit(m, b, w),
            "per-output bound must equal the closed-form OPT on weighted floods"
        );
        (m, row)
    });
    let mut wflood = Table::new(
        "F8c — weighted flood vs PG on IQ (exact OPT; limit 2 - 1/m as w grows)",
        &["m", "B", "measured ratio", "2 - 1/m"],
    );
    for (m, row) in wflood_rows {
        wflood.push(vec![
            m.to_string(),
            b.to_string(),
            format!("{:.4}", row.ratio),
            format!("{:.4}", 2.0 - 1.0 / m as f64),
        ]);
    }

    // Escalation sweep against PG: PG tracks OPT closely here — measured
    // evidence that its worst case needs adaptive constructions.
    let gammas = [1.5, 2.0, 2.8, 4.0, 8.0];
    let esc_rows = parallel_map(&gammas, |&gamma| {
        let m = if quick { 3 } else { 6 };
        let cfg = SwitchConfig::iq_model(m, b);
        let trace = escalation_bait(EscalationParams {
            m,
            b,
            gamma,
            phases: if quick { 6 } else { 14 },
        });
        let row = measure_ratio(PolicyKind::pg_default(), &cfg, &trace, false);
        (gamma, row)
    });
    let mut esc = Table::new(
        "F8d — geometric escalation vs PG on IQ (exact OPT; PG stays near 1)",
        &["gamma", "measured ratio", "theorem bound"],
    );
    for (gamma, row) in esc_rows {
        esc.push(vec![
            format!("{gamma:.1}"),
            format!("{:.4}", row.ratio),
            format!("{:.3}", row.theoretical.unwrap_or(f64::NAN)),
        ]);
    }
    vec![flood, adaptive, wflood, esc]
}

/// T2 — weighted ratios across value distributions.
pub fn t2_value_distributions(quick: bool) -> Vec<Table> {
    let t = slots(256, quick);
    let dists = [
        ValueDist::Unit,
        ValueDist::Uniform { max: 64 },
        ValueDist::Zipf {
            max: 64,
            exponent: 1.1,
        },
        ValueDist::Bimodal {
            high: 100,
            p_high: 0.1,
        },
    ];
    let loads = [0.5, 0.9];
    let policies = [
        PolicyKind::pg_default(),
        PolicyKind::KrMaxWeight(cioq_core::params::PG_BETA),
        PolicyKind::PgNoPreempt,
        PolicyKind::Gm,
    ];
    let mut points = Vec::new();
    for d in &dists {
        for &load in &loads {
            for &p in &policies {
                points.push((d.clone(), load, p));
            }
        }
    }
    let rows = parallel_map(&points, |(dist, load, kind)| {
        let cfg = SwitchConfig::cioq(4, 4, 1);
        let trace = gen_trace(
            &BernoulliUniform::new(*load, dist.clone()),
            &cfg,
            t,
            SEED ^ ((*load * 10.0) as u64),
        );
        let row = measure_ratio(*kind, &cfg, &trace, false);
        (dist.name(), *load, row)
    });
    let mut table = Table::new(
        "T2 — value-distribution sweep (N=4 CIOQ, ratio vs OPT-UB)",
        &["values", "load", "policy", "benefit", "ratio"],
    );
    for (dist, load, row) in rows {
        table.push(vec![
            dist,
            format!("{load:.1}"),
            row.policy.clone(),
            row.benefit.to_string(),
            fmt_ratio(row.ratio, row.exact),
        ]);
    }
    vec![table]
}

/// T3 — burstiness sweep: throughput/loss under on-off traffic.
pub fn t3_bursty(quick: bool) -> Vec<Table> {
    let t = slots(512, quick);
    let bursts = [1.5, 4.0, 16.0, 64.0];
    let policies = [
        PolicyKind::Gm,
        PolicyKind::pg_default(),
        PolicyKind::KrMaxMatching,
        PolicyKind::Islip(2),
    ];
    let mut points = Vec::new();
    for &mb in &bursts {
        for &p in &policies {
            points.push((mb, p));
        }
    }
    let rows = parallel_map(&points, |&(mean_burst, kind)| {
        let cfg = SwitchConfig::cioq(8, 8, 1);
        let trace = gen_trace(
            &OnOffBursty::new(0.7, mean_burst, ValueDist::Unit),
            &cfg,
            t,
            SEED + mean_burst as u64,
        );
        let report = crate::policies::run_policy(kind, &cfg, &trace).expect("run");
        (mean_burst, kind, report, trace.len())
    });
    let mut table = Table::new(
        "T3 — burstiness sweep (load 0.7, N=8, B=8, unit values)",
        &[
            "mean burst",
            "policy",
            "delivered frac",
            "dropped",
            "mean latency",
        ],
    );
    for (mb, kind, report, offered) in rows {
        table.push(vec![
            format!("{mb:.1}"),
            kind.label(),
            format!("{:.3}", report.transmitted as f64 / offered.max(1) as f64),
            report.losses.total_count().to_string(),
            format!("{:.2}", report.mean_latency()),
        ]);
    }
    vec![table]
}

/// T4 — N×M generalization (conclusion of the paper).
pub fn t4_asymmetric(quick: bool) -> Vec<Table> {
    let t = slots(256, quick);
    let shapes = [(8usize, 4usize), (4, 8), (16, 4), (2, 16)];
    let policies = [PolicyKind::Gm, PolicyKind::pg_default()];
    let mut points = Vec::new();
    for &(n, m) in &shapes {
        for &p in &policies {
            points.push((n, m, p));
        }
    }
    let rows = parallel_map(&points, |&(n, m, kind)| {
        let cfg = SwitchConfig::builder(n, m)
            .input_capacity(4)
            .output_capacity(4)
            .build()
            .expect("valid");
        let trace = gen_trace(
            &BernoulliUniform::new(
                0.8,
                ValueDist::Zipf {
                    max: 16,
                    exponent: 1.0,
                },
            ),
            &cfg,
            t,
            SEED + (n * 100 + m) as u64,
        );
        let row = measure_ratio(kind, &cfg, &trace, false);
        (n, m, row)
    });
    let mut table = Table::new(
        "T4 — asymmetric N x M switches (load 0.8, zipf values)",
        &["N x M", "policy", "benefit", "ratio vs OPT-UB"],
    );
    for (n, m, row) in rows {
        table.push(vec![
            format!("{n}x{m}"),
            row.policy.clone(),
            row.benefit.to_string(),
            fmt_ratio(row.ratio, row.exact),
        ]);
    }
    vec![table]
}

/// T5 — ablations: edge order, preemption, maximal-vs-maximum, α=β.
pub fn t5_ablation(quick: bool) -> Vec<Table> {
    let t = slots(256, quick);
    let cioq_cfg = SwitchConfig::cioq(8, 4, 1);
    let weighted: Trace = gen_trace(
        &OnOffBursty::new(
            0.85,
            10.0,
            ValueDist::Bimodal {
                high: 50,
                p_high: 0.2,
            },
        ),
        &cioq_cfg,
        t,
        SEED,
    );
    let unit: Trace = gen_trace(
        &Hotspot::new(0.9, 0.6, 0, ValueDist::Unit),
        &cioq_cfg,
        t,
        SEED + 1,
    );
    let xbar_cfg = SwitchConfig::crossbar(8, 4, 2, 1);
    let xbar_weighted: Trace = gen_trace(
        &OnOffBursty::new(
            0.85,
            10.0,
            ValueDist::Bimodal {
                high: 50,
                p_high: 0.2,
            },
        ),
        &xbar_cfg,
        t,
        SEED,
    );

    struct Group {
        title: &'static str,
        cfg: SwitchConfig,
        trace: Trace,
        kinds: Vec<PolicyKind>,
    }
    let groups = [
        Group {
            title: "unit CIOQ: edge order + matching strength",
            cfg: cioq_cfg.clone(),
            trace: unit,
            kinds: vec![
                PolicyKind::Gm,
                PolicyKind::GmRotate,
                PolicyKind::KrMaxMatching,
                PolicyKind::Islip(2),
            ],
        },
        Group {
            title: "weighted CIOQ: preemption + matching strength",
            cfg: cioq_cfg.clone(),
            trace: weighted,
            kinds: vec![
                PolicyKind::pg_default(),
                PolicyKind::PgNoPreempt,
                PolicyKind::KrMaxWeight(cioq_core::params::PG_BETA),
                PolicyKind::Gm,
            ],
        },
        Group {
            title: "weighted crossbar: two parameters vs one",
            cfg: xbar_cfg,
            trace: xbar_weighted,
            kinds: vec![
                PolicyKind::cpg_default(),
                PolicyKind::CpgSingleParam,
                PolicyKind::Cgu,
            ],
        },
    ];

    let mut tables = Vec::new();
    for group in groups {
        let rows = parallel_map(&group.kinds, |&kind| {
            measure_ratio(kind, &group.cfg, &group.trace, false)
        });
        let best = rows.iter().map(|r| r.benefit).max().unwrap_or(1).max(1);
        let mut table = Table::new(
            format!("T5 — ablation: {}", group.title),
            &["policy", "benefit", "vs best", "ratio vs OPT-UB"],
        );
        for row in rows {
            table.push(vec![
                row.policy.clone(),
                row.benefit.to_string(),
                format!("{:.3}", row.benefit as f64 / best as f64),
                fmt_ratio(row.ratio, row.exact),
            ]);
        }
        tables.push(table);
    }
    tables
}

/// S1 — the sharded slot engine vs the sequential engine: per policy and
/// shard count, identical results (proof echoed in the table) and the
/// wall-clock cost of each run. Sharding is bit-identical by construction,
/// so the "agrees" column is a tripwire, not a tolerance.
pub fn s1_sharded(quick: bool) -> Vec<Table> {
    use cioq_core::{ShardedCgu, ShardedCpg, ShardedGm, ShardedPg};
    use cioq_sim::{
        run_cioq, run_cioq_sharded, run_crossbar, run_crossbar_sharded, ShardedOptions,
    };

    let t = slots(256, quick);
    let n = if quick { 12 } else { 48 };
    let cioq_cfg = SwitchConfig::cioq(n, 4, 1);
    let xbar_cfg = SwitchConfig::crossbar(n, 4, 2, 1);
    let gen = OnOffBursty::new(
        0.85,
        8.0,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.1,
        },
    );
    let cioq_trace = gen_trace(&gen, &cioq_cfg, t, SEED);
    let xbar_trace = gen_trace(&gen, &xbar_cfg, t, SEED);

    #[derive(Clone, Copy, PartialEq)]
    enum P {
        Gm,
        Pg,
        Cgu,
        Cpg,
    }
    const POLICIES: [P; 4] = [P::Gm, P::Pg, P::Cgu, P::Cpg];

    // The sequential reference is invariant in K: run (and time) it once
    // per policy, then sweep only the sharded runs.
    let references = parallel_map(&POLICIES, |&p| {
        // detlint: allow(D2) reason="speedup column reports wall time; never feeds simulation state"
        let t0 = Instant::now();
        let (label, seq) = match p {
            P::Gm => (
                "GM",
                run_cioq(
                    &cioq_cfg,
                    &mut cioq_core::GreedyMatching::new(),
                    &cioq_trace,
                )
                .expect("seq"),
            ),
            P::Pg => (
                "PG",
                run_cioq(
                    &cioq_cfg,
                    &mut cioq_core::PreemptiveGreedy::new(),
                    &cioq_trace,
                )
                .expect("seq"),
            ),
            P::Cgu => (
                "CGU",
                run_crossbar(
                    &xbar_cfg,
                    &mut cioq_core::CrossbarGreedyUnit::new(),
                    &xbar_trace,
                )
                .expect("seq"),
            ),
            P::Cpg => (
                "CPG",
                run_crossbar(
                    &xbar_cfg,
                    &mut cioq_core::CrossbarPreemptiveGreedy::new(),
                    &xbar_trace,
                )
                .expect("seq"),
            ),
        };
        (label, seq, t0.elapsed().as_secs_f64() * 1e3)
    });

    let mut points = Vec::new();
    for p in POLICIES {
        for k in [1usize, 2, 4] {
            points.push((p, k));
        }
    }
    let rows = parallel_map(&points, |&(p, k)| {
        let opts = ShardedOptions::new(k);
        // detlint: allow(D2) reason="speedup column reports wall time; never feeds simulation state"
        let t1 = Instant::now();
        let sharded = match p {
            P::Gm => run_cioq_sharded(&cioq_cfg, &ShardedGm::new(), &cioq_trace, opts),
            P::Pg => run_cioq_sharded(&cioq_cfg, &ShardedPg::new(), &cioq_trace, opts),
            P::Cgu => run_crossbar_sharded(&xbar_cfg, &ShardedCgu::new(), &xbar_trace, opts),
            P::Cpg => run_crossbar_sharded(&xbar_cfg, &ShardedCpg::new(), &xbar_trace, opts),
        }
        .expect("sharded run");
        let sharded_ms = t1.elapsed().as_secs_f64() * 1e3;
        let reference = POLICIES.iter().position(|&q| q == p).expect("known policy");
        let (label, seq, seq_ms) = &references[reference];
        (*label, k, seq, sharded.report, *seq_ms, sharded_ms)
    });

    let mut table = Table::new(
        format!("S1 — sharded engine vs sequential (N={n}, bursty zipf, load 0.85)"),
        &[
            "policy",
            "K",
            "benefit",
            "transmitted",
            "agrees",
            "seq ms",
            "sharded ms",
        ],
    );
    for (label, k, seq, sharded, seq_ms, sharded_ms) in rows {
        table.push(vec![
            label.to_string(),
            k.to_string(),
            sharded.benefit.0.to_string(),
            sharded.transmitted.to_string(),
            if reports_agree(seq, &sharded) {
                "yes".into()
            } else {
                "DIVERGED".into()
            },
            format!("{seq_ms:.1}"),
            format!("{sharded_ms:.1}"),
        ]);
    }
    vec![table]
}

/// S2 — latency-aware fabric transport: how the paper's guarantees degrade
/// when fabric transfers land `d` slots after dispatch (the multi-chassis
/// regime of Ye–Shen–Panwar), for d ∈ {0, 1, 2, 4, 8} and all four
/// policies.
///
/// Table 1 (drained runs): benefit, delivered fraction, ratio against the
/// *zero-latency* OPT upper bound — so the column shows the combined price
/// of online scheduling plus fabric latency — and mean packet latency. An
/// "agrees" tripwire runs the sharded engine (K ∈ {2, 4}, so shard widths
/// both align and misalign with the port count) through its `DelayLine`
/// transport on every point and checks report equality with the delayed
/// sequential reference.
///
/// Table 2 (steady state, drain off): backlog left in the switch —
/// including packets still in flight — after a fixed arrival window, the
/// buffering the delay forces the fabric to absorb.
pub fn s2_delay(quick: bool) -> Vec<Table> {
    use cioq_core::{ShardedCgu, ShardedCpg, ShardedGm, ShardedPg};
    use cioq_sim::{
        run_cioq_linked, run_cioq_sharded, run_crossbar_linked, run_crossbar_sharded, DelayLine,
        Engine, RunOptions, ShardedOptions, TraceSource,
    };

    let t = slots(384, quick);
    let n = if quick { 8 } else { 16 };
    let cioq_cfg = SwitchConfig::cioq(n, 4, 2);
    let xbar_cfg = SwitchConfig::crossbar(n, 4, 2, 2);
    let gen = OnOffBursty::new(
        0.85,
        8.0,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.1,
        },
    );
    let cioq_trace = gen_trace(&gen, &cioq_cfg, t, SEED);
    let xbar_trace = gen_trace(&gen, &xbar_cfg, t, SEED);
    // The reference OPT is the zero-latency bound: degradation vs d reads
    // directly as "what the fabric latency costs against an ideal fabric".
    let cioq_opt = opt_upper_bound(&cioq_cfg, &cioq_trace).best();
    let xbar_opt = opt_upper_bound(&xbar_cfg, &xbar_trace).best();

    const DELAYS: [u64; 5] = [0, 1, 2, 4, 8];
    #[derive(Clone, Copy)]
    enum P {
        Gm,
        Pg,
        Cgu,
        Cpg,
    }
    const POLICIES: [P; 4] = [P::Gm, P::Pg, P::Cgu, P::Cpg];
    let mut points = Vec::new();
    for &p in &POLICIES {
        for &d in &DELAYS {
            points.push((p, d));
        }
    }

    let rows = parallel_map(&points, |&(p, d)| {
        let link = DelayLine { d };
        let (label, opt, offered, report) = match p {
            P::Gm => (
                "GM",
                cioq_opt,
                cioq_trace.len(),
                run_cioq_linked(
                    &cioq_cfg,
                    &mut cioq_core::GreedyMatching::new(),
                    &cioq_trace,
                    &link,
                )
                .expect("delayed run"),
            ),
            P::Pg => (
                "PG",
                cioq_opt,
                cioq_trace.len(),
                run_cioq_linked(
                    &cioq_cfg,
                    &mut cioq_core::PreemptiveGreedy::new(),
                    &cioq_trace,
                    &link,
                )
                .expect("delayed run"),
            ),
            P::Cgu => (
                "CGU",
                xbar_opt,
                xbar_trace.len(),
                run_crossbar_linked(
                    &xbar_cfg,
                    &mut cioq_core::CrossbarGreedyUnit::new(),
                    &xbar_trace,
                    &link,
                )
                .expect("delayed run"),
            ),
            P::Cpg => (
                "CPG",
                xbar_opt,
                xbar_trace.len(),
                run_crossbar_linked(
                    &xbar_cfg,
                    &mut cioq_core::CrossbarPreemptiveGreedy::new(),
                    &xbar_trace,
                    &link,
                )
                .expect("delayed run"),
            ),
        };
        // Tripwire over k ∈ {2, 4}: k = 2 splits the switch in halves, k = 4
        // exercises uneven shard widths against the delay rings.
        let ok = [2usize, 4].iter().all(|&k| {
            let mut opts = ShardedOptions::new(k).link(&link);
            opts.mode = cioq_sim::ExecMode::Inline;
            let sharded = match p {
                P::Gm => run_cioq_sharded(&cioq_cfg, &ShardedGm::new(), &cioq_trace, opts),
                P::Pg => run_cioq_sharded(&cioq_cfg, &ShardedPg::new(), &cioq_trace, opts),
                P::Cgu => run_crossbar_sharded(&xbar_cfg, &ShardedCgu::new(), &xbar_trace, opts),
                P::Cpg => run_crossbar_sharded(&xbar_cfg, &ShardedCpg::new(), &xbar_trace, opts),
            }
            .expect("sharded delayed run")
            .report;
            reports_agree(&report, &sharded)
        });
        (label, d, opt, offered, report, ok)
    });

    let mut degradation = Table::new(
        format!("S2 — degradation vs fabric latency d (N={n}, bursty zipf, load 0.85, drained)"),
        &[
            "policy",
            "d",
            "benefit",
            "delivered frac",
            "ratio vs OPT-UB(d=0)",
            "mean latency",
            "sharded k=2,4 agrees",
        ],
    );
    for (label, d, opt, offered, report, ok) in &rows {
        degradation.push(vec![
            label.to_string(),
            d.to_string(),
            report.benefit.0.to_string(),
            format!(
                "{:.3}",
                report.transmitted as f64 / (*offered).max(1) as f64
            ),
            format!("{:.3}", *opt as f64 / report.benefit.0.max(1) as f64),
            format!("{:.2}", report.mean_latency()),
            if *ok { "yes".into() } else { "DIVERGED".into() },
        ]);
    }

    // Steady state: fixed arrival window, no drain — the backlog column is
    // everything still buffered (or in flight) when the window closes.
    let backlog_rows = parallel_map(&points, |&(p, d)| {
        let link = DelayLine { d };
        let options = RunOptions {
            slots: Some(t),
            drain: false,
            validate: false,
            ..RunOptions::default()
        }
        .link(&link);
        let (label, report) = match p {
            P::Gm => (
                "GM",
                Engine::new(cioq_cfg.clone(), options)
                    .run_cioq(
                        &mut cioq_core::GreedyMatching::new(),
                        &mut TraceSource::new(&cioq_trace),
                    )
                    .expect("steady-state run"),
            ),
            P::Pg => (
                "PG",
                Engine::new(cioq_cfg.clone(), options)
                    .run_cioq(
                        &mut cioq_core::PreemptiveGreedy::new(),
                        &mut TraceSource::new(&cioq_trace),
                    )
                    .expect("steady-state run"),
            ),
            P::Cgu => (
                "CGU",
                Engine::new(xbar_cfg.clone(), options)
                    .run_crossbar(
                        &mut cioq_core::CrossbarGreedyUnit::new(),
                        &mut TraceSource::new(&xbar_trace),
                    )
                    .expect("steady-state run"),
            ),
            P::Cpg => (
                "CPG",
                Engine::new(xbar_cfg.clone(), options)
                    .run_crossbar(
                        &mut cioq_core::CrossbarPreemptiveGreedy::new(),
                        &mut TraceSource::new(&xbar_trace),
                    )
                    .expect("steady-state run"),
            ),
        };
        (label, d, report)
    });
    let mut backlog = Table::new(
        format!("S2 — steady-state backlog vs d (N={n}, {t} arrival slots, no drain)"),
        &[
            "policy",
            "d",
            "transmitted",
            "backlog (incl. in flight)",
            "dropped",
            "mean latency",
        ],
    );
    for (label, d, report) in &backlog_rows {
        backlog.push(vec![
            label.to_string(),
            d.to_string(),
            report.transmitted.to_string(),
            report.residual_count.to_string(),
            report.losses.total_count().to_string(),
            format!("{:.2}", report.mean_latency()),
        ]);
    }
    vec![degradation, backlog]
}

/// S3 — topology-aware fabric sweep: a two-tier rack model (2 racks,
/// chassis-local intra-rack pairs at latency 0, cross-rack pairs riding
/// `inter` slots of wire) for inter ∈ {0, 1, 2, 4, 8} and all four
/// policies — the heterogeneous counterpart of S2's uniform sweep. The
/// `inter = 0` row degenerates to the paper's immediate fabric, so the
/// column reads directly as "what the cross-rack latency costs".
///
/// Table 1 (drained runs): benefit, delivered fraction, ratio against the
/// zero-latency OPT upper bound, and mean packet latency, with a sharded
/// (K = 2, rack-aligned *and* ring-exercising) agreement tripwire per
/// point: the sharded `DelayMatrix` engine must book the exact totals of
/// the sequential topology-aware reference.
///
/// Table 2 (steady state, drain off): backlog left in the switch —
/// including packets still crossing between racks — after a fixed arrival
/// window.
pub fn s3_topology(quick: bool) -> Vec<Table> {
    use cioq_core::{ShardedCgu, ShardedCpg, ShardedGm, ShardedPg};
    use cioq_model::Topology;
    use cioq_sim::{
        run_cioq_linked, run_cioq_sharded, run_crossbar_linked, run_crossbar_sharded, DelayMatrix,
        Engine, RunOptions, ShardedOptions, TraceSource,
    };

    let t = slots(384, quick);
    let n = if quick { 8 } else { 16 };
    let cioq_cfg = SwitchConfig::cioq(n, 4, 2);
    let xbar_cfg = SwitchConfig::crossbar(n, 4, 2, 2);
    let gen = OnOffBursty::new(
        0.85,
        8.0,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.1,
        },
    );
    let cioq_trace = gen_trace(&gen, &cioq_cfg, t, SEED);
    let xbar_trace = gen_trace(&gen, &xbar_cfg, t, SEED);
    let cioq_opt = opt_upper_bound(&cioq_cfg, &cioq_trace).best();
    let xbar_opt = opt_upper_bound(&xbar_cfg, &xbar_trace).best();

    const INTERS: [u64; 5] = [0, 1, 2, 4, 8];
    const RACKS: usize = 2;
    #[derive(Clone, Copy)]
    enum P {
        Gm,
        Pg,
        Cgu,
        Cpg,
    }
    const POLICIES: [P; 4] = [P::Gm, P::Pg, P::Cgu, P::Cpg];
    let mut points = Vec::new();
    for &p in &POLICIES {
        for &inter in &INTERS {
            points.push((p, inter));
        }
    }

    let link_for = move |inter: u64| {
        DelayMatrix::new(Topology::two_tier(n, n, RACKS, 0, inter).expect("valid two-tier"))
    };

    let rows = parallel_map(&points, |&(p, inter)| {
        let link = link_for(inter);
        let (label, opt, offered, report) = match p {
            P::Gm => (
                "GM",
                cioq_opt,
                cioq_trace.len(),
                run_cioq_linked(
                    &cioq_cfg,
                    &mut cioq_core::GreedyMatching::new(),
                    &cioq_trace,
                    &link,
                )
                .expect("topology run"),
            ),
            P::Pg => (
                "PG",
                cioq_opt,
                cioq_trace.len(),
                run_cioq_linked(
                    &cioq_cfg,
                    &mut cioq_core::PreemptiveGreedy::new(),
                    &cioq_trace,
                    &link,
                )
                .expect("topology run"),
            ),
            P::Cgu => (
                "CGU",
                xbar_opt,
                xbar_trace.len(),
                run_crossbar_linked(
                    &xbar_cfg,
                    &mut cioq_core::CrossbarGreedyUnit::new(),
                    &xbar_trace,
                    &link,
                )
                .expect("topology run"),
            ),
            P::Cpg => (
                "CPG",
                xbar_opt,
                xbar_trace.len(),
                run_crossbar_linked(
                    &xbar_cfg,
                    &mut cioq_core::CrossbarPreemptiveGreedy::new(),
                    &xbar_trace,
                    &link,
                )
                .expect("topology run"),
            ),
        };
        let mut opts = ShardedOptions::new(2).link(&link);
        opts.mode = cioq_sim::ExecMode::Inline;
        let sharded = match p {
            P::Gm => run_cioq_sharded(&cioq_cfg, &ShardedGm::new(), &cioq_trace, opts),
            P::Pg => run_cioq_sharded(&cioq_cfg, &ShardedPg::new(), &cioq_trace, opts),
            P::Cgu => run_crossbar_sharded(&xbar_cfg, &ShardedCgu::new(), &xbar_trace, opts),
            P::Cpg => run_crossbar_sharded(&xbar_cfg, &ShardedCpg::new(), &xbar_trace, opts),
        }
        .expect("sharded topology run")
        .report;
        let ok = reports_agree(&report, &sharded);
        (label, inter, opt, offered, report, ok)
    });

    let mut degradation = Table::new(
        format!(
            "S3 — degradation vs inter-rack delay (N={n}, 2 racks, intra=0, \
             bursty zipf, load 0.85, drained)"
        ),
        &[
            "policy",
            "inter",
            "benefit",
            "delivered frac",
            "ratio vs OPT-UB(d=0)",
            "mean latency",
            "sharded k=2 agrees",
        ],
    );
    for (label, inter, opt, offered, report, ok) in &rows {
        degradation.push(vec![
            label.to_string(),
            inter.to_string(),
            report.benefit.0.to_string(),
            format!(
                "{:.3}",
                report.transmitted as f64 / (*offered).max(1) as f64
            ),
            format!("{:.3}", *opt as f64 / report.benefit.0.max(1) as f64),
            format!("{:.2}", report.mean_latency()),
            if *ok { "yes".into() } else { "DIVERGED".into() },
        ]);
    }

    let backlog_rows = parallel_map(&points, |&(p, inter)| {
        let link = link_for(inter);
        let mut options = RunOptions::default().link(&link);
        options.slots = Some(t);
        options.drain = false;
        options.validate = false;
        let (label, report) = match p {
            P::Gm => (
                "GM",
                Engine::new(cioq_cfg.clone(), options)
                    .run_cioq(
                        &mut cioq_core::GreedyMatching::new(),
                        &mut TraceSource::new(&cioq_trace),
                    )
                    .expect("steady-state run"),
            ),
            P::Pg => (
                "PG",
                Engine::new(cioq_cfg.clone(), options)
                    .run_cioq(
                        &mut cioq_core::PreemptiveGreedy::new(),
                        &mut TraceSource::new(&cioq_trace),
                    )
                    .expect("steady-state run"),
            ),
            P::Cgu => (
                "CGU",
                Engine::new(xbar_cfg.clone(), options)
                    .run_crossbar(
                        &mut cioq_core::CrossbarGreedyUnit::new(),
                        &mut TraceSource::new(&xbar_trace),
                    )
                    .expect("steady-state run"),
            ),
            P::Cpg => (
                "CPG",
                Engine::new(xbar_cfg.clone(), options)
                    .run_crossbar(
                        &mut cioq_core::CrossbarPreemptiveGreedy::new(),
                        &mut TraceSource::new(&xbar_trace),
                    )
                    .expect("steady-state run"),
            ),
        };
        (label, inter, report)
    });
    let mut backlog = Table::new(
        format!(
            "S3 — steady-state backlog vs inter-rack delay (N={n}, 2 racks, \
             {t} arrival slots, no drain)"
        ),
        &[
            "policy",
            "inter",
            "transmitted",
            "backlog (incl. in flight)",
            "dropped",
            "mean latency",
        ],
    );
    for (label, inter, report) in &backlog_rows {
        backlog.push(vec![
            label.to_string(),
            inter.to_string(),
            report.transmitted.to_string(),
            report.residual_count.to_string(),
            report.losses.total_count().to_string(),
            format!("{:.2}", report.mean_latency()),
        ]);
    }
    vec![degradation, backlog]
}

/// The full suite in order, as (id, tables) pairs.
pub fn run_all(quick: bool) -> Vec<(&'static str, Vec<Table>)> {
    vec![
        ("T1", t1_summary(quick)),
        ("F3", f3_gm_load(quick)),
        ("F4", f4_pg_beta(quick)),
        ("F5", f5_speedup(quick)),
        ("F6", f6_matching_cost(quick)),
        ("F7", f7_crossbar_buffer(quick)),
        ("F8", f8_adversarial(quick)),
        ("T2", t2_value_distributions(quick)),
        ("T3", t3_bursty(quick)),
        ("T4", t4_asymmetric(quick)),
        ("T5", t5_ablation(quick)),
        ("S1", s1_sharded(quick)),
        ("S2", s2_delay(quick)),
        ("S3", s3_topology(quick)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full-suite smoke tests live in the workspace integration tests; here
    // just pin the cheapest experiment end to end.
    #[test]
    fn f6_produces_rows() {
        let tables = f6_matching_cost(true);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].len() >= 3);
    }
}
