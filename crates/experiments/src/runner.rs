//! Parallel sweep execution over std scoped threads.
//!
//! One simulation is inherently sequential (slot after slot), but a sweep —
//! many (policy, config, workload) points — is embarrassingly parallel.
//! Workers pull indices from a shared atomic counter so uneven point costs
//! (OPT bounds are much heavier than simulations) balance automatically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override for [`parallel_map`] (0 = automatic).
static SWEEP_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Run `f` with every [`parallel_map`] inside it forced to `n` workers
/// (`n = 1` ⇒ fully sequential). The determinism suite wraps whole
/// experiment functions in this to prove the parallel runner renders
/// byte-identical tables to a single-threaded run. Process-global — meant
/// for tests, not for nesting from concurrent callers. The previous
/// override is restored even if `f` panics (a leaked override would
/// silently force every later sweep in the process onto `n` workers).
pub fn with_sweep_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            SWEEP_THREADS.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(SWEEP_THREADS.swap(n, Ordering::SeqCst));
    f()
}

/// Apply `f` to every item, in parallel, preserving order of results.
/// Thread count defaults to the available parallelism (or the
/// [`with_sweep_threads`] override when one is in force).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n_threads = match SWEEP_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    };
    parallel_map_with_threads(items, f, n_threads)
}

/// [`parallel_map`] with an explicit worker count. `n_threads = 1` runs on
/// the calling thread with no pool at all — the reference execution the
/// determinism suite compares the parallel path against: results are
/// written by item index, so every thread count renders byte-identical
/// tables.
pub fn parallel_map_with_threads<T, R, F>(items: &[T], f: F, n_threads: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n_threads = n_threads.max(1).min(items.len().max(1));
    if n_threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    // detlint: allow(D3) reason="per-item sweep parallelism; results land by index, byte-identity proven by sweep_determinism"
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            // detlint: allow(D3) reason="worker pool for the scope above; see sweep_determinism"
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let r = f(&items[idx]);
                results.lock().expect("sweep worker panicked")[idx] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("sweep worker panicked")
        .into_iter()
        .map(|r| r.expect("all indices processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<u64> = (0..50).collect();
        let reference = parallel_map_with_threads(&items, |&x| x * 3 + 1, 1);
        for threads in [2, 4, 8, 64] {
            assert_eq!(
                parallel_map_with_threads(&items, |&x| x * 3 + 1, threads),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sweep_thread_override_scopes() {
        let items: Vec<u64> = (0..8).collect();
        let out = with_sweep_threads(1, || parallel_map(&items, |&x| x + 1));
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert_eq!(SWEEP_THREADS.load(Ordering::SeqCst), 0, "override cleared");
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |&x| {
            // Simulate uneven cost.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }
}
