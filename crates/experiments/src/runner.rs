//! Parallel sweep execution over std scoped threads.
//!
//! One simulation is inherently sequential (slot after slot), but a sweep —
//! many (policy, config, workload) points — is embarrassingly parallel.
//! Workers pull indices from a shared atomic counter so uneven point costs
//! (OPT bounds are much heavier than simulations) balance automatically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item, in parallel, preserving order of results.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if n_threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let r = f(&items[idx]);
                results.lock().expect("sweep worker panicked")[idx] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("sweep worker panicked")
        .into_iter()
        .map(|r| r.expect("all indices processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |&x| {
            // Simulate uneven cost.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }
}
