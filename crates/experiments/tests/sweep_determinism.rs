//! Determinism of the parallel sweep harness, proven on real `exp_*`
//! suites: a `parallel_map`-driven run renders **byte-identical** tables to
//! a forced single-thread run — the ROADMAP's "parallel experiment runner"
//! item closed with proof, not just wiring.
//!
//! The single #[test] keeps the thread-count override serialized: each
//! suite function runs once under `with_sweep_threads(1)` (pure sequential
//! reference) and once at an explicit worker count, and the rendered bytes
//! must match exactly. Results are written by item index inside
//! `parallel_map`, so scheduling cannot reorder rows; this test is the
//! tripwire that keeps that property true as experiments evolve.

use cioq_experiments::{suite, with_sweep_threads, Table};

fn render_all(tables: &[Table]) -> String {
    tables
        .iter()
        .map(|t| format!("{}\n{}", t.render(), t.to_markdown()))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn parallel_sweeps_render_byte_identical_tables() {
    type Experiment = (&'static str, fn(bool) -> Vec<Table>);
    // The cheapest fully-deterministic suites that exercise parallel_map
    // over heterogeneous point types: CIOQ ratio sweeps (T4), speedup
    // sweeps across both fabrics (F5), and crossbar buffer sweeps (F7).
    // (F6 and S1 print wall-clock columns, so they are exercised by the
    // suite smoke tests instead.)
    let experiments: Vec<Experiment> = vec![
        ("T4", suite::t4_asymmetric),
        ("F5", suite::f5_speedup),
        ("F7", suite::f7_crossbar_buffer),
    ];
    for (id, run) in experiments {
        let sequential = with_sweep_threads(1, || render_all(&run(true)));
        for threads in [2usize, 8] {
            let parallel = with_sweep_threads(threads, || render_all(&run(true)));
            assert_eq!(
                sequential, parallel,
                "{id}: tables diverged between 1 and {threads} sweep threads"
            );
        }
    }
}
