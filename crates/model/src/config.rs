//! Switch configuration: geometry, buffer capacities, speedup, fabric kind.

use crate::{ConfigError, ModelError, Packet};

/// Which switching-fabric architecture is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// Combined Input and Output Queued switch (paper §2): queues at input
    /// ports (`Q_ij`) and output ports (`Q_j`); each scheduling cycle moves a
    /// *matching* of packets from input queues to output queues.
    Cioq,
    /// Buffered crossbar switch (paper §3): additionally one crosspoint queue
    /// `C_ij` per (input, output) pair; each cycle is an input subphase
    /// (`Q_ij → C_ij`, ≤1 per input port) followed by an output subphase
    /// (`C_ij → Q_j`, ≤1 per output port).
    BufferedCrossbar,
}

/// Full configuration of an N×M switch.
///
/// The paper presents N×N switches but notes (§4, Conclusion) that all
/// results generalize to N×M; the simulator supports both, so `n_inputs`
/// and `n_outputs` are independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Number of input ports `N`.
    pub n_inputs: usize,
    /// Number of output ports `M` (paper: also `N`).
    pub n_outputs: usize,
    /// Speedup `ŝ ≥ 1`: scheduling cycles per time slot.
    pub speedup: u32,
    /// Capacity `B(Q_ij)` of every input queue.
    pub input_capacity: usize,
    /// Capacity `B(Q_j)` of every output queue.
    pub output_capacity: usize,
    /// Capacity `B(C_ij)` of every crossbar queue; `None` for plain CIOQ.
    pub crossbar_capacity: Option<usize>,
}

impl SwitchConfig {
    /// Start building a config for an `n × m` switch.
    pub fn builder(n_inputs: usize, n_outputs: usize) -> SwitchConfigBuilder {
        SwitchConfigBuilder {
            n_inputs,
            n_outputs,
            speedup: 1,
            input_capacity: 8,
            output_capacity: 8,
            crossbar_capacity: None,
        }
    }

    /// Convenience: a symmetric N×N CIOQ switch with uniform buffer size `b`.
    pub fn cioq(n: usize, b: usize, speedup: u32) -> Self {
        SwitchConfig::builder(n, n)
            .speedup(speedup)
            .input_capacity(b)
            .output_capacity(b)
            .build()
            .expect("valid cioq config")
    }

    /// Convenience: a symmetric N×N buffered crossbar with uniform buffer
    /// size `b` and crossbar buffer size `bc`.
    pub fn crossbar(n: usize, b: usize, bc: usize, speedup: u32) -> Self {
        SwitchConfig::builder(n, n)
            .speedup(speedup)
            .input_capacity(b)
            .output_capacity(b)
            .crossbar_capacity(bc)
            .build()
            .expect("valid crossbar config")
    }

    /// Convenience: the IQ model of §1.2 — `m` input ports, one output port,
    /// speedup 1, input buffers of size `b`. Output queue capacity 1 keeps
    /// the output side a pure wire (a packet scheduled in slot T is
    /// transmitted in slot T).
    pub fn iq_model(m: usize, b: usize) -> Self {
        SwitchConfig::builder(m, 1)
            .speedup(1)
            .input_capacity(b)
            .output_capacity(1)
            .build()
            .expect("valid IQ config")
    }

    /// The fabric architecture implied by this configuration.
    #[inline]
    pub fn fabric(&self) -> FabricKind {
        if self.crossbar_capacity.is_some() {
            FabricKind::BufferedCrossbar
        } else {
            FabricKind::Cioq
        }
    }

    /// Validate that a packet's ports and value fit this switch.
    pub fn validate_packet(&self, p: &Packet) -> Result<(), ModelError> {
        if p.input.index() >= self.n_inputs {
            return Err(ModelError::PortOutOfRange {
                port: p.input.index(),
                limit: self.n_inputs,
                side: "input",
            });
        }
        if p.output.index() >= self.n_outputs {
            return Err(ModelError::PortOutOfRange {
                port: p.output.index(),
                limit: self.n_outputs,
                side: "output",
            });
        }
        if p.value == 0 {
            return Err(ModelError::ZeroValue);
        }
        Ok(())
    }

    /// Total buffering in the switch, in packets (used for sizing scratch
    /// space and brute-force state bounds).
    pub fn total_buffer_slots(&self) -> usize {
        let input = self.n_inputs * self.n_outputs * self.input_capacity;
        let output = self.n_outputs * self.output_capacity;
        let xbar = self
            .crossbar_capacity
            .map_or(0, |bc| self.n_inputs * self.n_outputs * bc);
        input + output + xbar
    }
}

/// Builder for [`SwitchConfig`], with validation at `build()`.
#[derive(Debug, Clone)]
pub struct SwitchConfigBuilder {
    n_inputs: usize,
    n_outputs: usize,
    speedup: u32,
    input_capacity: usize,
    output_capacity: usize,
    crossbar_capacity: Option<usize>,
}

impl SwitchConfigBuilder {
    /// Set the speedup `ŝ` (scheduling cycles per slot).
    pub fn speedup(mut self, s: u32) -> Self {
        self.speedup = s;
        self
    }

    /// Set `B(Q_ij)` for all input queues.
    pub fn input_capacity(mut self, b: usize) -> Self {
        self.input_capacity = b;
        self
    }

    /// Set `B(Q_j)` for all output queues.
    pub fn output_capacity(mut self, b: usize) -> Self {
        self.output_capacity = b;
        self
    }

    /// Set `B(C_ij)` for all crossbar queues, turning the switch into a
    /// buffered crossbar.
    pub fn crossbar_capacity(mut self, b: usize) -> Self {
        self.crossbar_capacity = Some(b);
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<SwitchConfig, ConfigError> {
        if self.n_inputs == 0 {
            return Err(ConfigError::ZeroPorts { side: "input" });
        }
        if self.n_outputs == 0 {
            return Err(ConfigError::ZeroPorts { side: "output" });
        }
        if self.n_inputs > u16::MAX as usize {
            return Err(ConfigError::TooManyPorts { got: self.n_inputs });
        }
        if self.n_outputs > u16::MAX as usize {
            return Err(ConfigError::TooManyPorts {
                got: self.n_outputs,
            });
        }
        if self.speedup == 0 {
            return Err(ConfigError::ZeroSpeedup);
        }
        if self.input_capacity == 0 {
            return Err(ConfigError::ZeroCapacity { kind: "input" });
        }
        if self.output_capacity == 0 {
            return Err(ConfigError::ZeroCapacity { kind: "output" });
        }
        if let Some(bc) = self.crossbar_capacity {
            if bc == 0 {
                return Err(ConfigError::ZeroCapacity { kind: "crossbar" });
            }
        }
        Ok(SwitchConfig {
            n_inputs: self.n_inputs,
            n_outputs: self.n_outputs,
            speedup: self.speedup,
            input_capacity: self.input_capacity,
            output_capacity: self.output_capacity,
            crossbar_capacity: self.crossbar_capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PacketId, PortId};

    #[test]
    fn builder_validates() {
        assert_eq!(
            SwitchConfig::builder(0, 4).build().unwrap_err(),
            ConfigError::ZeroPorts { side: "input" }
        );
        assert_eq!(
            SwitchConfig::builder(4, 4).speedup(0).build().unwrap_err(),
            ConfigError::ZeroSpeedup
        );
        assert_eq!(
            SwitchConfig::builder(4, 4)
                .input_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroCapacity { kind: "input" }
        );
        assert!(SwitchConfig::builder(4, 4).build().is_ok());
    }

    #[test]
    fn fabric_kind_follows_crossbar_capacity() {
        assert_eq!(SwitchConfig::cioq(4, 8, 1).fabric(), FabricKind::Cioq);
        assert_eq!(
            SwitchConfig::crossbar(4, 8, 2, 1).fabric(),
            FabricKind::BufferedCrossbar
        );
    }

    #[test]
    fn iq_model_shape() {
        let c = SwitchConfig::iq_model(6, 3);
        assert_eq!(c.n_inputs, 6);
        assert_eq!(c.n_outputs, 1);
        assert_eq!(c.speedup, 1);
        assert_eq!(c.input_capacity, 3);
    }

    #[test]
    fn packet_validation() {
        let c = SwitchConfig::cioq(2, 4, 1);
        let good = Packet::new(PacketId(0), 1, 0, PortId(1), PortId(1));
        assert!(c.validate_packet(&good).is_ok());
        let bad = Packet::new(PacketId(1), 1, 0, PortId(2), PortId(0));
        assert!(matches!(
            c.validate_packet(&bad),
            Err(ModelError::PortOutOfRange { side: "input", .. })
        ));
    }

    #[test]
    fn total_buffer_slots_counts_everything() {
        let c = SwitchConfig::crossbar(2, 3, 1, 1);
        // 2*2 input queues of 3 + 2 output queues of 3 + 4 crossbar of 1.
        assert_eq!(c.total_buffer_slots(), 12 + 6 + 4);
    }
}
