//! Packet values and benefit accounting.
//!
//! The paper allows arbitrary positive packet values; we use `u64` so that
//! all benefit arithmetic is exact (sums are accumulated in `u128`). The
//! irrational policy parameters (β = 1+√2, the cubic-root expression for CPG)
//! only ever appear in *comparisons* of the form `v(g) > β · v(l)`, which are
//! evaluated in `f64` — exactness of the accounting is unaffected.

/// The value (weight) of a packet. Unit-value instances use [`UNIT_VALUE`].
pub type Value = u64;

/// Value carried by every packet in the unit-value model (§2.1, §3.1).
pub const UNIT_VALUE: Value = 1;

/// Total benefit of an algorithm on a sequence: the sum of the values of all
/// packets it transmits from output queues. Kept in `u128` so that even
/// pathological instances (billions of max-value packets) cannot overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Benefit(pub u128);

impl Benefit {
    /// Zero benefit.
    pub const ZERO: Benefit = Benefit(0);

    /// Add the value of one transmitted packet.
    #[inline]
    pub fn add(&mut self, v: Value) {
        self.0 += v as u128;
    }

    /// The benefit as `f64` (for ratio reporting only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// `self / other` as `f64`; returns `f64::INFINITY` when `other` is zero
    /// and `self` is non-zero, and 1.0 when both are zero (an empty instance
    /// is served optimally by any algorithm).
    pub fn ratio_over(self, other: Benefit) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.as_f64() / other.as_f64()
        }
    }
}

impl std::ops::Add for Benefit {
    type Output = Benefit;
    fn add(self, rhs: Benefit) -> Benefit {
        Benefit(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Benefit {
    fn add_assign(&mut self, rhs: Benefit) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Benefit {
    fn sum<I: Iterator<Item = Benefit>>(iter: I) -> Benefit {
        iter.fold(Benefit::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Benefit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Compare `lhs > factor * rhs` without losing exactness for moderate values:
/// used by PG / CPG eligibility and preemption thresholds where `factor` is
/// irrational (β, α·β). For values below 2^52 the `f64` product is within one
/// ulp, which is far below the granularity at which the algorithms' behaviour
/// could change for the integer value distributions used in this workspace.
#[inline]
pub fn exceeds_factor(lhs: Value, factor: f64, rhs: Value) -> bool {
    (lhs as f64) > factor * (rhs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benefit_accumulates() {
        let mut b = Benefit::ZERO;
        b.add(3);
        b.add(4);
        assert_eq!(b, Benefit(7));
        assert_eq!((b + Benefit(1)).0, 8);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Benefit(0).ratio_over(Benefit(0)), 1.0);
        assert!(Benefit(5).ratio_over(Benefit(0)).is_infinite());
        assert!((Benefit(6).ratio_over(Benefit(2)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn benefit_sums_over_iterators() {
        let total: Benefit = [Benefit(1), Benefit(2), Benefit(3)].into_iter().sum();
        assert_eq!(total, Benefit(6));
    }

    #[test]
    fn exceeds_factor_strict() {
        // beta = 1 + sqrt(2): 3 > beta * 1 (2.414...), 2 is not.
        let beta = 1.0 + std::f64::consts::SQRT_2;
        assert!(exceeds_factor(3, beta, 1));
        assert!(!exceeds_factor(2, beta, 1));
        // Strictness: equal values with factor 1.0 must not pass.
        assert!(!exceeds_factor(5, 1.0, 5));
    }
}
