//! Slotted time: slots, scheduling cycles, and the three phases of a slot.
//!
//! The paper divides continuous time into unit slots; each slot runs an
//! arrival phase, then `ŝ` scheduling cycles (the *speedup*), then a
//! transmission phase. `T[s]` denotes the `s`-th cycle of slot `T`.

use std::fmt;

/// Index of a time slot (`T` in the paper), starting at 0.
pub type SlotId = u64;

/// One scheduling cycle `T[s]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cycle {
    /// The slot `T` this cycle belongs to.
    pub slot: SlotId,
    /// Cycle index `s` within the slot, `0 .. speedup` (paper: `1 ..= ŝ`).
    pub index: u32,
}

impl Cycle {
    /// First cycle of a slot.
    #[inline]
    pub fn first(slot: SlotId) -> Self {
        Cycle { slot, index: 0 }
    }

    /// Global sequence number of this cycle given the switch speedup,
    /// useful for ordering events across slots.
    #[inline]
    pub fn sequence(&self, speedup: u32) -> u64 {
        self.slot * speedup as u64 + self.index as u64
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Match the paper's `T[s]` notation (1-based s).
        write!(f, "{}[{}]", self.slot, self.index + 1)
    }
}

/// The phase of a slot currently being executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Packets arrive and are accepted or rejected.
    Arrival,
    /// Packets move through the switching fabric (`ŝ` cycles).
    Scheduling,
    /// At most one packet is sent from each output queue.
    Transmission,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Arrival => write!(f, "arrival"),
            Phase::Scheduling => write!(f, "scheduling"),
            Phase::Transmission => write!(f, "transmission"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_sequence_is_global_order() {
        let speedup = 3;
        let mut last = None;
        for slot in 0..4u64 {
            for s in 0..speedup {
                let c = Cycle { slot, index: s };
                let seq = c.sequence(speedup);
                if let Some(prev) = last {
                    assert_eq!(seq, prev + 1);
                }
                last = Some(seq);
            }
        }
    }

    #[test]
    fn cycle_display_matches_paper_notation() {
        let c = Cycle { slot: 5, index: 0 };
        assert_eq!(c.to_string(), "5[1]");
        let c = Cycle { slot: 5, index: 2 };
        assert_eq!(c.to_string(), "5[3]");
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::Arrival.to_string(), "arrival");
        assert_eq!(Phase::Scheduling.to_string(), "scheduling");
        assert_eq!(Phase::Transmission.to_string(), "transmission");
    }
}
