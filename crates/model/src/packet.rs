//! The packet: the unit of work flowing through the switch.

use crate::{PacketId, PortId, SlotId, Value};

/// A fixed-size packet tagged, as in §1.3 of the paper, with its value
/// `v(p)`, arrival time `arr(p)`, input port `in(p)` and output port
/// `out(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Unique id; also the deterministic tie-breaker between equal values.
    pub id: PacketId,
    /// `v(p)` — the packet's value (class of service). Always ≥ 1.
    pub value: Value,
    /// `arr(p)` — the slot in which the packet arrives.
    pub arrival: SlotId,
    /// `in(p)` — the input port through which the packet enters.
    pub input: PortId,
    /// `out(p)` — the output port through which it must leave.
    pub output: PortId,
}

impl Packet {
    /// Construct a packet. Panics (debug) on a zero value: the paper assumes
    /// strictly positive values, and several threshold comparisons
    /// (`v(g) > β·v(l)`) degenerate when zero values are admitted.
    pub fn new(id: PacketId, value: Value, arrival: SlotId, input: PortId, output: PortId) -> Self {
        debug_assert!(value >= 1, "packet values must be >= 1");
        Packet {
            id,
            value,
            arrival,
            input,
            output,
        }
    }

    /// Sort key used by every queue in the workspace: descending value,
    /// ascending id (assumption A3: "ties are broken arbitrarily but
    /// consistently"). Returns a key such that sorting *ascending* by it
    /// yields head-first (greatest value first) order.
    #[inline]
    pub fn queue_key(&self) -> (std::cmp::Reverse<Value>, PacketId) {
        (std::cmp::Reverse(self.value), self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u64, value: Value) -> Packet {
        Packet::new(PacketId(id), value, 0, PortId(0), PortId(0))
    }

    #[test]
    fn queue_key_orders_by_value_desc_then_id_asc() {
        let a = mk(1, 10);
        let b = mk(2, 10);
        let c = mk(3, 5);
        let mut v = [c, b, a];
        v.sort_by_key(|p| p.queue_key());
        assert_eq!(
            v.iter().map(|p| p.id.0).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "higher value first; among equal values lower id first"
        );
    }

    #[test]
    fn packet_fields_roundtrip() {
        let p = Packet::new(PacketId(9), 42, 7, PortId(1), PortId(2));
        assert_eq!(p.id, PacketId(9));
        assert_eq!(p.value, 42);
        assert_eq!(p.arrival, 7);
        assert_eq!(p.input, PortId(1));
        assert_eq!(p.output, PortId(2));
    }
}
