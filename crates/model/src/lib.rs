//! # cioq-model
//!
//! Domain types shared by every crate in the `cioq-switch` workspace:
//! packets, port/queue identifiers, slotted time, packet values, and the
//! switch configuration described in §1.3 of Al-Bawani, Englert, Westermann,
//! *Online Packet Scheduling for CIOQ and Buffered Crossbar Switches*
//! (SPAA 2016 / Algorithmica 2018).
//!
//! The model is deliberately small and dependency-free so that the
//! simulator, the offline-optimum machinery, the traffic generators, and the
//! experiment harness all agree on one vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod ids;
mod packet;
mod time;
mod topology;
mod value;

pub use config::{FabricKind, SwitchConfig, SwitchConfigBuilder};
pub use error::{ConfigError, ModelError};
pub use ids::{PacketId, PortId, QueuePos};
pub use packet::Packet;
pub use time::{Cycle, Phase, SlotId};
pub use topology::Topology;
pub use value::{exceeds_factor, Benefit, Value, UNIT_VALUE};
