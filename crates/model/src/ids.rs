//! Strongly-typed identifiers for ports and packets.

use std::fmt;

/// Index of an input or output port (0-based; the paper uses 1-based
/// `i = 1..N`, `j = 1..N`).
///
/// A `PortId` on its own does not say whether it names an input or an output
/// port; the APIs that consume it make that explicit (`input: PortId,
/// output: PortId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

impl PortId {
    /// The port index as a `usize`, for indexing into per-port tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for PortId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "port index out of range: {v}");
        PortId(v as u16)
    }
}

/// Globally unique packet identifier.
///
/// Ids are assigned in arrival order by the trace builder, which makes them a
/// deterministic tie-breaker: the paper's assumption A3 requires ties between
/// equal-value packets to be broken "arbitrarily but consistently", and every
/// queue in this workspace breaks them by ascending `PacketId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Position of a packet inside a queue (0 = head = greatest value under the
/// sorted-queue discipline of `cioq-queues`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueuePos(pub usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_id_roundtrip() {
        let p = PortId::from(7usize);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "7");
    }

    #[test]
    fn packet_id_orders_by_value() {
        assert!(PacketId(1) < PacketId(2));
        assert_eq!(PacketId(3).to_string(), "#3");
    }

    #[test]
    fn port_id_is_copy_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(PortId(1));
        s.insert(PortId(1));
        assert_eq!(s.len(), 1);
    }
}
