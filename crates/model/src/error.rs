//! Error types for configuration and model-level validation.

use std::fmt;

/// Errors raised while building or validating a [`crate::SwitchConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A port count was zero.
    ZeroPorts {
        /// Which side ("input" / "output") was zero.
        side: &'static str,
    },
    /// The speedup was zero; the paper requires `ŝ ≥ 1`.
    ZeroSpeedup,
    /// A buffer capacity was zero.
    ZeroCapacity {
        /// Which buffer kind ("input" / "output" / "crossbar") was zero.
        kind: &'static str,
    },
    /// Crossbar buffer capacity was supplied for a plain CIOQ switch, or is
    /// missing for a buffered crossbar switch.
    CrossbarMismatch {
        /// Human-readable description of the mismatch.
        detail: &'static str,
    },
    /// Port counts exceed the supported maximum (u16 indices).
    TooManyPorts {
        /// The offending count.
        got: usize,
    },
    /// A topology declared zero racks.
    ZeroRacks,
    /// Rack counts exceed the supported maximum (u16 rack indices).
    TooManyRacks {
        /// The offending count.
        got: usize,
    },
    /// A topology's per-port rack map does not cover its ports.
    RackMapLength {
        /// Which side ("input" / "output") is mis-sized.
        side: &'static str,
        /// Entries supplied.
        got: usize,
        /// Ports to cover.
        want: usize,
    },
    /// A port was assigned to a rack outside the declared rack count.
    RackOutOfRange {
        /// Which side ("input" / "output") the port is on.
        side: &'static str,
        /// The offending rack index.
        rack: usize,
        /// Declared number of racks.
        racks: usize,
    },
    /// A topology's latency matrix is not `racks × racks`.
    LatencyMatrixSize {
        /// Entries supplied.
        got: usize,
        /// Entries required (`racks²`).
        want: usize,
    },
    /// A run was configured with a zero-slot stats window.
    ZeroStatsWindow,
    /// A run was configured with a zero-slot checkpoint cadence.
    ZeroCheckpointCadence,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPorts { side } => write!(f, "{side} port count must be >= 1"),
            ConfigError::ZeroSpeedup => write!(f, "speedup must be >= 1"),
            ConfigError::ZeroCapacity { kind } => {
                write!(f, "{kind} queue capacity must be >= 1")
            }
            ConfigError::CrossbarMismatch { detail } => write!(f, "crossbar config: {detail}"),
            ConfigError::TooManyPorts { got } => {
                write!(f, "port count {got} exceeds the supported maximum of 65535")
            }
            ConfigError::ZeroRacks => write!(f, "topology must have >= 1 rack"),
            ConfigError::TooManyRacks { got } => {
                write!(f, "rack count {got} exceeds the supported maximum of 65535")
            }
            ConfigError::RackMapLength { side, got, want } => {
                write!(f, "{side} rack map has {got} entries, need {want}")
            }
            ConfigError::RackOutOfRange { side, rack, racks } => {
                write!(
                    f,
                    "{side} port assigned to rack {rack}, topology has {racks}"
                )
            }
            ConfigError::LatencyMatrixSize { got, want } => {
                write!(f, "latency matrix has {got} entries, need {want} (racks^2)")
            }
            ConfigError::ZeroStatsWindow => {
                write!(f, "stats window must cover at least one slot")
            }
            ConfigError::ZeroCheckpointCadence => {
                write!(f, "checkpoint cadence must be at least one slot")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Model-level errors (packet validation and similar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A packet referenced a port outside the configured switch.
    PortOutOfRange {
        /// The offending port index.
        port: usize,
        /// Number of configured ports on that side.
        limit: usize,
        /// Which side ("input" / "output").
        side: &'static str,
    },
    /// A packet had value zero.
    ZeroValue,
    /// Arrivals in a trace were not sorted by slot.
    UnsortedTrace {
        /// The slot of the out-of-order packet.
        slot: u64,
        /// The largest slot seen before it.
        seen: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::PortOutOfRange { port, limit, side } => {
                write!(f, "{side} port {port} out of range (switch has {limit})")
            }
            ModelError::ZeroValue => write!(f, "packet value must be >= 1"),
            ModelError::UnsortedTrace { slot, seen } => {
                write!(f, "trace not sorted by slot: saw slot {slot} after {seen}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format() {
        let e = ConfigError::ZeroPorts { side: "input" };
        assert!(e.to_string().contains("input"));
        let e = ModelError::PortOutOfRange {
            port: 9,
            limit: 4,
            side: "output",
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
    }
}
