//! Physical fabric topology: ports grouped into racks (chassis), with a
//! per-(rack, rack) latency matrix.
//!
//! The paper's model assumes every fabric transfer lands in the cycle it is
//! scheduled. PR 4 generalised that to one uniform latency `d`; real
//! multi-chassis fabrics are *heterogeneous* — an intra-rack transfer lands
//! next slot while a cross-rack transfer rides a longer path (the
//! distributed regime of Ye–Shen–Panwar). [`Topology`] is the model side of
//! that generalisation: it assigns every input and output port to a rack
//! and gives the latency, in slots, of the path from any source rack to any
//! destination rack. The simulator's `DelayMatrix` transport
//! (`cioq_sim::transport`) turns a topology into per-pair delay rings.
//!
//! Latency `0` means same-cycle (chassis-local) delivery — the paper's
//! fabric; a topology whose entries are all equal to `d` is behaviourally
//! identical to the uniform delay-line at `d`.

use crate::{ConfigError, PortId, SlotId};

/// Ports grouped into racks plus a per-(source rack, destination rack)
/// latency matrix. Immutable after construction; cheap to clone relative to
/// a run (one allocation per port side plus the `racks × racks` matrix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n_inputs: usize,
    n_outputs: usize,
    racks: usize,
    /// Rack of each input port.
    input_rack: Vec<u16>,
    /// Rack of each output port.
    output_rack: Vec<u16>,
    /// Row-major `racks × racks` latency matrix:
    /// `latency[src_rack * racks + dst_rack]`, in slots.
    latency: Vec<SlotId>,
    /// Cached matrix extremes (never recomputed on the hot path).
    min: SlotId,
    max: SlotId,
}

impl Topology {
    /// A single-rack fabric where every pair sees the same latency `d` —
    /// the topology form of the uniform delay line (`d = 0` is the paper's
    /// immediate fabric).
    pub fn uniform(n_inputs: usize, n_outputs: usize, d: SlotId) -> Self {
        Topology {
            n_inputs,
            n_outputs,
            racks: 1,
            input_rack: vec![0; n_inputs],
            output_rack: vec![0; n_outputs],
            latency: vec![d],
            min: d,
            max: d,
        }
    }

    /// A two-tier fabric: ports split into `racks` contiguous bands (input
    /// port `i` is in rack `⌊i·racks/N⌋`, outputs likewise), intra-rack
    /// pairs at latency `intra`, cross-rack pairs at `inter`.
    pub fn two_tier(
        n_inputs: usize,
        n_outputs: usize,
        racks: usize,
        intra: SlotId,
        inter: SlotId,
    ) -> Result<Self, ConfigError> {
        if racks == 0 {
            return Err(ConfigError::ZeroRacks);
        }
        let bands = |n: usize| {
            let mut rack = vec![0u16; n];
            for s in 0..racks {
                for r in rack
                    .iter_mut()
                    .take((s + 1) * n / racks)
                    .skip(s * n / racks)
                {
                    *r = s as u16;
                }
            }
            rack
        };
        let latency = (0..racks * racks)
            .map(|cell| {
                if cell / racks == cell % racks {
                    intra
                } else {
                    inter
                }
            })
            .collect();
        Topology::explicit(
            n_inputs,
            n_outputs,
            racks,
            bands(n_inputs),
            bands(n_outputs),
            latency,
        )
    }

    /// A fully explicit topology: per-port rack assignments and a row-major
    /// `racks × racks` latency matrix (`matrix[src * racks + dst]`).
    pub fn explicit(
        n_inputs: usize,
        n_outputs: usize,
        racks: usize,
        input_rack: Vec<u16>,
        output_rack: Vec<u16>,
        latency: Vec<SlotId>,
    ) -> Result<Self, ConfigError> {
        if racks == 0 {
            return Err(ConfigError::ZeroRacks);
        }
        if racks > u16::MAX as usize {
            return Err(ConfigError::TooManyRacks { got: racks });
        }
        if input_rack.len() != n_inputs {
            return Err(ConfigError::RackMapLength {
                side: "input",
                got: input_rack.len(),
                want: n_inputs,
            });
        }
        if output_rack.len() != n_outputs {
            return Err(ConfigError::RackMapLength {
                side: "output",
                got: output_rack.len(),
                want: n_outputs,
            });
        }
        if latency.len() != racks * racks {
            return Err(ConfigError::LatencyMatrixSize {
                got: latency.len(),
                want: racks * racks,
            });
        }
        for (side, map) in [("input", &input_rack), ("output", &output_rack)] {
            if let Some(&r) = map.iter().find(|&&r| r as usize >= racks) {
                return Err(ConfigError::RackOutOfRange {
                    side,
                    rack: r as usize,
                    racks,
                });
            }
        }
        let min = latency.iter().copied().min().unwrap_or(0);
        let max = latency.iter().copied().max().unwrap_or(0);
        Ok(Topology {
            n_inputs,
            n_outputs,
            racks,
            input_rack,
            output_rack,
            latency,
            min,
            max,
        })
    }

    /// Number of input ports the topology covers.
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of output ports the topology covers.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of racks.
    #[inline]
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Rack of input port `i`.
    #[inline]
    pub fn input_rack(&self, i: usize) -> usize {
        self.input_rack[i] as usize
    }

    /// Rack of output port `j`.
    #[inline]
    pub fn output_rack(&self, j: usize) -> usize {
        self.output_rack[j] as usize
    }

    /// Latency from source rack `src` to destination rack `dst`, in slots.
    #[inline]
    pub fn rack_latency(&self, src: usize, dst: usize) -> SlotId {
        self.latency[src * self.racks + dst]
    }

    /// Per-pair latency: slots between a transfer's dispatch at input `src`
    /// and its landing at output `dst`. `0` = same-cycle delivery.
    #[inline]
    pub fn delay(&self, src: PortId, dst: PortId) -> SlotId {
        self.rack_latency(
            self.input_rack[src.index()] as usize,
            self.output_rack[dst.index()] as usize,
        )
    }

    /// Smallest per-pair latency in the fabric.
    #[inline]
    pub fn min_delay(&self) -> SlotId {
        self.min
    }

    /// Largest per-pair latency in the fabric (engines size their delay
    /// rings by this).
    #[inline]
    pub fn max_delay(&self) -> SlotId {
        self.max
    }

    /// `Some(d)` iff every pair sees the same latency `d` — the uniform
    /// fabrics, behaviourally identical to `DelayLine { d }`.
    #[inline]
    pub fn uniform_delay(&self) -> Option<SlotId> {
        (self.min == self.max).then_some(self.max)
    }

    /// Short human-readable label for reports and tables.
    pub fn label(&self) -> String {
        match self.uniform_delay() {
            Some(0) => "immediate".to_string(),
            Some(d) => format!("uniform(d={d})"),
            None => format!(
                "topology({} racks, d={}..{})",
                self.racks, self.min, self.max
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_every_pair() {
        let t = Topology::uniform(3, 5, 4);
        assert_eq!(t.racks(), 1);
        assert_eq!(t.delay(PortId(2), PortId(4)), 4);
        assert_eq!(t.uniform_delay(), Some(4));
        assert_eq!(t.label(), "uniform(d=4)");
        assert_eq!(Topology::uniform(2, 2, 0).label(), "immediate");
    }

    #[test]
    fn two_tier_splits_contiguously() {
        let t = Topology::two_tier(8, 8, 2, 1, 5).unwrap();
        assert_eq!(t.input_rack(3), 0);
        assert_eq!(t.input_rack(4), 1);
        assert_eq!(t.delay(PortId(0), PortId(3)), 1, "intra-rack");
        assert_eq!(t.delay(PortId(0), PortId(4)), 5, "cross-rack");
        assert_eq!(t.min_delay(), 1);
        assert_eq!(t.max_delay(), 5);
        assert_eq!(t.uniform_delay(), None);
        assert!(t.label().contains("2 racks"));
    }

    #[test]
    fn two_tier_with_equal_tiers_is_uniform() {
        let t = Topology::two_tier(6, 6, 3, 2, 2).unwrap();
        assert_eq!(t.uniform_delay(), Some(2));
    }

    #[test]
    fn explicit_validates() {
        assert_eq!(
            Topology::explicit(2, 2, 0, vec![], vec![], vec![]),
            Err(ConfigError::ZeroRacks)
        );
        assert_eq!(
            Topology::two_tier(8, 8, 70000, 0, 4),
            Err(ConfigError::TooManyRacks { got: 70000 })
        );
        assert_eq!(
            Topology::explicit(2, 2, 1, vec![0], vec![0, 0], vec![0]),
            Err(ConfigError::RackMapLength {
                side: "input",
                got: 1,
                want: 2
            })
        );
        assert_eq!(
            Topology::explicit(2, 2, 2, vec![0, 1], vec![0, 1], vec![0]),
            Err(ConfigError::LatencyMatrixSize { got: 1, want: 4 })
        );
        assert_eq!(
            Topology::explicit(2, 2, 2, vec![0, 3], vec![0, 1], vec![0; 4]),
            Err(ConfigError::RackOutOfRange {
                side: "input",
                rack: 3,
                racks: 2
            })
        );
        let t = Topology::explicit(2, 3, 2, vec![0, 1], vec![1, 0, 1], vec![0, 7, 3, 1]).unwrap();
        assert_eq!(t.delay(PortId(0), PortId(0)), 7, "rack 0 -> rack 1");
        assert_eq!(t.delay(PortId(1), PortId(1)), 3, "rack 1 -> rack 0");
        assert_eq!(t.min_delay(), 0);
        assert_eq!(t.max_delay(), 7);
    }
}
