//! Successive-shortest-path min-cost flow — the independent oracle for
//! [`crate::profit`].
//!
//! The value-class successive-max-flow method in `profit.rs` is fast but
//! its exactness rests on an argument about the cost structure (profits on
//! source arcs only). This module implements the textbook
//! successive-shortest-path (SPFA-based) min-cost flow with explicit arc
//! costs, making *no* structural assumptions. Property tests build both
//! solvers over the same random networks and assert equal optima —
//! independent-implementation cross-validation of the machinery behind
//! every certified OPT bound in `cioq-opt`.

/// A flow network with per-arc costs.
#[derive(Debug, Clone, Default)]
pub struct CostFlowNetwork {
    arcs: Vec<CostArc>,
    adj: Vec<Vec<usize>>,
}

#[derive(Debug, Clone)]
struct CostArc {
    to: usize,
    cap: u64,
    cost: i64,
}

/// Result of a maximum-profit computation (profit = −cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostFlowResult {
    /// Total profit (only meaningful when some arcs carry negative cost).
    pub profit: u128,
    /// Units of flow routed.
    pub units: u64,
}

impl CostFlowNetwork {
    /// An empty network.
    pub fn new() -> Self {
        CostFlowNetwork::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add `k` nodes, returning the id of the first.
    pub fn add_nodes(&mut self, k: usize) -> usize {
        let first = self.adj.len();
        for _ in 0..k {
            self.adj.push(Vec::new());
        }
        first
    }

    /// Add a directed arc with capacity and per-unit cost.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u64, cost: i64) {
        assert!(from < self.adj.len() && to < self.adj.len());
        let id = self.arcs.len();
        self.arcs.push(CostArc { to, cap, cost });
        self.arcs.push(CostArc {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
    }

    /// Maximize profit (= −total cost) of a flow from `s` to `t`, choosing
    /// the flow amount freely: augments along cheapest residual paths while
    /// they have strictly negative cost. Exact for networks without
    /// negative-cost cycles (SSP maintains that invariant itself).
    pub fn max_profit(&mut self, s: usize, t: usize) -> CostFlowResult {
        let n = self.adj.len();
        let mut profit: i128 = 0;
        let mut units: u64 = 0;
        loop {
            // SPFA shortest path by cost from s (handles negative arcs).
            const INF: i64 = i64::MAX / 4;
            let mut dist = vec![INF; n];
            let mut parent_arc = vec![usize::MAX; n];
            let mut in_queue = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            dist[s] = 0;
            queue.push_back(s);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for &a in &self.adj[u] {
                    let arc = &self.arcs[a];
                    if arc.cap > 0 && du + arc.cost < dist[arc.to] {
                        dist[arc.to] = du + arc.cost;
                        parent_arc[arc.to] = a;
                        if !in_queue[arc.to] {
                            queue.push_back(arc.to);
                            in_queue[arc.to] = true;
                        }
                    }
                }
            }
            if dist[t] >= 0 {
                break; // no profitable augmenting path remains
            }
            // Bottleneck along the parent chain.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let a = parent_arc[v];
                bottleneck = bottleneck.min(self.arcs[a].cap);
                v = self.arcs[a ^ 1].to;
            }
            let mut v = t;
            while v != s {
                let a = parent_arc[v];
                self.arcs[a].cap -= bottleneck;
                self.arcs[a ^ 1].cap += bottleneck;
                v = self.arcs[a ^ 1].to;
            }
            profit += (-(dist[t] as i128)) * bottleneck as i128;
            units += bottleneck;
        }
        CostFlowResult {
            profit: profit.max(0) as u128,
            units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profit::{max_profit_by_classes, merge_classes, ValueClass};
    use crate::FlowNetwork;
    use proptest::prelude::*;

    #[test]
    fn chooses_high_value_on_contention() {
        let mut net = CostFlowNetwork::new();
        let s = net.add_node();
        let buffer = net.add_node();
        let t = net.add_node();
        net.add_arc(buffer, t, 1, 0);
        net.add_arc(s, buffer, 1, -10);
        net.add_arc(s, buffer, 1, -1);
        let r = net.max_profit(s, t);
        assert_eq!(r.units, 1);
        assert_eq!(r.profit, 10);
    }

    #[test]
    fn stops_at_zero_profit_paths() {
        let mut net = CostFlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 5, 0); // zero profit: must not be taken
        net.add_arc(s, t, 2, -3);
        let r = net.max_profit(s, t);
        assert_eq!(r.units, 2);
        assert_eq!(r.profit, 6);
    }

    #[test]
    fn reroutes_through_residuals() {
        // Same fixture as profit.rs: the valuable packet may grab the arc
        // the cheap one needs; augmentation must shift it.
        let mut net = CostFlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let shared = net.add_node();
        let t = net.add_node();
        net.add_arc(a, shared, 1, 0);
        net.add_arc(shared, t, 1, 0);
        net.add_arc(a, t, 1, 0);
        net.add_arc(b, shared, 1, 0);
        net.add_arc(s, a, 1, -9);
        net.add_arc(s, b, 1, -4);
        let r = net.max_profit(s, t);
        assert_eq!(r.units, 2);
        assert_eq!(r.profit, 13);
    }

    /// Build the same random layered network for both solvers and compare.
    /// Layout: source -> entry nodes (one arc per packet, profit = value)
    /// -> random zero-cost inner arcs -> sink.
    fn cross_check(
        n_inner: usize,
        inner_arcs: &[(usize, usize, u64)],
        packets: &[(usize, u64)], // (entry inner node, value)
        sink_caps: &[(usize, u64)],
    ) -> (u128, u128) {
        // Value-class Dinic.
        let mut fnet = FlowNetwork::new();
        let fs = fnet.add_node();
        let ft = fnet.add_node();
        let base = fnet.add_nodes(n_inner);
        for &(u, v, c) in inner_arcs {
            fnet.add_arc(base + u, base + v, c);
        }
        for &(u, c) in sink_caps {
            fnet.add_arc(base + u, ft, c);
        }
        let classes = merge_classes(
            packets
                .iter()
                .map(|&(u, value)| ValueClass {
                    value,
                    entries: vec![(base + u, 1)],
                })
                .collect(),
        );
        let a = max_profit_by_classes(&mut fnet, fs, ft, classes).profit;

        // SSP oracle.
        let mut cnet = CostFlowNetwork::new();
        let cs = cnet.add_node();
        let ct = cnet.add_node();
        let cbase = cnet.add_nodes(n_inner);
        for &(u, v, c) in inner_arcs {
            cnet.add_arc(cbase + u, cbase + v, c, 0);
        }
        for &(u, c) in sink_caps {
            cnet.add_arc(cbase + u, ct, c, 0);
        }
        for &(u, value) in packets {
            cnet.add_arc(cs, cbase + u, 1, -(value as i64));
        }
        let b = cnet.max_profit(cs, ct).profit;
        (a, b)
    }

    #[test]
    fn cross_check_fixture() {
        let (a, b) = cross_check(
            3,
            &[(0, 1, 2), (1, 2, 1), (0, 2, 1)],
            &[(0, 7), (0, 3), (1, 5)],
            &[(2, 2)],
        );
        assert_eq!(a, b);
    }

    proptest! {
        /// The value-class method equals textbook min-cost flow on random
        /// networks — independent cross-validation of the OPT-bound solver.
        #[test]
        fn value_class_equals_ssp(
            n_inner in 2usize..6,
            inner in prop::collection::vec((0usize..6, 0usize..6, 1u64..4), 0..14),
            packets in prop::collection::vec((0usize..6, 1u64..20), 0..8),
            sinks in prop::collection::vec((0usize..6, 1u64..3), 1..4),
        ) {
            let inner: Vec<_> = inner.into_iter()
                .filter(|&(u, v, _)| u < n_inner && v < n_inner && u != v)
                .collect();
            let packets: Vec<_> = packets.into_iter()
                .filter(|&(u, _)| u < n_inner)
                .collect();
            let sinks: Vec<_> = sinks.into_iter()
                .filter(|&(u, _)| u < n_inner)
                .collect();
            let (a, b) = cross_check(n_inner, &inner, &packets, &sinks);
            prop_assert_eq!(a, b, "value-class {} != ssp {}", a, b);
        }
    }
}
