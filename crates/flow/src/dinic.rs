//! Dinic's maximum-flow algorithm with resumable, incremental flows.

/// Node handle in a [`FlowNetwork`].
pub type NodeId = usize;

/// Arc handle returned by [`FlowNetwork::add_arc`]. Internally arcs are
/// stored as forward/backward pairs; the handle names the forward arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArcId(usize);

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: u64,
}

/// A directed flow network with integer capacities.
///
/// Supports the workflow needed by the offline bounds: build the
/// time-expanded skeleton once, then repeatedly add source arcs (one value
/// class at a time) and re-run [`Self::max_flow`]; flow already routed is
/// kept, and only the increment is computed.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
    // Scratch for Dinic (reused across runs).
    level: Vec<u32>,
    iter: Vec<usize>,
    queue: Vec<usize>,
}

impl FlowNetwork {
    /// An empty network.
    pub fn new() -> Self {
        FlowNetwork::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add `k` nodes, returning the id of the first.
    pub fn add_nodes(&mut self, k: usize) -> NodeId {
        let first = self.adj.len();
        for _ in 0..k {
            self.adj.push(Vec::new());
        }
        first
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed arc `from → to` with capacity `cap`.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, cap: u64) -> ArcId {
        assert!(from < self.adj.len() && to < self.adj.len());
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap });
        self.arcs.push(Arc { to: from, cap: 0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        ArcId(id)
    }

    /// Flow currently routed through `arc` (forward direction).
    pub fn flow_on(&self, arc: ArcId) -> u64 {
        // Flow pushed forward equals capacity accumulated on the twin.
        self.arcs[arc.0 + 1].cap
    }

    /// Remaining capacity of `arc`.
    pub fn residual_on(&self, arc: ArcId) -> u64 {
        self.arcs[arc.0].cap
    }

    /// Run (or resume) Dinic from `s` to `t`; returns the **additional**
    /// flow routed by this call. The total max-flow value is the sum of the
    /// returns of all calls since construction.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> u64 {
        assert_ne!(s, t);
        let mut total = 0u64;
        while self.bfs_levels(s, t) {
            self.iter.clear();
            self.iter.resize(self.adj.len(), 0);
            loop {
                let pushed = self.dfs_push(s, t, u64::MAX);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// The set of nodes reachable from `s` in the residual graph — after a
    /// completed [`Self::max_flow`] this is the source side of a minimum
    /// cut, which tests use as an optimality certificate.
    pub fn residual_reachable(&self, s: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &a in &self.adj[u] {
                let arc = &self.arcs[a];
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    stack.push(arc.to);
                }
            }
        }
        seen
    }

    /// Capacity of the cut `(S, V∖S)` counting only *original forward* arcs
    /// — pass the ids you collected from [`Self::add_arc`].
    pub fn cut_capacity(&self, side: &[bool], forward_arcs: &[(ArcId, NodeId, NodeId)]) -> u128 {
        forward_arcs
            .iter()
            .filter(|&&(_, from, to)| side[from] && !side[to])
            .map(|&(a, _, _)| (self.arcs[a.0].cap + self.arcs[a.0 + 1].cap) as u128)
            .sum()
    }

    fn bfs_levels(&mut self, s: NodeId, t: NodeId) -> bool {
        self.level.clear();
        self.level.resize(self.adj.len(), u32::MAX);
        self.queue.clear();
        self.queue.push(s);
        self.level[s] = 0;
        let mut qi = 0;
        while qi < self.queue.len() {
            let u = self.queue[qi];
            qi += 1;
            for &a in &self.adj[u] {
                let arc = &self.arcs[a];
                if arc.cap > 0 && self.level[arc.to] == u32::MAX {
                    self.level[arc.to] = self.level[u] + 1;
                    self.queue.push(arc.to);
                }
            }
        }
        self.level[t] != u32::MAX
    }

    fn dfs_push(&mut self, u: NodeId, t: NodeId, limit: u64) -> u64 {
        if u == t {
            return limit;
        }
        while self.iter[u] < self.adj[u].len() {
            let a = self.adj[u][self.iter[u]];
            let (to, cap) = {
                let arc = &self.arcs[a];
                (arc.to, arc.cap)
            };
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let pushed = self.dfs_push(to, t, limit.min(cap));
                if pushed > 0 {
                    self.arcs[a].cap -= pushed;
                    self.arcs[a ^ 1].cap += pushed;
                    return pushed;
                }
            }
            self.iter[u] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_diamond() {
        let mut f = FlowNetwork::new();
        let s = f.add_node();
        let a = f.add_node();
        let b = f.add_node();
        let t = f.add_node();
        f.add_arc(s, a, 10);
        f.add_arc(s, b, 10);
        f.add_arc(a, b, 1);
        f.add_arc(a, t, 7);
        f.add_arc(b, t, 9);
        assert_eq!(f.max_flow(s, t), 16);
    }

    #[test]
    fn incremental_arcs_resume_flow() {
        let mut f = FlowNetwork::new();
        let s = f.add_node();
        let m = f.add_node();
        let t = f.add_node();
        f.add_arc(s, m, 5);
        f.add_arc(m, t, 3);
        assert_eq!(f.max_flow(s, t), 3);
        // Add parallel capacity and resume: only the increment is returned.
        f.add_arc(m, t, 4);
        assert_eq!(f.max_flow(s, t), 2);
        // Direct bypass.
        f.add_arc(s, t, 100);
        assert_eq!(f.max_flow(s, t), 100);
    }

    #[test]
    fn flow_on_reports_per_arc_flow() {
        let mut f = FlowNetwork::new();
        let s = f.add_node();
        let t = f.add_node();
        let a = f.add_arc(s, t, 4);
        let b = f.add_arc(s, t, 2);
        assert_eq!(f.max_flow(s, t), 6);
        assert_eq!(f.flow_on(a), 4);
        assert_eq!(f.flow_on(b), 2);
        assert_eq!(f.residual_on(a), 0);
    }

    #[test]
    fn disconnected_network_zero_flow() {
        let mut f = FlowNetwork::new();
        let s = f.add_node();
        let t = f.add_node();
        let _orphan = f.add_node();
        assert_eq!(f.max_flow(s, t), 0);
    }

    #[test]
    fn bipartite_matching_reduction() {
        // 3x3 permutation-plus-conflicts graph; max matching is 3.
        let mut f = FlowNetwork::new();
        let s = f.add_node();
        let lefts = f.add_nodes(3);
        let rights = f.add_nodes(3);
        let t = f.add_node();
        for l in 0..3 {
            f.add_arc(s, lefts + l, 1);
            f.add_arc(rights + l, t, 1);
        }
        for (l, r) in [(0, 0), (0, 1), (1, 0), (2, 2), (1, 2)] {
            f.add_arc(lefts + l, rights + r, 1);
        }
        assert_eq!(f.max_flow(s, t), 3);
    }

    /// Build a random network, run max-flow, and verify the min-cut
    /// certificate: flow value equals the capacity of the cut induced by
    /// residual reachability. This certifies optimality on every instance.
    fn verify_certificate(n_nodes: usize, arcs: &[(usize, usize, u64)]) {
        let mut f = FlowNetwork::new();
        f.add_nodes(n_nodes);
        let s = 0;
        let t = n_nodes - 1;
        let mut fw = Vec::new();
        for &(u, v, c) in arcs {
            if u != v {
                let id = f.add_arc(u, v, c);
                fw.push((id, u, v));
            }
        }
        let mut total = 0u128;
        total += f.max_flow(s, t) as u128;
        let side = f.residual_reachable(s);
        assert!(!side[t], "t must be unreachable after max-flow");
        let cut = f.cut_capacity(&side, &fw);
        assert_eq!(total, cut, "max-flow must equal min-cut");
    }

    #[test]
    fn certificate_on_fixed_instance() {
        verify_certificate(
            6,
            &[
                (0, 1, 3),
                (0, 2, 5),
                (1, 3, 2),
                (2, 3, 2),
                (2, 4, 2),
                (3, 5, 9),
                (4, 5, 1),
                (1, 4, 1),
            ],
        );
    }

    proptest! {
        #[test]
        fn certificate_on_random_instances(
            n in 2usize..8,
            arcs in prop::collection::vec((0usize..8, 0usize..8, 0u64..12), 0..24),
        ) {
            let arcs: Vec<_> = arcs.into_iter()
                .filter(|&(u, v, _)| u < n && v < n && u != v)
                .collect();
            verify_certificate(n, &arcs);
        }

        /// Conservation at every interior node: inflow == outflow.
        #[test]
        fn conservation_holds(
            n in 2usize..8,
            arcs in prop::collection::vec((0usize..8, 0usize..8, 0u64..12), 0..24),
        ) {
            let arcs: Vec<_> = arcs.into_iter()
                .filter(|&(u, v, _)| u < n && v < n && u != v)
                .collect();
            let mut f = FlowNetwork::new();
            f.add_nodes(n);
            let mut fw = Vec::new();
            for &(u, v, c) in &arcs {
                fw.push((f.add_arc(u, v, c), u, v));
            }
            f.max_flow(0, n - 1);
            let mut balance = vec![0i128; n];
            for &(a, u, v) in &fw {
                let fl = f.flow_on(a) as i128;
                balance[u] -= fl;
                balance[v] += fl;
            }
            for (node, &bal) in balance.iter().enumerate().take(n - 1).skip(1) {
                prop_assert_eq!(bal, 0, "interior node {} unbalanced", node);
            }
            prop_assert!(balance[0] <= 0 && balance[n - 1] >= 0);
            prop_assert_eq!(-balance[0], balance[n - 1]);
        }
    }
}
