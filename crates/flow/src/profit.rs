//! Maximum-profit flow via descending value classes.
//!
//! The offline bounds of `cioq-opt` need: *maximize Σ v(p)·x_p subject to
//! network feasibility*, where each packet `p` is a potential unit of flow
//! whose profit `v(p)` is earned on its private source arc and every other
//! arc has zero cost.
//!
//! **Why successive max-flow by value class is exact.** This objective is a
//! min-cost flow with costs −v(p) on source arcs and 0 elsewhere. In the
//! successive-shortest-path (SSP) method, every residual s→t path uses
//! exactly one *forward* packet arc and no backward packet arc (a backward
//! packet arc leads back to the source, which cannot lie on a simple s→t
//! path), so a path's cost is −v(p) for the packet p it starts with. SSP
//! therefore always augments through the most valuable packet that still has
//! an augmenting path, and by SSP's monotonicity (shortest-path distances
//! never decrease), once value class v is exhausted it never reopens.
//! Batching all packets of equal value and saturating them with one max-flow
//! run is exactly SSP with ties processed together. Hence: sort distinct
//! values descending, add that class's source arcs, run incremental Dinic,
//! credit `value × (flow gained)`.

use crate::dinic::{FlowNetwork, NodeId};

/// One value class: `value`, and the source arcs `(source, entry_node,
/// capacity)` that become available when the class is opened. For packet
/// bounds the capacity is the number of identical packets entering at that
/// node (usually 1).
#[derive(Debug, Clone)]
pub struct ValueClass {
    /// The packet value of this class.
    pub value: u64,
    /// Arcs `(entry node, capacity)` to add from the source when this class
    /// opens.
    pub entries: Vec<(NodeId, u64)>,
}

/// Result of a maximum-profit computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfitResult {
    /// Total profit Σ value · routed units.
    pub profit: u128,
    /// Total routed units (packets delivered by the relaxed optimum).
    pub units: u64,
}

/// Maximize profit on `net` by opening `classes` in descending value order.
///
/// `classes` may be passed in any order; they are sorted internally.
/// `net` must already contain all zero-cost structure; this function adds
/// the source arcs class by class and resumes Dinic after each.
pub fn max_profit_by_classes(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
    mut classes: Vec<ValueClass>,
) -> ProfitResult {
    classes.sort_by_key(|c| std::cmp::Reverse(c.value));
    debug_assert!(
        classes.windows(2).all(|w| w[0].value != w[1].value),
        "value classes must be distinct; merge duplicate values first"
    );
    let mut profit = 0u128;
    let mut units = 0u64;
    for class in classes {
        for &(node, cap) in &class.entries {
            net.add_arc(source, node, cap);
        }
        let gained = net.max_flow(source, sink);
        profit += class.value as u128 * gained as u128;
        units += gained;
    }
    ProfitResult { profit, units }
}

/// Merge classes sharing the same value (convenience for callers that
/// collect packets one by one).
pub fn merge_classes(mut classes: Vec<ValueClass>) -> Vec<ValueClass> {
    classes.sort_by_key(|c| std::cmp::Reverse(c.value));
    let mut merged: Vec<ValueClass> = Vec::new();
    for c in classes {
        match merged.last_mut() {
            Some(last) if last.value == c.value => last.entries.extend(c.entries),
            _ => merged.push(c),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two packets compete for one buffer slot: the valuable one must win.
    #[test]
    fn chooses_high_value_on_contention() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let buffer = net.add_node();
        let t = net.add_node();
        net.add_arc(buffer, t, 1); // only one unit can get through
        let classes = vec![
            ValueClass {
                value: 10,
                entries: vec![(buffer, 1)],
            },
            ValueClass {
                value: 1,
                entries: vec![(buffer, 1)],
            },
        ];
        let r = max_profit_by_classes(&mut net, s, t, classes);
        assert_eq!(r.units, 1);
        assert_eq!(r.profit, 10);
    }

    /// The greedy-by-value order must correctly *reroute* earlier flow: a
    /// high-value packet takes a shared bottleneck, and a later low-value
    /// packet can still use a disjoint path.
    #[test]
    fn later_classes_use_remaining_paths() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(a, t, 1);
        net.add_arc(a, b, 1);
        net.add_arc(b, t, 1);
        let classes = vec![
            ValueClass {
                value: 5,
                entries: vec![(a, 1)],
            },
            ValueClass {
                value: 3,
                entries: vec![(b, 1)],
            },
        ];
        let r = max_profit_by_classes(&mut net, s, t, classes);
        assert_eq!(r.units, 2);
        assert_eq!(r.profit, 8);
    }

    /// Rerouting where naive greedy *placement* would fail but residual
    /// augmentation succeeds: the high-value packet initially takes the arc
    /// the low-value one needs; augmenting must shift it.
    #[test]
    fn residual_rerouting_preserves_optimality() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node(); // entry of the valuable packet
        let b = net.add_node(); // entry of the cheap packet, reaches t only via a->t path's twin
        let t = net.add_node();
        // a has two ways out; b has one way, through the arc a might grab.
        let shared = net.add_node();
        net.add_arc(a, shared, 1);
        net.add_arc(shared, t, 1);
        net.add_arc(a, t, 1); // private exit for a
        net.add_arc(b, shared, 1);
        let classes = vec![
            ValueClass {
                value: 9,
                entries: vec![(a, 1)],
            },
            ValueClass {
                value: 4,
                entries: vec![(b, 1)],
            },
        ];
        let r = max_profit_by_classes(&mut net, s, t, classes);
        assert_eq!(r.units, 2, "both packets must be deliverable");
        assert_eq!(r.profit, 13);
    }

    #[test]
    fn merge_classes_combines_equal_values() {
        let classes = vec![
            ValueClass {
                value: 2,
                entries: vec![(1, 1)],
            },
            ValueClass {
                value: 5,
                entries: vec![(2, 1)],
            },
            ValueClass {
                value: 2,
                entries: vec![(3, 1)],
            },
        ];
        let merged = merge_classes(classes);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].value, 5);
        assert_eq!(merged[1].value, 2);
        assert_eq!(merged[1].entries.len(), 2);
    }

    #[test]
    fn empty_classes_zero_profit() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let r = max_profit_by_classes(&mut net, s, t, Vec::new());
        assert_eq!(r.profit, 0);
        assert_eq!(r.units, 0);
    }
}
