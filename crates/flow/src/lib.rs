//! # cioq-flow
//!
//! Network-flow solvers backing the offline-optimum machinery of
//! `cioq-opt`:
//!
//! * [`FlowNetwork`] + [`FlowNetwork::max_flow`] — Dinic's algorithm with
//!   **incremental arc addition**: arcs may be added after a max-flow call
//!   and the computation resumed, preserving the flow found so far.
//! * [`profit::max_profit_by_classes`] — maximum-profit flow where profits
//!   sit only on source arcs, solved as successive max-flow over descending
//!   value classes (equivalent to successive-shortest-path min-cost flow for
//!   this cost structure; see the module docs for the argument).
//!
//! Both are exact; `max_flow` can emit a *min-cut certificate* that tests
//! use to verify optimality on every instance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dinic;
mod mcmf;
pub mod profit;

pub use dinic::{ArcId, FlowNetwork, NodeId};
pub use mcmf::{CostFlowNetwork, CostFlowResult};
