//! Pooled-hot-path parity proofs: the zero-allocation slot loop recycles
//! policy scratch, matching buffers, shard mailboxes and fabric calendars
//! across runs — and none of that warm state may leak into decisions.
//!
//! Two properties pin it down, for all four policies, sequential and
//! sharded K ∈ {2, 4}, over Immediate, `DelayLine` and `DelayMatrix`
//! fabrics:
//!
//! * **Warm == cold.** The same policy object is run through three
//!   consecutive fresh engines over the same trace. The first run grows
//!   every pooled buffer from empty; the later runs start with warm,
//!   capacity-grown pools. Reports, final states, decision transcripts
//!   and checkpoint *bytes* must be identical across all three.
//! * **Sharded == sequential, pools and all.** Every repeated sharded run
//!   (same policy object, warm worker pools after run one) must match the
//!   sequential reference transcript, report, final state and checkpoint
//!   bytes — the sharded engine's snapshots are byte-compatible with the
//!   sequential engine's, so a capacity-dependent divergence anywhere in
//!   the pooled paths would surface here as a byte diff.

use cioq_core::{
    CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, ShardedCgu,
    ShardedCpg, ShardedGm, ShardedPg,
};
use cioq_model::{PortId, SlotId, SwitchConfig, Topology};
use cioq_sim::{
    run_cioq_sharded, run_crossbar_sharded, CioqPolicy, CioqShardPolicy, CrossbarPolicy,
    CrossbarRecording, CrossbarShardPolicy, DelayLine, DelayMatrix, Engine, EngineSnapshot,
    ExecMode, FabricLink, Immediate, RecordedCrossbarSchedule, RecordedSchedule, Recording,
    RunOptions, RunOutcome, ShardedOptions, SwitchState, Trace, TraceSource,
};
use cioq_traffic::{gen_trace, OnOffBursty, ValueDist};

const SHARD_COUNTS: [usize; 2] = [2, 4];
const CHECKPOINT_EVERY: SlotId = 8;
/// One cold run plus two warm ones — the second warm run catches pools
/// that only reach their high-water capacity during the first warm pass.
const RUNS: usize = 3;

fn cioq_cfg() -> SwitchConfig {
    SwitchConfig::builder(6, 6)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap()
}

fn bursty_trace(cfg: &SwitchConfig, slots: u64, seed: u64) -> Trace {
    gen_trace(
        &OnOffBursty::new(
            0.85,
            6.0,
            ValueDist::Bimodal {
                high: 40,
                p_high: 0.2,
            },
        ),
        cfg,
        slots,
        seed,
    )
}

fn fabrics() -> Vec<(&'static str, Box<dyn FabricLink>)> {
    vec![
        ("immediate", Box::new(Immediate)),
        ("delay-line d=2", Box::new(DelayLine { d: 2 })),
        (
            "two-tier matrix",
            Box::new(DelayMatrix::new(Topology::two_tier(6, 6, 3, 0, 2).unwrap())),
        ),
    ]
}

fn run_options(link: &dyn FabricLink) -> RunOptions {
    RunOptions {
        checkpoint_every: Some(CHECKPOINT_EVERY),
        ..RunOptions::default()
    }
    .link(link)
}

fn sharded_options(k: usize, link: &dyn FabricLink) -> ShardedOptions {
    let mut opts = ShardedOptions::new(k).link(link);
    opts.mode = ExecMode::Inline;
    opts.record = true;
    opts.capture_final_state = true;
    opts.checkpoint_every = Some(CHECKPOINT_EVERY);
    opts
}

fn assert_states_equal(a: &SwitchState, b: &SwitchState, what: &str) {
    let (va, vb) = (a.view(), b.view());
    for i in 0..va.n_inputs() {
        for j in 0..va.n_outputs() {
            let (input, output) = (PortId::from(i), PortId::from(j));
            assert_eq!(
                va.input_queue(input, output),
                vb.input_queue(input, output),
                "{what}: Q_{i}{j}"
            );
            if va.has_crossbar() {
                assert_eq!(
                    va.crossbar_queue(input, output),
                    vb.crossbar_queue(input, output),
                    "{what}: C_{i}{j}"
                );
            }
        }
    }
    for j in 0..va.n_outputs() {
        let output = PortId::from(j);
        assert_eq!(
            va.output_queue(output),
            vb.output_queue(output),
            "{what}: Q_{j}"
        );
    }
}

fn assert_checkpoints_identical(a: &[EngineSnapshot], b: &[EngineSnapshot], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: checkpoint count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.to_bytes(),
            y.to_bytes(),
            "{what}: checkpoint at slot {}",
            y.slot()
        );
    }
}

/// Run one CIOQ policy object through `RUNS` consecutive fresh engines:
/// the cold first run is the reference, the warm reruns must reproduce it
/// byte for byte. Returns the reference for the sharded comparison.
fn check_seq_cioq_pooled<P: CioqPolicy>(
    make: impl Fn() -> P,
    cfg: &SwitchConfig,
    trace: &Trace,
    link: &dyn FabricLink,
    what: &str,
) -> (RunOutcome, RecordedSchedule) {
    let mut rec = Recording::with_link(make(), link);
    let mut reference: Option<(RunOutcome, RecordedSchedule)> = None;
    for run in 0..RUNS {
        let outcome = Engine::new(cfg.clone(), run_options(link))
            .run_cioq_full(&mut rec, &mut TraceSource::new(trace))
            .expect("trace-fed run");
        let sched = std::mem::take(&mut rec.schedule);
        rec.schedule.fabric_delay = link.max_delay();
        match &reference {
            None => reference = Some((outcome, sched)),
            Some((ref_out, ref_sched)) => {
                let w = format!("{what} warm run {run}");
                assert_eq!(outcome.report, ref_out.report, "{w}: report");
                assert_states_equal(&outcome.final_state, &ref_out.final_state, &w);
                assert_checkpoints_identical(&outcome.checkpoints, &ref_out.checkpoints, &w);
                assert_eq!(sched, *ref_sched, "{w}: decision transcript");
            }
        }
    }
    reference.expect("at least one run")
}

/// The crossbar twin of [`check_seq_cioq_pooled`].
fn check_seq_crossbar_pooled<P: CrossbarPolicy>(
    make: impl Fn() -> P,
    cfg: &SwitchConfig,
    trace: &Trace,
    link: &dyn FabricLink,
    what: &str,
) -> (RunOutcome, RecordedCrossbarSchedule) {
    let mut rec = CrossbarRecording::with_link(make(), link);
    let mut reference: Option<(RunOutcome, RecordedCrossbarSchedule)> = None;
    for run in 0..RUNS {
        let outcome = Engine::new(cfg.clone(), run_options(link))
            .run_crossbar_full(&mut rec, &mut TraceSource::new(trace))
            .expect("trace-fed run");
        let sched = std::mem::take(&mut rec.schedule);
        rec.schedule.fabric_delay = link.max_delay();
        match &reference {
            None => reference = Some((outcome, sched)),
            Some((ref_out, ref_sched)) => {
                let w = format!("{what} warm run {run}");
                assert_eq!(outcome.report, ref_out.report, "{w}: report");
                assert_states_equal(&outcome.final_state, &ref_out.final_state, &w);
                assert_checkpoints_identical(&outcome.checkpoints, &ref_out.checkpoints, &w);
                assert_eq!(sched, *ref_sched, "{w}: decision transcript");
            }
        }
    }
    reference.expect("at least one run")
}

/// Repeated sharded runs of the same policy object vs the sequential
/// reference: transcript, report, final state and checkpoint bytes.
fn check_sharded_cioq_pooled(
    cfg: &SwitchConfig,
    policy: &dyn CioqShardPolicy,
    trace: &Trace,
    link: &dyn FabricLink,
    ref_out: &RunOutcome,
    ref_sched: &RecordedSchedule,
    what: &str,
) {
    for shards in SHARD_COUNTS {
        for run in 0..RUNS {
            let w = format!("{what} K={shards} run {run}");
            let outcome = run_cioq_sharded(cfg, policy, trace, sharded_options(shards, link))
                .unwrap_or_else(|e| panic!("{w}: sharded run failed: {e}"));
            assert_eq!(outcome.report, ref_out.report, "{w}: report");
            let sched = outcome.schedule.as_ref().expect("recording requested");
            assert_eq!(sched, ref_sched, "{w}: decision transcript");
            assert_states_equal(
                outcome.final_state.as_ref().expect("capture requested"),
                &ref_out.final_state,
                &w,
            );
            assert_checkpoints_identical(&outcome.checkpoints, &ref_out.checkpoints, &w);
        }
    }
}

/// The crossbar twin of [`check_sharded_cioq_pooled`].
fn check_sharded_crossbar_pooled(
    cfg: &SwitchConfig,
    policy: &dyn CrossbarShardPolicy,
    trace: &Trace,
    link: &dyn FabricLink,
    ref_out: &RunOutcome,
    ref_sched: &RecordedCrossbarSchedule,
    what: &str,
) {
    for shards in SHARD_COUNTS {
        for run in 0..RUNS {
            let w = format!("{what} K={shards} run {run}");
            let outcome = run_crossbar_sharded(cfg, policy, trace, sharded_options(shards, link))
                .unwrap_or_else(|e| panic!("{w}: sharded run failed: {e}"));
            assert_eq!(outcome.report, ref_out.report, "{w}: report");
            let sched = outcome
                .crossbar_schedule
                .as_ref()
                .expect("recording requested");
            assert_eq!(sched, ref_sched, "{w}: decision transcript");
            assert_states_equal(
                outcome.final_state.as_ref().expect("capture requested"),
                &ref_out.final_state,
                &w,
            );
            assert_checkpoints_identical(&outcome.checkpoints, &ref_out.checkpoints, &w);
        }
    }
}

// ---------------------------------------------------------------------------
// The matrix: 4 policies × sequential + sharded K ∈ {2, 4} × fabrics
// ---------------------------------------------------------------------------

#[test]
fn cioq_pooled_parity() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 96, 0xA110C);
    for (label, link) in fabrics() {
        let (gm_out, gm_sched) = check_seq_cioq_pooled(
            GreedyMatching::new,
            &cfg,
            &trace,
            link.as_ref(),
            &format!("gm {label}"),
        );
        let (pg_out, pg_sched) = check_seq_cioq_pooled(
            PreemptiveGreedy::new,
            &cfg,
            &trace,
            link.as_ref(),
            &format!("pg {label}"),
        );
        check_sharded_cioq_pooled(
            &cfg,
            &ShardedGm::new(),
            &trace,
            link.as_ref(),
            &gm_out,
            &gm_sched,
            &format!("gm {label}"),
        );
        check_sharded_cioq_pooled(
            &cfg,
            &ShardedPg::new(),
            &trace,
            link.as_ref(),
            &pg_out,
            &pg_sched,
            &format!("pg {label}"),
        );
    }
}

#[test]
fn crossbar_pooled_parity() {
    let cfg = SwitchConfig::crossbar(6, 3, 1, 2);
    let trace = bursty_trace(&cfg, 96, 0xA110D);
    for (label, link) in fabrics() {
        let (cgu_out, cgu_sched) = check_seq_crossbar_pooled(
            CrossbarGreedyUnit::new,
            &cfg,
            &trace,
            link.as_ref(),
            &format!("cgu {label}"),
        );
        let (cpg_out, cpg_sched) = check_seq_crossbar_pooled(
            CrossbarPreemptiveGreedy::new,
            &cfg,
            &trace,
            link.as_ref(),
            &format!("cpg {label}"),
        );
        check_sharded_crossbar_pooled(
            &cfg,
            &ShardedCgu::new(),
            &trace,
            link.as_ref(),
            &cgu_out,
            &cgu_sched,
            &format!("cgu {label}"),
        );
        check_sharded_crossbar_pooled(
            &cfg,
            &ShardedCpg::new(),
            &trace,
            link.as_ref(),
            &cpg_out,
            &cpg_sched,
            &format!("cpg {label}"),
        );
    }
}
