//! Fault-plan behaviour on the sequential engine: seeded degradation
//! schedules (latency spikes + link-down windows with bounded retransmit
//! queues) applied under all four policies. Policies must degrade
//! gracefully — no `PolicyError`, exact conservation with drops counted —
//! and the whole faulted run stays deterministic and checkpointable:
//! kill/restore under an active fault plan is byte-identical, including
//! packets sitting in retransmit queues at the checkpoint.

use cioq_core::{CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy};
use cioq_model::{PortId, SlotId, SwitchConfig};
use cioq_sim::{
    CioqPolicy, CrossbarPolicy, DelayLine, Engine, EngineSnapshot, FaultEvent, FaultKind,
    FaultPlan, FaultScope, RunOptions, RunOutcome, RunReport, Trace, TraceSource,
};
use cioq_traffic::{gen_trace, OnOffBursty, ValueDist};

fn cioq_cfg() -> SwitchConfig {
    SwitchConfig::builder(6, 6)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap()
}

fn bursty_trace(cfg: &SwitchConfig, slots: u64, seed: u64) -> Trace {
    gen_trace(
        &OnOffBursty::new(
            0.85,
            6.0,
            ValueDist::Bimodal {
                high: 40,
                p_high: 0.2,
            },
        ),
        cfg,
        slots,
        seed,
    )
}

fn faulted_options(plan: &FaultPlan, d: SlotId, every: Option<SlotId>) -> RunOptions {
    RunOptions {
        faults: Some(plan.clone()),
        checkpoint_every: every,
        ..RunOptions::default()
    }
    .link(&DelayLine { d })
}

fn run_cioq_faulted(
    cfg: &SwitchConfig,
    policy: &mut dyn CioqPolicy,
    trace: &Trace,
    plan: &FaultPlan,
    d: SlotId,
) -> RunReport {
    Engine::new(cfg.clone(), faulted_options(plan, d, None))
        .run_cioq(policy, &mut TraceSource::new(trace))
        .expect("faulted run must degrade gracefully, not error")
}

fn run_crossbar_faulted(
    cfg: &SwitchConfig,
    policy: &mut dyn CrossbarPolicy,
    trace: &Trace,
    plan: &FaultPlan,
    d: SlotId,
) -> RunReport {
    Engine::new(cfg.clone(), faulted_options(plan, d, None))
        .run_crossbar(policy, &mut TraceSource::new(trace))
        .expect("faulted run must degrade gracefully, not error")
}

// ---------------------------------------------------------------------------
// Graceful degradation under seeded plans, all four policies
// ---------------------------------------------------------------------------

/// A sweep of seeded fault plans over every policy: every run completes
/// (finite fault windows ⇒ drain terminates), conservation is exact with
/// drops in the books, and the sweep as a whole exercises both failure
/// modes (some packets dropped, some retransmitted).
#[test]
fn seeded_plans_degrade_gracefully() {
    let cfg = cioq_cfg();
    let xcfg = SwitchConfig::crossbar(6, 3, 1, 2);
    let trace = bursty_trace(&cfg, 48, 0xFA);
    let xtrace = bursty_trace(&xcfg, 48, 0xFB);

    let mut total_dropped = 0u64;
    let mut total_retransmitted = 0u64;
    for seed in 0..6u64 {
        let plan = FaultPlan::seeded(seed, 6, 6, 48, 10);
        for d in [0u64, 2] {
            let reports = [
                run_cioq_faulted(&cfg, &mut GreedyMatching::new(), &trace, &plan, d),
                run_cioq_faulted(&cfg, &mut PreemptiveGreedy::new(), &trace, &plan, d),
                run_crossbar_faulted(&xcfg, &mut CrossbarGreedyUnit::new(), &xtrace, &plan, d),
                run_crossbar_faulted(
                    &xcfg,
                    &mut CrossbarPreemptiveGreedy::new(),
                    &xtrace,
                    &plan,
                    d,
                ),
            ];
            for r in &reports {
                r.check_conservation()
                    .unwrap_or_else(|e| panic!("seed={seed} d={d} {}: {e}", r.policy));
                assert_eq!(r.residual_count, 0, "drained run leaves nothing behind");
                total_dropped += r.losses.dropped;
                total_retransmitted += r.retransmitted;
            }
        }
    }
    assert!(
        total_dropped > 0,
        "the seeded sweep must exercise fault drops"
    );
    assert!(
        total_retransmitted > 0,
        "the seeded sweep must exercise retransmission"
    );
}

/// Same plan + same trace + same policy ⇒ bit-identical faulted runs.
#[test]
fn faulted_runs_are_reproducible() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xFC);
    let plan = FaultPlan::seeded(7, 6, 6, 48, 10);
    let a = run_cioq_faulted(&cfg, &mut PreemptiveGreedy::new(), &trace, &plan, 1);
    let b = run_cioq_faulted(&cfg, &mut PreemptiveGreedy::new(), &trace, &plan, 1);
    assert_eq!(a, b, "faulted runs replay bit-identically");
}

// ---------------------------------------------------------------------------
// Deterministic micro-scenarios: hold/retransmit and overflow-drop
// ---------------------------------------------------------------------------

/// A link-down window with room in the retransmit queue: dispatches are
/// held, nothing is dropped, and every held packet is re-dispatched and
/// counted when the window closes.
#[test]
fn link_down_holds_then_retransmits() {
    let cfg = SwitchConfig::cioq(2, 4, 1);
    let trace = Trace::from_tuples([
        (0, PortId(0), PortId(0), 10),
        (1, PortId(0), PortId(0), 20),
        (2, PortId(0), PortId(0), 30),
    ]);
    let plan = FaultPlan::new(vec![FaultEvent {
        start: 0,
        end: 6,
        scope: FaultScope::Pair(0, 0),
        kind: FaultKind::LinkDown { retransmit_cap: 8 },
    }]);
    let report = run_cioq_faulted(&cfg, &mut GreedyMatching::new(), &trace, &plan, 0);
    report.check_conservation().expect("conservation");
    assert_eq!(report.losses.dropped, 0, "cap 8 holds everything");
    assert_eq!(
        report.retransmitted, 3,
        "all held packets re-dispatch when the window closes"
    );
    assert_eq!(report.transmitted, 3, "and still reach the line");
}

/// The same window with a zero retransmit cap: every dispatch into the
/// dead link is dropped, counted, and conservation still balances.
#[test]
fn link_down_with_zero_cap_drops() {
    let cfg = SwitchConfig::cioq(2, 4, 1);
    let trace = Trace::from_tuples([
        (0, PortId(0), PortId(0), 10),
        (1, PortId(0), PortId(0), 20),
        (2, PortId(0), PortId(0), 30),
    ]);
    let plan = FaultPlan::new(vec![FaultEvent {
        start: 0,
        end: 6,
        scope: FaultScope::Pair(0, 0),
        kind: FaultKind::LinkDown { retransmit_cap: 0 },
    }]);
    let report = run_cioq_faulted(&cfg, &mut GreedyMatching::new(), &trace, &plan, 0);
    report.check_conservation().expect("conservation");
    assert!(report.losses.dropped > 0, "zero cap drops dispatches");
    assert_eq!(report.retransmitted, 0, "nothing survives to retransmit");
    assert!(
        report.losses.dropped_value > 0,
        "dropped value is accounted"
    );
}

/// A latency spike stretches delivery but the transport loses nothing:
/// no fault drops, exact conservation, and the drain visibly runs past
/// the clean run's end. (Transmitted counts may legitimately differ —
/// delayed landings change the occupancy the policy schedules against.)
#[test]
fn latency_spike_drops_nothing() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 32, 0xFD);
    let plan = FaultPlan::new(vec![FaultEvent {
        start: 0,
        end: 40,
        scope: FaultScope::All,
        kind: FaultKind::LatencySpike { extra: 3 },
    }]);
    let clean = Engine::new(cfg.clone(), RunOptions::default())
        .run_cioq(&mut GreedyMatching::new(), &mut TraceSource::new(&trace))
        .expect("clean run");
    let spiked = run_cioq_faulted(&cfg, &mut GreedyMatching::new(), &trace, &plan, 0);
    spiked.check_conservation().expect("conservation");
    assert_eq!(spiked.losses.dropped, 0, "spikes never drop");
    assert!(spiked.transmitted > 0, "traffic still flows");
    assert!(
        spiked.slots > clean.slots,
        "a +3 spike on every pair stretches the drain ({} vs {})",
        spiked.slots,
        clean.slots
    );
}

// ---------------------------------------------------------------------------
// Kill/restore under an active fault plan
// ---------------------------------------------------------------------------

fn faulted_full_run(
    cfg: &SwitchConfig,
    policy: &mut dyn CioqPolicy,
    trace: &Trace,
    plan: &FaultPlan,
    d: SlotId,
    resume: Option<&EngineSnapshot>,
) -> RunOutcome {
    let options = faulted_options(plan, d, Some(6));
    let engine = match resume {
        Some(snap) => Engine::restore(snap, options).expect("restore under fault plan"),
        None => Engine::new(cfg.clone(), options),
    };
    let mut source = match resume {
        Some(snap) => TraceSource::resume_at(trace, snap.slot()),
        None => TraceSource::new(trace),
    };
    engine
        .run_cioq_full(policy, &mut source)
        .expect("faulted run")
}

/// The headline robustness composition: checkpoints taken *during* fault
/// windows (held retransmit queues and spiked in-flight packets in the
/// snapshot) restore into a byte-identical remainder. Every checkpoint of
/// the run is used as a kill point.
#[test]
fn kill_restore_under_faults_is_byte_identical() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xFE);
    // Long all-pairs windows guarantee some checkpoint lands mid-fault.
    let mut events = FaultPlan::seeded(11, 6, 6, 48, 8).events().to_vec();
    events.push(FaultEvent {
        start: 4,
        end: 16,
        scope: FaultScope::Input(0),
        kind: FaultKind::LinkDown { retransmit_cap: 4 },
    });
    let plan = FaultPlan::new(events);
    for d in [0u64, 1] {
        let full = faulted_full_run(&cfg, &mut PreemptiveGreedy::new(), &trace, &plan, d, None);
        assert!(
            full.checkpoints.len() >= 2,
            "d={d}: cadence yields kill points"
        );
        for snap in &full.checkpoints {
            let k = snap.slot();
            let decoded = EngineSnapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
            let resumed = faulted_full_run(
                &cfg,
                &mut PreemptiveGreedy::new(),
                &trace,
                &plan,
                d,
                Some(&decoded),
            );
            assert_eq!(resumed.report, full.report, "d={d}: report after k={k}");
            for (r, f) in resumed
                .checkpoints
                .iter()
                .zip(full.checkpoints.iter().filter(|c| c.slot() >= k))
            {
                assert_eq!(
                    r.to_bytes(),
                    f.to_bytes(),
                    "d={d}: checkpoint at slot {} after resume from {k}",
                    f.slot()
                );
            }
        }
    }
}

/// A snapshot holding retransmit-queued packets refuses to restore
/// without a fault plan: the held packets would have nowhere to live.
#[test]
fn held_packet_snapshot_requires_a_plan() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xFE);
    let plan = FaultPlan::new(vec![FaultEvent {
        start: 0,
        end: 24,
        scope: FaultScope::All,
        kind: FaultKind::LinkDown { retransmit_cap: 64 },
    }]);
    let full = faulted_full_run(&cfg, &mut PreemptiveGreedy::new(), &trace, &plan, 0, None);
    let mid_window = full
        .checkpoints
        .iter()
        .find(|c| c.slot() < 24)
        .expect("a checkpoint inside the down window");
    let err = Engine::restore(mid_window, RunOptions::default());
    assert!(
        err.is_err(),
        "restoring held packets without a fault plan must fail"
    );
}
