//! Crash-recovery proofs: checkpoint a run at slot `k`, throw the engine
//! away, restore from the snapshot *bytes*, and finish the run — the
//! remaining decision transcript, the final report, the final switch
//! state and every later checkpoint must be byte-identical to the
//! uninterrupted run. Covered for all four policies, sequential and
//! sharded K ∈ {2, 4}, over Immediate, `DelayLine` and `DelayMatrix`
//! fabrics.
//!
//! Also proven here: sequential and sharded checkpoints of the same run
//! are byte-identical (so either engine can restore the other's), an
//! immediate re-checkpoint after restore reproduces the snapshot bytes
//! (restore is lossless and idempotent), and the windowed-stats option
//! survives a sequential kill/restore.

use cioq_core::{
    CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, ShardedCgu,
    ShardedCpg, ShardedGm, ShardedPg,
};
use cioq_model::{PortId, SlotId, SwitchConfig, Topology};
use cioq_sim::{
    run_cioq_sharded, run_crossbar_sharded, CioqPolicy, CioqShardPolicy, CrossbarPolicy,
    CrossbarRecording, CrossbarShardPolicy, DelayLine, DelayMatrix, Engine, EngineSnapshot,
    ExecMode, FabricLink, Immediate, RecordedCrossbarSchedule, RecordedSchedule, Recording,
    RunOptions, RunOutcome, ShardedOptions, ShardedOutcome, SwitchState, Trace, TraceSource,
};
use cioq_traffic::{gen_trace, OnOffBursty, ValueDist};

const SHARD_COUNTS: [usize; 2] = [2, 4];
const CHECKPOINT_EVERY: SlotId = 8;

fn assert_states_equal(a: &SwitchState, b: &SwitchState, what: &str) {
    let (va, vb) = (a.view(), b.view());
    for i in 0..va.n_inputs() {
        for j in 0..va.n_outputs() {
            let (input, output) = (PortId::from(i), PortId::from(j));
            assert_eq!(
                va.input_queue(input, output),
                vb.input_queue(input, output),
                "{what}: Q_{i}{j}"
            );
            if va.has_crossbar() {
                assert_eq!(
                    va.crossbar_queue(input, output),
                    vb.crossbar_queue(input, output),
                    "{what}: C_{i}{j}"
                );
            }
        }
    }
    for j in 0..va.n_outputs() {
        let output = PortId::from(j);
        assert_eq!(
            va.output_queue(output),
            vb.output_queue(output),
            "{what}: Q_{j}"
        );
    }
}

fn run_options(link: &dyn FabricLink) -> RunOptions {
    RunOptions {
        checkpoint_every: Some(CHECKPOINT_EVERY),
        ..RunOptions::default()
    }
    .link(link)
}

/// Sequential CIOQ run (fresh or resumed from a checkpoint), recording
/// the decision transcript.
fn seq_cioq_run(
    cfg: &SwitchConfig,
    mut policy: Box<dyn CioqPolicy>,
    trace: &Trace,
    link: &dyn FabricLink,
    resume: Option<&EngineSnapshot>,
) -> (RunOutcome, RecordedSchedule) {
    struct Boxed<'a>(&'a mut dyn CioqPolicy);
    impl CioqPolicy for Boxed<'_> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            p: &cioq_model::Packet,
        ) -> cioq_sim::Admission {
            self.0.admit(view, p)
        }
        fn schedule(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::Transfer>,
        ) {
            self.0.schedule(view, cycle, out)
        }
        fn transmit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            output: PortId,
        ) -> cioq_sim::TransmitChoice {
            self.0.transmit(view, output)
        }
    }
    let engine = match resume {
        Some(snap) => Engine::restore(snap, run_options(link)).expect("restore own checkpoint"),
        None => Engine::new(cfg.clone(), run_options(link)),
    };
    let mut rec = Recording::with_link(Boxed(&mut *policy), link);
    let mut source = match resume {
        Some(snap) => TraceSource::resume_at(trace, snap.slot()),
        None => TraceSource::new(trace),
    };
    let outcome = engine
        .run_cioq_full(&mut rec, &mut source)
        .expect("sequential run");
    (outcome, rec.into_schedule())
}

fn seq_crossbar_run(
    cfg: &SwitchConfig,
    mut policy: Box<dyn CrossbarPolicy>,
    trace: &Trace,
    link: &dyn FabricLink,
    resume: Option<&EngineSnapshot>,
) -> (RunOutcome, RecordedCrossbarSchedule) {
    struct Boxed<'a>(&'a mut dyn CrossbarPolicy);
    impl CrossbarPolicy for Boxed<'_> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            p: &cioq_model::Packet,
        ) -> cioq_sim::Admission {
            self.0.admit(view, p)
        }
        fn schedule_input(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::InputTransfer>,
        ) {
            self.0.schedule_input(view, cycle, out)
        }
        fn schedule_output(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::OutputTransfer>,
        ) {
            self.0.schedule_output(view, cycle, out)
        }
        fn transmit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            output: PortId,
        ) -> cioq_sim::TransmitChoice {
            self.0.transmit(view, output)
        }
    }
    let engine = match resume {
        Some(snap) => Engine::restore(snap, run_options(link)).expect("restore own checkpoint"),
        None => Engine::new(cfg.clone(), run_options(link)),
    };
    let mut rec = CrossbarRecording::with_link(Boxed(&mut *policy), link);
    let mut source = match resume {
        Some(snap) => TraceSource::resume_at(trace, snap.slot()),
        None => TraceSource::new(trace),
    };
    let outcome = engine
        .run_crossbar_full(&mut rec, &mut source)
        .expect("sequential run");
    (outcome, rec.into_schedule())
}

fn sharded_options(
    k: usize,
    link: &dyn FabricLink,
    resume: Option<EngineSnapshot>,
) -> ShardedOptions {
    let mut opts = ShardedOptions::new(k).link(link);
    opts.mode = ExecMode::Inline;
    opts.record = true;
    opts.capture_final_state = true;
    opts.checkpoint_every = Some(CHECKPOINT_EVERY);
    opts.resume_from = resume;
    opts
}

/// Checkpoints of the resumed run must be byte-identical to the
/// uninterrupted run's from slot `k` on. (The resumed run's first
/// checkpoint fires at its own start slot `k`, re-capturing the restore
/// point — so matching it against the full run's slot-`k` checkpoint is
/// also the proof that restore + re-checkpoint is lossless.)
fn assert_checkpoint_tail(
    resumed: &[EngineSnapshot],
    full: &[EngineSnapshot],
    k: SlotId,
    what: &str,
) {
    let later: Vec<&EngineSnapshot> = full.iter().filter(|c| c.slot() >= k).collect();
    assert_eq!(
        resumed.len(),
        later.len(),
        "{what}: later checkpoint count after resume from slot {k}"
    );
    for (r, f) in resumed.iter().zip(later) {
        assert_eq!(
            r.to_bytes(),
            f.to_bytes(),
            "{what}: checkpoint at slot {} after resume from slot {k}",
            f.slot()
        );
    }
}

/// The kill-at-k matrix for one CIOQ policy on one fabric: sequential
/// restore (two different kill slots), sharded full runs whose
/// checkpoints match the sequential ones byte for byte, sharded resume
/// from a sequential snapshot, and sequential resume from a sharded one.
fn check_cioq_recovery(
    cfg: &SwitchConfig,
    seq: impl Fn() -> Box<dyn CioqPolicy>,
    sharded: &dyn CioqShardPolicy,
    trace: &Trace,
    link: &dyn FabricLink,
    what: &str,
) {
    let speedup = cfg.speedup as usize;
    let (full, full_sched) = seq_cioq_run(cfg, seq(), trace, link, None);
    assert!(
        full.checkpoints.len() >= 2,
        "{what}: run too short for the checkpoint cadence"
    );

    let picks = [0, full.checkpoints.len() / 2];
    for idx in picks {
        let snap = &full.checkpoints[idx];
        let k = snap.slot();
        // The restore path starts from the wire bytes, not the live object.
        let decoded =
            EngineSnapshot::from_bytes(&snap.to_bytes()).expect("snapshot bytes round-trip");
        assert_eq!(&decoded, snap, "{what}: decode(encode) identity at k={k}");
        // Restoring and immediately re-checkpointing reproduces the bytes.
        let resnap = Engine::restore(&decoded, run_options(link))
            .expect("restore own checkpoint")
            .snapshot();
        assert_eq!(
            resnap.to_bytes(),
            snap.to_bytes(),
            "{what}: re-checkpoint at k={k} is byte-identical"
        );

        let (resumed, resumed_sched) = seq_cioq_run(cfg, seq(), trace, link, Some(&decoded));
        assert_eq!(resumed.report, full.report, "{what}: report after k={k}");
        assert_states_equal(&resumed.final_state, &full.final_state, what);
        assert_checkpoint_tail(&resumed.checkpoints, &full.checkpoints, k, what);
        // Remaining transcript: per-cycle transfer sets from slot k on,
        // and admission verdicts for every packet arriving at ≥ k.
        let cycle_off = (k as usize) * speedup;
        assert_eq!(
            resumed_sched.transfers[..],
            full_sched.transfers[cycle_off..],
            "{what}: transfer transcript tail after k={k}"
        );
        let adm_off = trace.packets().partition_point(|p| p.arrival < k);
        assert_eq!(
            resumed_sched.admissions[..],
            full_sched.admissions[adm_off..],
            "{what}: admission transcript tail after k={k}"
        );
    }

    let snap = &full.checkpoints[full.checkpoints.len() / 2];
    let k = snap.slot();
    for shards in SHARD_COUNTS {
        let w = format!("{what} K={shards}");
        let sh_full = run_cioq_sharded(cfg, sharded, trace, sharded_options(shards, link, None))
            .unwrap_or_else(|e| panic!("{w}: sharded run failed: {e}"));
        // Sequential ↔ sharded snapshot byte-compatibility.
        assert_eq!(
            sh_full.checkpoints.len(),
            full.checkpoints.len(),
            "{w}: checkpoint count"
        );
        for (s, q) in sh_full.checkpoints.iter().zip(&full.checkpoints) {
            assert_eq!(
                s.to_bytes(),
                q.to_bytes(),
                "{w}: sharded checkpoint at slot {}",
                q.slot()
            );
        }
        // Sharded resume from the sequential snapshot.
        let sh_resumed = run_cioq_sharded(
            cfg,
            sharded,
            trace,
            sharded_options(shards, link, Some(snap.clone())),
        )
        .unwrap_or_else(|e| panic!("{w}: resumed sharded run failed: {e}"));
        assert_eq!(sh_resumed.report, sh_full.report, "{w}: report after k={k}");
        assert_states_equal(
            sh_resumed.final_state.as_ref().expect("capture requested"),
            sh_full.final_state.as_ref().expect("capture requested"),
            &w,
        );
        assert_checkpoint_tail(&sh_resumed.checkpoints, &sh_full.checkpoints, k, &w);
        let sched = sh_resumed.schedule.as_ref().expect("recording requested");
        let cycle_off = (k as usize) * speedup;
        assert_eq!(
            sched.transfers[..],
            full_sched.transfers[cycle_off..],
            "{w}: sharded transfer transcript tail after k={k}"
        );
        // And the reverse: a sharded checkpoint restores into the
        // sequential engine.
        let sh_snap = &sh_full.checkpoints[sh_full.checkpoints.len() / 2];
        let (xres, _) = seq_cioq_run(cfg, seq(), trace, link, Some(sh_snap));
        assert_eq!(
            xres.report, full.report,
            "{w}: sequential resume from a sharded checkpoint"
        );
    }
}

fn check_crossbar_recovery(
    cfg: &SwitchConfig,
    seq: impl Fn() -> Box<dyn CrossbarPolicy>,
    sharded: &dyn CrossbarShardPolicy,
    trace: &Trace,
    link: &dyn FabricLink,
    what: &str,
) {
    let speedup = cfg.speedup as usize;
    let (full, full_sched) = seq_crossbar_run(cfg, seq(), trace, link, None);
    assert!(
        full.checkpoints.len() >= 2,
        "{what}: run too short for the checkpoint cadence"
    );

    for idx in [0, full.checkpoints.len() / 2] {
        let snap = &full.checkpoints[idx];
        let k = snap.slot();
        let decoded =
            EngineSnapshot::from_bytes(&snap.to_bytes()).expect("snapshot bytes round-trip");
        let (resumed, resumed_sched) = seq_crossbar_run(cfg, seq(), trace, link, Some(&decoded));
        assert_eq!(resumed.report, full.report, "{what}: report after k={k}");
        assert_states_equal(&resumed.final_state, &full.final_state, what);
        assert_checkpoint_tail(&resumed.checkpoints, &full.checkpoints, k, what);
        let cycle_off = (k as usize) * speedup;
        assert_eq!(
            resumed_sched.input_transfers[..],
            full_sched.input_transfers[cycle_off..],
            "{what}: input-transfer transcript tail after k={k}"
        );
        assert_eq!(
            resumed_sched.output_transfers[..],
            full_sched.output_transfers[cycle_off..],
            "{what}: output-transfer transcript tail after k={k}"
        );
        let adm_off = trace.packets().partition_point(|p| p.arrival < k);
        assert_eq!(
            resumed_sched.admissions[..],
            full_sched.admissions[adm_off..],
            "{what}: admission transcript tail after k={k}"
        );
    }

    let snap = &full.checkpoints[full.checkpoints.len() / 2];
    let k = snap.slot();
    for shards in SHARD_COUNTS {
        let w = format!("{what} K={shards}");
        let sh_full =
            run_crossbar_sharded(cfg, sharded, trace, sharded_options(shards, link, None))
                .unwrap_or_else(|e| panic!("{w}: sharded run failed: {e}"));
        for (s, q) in sh_full.checkpoints.iter().zip(&full.checkpoints) {
            assert_eq!(
                s.to_bytes(),
                q.to_bytes(),
                "{w}: sharded checkpoint at slot {}",
                q.slot()
            );
        }
        let sh_resumed: ShardedOutcome = run_crossbar_sharded(
            cfg,
            sharded,
            trace,
            sharded_options(shards, link, Some(snap.clone())),
        )
        .unwrap_or_else(|e| panic!("{w}: resumed sharded run failed: {e}"));
        assert_eq!(sh_resumed.report, sh_full.report, "{w}: report after k={k}");
        assert_states_equal(
            sh_resumed.final_state.as_ref().expect("capture requested"),
            sh_full.final_state.as_ref().expect("capture requested"),
            &w,
        );
        assert_checkpoint_tail(&sh_resumed.checkpoints, &sh_full.checkpoints, k, &w);
    }
}

fn cioq_cfg() -> SwitchConfig {
    SwitchConfig::builder(6, 6)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap()
}

fn bursty_trace(cfg: &SwitchConfig, slots: u64, seed: u64) -> Trace {
    gen_trace(
        &OnOffBursty::new(
            0.85,
            6.0,
            ValueDist::Bimodal {
                high: 40,
                p_high: 0.2,
            },
        ),
        cfg,
        slots,
        seed,
    )
}

/// The three fabric shapes of the acceptance matrix: immediate, uniform
/// delay line, and a heterogeneous two-tier delay matrix (chassis-local
/// pairs at 0, cross-rack pairs at 2 — mailbox and ring paths live
/// simultaneously).
fn fabrics() -> Vec<(&'static str, Box<dyn FabricLink>)> {
    vec![
        ("immediate", Box::new(Immediate)),
        ("delay-line d=2", Box::new(DelayLine { d: 2 })),
        (
            "two-tier matrix",
            Box::new(DelayMatrix::new(Topology::two_tier(6, 6, 3, 0, 2).unwrap())),
        ),
    ]
}

// ---------------------------------------------------------------------------
// The headline matrix: 4 policies × sequential + sharded K ∈ {2, 4} × fabrics
// ---------------------------------------------------------------------------

#[test]
fn cioq_kill_restore_equivalence() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xCA);
    for (label, link) in fabrics() {
        check_cioq_recovery(
            &cfg,
            || Box::new(GreedyMatching::new()),
            &ShardedGm::new(),
            &trace,
            link.as_ref(),
            &format!("gm {label}"),
        );
        check_cioq_recovery(
            &cfg,
            || Box::new(PreemptiveGreedy::new()),
            &ShardedPg::new(),
            &trace,
            link.as_ref(),
            &format!("pg {label}"),
        );
    }
}

#[test]
fn crossbar_kill_restore_equivalence() {
    let cfg = SwitchConfig::crossbar(6, 3, 1, 2);
    let trace = bursty_trace(&cfg, 48, 0xCB);
    for (label, link) in fabrics() {
        check_crossbar_recovery(
            &cfg,
            || Box::new(CrossbarGreedyUnit::new()),
            &ShardedCgu::new(),
            &trace,
            link.as_ref(),
            &format!("cgu {label}"),
        );
        check_crossbar_recovery(
            &cfg,
            || Box::new(CrossbarPreemptiveGreedy::new()),
            &ShardedCpg::new(),
            &trace,
            link.as_ref(),
            &format!("cpg {label}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Cross-mode and windowed-stats corners
// ---------------------------------------------------------------------------

/// Threaded sharded runs take the same checkpoints as inline ones (the
/// checkpoint sits at a coordinator barrier, so thread scheduling cannot
/// leak into it).
#[test]
fn threads_mode_checkpoints_match_inline() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xCC);
    let link = DelayLine { d: 2 };
    let inline = run_cioq_sharded(
        &cfg,
        &ShardedPg::new(),
        &trace,
        sharded_options(4, &link, None),
    )
    .expect("inline run");
    let mut opts = sharded_options(4, &link, None);
    opts.mode = ExecMode::Threads;
    let threaded = run_cioq_sharded(&cfg, &ShardedPg::new(), &trace, opts).expect("threaded run");
    assert_eq!(
        inline.checkpoints.len(),
        threaded.checkpoints.len(),
        "checkpoint count"
    );
    for (a, b) in inline.checkpoints.iter().zip(&threaded.checkpoints) {
        assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "threaded checkpoint at slot {}",
            a.slot()
        );
    }
    // And a threaded run resumes from an inline checkpoint.
    let snap = inline.checkpoints[inline.checkpoints.len() / 2].clone();
    let mut opts = sharded_options(4, &link, Some(snap));
    opts.mode = ExecMode::Threads;
    let resumed = run_cioq_sharded(&cfg, &ShardedPg::new(), &trace, opts).expect("resumed run");
    assert_eq!(resumed.report, inline.report, "threaded resume report");
}

/// A sequential run with a bounded stats window checkpoints the window
/// contents and restores them: the resumed run's report (window
/// included) equals the uninterrupted one's.
#[test]
fn windowed_stats_survive_restore() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xCD);
    let link = DelayLine { d: 1 };
    let options = || {
        RunOptions {
            checkpoint_every: Some(CHECKPOINT_EVERY),
            stats_window: Some(6),
            ..RunOptions::default()
        }
        .link(&link)
    };

    let full = Engine::new(cfg.clone(), options())
        .run_cioq_full(&mut PreemptiveGreedy::new(), &mut TraceSource::new(&trace))
        .expect("full run");
    let window = full.report.window.as_ref().expect("window enabled");
    assert_eq!(window.window(), 6, "configured size");
    assert!(!window.is_empty(), "run long enough to fill the window");

    let snap = &full.checkpoints[full.checkpoints.len() / 2];
    let decoded = EngineSnapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
    let resumed = Engine::restore(&decoded, options())
        .expect("restore with window")
        .run_cioq_full(
            &mut PreemptiveGreedy::new(),
            &mut TraceSource::resume_at(&trace, snap.slot()),
        )
        .expect("resumed run");
    assert_eq!(resumed.report, full.report, "windowed report after restore");
}

/// Restore rejects a snapshot taken on a different fabric: the in-flight
/// landing schedule is fabric-dependent, so silently reinterpreting it
/// would corrupt the run.
#[test]
fn restore_rejects_mismatched_fabric() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 32, 0xCE);
    let link = DelayLine { d: 2 };
    let (full, _) = seq_cioq_run(&cfg, Box::new(GreedyMatching::new()), &trace, &link, None);
    let snap = &full.checkpoints[0];
    let err = Engine::restore(snap, RunOptions::default().link(&DelayLine { d: 4 }));
    assert!(
        err.is_err(),
        "restoring a d=2 snapshot onto a d=4 fabric must fail"
    );
}
