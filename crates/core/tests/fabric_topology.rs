//! The topology-aware fabric's equivalence and conservation suite.
//!
//! Three pillars:
//!
//! 1. **`DelayMatrix` (constant matrix) ≡ `DelayLine { d }`** — a uniform
//!    topology must reproduce the uniform delay line bit for bit
//!    (admissions, per-cycle transfer sets, reports, final states), for all
//!    four policies × K ∈ {1, 2, 4} × {inline, threads}, sequential and
//!    sharded. Unlike the `d = 0` normalisation this is *not* structural:
//!    the matrix path runs the per-pair lookup, the landing calendar, and
//!    the canonical landing sort, and must land on the same bits.
//! 2. **Sharded `DelayMatrix` ≡ sequential reference** — on genuinely
//!    heterogeneous fabrics (two-tier rack models, random explicit
//!    matrices, racks scattered across ports) the sharded per-(dest, src)
//!    rings reproduce the sequential topology-aware engine bit for bit —
//!    including when rack boundaries do not align with shard boundaries.
//! 3. **Conservation under heterogeneous delays** — property test over
//!    random delay matrices: in-flight + landed + queued packets always
//!    reconcile with arrivals, drained and steady-state.

use cioq_core::{
    CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, ShardedCgu,
    ShardedCpg, ShardedGm, ShardedPg,
};
use cioq_model::{PortId, SwitchConfig, Topology};
use cioq_sim::{
    run_cioq_sharded, run_crossbar_sharded, CioqPolicy, CioqShardPolicy, CrossbarPolicy,
    CrossbarRecording, CrossbarShardPolicy, DelayLine, DelayMatrix, Engine, ExecMode, FabricLink,
    RecordedCrossbarSchedule, RecordedSchedule, Recording, RunOptions, RunReport, ShardedOptions,
    SwitchState, Trace, TraceSource,
};
use cioq_traffic::{gen_trace, FullFabricChurn, IncastStorm, OnOffBursty, ValueDist};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const MODES: [ExecMode; 2] = [ExecMode::Inline, ExecMode::Threads];

fn assert_reports_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.policy, b.policy, "{what}: policy name");
    assert_eq!(a.slots, b.slots, "{what}: slots");
    assert_eq!(a.arrived, b.arrived, "{what}: arrived");
    assert_eq!(a.arrived_value, b.arrived_value, "{what}: arrived value");
    assert_eq!(a.accepted, b.accepted, "{what}: accepted");
    assert_eq!(a.transferred, b.transferred, "{what}: transferred");
    assert_eq!(
        a.transferred_to_crossbar, b.transferred_to_crossbar,
        "{what}: crossbar transfers"
    );
    assert_eq!(a.transmitted, b.transmitted, "{what}: transmitted");
    assert_eq!(a.benefit, b.benefit, "{what}: benefit");
    assert_eq!(a.losses, b.losses, "{what}: losses");
    assert_eq!(a.latency_sum, b.latency_sum, "{what}: latency sum");
    assert_eq!(
        a.per_output_transmitted, b.per_output_transmitted,
        "{what}: per-output counts"
    );
    assert_eq!(a.residual_count, b.residual_count, "{what}: residual count");
    assert_eq!(a.residual_value, b.residual_value, "{what}: residual value");
    assert_eq!(a.fabric_delay, b.fabric_delay, "{what}: fabric delay");
}

fn assert_states_equal(a: &SwitchState, b: &SwitchState, what: &str) {
    let (va, vb) = (a.view(), b.view());
    for i in 0..va.n_inputs() {
        for j in 0..va.n_outputs() {
            let (input, output) = (PortId::from(i), PortId::from(j));
            assert_eq!(
                va.input_queue(input, output),
                vb.input_queue(input, output),
                "{what}: Q_{i}{j}"
            );
            if va.has_crossbar() {
                assert_eq!(
                    va.crossbar_queue(input, output),
                    vb.crossbar_queue(input, output),
                    "{what}: C_{i}{j}"
                );
            }
        }
    }
    for j in 0..va.n_outputs() {
        let output = PortId::from(j);
        assert_eq!(
            va.output_queue(output),
            vb.output_queue(output),
            "{what}: Q_{j}"
        );
    }
}

/// Sequential reference run through an arbitrary fabric link.
fn seq_cioq(
    cfg: &SwitchConfig,
    mut policy: Box<dyn CioqPolicy>,
    trace: &Trace,
    link: &dyn FabricLink,
) -> (RunReport, RecordedSchedule, SwitchState) {
    struct Boxed<'a>(&'a mut dyn CioqPolicy);
    impl CioqPolicy for Boxed<'_> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            p: &cioq_model::Packet,
        ) -> cioq_sim::Admission {
            self.0.admit(view, p)
        }
        fn schedule(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::Transfer>,
        ) {
            self.0.schedule(view, cycle, out)
        }
        fn transmit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            output: PortId,
        ) -> cioq_sim::TransmitChoice {
            self.0.transmit(view, output)
        }
    }
    let mut rec = Recording::with_link(Boxed(&mut *policy), link);
    let mut source = TraceSource::new(trace);
    let (report, state) = Engine::new(cfg.clone(), RunOptions::default().link(link))
        .run_cioq_capturing(&mut rec, &mut source)
        .expect("sequential linked run");
    (report, rec.into_schedule(), state)
}

fn seq_crossbar(
    cfg: &SwitchConfig,
    mut policy: Box<dyn CrossbarPolicy>,
    trace: &Trace,
    link: &dyn FabricLink,
) -> (RunReport, RecordedCrossbarSchedule, SwitchState) {
    struct Boxed<'a>(&'a mut dyn CrossbarPolicy);
    impl CrossbarPolicy for Boxed<'_> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            p: &cioq_model::Packet,
        ) -> cioq_sim::Admission {
            self.0.admit(view, p)
        }
        fn schedule_input(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::InputTransfer>,
        ) {
            self.0.schedule_input(view, cycle, out)
        }
        fn schedule_output(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::OutputTransfer>,
        ) {
            self.0.schedule_output(view, cycle, out)
        }
        fn transmit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            output: PortId,
        ) -> cioq_sim::TransmitChoice {
            self.0.transmit(view, output)
        }
    }
    let mut rec = CrossbarRecording::with_link(Boxed(&mut *policy), link);
    let mut source = TraceSource::new(trace);
    let (report, state) = Engine::new(cfg.clone(), RunOptions::default().link(link))
        .run_crossbar_capturing(&mut rec, &mut source)
        .expect("sequential linked run");
    (report, rec.into_schedule(), state)
}

fn sharded_options(k: usize, mode: ExecMode, link: &dyn FabricLink) -> ShardedOptions {
    let mut opts = ShardedOptions::new(k).link(link);
    opts.mode = mode;
    opts.record = true;
    opts.capture_final_state = true;
    opts
}

/// Sweep a sharded CIOQ policy over K × mode through `link`, comparing
/// against a given sequential reference (transcripts, reports, states).
fn check_cioq_against(
    cfg: &SwitchConfig,
    sharded: &dyn CioqShardPolicy,
    trace: &Trace,
    link: &dyn FabricLink,
    reference: &(RunReport, RecordedSchedule, SwitchState),
    what: &str,
) {
    let (ref_report, ref_schedule, ref_state) = reference;
    for k in SHARD_COUNTS {
        for mode in MODES {
            let what = format!("{what} [{}] k={k} mode={mode:?}", ref_report.policy);
            let outcome = run_cioq_sharded(cfg, sharded, trace, sharded_options(k, mode, link))
                .unwrap_or_else(|e| panic!("{what}: sharded run failed: {e}"));
            let schedule = outcome.schedule.as_ref().expect("recording requested");
            assert_eq!(schedule, ref_schedule, "{what}: decision transcript");
            assert_reports_equal(&outcome.report, ref_report, &what);
            assert_states_equal(
                outcome.final_state.as_ref().expect("capture requested"),
                ref_state,
                &what,
            );
        }
    }
}

fn check_crossbar_against(
    cfg: &SwitchConfig,
    sharded: &dyn CrossbarShardPolicy,
    trace: &Trace,
    link: &dyn FabricLink,
    reference: &(RunReport, RecordedCrossbarSchedule, SwitchState),
    what: &str,
) {
    let (ref_report, ref_schedule, ref_state) = reference;
    for k in SHARD_COUNTS {
        for mode in MODES {
            let what = format!("{what} [{}] k={k} mode={mode:?}", ref_report.policy);
            let outcome = run_crossbar_sharded(cfg, sharded, trace, sharded_options(k, mode, link))
                .unwrap_or_else(|e| panic!("{what}: sharded run failed: {e}"));
            let schedule = outcome
                .crossbar_schedule
                .as_ref()
                .expect("recording requested");
            assert_eq!(schedule, ref_schedule, "{what}: decision transcript");
            assert_reports_equal(&outcome.report, ref_report, &what);
            assert_states_equal(
                outcome.final_state.as_ref().expect("capture requested"),
                ref_state,
                &what,
            );
        }
    }
}

fn cioq_trace(cfg: &SwitchConfig, slots: u64, seed: u64) -> Trace {
    gen_trace(
        &OnOffBursty::new(
            0.85,
            6.0,
            ValueDist::Bimodal {
                high: 40,
                p_high: 0.2,
            },
        ),
        cfg,
        slots,
        seed,
    )
}

fn cioq_cfg() -> SwitchConfig {
    SwitchConfig::builder(6, 6)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap()
}

// ---------------------------------------------------------------------------
// 1. DelayMatrix with a constant matrix ≡ DelayLine { d }
// ---------------------------------------------------------------------------

/// A uniform topology must land on the delay line's exact bits — per-pair
/// lookup, calendar, and canonical landing sort included — for all four
/// policies, sequential and sharded (K ∈ {1, 2, 4} × {inline, threads}).
#[test]
fn constant_matrix_is_bit_identical_to_delay_line() {
    let cfg = cioq_cfg();
    let trace = cioq_trace(&cfg, 48, 0x70);
    let xcfg = SwitchConfig::crossbar(6, 3, 1, 2);
    let xtrace = cioq_trace(&xcfg, 48, 0x71);
    for d in [0u64, 3] {
        let line = DelayLine { d };
        let matrix = DelayMatrix::new(Topology::uniform(6, 6, d));
        let what = format!("const matrix d={d}");

        for (seq, sharded) in [
            (
                Box::new(GreedyMatching::new()) as Box<dyn CioqPolicy>,
                Box::new(ShardedGm::new()) as Box<dyn CioqShardPolicy>,
            ),
            (
                Box::new(PreemptiveGreedy::new()),
                Box::new(ShardedPg::new()),
            ),
        ] {
            // The delay-line run is the reference…
            let reference = seq_cioq(&cfg, seq, &trace, &line);
            // …the sequential matrix run must already match it…
            let name = reference.0.policy.clone();
            let seq_again: Box<dyn CioqPolicy> = if name.starts_with("GM") {
                Box::new(GreedyMatching::new())
            } else {
                Box::new(PreemptiveGreedy::new())
            };
            let matrix_run = seq_cioq(&cfg, seq_again, &trace, &matrix);
            assert_eq!(
                matrix_run.1, reference.1,
                "{what}: sequential matrix transcript"
            );
            assert_reports_equal(&matrix_run.0, &reference.0, &format!("{what}: sequential"));
            assert_states_equal(&matrix_run.2, &reference.2, &format!("{what}: sequential"));
            // …and the sharded matrix runs must hit the same bits.
            check_cioq_against(&cfg, &*sharded, &trace, &matrix, &reference, &what);
        }

        let reference = seq_crossbar(&xcfg, Box::new(CrossbarGreedyUnit::new()), &xtrace, &line);
        let xmatrix = DelayMatrix::new(Topology::uniform(6, 6, d));
        check_crossbar_against(
            &xcfg,
            &ShardedCgu::new(),
            &xtrace,
            &xmatrix,
            &reference,
            &what,
        );
        let reference = seq_crossbar(
            &xcfg,
            Box::new(CrossbarPreemptiveGreedy::new()),
            &xtrace,
            &line,
        );
        check_crossbar_against(
            &xcfg,
            &ShardedCpg::new(),
            &xtrace,
            &xmatrix,
            &reference,
            &what,
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Heterogeneous matrices: sharded ≡ sequential reference
// ---------------------------------------------------------------------------

/// Two-tier topologies: chassis-local pairs land same-cycle (latency 0)
/// while cross-rack pairs ride the rings — the mailbox path and the delay
/// rings are live *simultaneously*. With 3 racks over 6 ports and
/// K ∈ {1, 2, 4}, rack boundaries (2, 4) do not align with the K = 4
/// shard boundaries (1, 3, 4).
#[test]
fn two_tier_sharded_equals_sequential() {
    let cfg = cioq_cfg();
    let trace = cioq_trace(&cfg, 48, 0x72);
    for (racks, intra, inter) in [(3usize, 0u64, 2u64), (2, 1, 4)] {
        let link = DelayMatrix::new(Topology::two_tier(6, 6, racks, intra, inter).unwrap());
        let what = format!("two-tier racks={racks} intra={intra} inter={inter}");
        let reference = seq_cioq(&cfg, Box::new(GreedyMatching::new()), &trace, &link);
        check_cioq_against(&cfg, &ShardedGm::new(), &trace, &link, &reference, &what);
        let reference = seq_cioq(&cfg, Box::new(PreemptiveGreedy::new()), &trace, &link);
        check_cioq_against(&cfg, &ShardedPg::new(), &trace, &link, &reference, &what);
    }

    let xcfg = SwitchConfig::crossbar(6, 3, 1, 2);
    let xtrace = cioq_trace(&xcfg, 48, 0x73);
    for (racks, intra, inter) in [(3usize, 0u64, 2u64), (2, 1, 4)] {
        let link = DelayMatrix::new(Topology::two_tier(6, 6, racks, intra, inter).unwrap());
        let what = format!("two-tier crossbar racks={racks} intra={intra} inter={inter}");
        let reference = seq_crossbar(&xcfg, Box::new(CrossbarGreedyUnit::new()), &xtrace, &link);
        check_crossbar_against(&xcfg, &ShardedCgu::new(), &xtrace, &link, &reference, &what);
        let reference = seq_crossbar(
            &xcfg,
            Box::new(CrossbarPreemptiveGreedy::new()),
            &xtrace,
            &link,
        );
        check_crossbar_against(&xcfg, &ShardedCpg::new(), &xtrace, &link, &reference, &what);
    }
}

/// A random explicit matrix with racks *scattered* across ports (no
/// contiguity at all, so no shard partition can align with them), mixing
/// latencies 0 through 5.
#[test]
fn random_matrix_sharded_equals_sequential() {
    let cfg = cioq_cfg();
    let trace = cioq_trace(&cfg, 48, 0x74);
    let topo = Topology::explicit(
        6,
        6,
        4,
        vec![2, 0, 3, 1, 0, 2],
        vec![1, 3, 0, 2, 2, 0],
        vec![0, 3, 1, 5, 2, 0, 4, 1, 3, 2, 0, 1, 5, 1, 2, 0],
    )
    .unwrap();
    assert_eq!(topo.uniform_delay(), None);
    let link = DelayMatrix::new(topo);
    let what = "random matrix";
    let reference = seq_cioq(&cfg, Box::new(GreedyMatching::new()), &trace, &link);
    check_cioq_against(&cfg, &ShardedGm::new(), &trace, &link, &reference, what);
    let reference = seq_cioq(&cfg, Box::new(PreemptiveGreedy::new()), &trace, &link);
    check_cioq_against(&cfg, &ShardedPg::new(), &trace, &link, &reference, what);
    let reference = seq_cioq(
        &cfg,
        Box::new(PreemptiveGreedy::without_preemption()),
        &trace,
        &link,
    );
    check_cioq_against(
        &cfg,
        &ShardedPg::without_preemption(),
        &trace,
        &link,
        &reference,
        what,
    );
}

/// Incast through a two-tier fabric concentrates landings: transfers
/// dispatched in *different slots* (near and far racks) land together at
/// one output, so the canonical landing order — not just per-cycle order —
/// decides who preempts whom.
#[test]
fn two_tier_incast_landing_order() {
    let cfg = SwitchConfig::builder(8, 4)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap();
    let gen = IncastStorm::new(
        3,
        2,
        2,
        0.5,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.1,
        },
    );
    let trace = gen_trace(&gen, &cfg, 40, 0x75);
    for (intra, inter) in [(1u64, 3u64), (0, 4)] {
        let link = DelayMatrix::new(Topology::two_tier(8, 4, 2, intra, inter).unwrap());
        let what = format!("incast intra={intra} inter={inter}");
        let reference = seq_cioq(&cfg, Box::new(PreemptiveGreedy::new()), &trace, &link);
        check_cioq_against(&cfg, &ShardedPg::new(), &trace, &link, &reference, &what);
    }
}

// ---------------------------------------------------------------------------
// 3. Conservation over random delay matrices (property test)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Over random rack assignments and latency matrices: (1) queued +
    /// in-flight + landed packets always reconcile with arrivals, drained
    /// (residual 0) and steady-state (in-flight counted in the residual);
    /// (2) the sharded engine books the same totals; (3) a *constant*
    /// random matrix produces the same decision transcript as
    /// `DelayLine` at that constant.
    #[test]
    fn conservation_over_random_matrices(
        racks in 1usize..4,
        iracks in prop::collection::vec(0u16..4, 8),
        oracks in prop::collection::vec(0u16..4, 8),
        latency in prop::collection::vec(0u64..6, 16),
        const_d in 0u64..6,
        seed in 0u64..1024,
    ) {
        let n = 8usize;
        let cfg = SwitchConfig::cioq(n, 2, 2);
        let gen = FullFabricChurn::new(2, 5, ValueDist::Uniform { max: 50 });
        let trace = gen_trace(&gen, &cfg, 32, seed);

        let topo = Topology::explicit(
            n,
            n,
            racks,
            iracks.iter().map(|&r| r % racks as u16).collect(),
            oracks.iter().map(|&r| r % racks as u16).collect(),
            latency[..racks * racks].to_vec(),
        )
        .expect("valid random topology");
        let link = DelayMatrix::new(topo);

        // Drained run: nothing may stay in flight or queued.
        let mut source = TraceSource::new(&trace);
        let drained = Engine::new(cfg.clone(), RunOptions::default().link(&link))
            .run_cioq(&mut PreemptiveGreedy::new(), &mut source)
            .expect("drained run");
        prop_assert!(drained.check_conservation().is_ok());
        prop_assert_eq!(drained.residual_count, 0);

        // Steady state: the residual includes packets still on the wire.
        let mut options = RunOptions::default().link(&link);
        options.slots = Some(32);
        options.drain = false;
        let mut source = TraceSource::new(&trace);
        let steady = Engine::new(cfg.clone(), options)
            .run_cioq(&mut GreedyMatching::new(), &mut source)
            .expect("steady-state run");
        prop_assert!(steady.check_conservation().is_ok());

        // The sharded engine books identical totals on the same fabric.
        let outcome = run_cioq_sharded(
            &cfg,
            &ShardedPg::new(),
            &trace,
            ShardedOptions::new(2).link(&link),
        )
        .expect("sharded run");
        prop_assert!(outcome.report.check_conservation().is_ok());
        prop_assert_eq!(outcome.report.benefit, drained.benefit);
        prop_assert_eq!(outcome.report.transmitted, drained.transmitted);
        prop_assert_eq!(outcome.report.losses, drained.losses);

        // Constant matrix ≡ delay line, transcript for transcript.
        let const_link = DelayMatrix::new(Topology::uniform(n, n, const_d));
        let mut rec_m = Recording::with_link(PreemptiveGreedy::new(), &const_link);
        let mut source = TraceSource::new(&trace);
        Engine::new(cfg.clone(), RunOptions::default().link(&const_link))
            .run_cioq(&mut rec_m, &mut source)
            .expect("const matrix run");
        let line = DelayLine { d: const_d };
        let mut rec_l = Recording::with_link(PreemptiveGreedy::new(), &line);
        let mut source = TraceSource::new(&trace);
        Engine::new(cfg.clone(), RunOptions::default().link(&line))
            .run_cioq(&mut rec_l, &mut source)
            .expect("delay line run");
        prop_assert_eq!(rec_m.into_schedule(), rec_l.into_schedule());
    }
}
