//! The dirty-set-width stress workloads (incast storms dirtying whole
//! columns, full-fabric churn touching every row every slot) against the
//! incremental-vs-rescan equivalence guarantee.
//!
//! PR 2's equivalence suite runs narrow random traffic; these workloads
//! push the change log to its widest regimes — Θ(N) dirty cells in one
//! column, Θ(N·d) spread over all columns — where a repair bug in the
//! incremental builders would actually bite. Every check compares full run
//! reports **and** final queue states between `BuildMode::Incremental` and
//! the from-scratch `BuildMode::Rescan` reference.

use cioq_core::{
    BuildMode, CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy,
};
use cioq_model::{PortId, SwitchConfig};
use cioq_sim::{
    run_cioq_with_final_state, run_crossbar_with_final_state, CioqPolicy, CrossbarPolicy,
    RunReport, SwitchState, Trace,
};
use cioq_traffic::{gen_trace, FullFabricChurn, IncastStorm, TrafficGen, ValueDist};

fn assert_equal_outcomes(a: (RunReport, SwitchState), b: (RunReport, SwitchState), what: &str) {
    let (ra, sa) = a;
    let (rb, sb) = b;
    assert_eq!(ra.slots, rb.slots, "{what}: slots");
    assert_eq!(ra.accepted, rb.accepted, "{what}: accepted");
    assert_eq!(ra.transferred, rb.transferred, "{what}: transferred");
    assert_eq!(
        ra.transferred_to_crossbar, rb.transferred_to_crossbar,
        "{what}: crossbar transfers"
    );
    assert_eq!(ra.transmitted, rb.transmitted, "{what}: transmitted");
    assert_eq!(ra.benefit, rb.benefit, "{what}: benefit");
    assert_eq!(ra.losses, rb.losses, "{what}: losses");
    assert_eq!(ra.latency_sum, rb.latency_sum, "{what}: latency");
    assert_eq!(ra.residual_count, rb.residual_count, "{what}: residual");

    let (va, vb) = (sa.view(), sb.view());
    for i in 0..va.n_inputs() {
        for j in 0..va.n_outputs() {
            let (input, output) = (PortId::from(i), PortId::from(j));
            assert_eq!(
                va.input_queue(input, output),
                vb.input_queue(input, output),
                "{what}: Q_{i}{j}"
            );
            if va.has_crossbar() {
                assert_eq!(
                    va.crossbar_queue(input, output),
                    vb.crossbar_queue(input, output),
                    "{what}: C_{i}{j}"
                );
            }
        }
    }
    for j in 0..va.n_outputs() {
        let output = PortId::from(j);
        assert_eq!(
            va.output_queue(output),
            vb.output_queue(output),
            "{what}: Q_{j}"
        );
    }
}

fn check_cioq_pair(
    cfg: &SwitchConfig,
    trace: &Trace,
    mut incremental: impl CioqPolicy,
    mut rescan: impl CioqPolicy,
    what: &str,
) {
    let inc = run_cioq_with_final_state(cfg, &mut incremental, trace).expect("incremental run");
    let ref_ = run_cioq_with_final_state(cfg, &mut rescan, trace).expect("rescan run");
    assert_equal_outcomes(inc, ref_, what);
}

fn check_crossbar_pair(
    cfg: &SwitchConfig,
    trace: &Trace,
    mut incremental: impl CrossbarPolicy,
    mut rescan: impl CrossbarPolicy,
    what: &str,
) {
    let inc = run_crossbar_with_final_state(cfg, &mut incremental, trace).expect("incremental run");
    let ref_ = run_crossbar_with_final_state(cfg, &mut rescan, trace).expect("rescan run");
    assert_equal_outcomes(inc, ref_, what);
}

/// Incast storms: several whole VOQ columns dirtied at once, shallow
/// output buffers so the β/α output thresholds stay active.
#[test]
fn incast_storm_incremental_equals_rescan() {
    let cfg = SwitchConfig::builder(16, 16)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap();
    for (targets, seed) in [(2usize, 11u64), (5, 12), (16, 13)] {
        let gen = IncastStorm::new(
            3,
            targets,
            2,
            0.3,
            ValueDist::Zipf {
                max: 64,
                exponent: 1.1,
            },
        );
        let trace = gen_trace(&gen, &cfg, 64, seed);
        check_cioq_pair(
            &cfg,
            &trace,
            GreedyMatching::new(),
            GreedyMatching::new().build_mode(BuildMode::Rescan),
            &format!("GM storm targets={targets}"),
        );
        check_cioq_pair(
            &cfg,
            &trace,
            PreemptiveGreedy::new(),
            PreemptiveGreedy::new().build_mode(BuildMode::Rescan),
            &format!("PG storm targets={targets}"),
        );
    }
}

/// Full-fabric churn at overload (degree 2): every row dirtied every slot,
/// constant preemption under PG.
#[test]
fn full_fabric_churn_incremental_equals_rescan() {
    let cfg = SwitchConfig::cioq(16, 2, 1);
    for (stride, seed) in [(1usize, 21u64), (5, 22), (7, 23)] {
        let gen = FullFabricChurn::new(2, stride, ValueDist::Uniform { max: 40 });
        let trace = gen.generate(&cfg, 48, seed);
        check_cioq_pair(
            &cfg,
            &trace,
            GreedyMatching::new(),
            GreedyMatching::new().build_mode(BuildMode::Rescan),
            &format!("GM churn stride={stride}"),
        );
        check_cioq_pair(
            &cfg,
            &trace,
            PreemptiveGreedy::new(),
            PreemptiveGreedy::new().build_mode(BuildMode::Rescan),
            &format!("PG churn stride={stride}"),
        );
    }
}

/// The same stress regimes for the crossbar policies: wide dirty sets hit
/// both the row masks (input subphase) and the column caches (output
/// subphase).
#[test]
fn crossbar_stress_incremental_equals_rescan() {
    let cfg = SwitchConfig::crossbar(12, 2, 1, 2);
    let storm = IncastStorm::new(
        4,
        4,
        1,
        0.4,
        ValueDist::Bimodal {
            high: 60,
            p_high: 0.15,
        },
    );
    let storm_trace = gen_trace(&storm, &cfg, 56, 31);
    let churn = FullFabricChurn::new(2, 5, ValueDist::Uniform { max: 30 });
    let churn_trace = gen_trace(&churn, &cfg, 40, 32);

    for (trace, tag) in [(&storm_trace, "storm"), (&churn_trace, "churn")] {
        check_crossbar_pair(
            &cfg,
            trace,
            CrossbarGreedyUnit::new(),
            CrossbarGreedyUnit::new().build_mode(BuildMode::Rescan),
            &format!("CGU {tag}"),
        );
        check_crossbar_pair(
            &cfg,
            trace,
            CrossbarPreemptiveGreedy::new(),
            CrossbarPreemptiveGreedy::new().build_mode(BuildMode::Rescan),
            &format!("CPG {tag}"),
        );
    }
}
