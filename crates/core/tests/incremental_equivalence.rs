//! Equivalence of the incremental scheduling core and the from-scratch
//! reference, proven *per cycle*, not just per run.
//!
//! A lockstep wrapper runs one engine with the [`BuildMode::Incremental`]
//! policy driving the switch while the [`BuildMode::Rescan`] twin is asked
//! for its decision against the *same* view every cycle; any divergence in
//! any admission, transfer set (content **and** order), or subphase choice
//! panics on the spot. Since both twins see identical views at every call,
//! this is exactly the ISSUE's "incremental graph after each slot ≡
//! from-scratch rebuild" property, observed through the decisions the
//! graphs produce.
//!
//! A second pass runs the two modes in *separate* engines over the same
//! trace and compares the full run reports, covering the accounting path
//! end to end.

use cioq_core::{
    BuildMode, CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GmEdgePolicy, GreedyMatching,
    PreemptiveGreedy, SelectionOrder,
};
use cioq_model::{Cycle, Packet, PortId, SwitchConfig};
use cioq_sim::{
    run_cioq, run_crossbar, Admission, CioqPolicy, CrossbarPolicy, InputTransfer, OutputTransfer,
    RunReport, SwitchView, Trace, Transfer, TransmitChoice,
};
use proptest::prelude::*;

// ---- lockstep wrappers ----

struct LockstepCioq {
    primary: Box<dyn CioqPolicy>,
    reference: Box<dyn CioqPolicy>,
    scratch: Vec<Transfer>,
}

impl CioqPolicy for LockstepCioq {
    fn name(&self) -> &str {
        self.primary.name()
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        let a = self.primary.admit(view, packet);
        let b = self.reference.admit(view, packet);
        assert_eq!(a, b, "admission diverged for {packet:?}");
        a
    }

    fn schedule(&mut self, view: &SwitchView<'_>, cycle: Cycle, out: &mut Vec<Transfer>) {
        self.primary.schedule(view, cycle, out);
        self.scratch.clear();
        self.reference.schedule(view, cycle, &mut self.scratch);
        assert_eq!(
            *out, self.scratch,
            "transfer sets diverged at slot {} cycle {}",
            cycle.slot, cycle.index
        );
    }

    fn transmit(&mut self, view: &SwitchView<'_>, output: PortId) -> TransmitChoice {
        let a = self.primary.transmit(view, output);
        let b = self.reference.transmit(view, output);
        assert_eq!(a, b, "transmit choice diverged at output {output}");
        a
    }
}

struct LockstepCrossbar {
    primary: Box<dyn CrossbarPolicy>,
    reference: Box<dyn CrossbarPolicy>,
    in_scratch: Vec<InputTransfer>,
    out_scratch: Vec<OutputTransfer>,
}

impl CrossbarPolicy for LockstepCrossbar {
    fn name(&self) -> &str {
        self.primary.name()
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        let a = self.primary.admit(view, packet);
        let b = self.reference.admit(view, packet);
        assert_eq!(a, b, "admission diverged for {packet:?}");
        a
    }

    fn schedule_input(
        &mut self,
        view: &SwitchView<'_>,
        cycle: Cycle,
        out: &mut Vec<InputTransfer>,
    ) {
        self.primary.schedule_input(view, cycle, out);
        self.in_scratch.clear();
        self.reference
            .schedule_input(view, cycle, &mut self.in_scratch);
        assert_eq!(
            *out, self.in_scratch,
            "input subphase diverged at slot {} cycle {}",
            cycle.slot, cycle.index
        );
    }

    fn schedule_output(
        &mut self,
        view: &SwitchView<'_>,
        cycle: Cycle,
        out: &mut Vec<OutputTransfer>,
    ) {
        self.primary.schedule_output(view, cycle, out);
        self.out_scratch.clear();
        self.reference
            .schedule_output(view, cycle, &mut self.out_scratch);
        assert_eq!(
            *out, self.out_scratch,
            "output subphase diverged at slot {} cycle {}",
            cycle.slot, cycle.index
        );
    }

    fn transmit(&mut self, view: &SwitchView<'_>, output: PortId) -> TransmitChoice {
        let a = self.primary.transmit(view, output);
        let b = self.reference.transmit(view, output);
        assert_eq!(a, b, "transmit choice diverged at output {output}");
        a
    }
}

// ---- helpers ----

fn assert_reports_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.slots, b.slots, "{what}: slots");
    assert_eq!(a.arrived, b.arrived, "{what}: arrived");
    assert_eq!(a.accepted, b.accepted, "{what}: accepted");
    assert_eq!(a.transferred, b.transferred, "{what}: transferred");
    assert_eq!(
        a.transferred_to_crossbar, b.transferred_to_crossbar,
        "{what}: crossbar transfers"
    );
    assert_eq!(a.transmitted, b.transmitted, "{what}: transmitted");
    assert_eq!(a.benefit, b.benefit, "{what}: benefit");
    assert_eq!(a.losses, b.losses, "{what}: losses");
    assert_eq!(a.latency_sum, b.latency_sum, "{what}: latency");
    assert_eq!(
        a.per_output_transmitted, b.per_output_transmitted,
        "{what}: per-output counts"
    );
    assert_eq!(a.residual_count, b.residual_count, "{what}: residual");
    assert_eq!(a.residual_value, b.residual_value, "{what}: residual value");
}

fn trace_from(n: usize, arrivals: &[(u8, u8, u8, u64)]) -> Trace {
    Trace::from_tuples(arrivals.iter().map(|&(t, i, j, v)| {
        (
            t as u64,
            PortId((i as usize % n) as u16),
            PortId((j as usize % n) as u16),
            v,
        )
    }))
}

fn cioq_pairs() -> Vec<(Box<dyn CioqPolicy>, Box<dyn CioqPolicy>)> {
    vec![
        (
            Box::new(GreedyMatching::new()),
            Box::new(GreedyMatching::new().build_mode(BuildMode::Rescan)),
        ),
        (
            Box::new(GreedyMatching::with_edge_policy(
                GmEdgePolicy::RotateByCycle,
            )),
            Box::new(
                GreedyMatching::with_edge_policy(GmEdgePolicy::RotateByCycle)
                    .build_mode(BuildMode::Rescan),
            ),
        ),
        (
            Box::new(PreemptiveGreedy::new()),
            Box::new(PreemptiveGreedy::new().build_mode(BuildMode::Rescan)),
        ),
        (
            Box::new(PreemptiveGreedy::with_beta(1.25)),
            Box::new(PreemptiveGreedy::with_beta(1.25).build_mode(BuildMode::Rescan)),
        ),
        (
            Box::new(PreemptiveGreedy::without_preemption()),
            Box::new(PreemptiveGreedy::without_preemption().build_mode(BuildMode::Rescan)),
        ),
    ]
}

fn crossbar_pairs() -> Vec<(Box<dyn CrossbarPolicy>, Box<dyn CrossbarPolicy>)> {
    vec![
        (
            Box::new(CrossbarGreedyUnit::new()),
            Box::new(CrossbarGreedyUnit::new().build_mode(BuildMode::Rescan)),
        ),
        (
            Box::new(CrossbarGreedyUnit::with_selection(
                SelectionOrder::RoundRobin,
            )),
            Box::new(
                CrossbarGreedyUnit::with_selection(SelectionOrder::RoundRobin)
                    .build_mode(BuildMode::Rescan),
            ),
        ),
        (
            Box::new(CrossbarPreemptiveGreedy::new()),
            Box::new(CrossbarPreemptiveGreedy::new().build_mode(BuildMode::Rescan)),
        ),
        (
            Box::new(CrossbarPreemptiveGreedy::with_params(1.5, 2.0)),
            Box::new(CrossbarPreemptiveGreedy::with_params(1.5, 2.0).build_mode(BuildMode::Rescan)),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over random traces (bursty, value-skewed, port-skewed) and every
    /// CIOQ policy variant, the incremental core makes the same decision
    /// as a from-scratch rebuild in every cycle of every slot — and two
    /// independent full runs agree on the complete report.
    #[test]
    fn cioq_incremental_equals_rescan(
        n in 1usize..6,
        speedup in 1u32..4,
        in_cap in 1usize..4,
        out_cap in 1usize..4,
        arrivals in prop::collection::vec(
            (0u8..12, 0u8..6, 0u8..6, 1u64..64),
            0..120,
        ),
    ) {
        let cfg = SwitchConfig::builder(n, n)
            .speedup(speedup)
            .input_capacity(in_cap)
            .output_capacity(out_cap)
            .build()
            .unwrap();
        let trace = trace_from(n, &arrivals);
        // Fresh policy instances for the solo runs: the lockstep pair keeps
        // internal state (round-robin pointers) from the joint run.
        for ((primary, reference), (mut fresh_inc, mut fresh_ref)) in
            cioq_pairs().into_iter().zip(cioq_pairs())
        {
            let mut lockstep = LockstepCioq {
                primary,
                reference,
                scratch: Vec::new(),
            };
            let name = lockstep.name().to_string();
            let joint = run_cioq(&cfg, &mut lockstep, &trace).unwrap();

            let solo_inc = run_cioq(&cfg, fresh_inc.as_mut(), &trace).unwrap();
            let solo_ref = run_cioq(&cfg, fresh_ref.as_mut(), &trace).unwrap();
            assert_reports_equal(&solo_inc, &solo_ref, &format!("{name} solo-vs-solo"));
            assert_reports_equal(&solo_inc, &joint, &format!("{name} solo-vs-joint"));
        }
    }

    /// The same guarantee for the buffered-crossbar policies, covering
    /// both subphases and the crossbar change tracking.
    #[test]
    fn crossbar_incremental_equals_rescan(
        n in 1usize..5,
        speedup in 1u32..3,
        in_cap in 1usize..4,
        out_cap in 1usize..3,
        xbar_cap in 1usize..3,
        arrivals in prop::collection::vec(
            (0u8..10, 0u8..5, 0u8..5, 1u64..64),
            0..100,
        ),
    ) {
        let cfg = SwitchConfig::builder(n, n)
            .speedup(speedup)
            .input_capacity(in_cap)
            .output_capacity(out_cap)
            .crossbar_capacity(xbar_cap)
            .build()
            .unwrap();
        let trace = trace_from(n, &arrivals);
        for ((primary, reference), (mut fresh_inc, mut fresh_ref)) in
            crossbar_pairs().into_iter().zip(crossbar_pairs())
        {
            let mut lockstep = LockstepCrossbar {
                primary,
                reference,
                in_scratch: Vec::new(),
                out_scratch: Vec::new(),
            };
            let name = lockstep.name().to_string();
            let joint = run_crossbar(&cfg, &mut lockstep, &trace).unwrap();

            let solo_inc = run_crossbar(&cfg, fresh_inc.as_mut(), &trace).unwrap();
            let solo_ref = run_crossbar(&cfg, fresh_ref.as_mut(), &trace).unwrap();
            assert_reports_equal(&solo_inc, &solo_ref, &format!("{name} solo-vs-solo"));
            assert_reports_equal(&solo_inc, &joint, &format!("{name} solo-vs-joint"));
        }
    }
}

/// Reusing an incremental policy across engine runs must resync cleanly
/// (the flush-count handshake detects the fresh engine): the second run's
/// report equals a fresh policy's.
#[test]
fn policy_reuse_across_runs_resyncs() {
    let cfg = SwitchConfig::cioq(3, 2, 2);
    let trace = Trace::from_tuples([
        (0, PortId(0), PortId(1), 9),
        (0, PortId(1), PortId(1), 4),
        (1, PortId(2), PortId(0), 7),
        (2, PortId(0), PortId(2), 2),
    ]);
    let mut reused = PreemptiveGreedy::new();
    let first = run_cioq(&cfg, &mut reused, &trace).unwrap();
    let second = run_cioq(&cfg, &mut reused, &trace).unwrap();
    let fresh = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
    assert_reports_equal(&first, &second, "reuse");
    assert_reports_equal(&second, &fresh, "reuse vs fresh");

    // Reuse on a *different geometry* must also resync (dims check).
    let cfg_small = SwitchConfig::cioq(2, 2, 1);
    let trace_small = Trace::from_tuples([(0, PortId(0), PortId(1), 5)]);
    let shrunk = run_cioq(&cfg_small, &mut reused, &trace_small).unwrap();
    let fresh_small = run_cioq(&cfg_small, &mut PreemptiveGreedy::new(), &trace_small).unwrap();
    assert_reports_equal(&shrunk, &fresh_small, "resized reuse");
}
