//! The fabric-transport layer's equivalence and conservation suite.
//!
//! Three pillars:
//!
//! 1. **`DelayLine { d: 0 }` ≡ `Immediate`** — the normalisation is checked
//!    end to end (admissions, per-cycle transfer sets, reports, final
//!    states) for all four policies × K ∈ {1, 2, 4} × {inline, threads}.
//! 2. **Sharded `DelayLine { d }` ≡ sequential delayed engine** — the
//!    sharded delay rings reproduce the reference delayed-sequential
//!    engine bit for bit, for d ∈ {1, 2, 4}, the same policy/K/mode
//!    matrix. This is the delayed analogue of `sharded_equivalence.rs`.
//! 3. **Conservation in flight** — no packet is lost or duplicated while
//!    riding the delay line, under `FullFabricChurn` (every row dirtied
//!    every slot), drained and steady-state.

use cioq_core::{
    CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, ShardedCgu,
    ShardedCpg, ShardedGm, ShardedPg,
};
use cioq_model::{PortId, SlotId, SwitchConfig};
use cioq_sim::{
    run_cioq_sharded, run_crossbar_sharded, CioqPolicy, CioqShardPolicy, CrossbarPolicy,
    CrossbarRecording, CrossbarShardPolicy, DelayLine, Engine, ExecMode, RecordedCrossbarSchedule,
    RecordedSchedule, Recording, RunOptions, RunReport, ShardedOptions, SwitchState, Trace,
    TraceSource,
};
use cioq_traffic::{gen_trace, FullFabricChurn, IncastStorm, OnOffBursty, ValueDist};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const MODES: [ExecMode; 2] = [ExecMode::Inline, ExecMode::Threads];

fn assert_reports_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.policy, b.policy, "{what}: policy name");
    assert_eq!(a.slots, b.slots, "{what}: slots");
    assert_eq!(a.arrived, b.arrived, "{what}: arrived");
    assert_eq!(a.arrived_value, b.arrived_value, "{what}: arrived value");
    assert_eq!(a.accepted, b.accepted, "{what}: accepted");
    assert_eq!(a.transferred, b.transferred, "{what}: transferred");
    assert_eq!(
        a.transferred_to_crossbar, b.transferred_to_crossbar,
        "{what}: crossbar transfers"
    );
    assert_eq!(a.transmitted, b.transmitted, "{what}: transmitted");
    assert_eq!(a.benefit, b.benefit, "{what}: benefit");
    assert_eq!(a.losses, b.losses, "{what}: losses");
    assert_eq!(a.latency_sum, b.latency_sum, "{what}: latency sum");
    assert_eq!(
        a.per_output_transmitted, b.per_output_transmitted,
        "{what}: per-output counts"
    );
    assert_eq!(a.residual_count, b.residual_count, "{what}: residual count");
    assert_eq!(a.residual_value, b.residual_value, "{what}: residual value");
    assert_eq!(a.fabric_delay, b.fabric_delay, "{what}: fabric delay");
}

fn assert_states_equal(a: &SwitchState, b: &SwitchState, what: &str) {
    let (va, vb) = (a.view(), b.view());
    for i in 0..va.n_inputs() {
        for j in 0..va.n_outputs() {
            let (input, output) = (PortId::from(i), PortId::from(j));
            assert_eq!(
                va.input_queue(input, output),
                vb.input_queue(input, output),
                "{what}: Q_{i}{j}"
            );
            if va.has_crossbar() {
                assert_eq!(
                    va.crossbar_queue(input, output),
                    vb.crossbar_queue(input, output),
                    "{what}: C_{i}{j}"
                );
            }
        }
    }
    for j in 0..va.n_outputs() {
        let output = PortId::from(j);
        assert_eq!(
            va.output_queue(output),
            vb.output_queue(output),
            "{what}: Q_{j}"
        );
    }
}

/// Sequential reference run on a latency-`d` fabric.
fn seq_cioq_delayed(
    cfg: &SwitchConfig,
    mut policy: Box<dyn CioqPolicy>,
    trace: &Trace,
    d: SlotId,
) -> (RunReport, RecordedSchedule, SwitchState) {
    struct Boxed<'a>(&'a mut dyn CioqPolicy);
    impl CioqPolicy for Boxed<'_> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            p: &cioq_model::Packet,
        ) -> cioq_sim::Admission {
            self.0.admit(view, p)
        }
        fn schedule(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::Transfer>,
        ) {
            self.0.schedule(view, cycle, out)
        }
        fn transmit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            output: PortId,
        ) -> cioq_sim::TransmitChoice {
            self.0.transmit(view, output)
        }
    }
    let link = DelayLine { d };
    let mut rec = Recording::with_link(Boxed(&mut *policy), &link);
    let mut source = TraceSource::new(trace);
    let (report, state) = Engine::new(cfg.clone(), RunOptions::default().link(&link))
        .run_cioq_capturing(&mut rec, &mut source)
        .expect("sequential delayed run");
    (report, rec.into_schedule(), state)
}

fn seq_crossbar_delayed(
    cfg: &SwitchConfig,
    mut policy: Box<dyn CrossbarPolicy>,
    trace: &Trace,
    d: SlotId,
) -> (RunReport, RecordedCrossbarSchedule, SwitchState) {
    struct Boxed<'a>(&'a mut dyn CrossbarPolicy);
    impl CrossbarPolicy for Boxed<'_> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            p: &cioq_model::Packet,
        ) -> cioq_sim::Admission {
            self.0.admit(view, p)
        }
        fn schedule_input(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::InputTransfer>,
        ) {
            self.0.schedule_input(view, cycle, out)
        }
        fn schedule_output(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::OutputTransfer>,
        ) {
            self.0.schedule_output(view, cycle, out)
        }
        fn transmit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            output: PortId,
        ) -> cioq_sim::TransmitChoice {
            self.0.transmit(view, output)
        }
    }
    let link = DelayLine { d };
    let mut rec = CrossbarRecording::with_link(Boxed(&mut *policy), &link);
    let mut source = TraceSource::new(trace);
    let (report, state) = Engine::new(cfg.clone(), RunOptions::default().link(&link))
        .run_crossbar_capturing(&mut rec, &mut source)
        .expect("sequential delayed run");
    (report, rec.into_schedule(), state)
}

fn sharded_options(k: usize, mode: ExecMode, d: SlotId) -> ShardedOptions {
    let mut opts = ShardedOptions::new(k).link(&DelayLine { d });
    opts.mode = mode;
    opts.record = true;
    opts.capture_final_state = true;
    opts
}

/// Full K × mode sweep of a sharded CIOQ policy on a latency-`d` fabric
/// against the delayed sequential reference.
fn check_cioq_delayed(
    cfg: &SwitchConfig,
    seq: impl Fn() -> Box<dyn CioqPolicy>,
    sharded: &dyn CioqShardPolicy,
    trace: &Trace,
    d: SlotId,
) {
    let (ref_report, ref_schedule, ref_state) = seq_cioq_delayed(cfg, seq(), trace, d);
    for k in SHARD_COUNTS {
        for mode in MODES {
            let what = format!("{} d={d} k={k} mode={mode:?}", ref_report.policy);
            let outcome = run_cioq_sharded(cfg, sharded, trace, sharded_options(k, mode, d))
                .unwrap_or_else(|e| panic!("{what}: sharded run failed: {e}"));
            let schedule = outcome.schedule.as_ref().expect("recording requested");
            assert_eq!(schedule, &ref_schedule, "{what}: decision transcript");
            assert_reports_equal(&outcome.report, &ref_report, &what);
            assert_states_equal(
                outcome.final_state.as_ref().expect("capture requested"),
                &ref_state,
                &what,
            );
        }
    }
}

fn check_crossbar_delayed(
    cfg: &SwitchConfig,
    seq: impl Fn() -> Box<dyn CrossbarPolicy>,
    sharded: &dyn CrossbarShardPolicy,
    trace: &Trace,
    d: SlotId,
) {
    let (ref_report, ref_schedule, ref_state) = seq_crossbar_delayed(cfg, seq(), trace, d);
    for k in SHARD_COUNTS {
        for mode in MODES {
            let what = format!("{} d={d} k={k} mode={mode:?}", ref_report.policy);
            let outcome = run_crossbar_sharded(cfg, sharded, trace, sharded_options(k, mode, d))
                .unwrap_or_else(|e| panic!("{what}: sharded run failed: {e}"));
            let schedule = outcome
                .crossbar_schedule
                .as_ref()
                .expect("recording requested");
            assert_eq!(schedule, &ref_schedule, "{what}: decision transcript");
            assert_reports_equal(&outcome.report, &ref_report, &what);
            assert_states_equal(
                outcome.final_state.as_ref().expect("capture requested"),
                &ref_state,
                &what,
            );
        }
    }
}

fn cioq_trace(cfg: &SwitchConfig, slots: u64, seed: u64) -> Trace {
    gen_trace(
        &OnOffBursty::new(
            0.85,
            6.0,
            ValueDist::Bimodal {
                high: 40,
                p_high: 0.2,
            },
        ),
        cfg,
        slots,
        seed,
    )
}

// ---------------------------------------------------------------------------
// 1. DelayLine { d: 0 } ≡ Immediate
// ---------------------------------------------------------------------------

/// `DelayLine { d: 0 }` must normalise to the immediate fast path in every
/// engine layer: identical transcripts, reports, and final states against
/// the plain (link-free) sequential reference, for all four policies.
#[test]
fn delay_zero_is_bit_identical_to_immediate() {
    let cfg = SwitchConfig::builder(6, 6)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap();
    let trace = cioq_trace(&cfg, 48, 0xD0);
    // d = 0 against the *immediate* sequential reference: both the
    // normalisation and the transport plumbing must vanish.
    check_cioq_delayed(
        &cfg,
        || Box::new(GreedyMatching::new()),
        &ShardedGm::new(),
        &trace,
        0,
    );
    check_cioq_delayed(
        &cfg,
        || Box::new(PreemptiveGreedy::new()),
        &ShardedPg::new(),
        &trace,
        0,
    );

    let xcfg = SwitchConfig::crossbar(6, 3, 1, 2);
    let xtrace = cioq_trace(&xcfg, 48, 0xD1);
    check_crossbar_delayed(
        &xcfg,
        || Box::new(CrossbarGreedyUnit::new()),
        &ShardedCgu::new(),
        &xtrace,
        0,
    );
    check_crossbar_delayed(
        &xcfg,
        || Box::new(CrossbarPreemptiveGreedy::new()),
        &ShardedCpg::new(),
        &xtrace,
        0,
    );
}

/// A d = 0 *sequential* run through the link API equals the plain one.
#[test]
fn delay_zero_sequential_matches_plain_run() {
    let cfg = SwitchConfig::cioq(5, 3, 1);
    let trace = cioq_trace(&cfg, 40, 0xD2);
    let plain = cioq_sim::run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
    let linked = cioq_sim::run_cioq_linked(
        &cfg,
        &mut PreemptiveGreedy::new(),
        &trace,
        &DelayLine { d: 0 },
    )
    .unwrap();
    assert_reports_equal(&linked, &plain, "sequential d=0 vs plain");
}

// ---------------------------------------------------------------------------
// 2. Sharded DelayLine { d } ≡ delayed sequential engine
// ---------------------------------------------------------------------------

/// CIOQ policies across the delay sweep: the sharded delay rings reproduce
/// the delayed sequential reference bit for bit.
#[test]
fn cioq_delayed_sharded_equals_sequential() {
    let cfg = SwitchConfig::builder(6, 6)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap();
    let trace = cioq_trace(&cfg, 48, 0xD3);
    for d in [1, 2, 4] {
        check_cioq_delayed(
            &cfg,
            || Box::new(GreedyMatching::new()),
            &ShardedGm::new(),
            &trace,
            d,
        );
        check_cioq_delayed(
            &cfg,
            || Box::new(PreemptiveGreedy::new()),
            &ShardedPg::new(),
            &trace,
            d,
        );
        check_cioq_delayed(
            &cfg,
            || Box::new(PreemptiveGreedy::without_preemption()),
            &ShardedPg::without_preemption(),
            &trace,
            d,
        );
    }
}

/// The crossbar policies across the delay sweep (the crosspoint → output
/// hop is the delayed one; `Q_ij → C_ij` stays chassis-local).
#[test]
fn crossbar_delayed_sharded_equals_sequential() {
    let cfg = SwitchConfig::crossbar(6, 3, 1, 2);
    let trace = cioq_trace(&cfg, 48, 0xD4);
    for d in [1, 2, 4] {
        check_crossbar_delayed(
            &cfg,
            || Box::new(CrossbarGreedyUnit::new()),
            &ShardedCgu::new(),
            &trace,
            d,
        );
        check_crossbar_delayed(
            &cfg,
            || Box::new(CrossbarPreemptiveGreedy::new()),
            &ShardedCpg::new(),
            &trace,
            d,
        );
    }
}

/// Incast concentrates landings: several inputs dispatch to one output in
/// consecutive cycles of one slot (speedup 2), so landing order within a
/// slot matters — the (cycle, output) sort must reproduce dispatch order.
#[test]
fn delayed_incast_landing_order() {
    let cfg = SwitchConfig::builder(8, 4)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap();
    let gen = IncastStorm::new(
        3,
        2,
        2,
        0.5,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.1,
        },
    );
    let trace = gen_trace(&gen, &cfg, 40, 0xD5);
    for d in [1, 3] {
        check_cioq_delayed(
            &cfg,
            || Box::new(PreemptiveGreedy::new()),
            &ShardedPg::new(),
            &trace,
            d,
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Conservation: nothing lost or duplicated in flight
// ---------------------------------------------------------------------------

/// Under full-fabric churn with drain, every arrived packet is accounted
/// for — transmitted, lost to an explicit policy decision, or still
/// buffered — at every delay. A packet dropped (or duplicated) by the
/// transport would break the equality.
#[test]
fn conservation_under_churn_all_delays() {
    let gen = FullFabricChurn::new(2, 5, ValueDist::Uniform { max: 50 });
    let cfg = SwitchConfig::cioq(10, 2, 1);
    let trace = gen_trace(&gen, &cfg, 40, 0xC0);
    for d in [0u64, 1, 2, 4, 8] {
        let link = DelayLine { d };
        let seq =
            cioq_sim::run_cioq_linked(&cfg, &mut PreemptiveGreedy::new(), &trace, &link).unwrap();
        seq.check_conservation()
            .unwrap_or_else(|e| panic!("sequential d={d}: {e}"));
        assert_eq!(seq.residual_count, 0, "drained run leaves nothing, d={d}");
        for k in SHARD_COUNTS {
            let outcome = run_cioq_sharded(
                &cfg,
                &ShardedPg::new(),
                &trace,
                sharded_options(k, ExecMode::Inline, d),
            )
            .unwrap();
            outcome
                .report
                .check_conservation()
                .unwrap_or_else(|e| panic!("sharded d={d} k={k}: {e}"));
            assert_reports_equal(&outcome.report, &seq, &format!("churn d={d} k={k}"));
        }
    }

    let xcfg = SwitchConfig::crossbar(10, 2, 1, 1);
    let xtrace = gen_trace(&gen, &xcfg, 40, 0xC1);
    for d in [0u64, 2, 8] {
        let link = DelayLine { d };
        let seq =
            cioq_sim::run_crossbar_linked(&xcfg, &mut CrossbarGreedyUnit::new(), &xtrace, &link)
                .unwrap();
        seq.check_conservation()
            .unwrap_or_else(|e| panic!("crossbar sequential d={d}: {e}"));
        assert_eq!(seq.residual_count, 0, "drained run leaves nothing, d={d}");
    }
}

/// Steady state (drain off): packets still riding the delay line when the
/// run stops must appear in the residual, keeping conservation exact.
#[test]
fn steady_state_residual_counts_in_flight() {
    let gen = FullFabricChurn::new(2, 5, ValueDist::Uniform { max: 50 });
    let cfg = SwitchConfig::cioq(8, 2, 1);
    let slots = 24u64;
    let trace = gen_trace(&gen, &cfg, slots, 0xC2);
    for d in [1u64, 4, 8] {
        let options = RunOptions {
            slots: Some(slots),
            drain: false,
            ..RunOptions::default()
        }
        .link(&DelayLine { d });
        let mut source = TraceSource::new(&trace);
        let report = Engine::new(cfg.clone(), options)
            .run_cioq(&mut GreedyMatching::new(), &mut source)
            .unwrap();
        report
            .check_conservation()
            .unwrap_or_else(|e| panic!("steady state d={d}: {e}"));
        assert!(
            report.residual_count > 0,
            "churn at load keeps backlog, d={d}"
        );

        // The sharded engine stops at the same point with the same books.
        let mut sh = ShardedOptions::new(2).link(&DelayLine { d });
        sh.slots = Some(slots);
        sh.drain = false;
        let outcome = run_cioq_sharded(&cfg, &ShardedGm::new(), &trace, sh).unwrap();
        outcome
            .report
            .check_conservation()
            .unwrap_or_else(|e| panic!("sharded steady state d={d}: {e}"));
        assert_reports_equal(&outcome.report, &report, &format!("steady d={d}"));
    }
}
