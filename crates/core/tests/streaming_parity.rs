//! Streaming-ingestion parity proofs: a run fed by the push-based
//! [`StreamingSource`] must be byte-identical to the same run fed by the
//! pre-materialised [`Trace`] — same report, final state, decision
//! transcript and checkpoint bytes — for all four policies, sequential
//! and sharded K ∈ {2, 4}, over Immediate, `DelayLine` and `DelayMatrix`
//! fabrics.
//!
//! Also proven here: the transcript does not depend on the channel depth
//! (depth 1, which forces backpressure on every slot, equals depth 64),
//! a killed streaming run restored from checkpoint bytes and re-fed from
//! the checkpoint's stream cursor reproduces the uninterrupted run, the
//! replay-file reader feeds a byte-identical stream, and the service API
//! (`serve_cioq`) wraps the whole seam without changing the transcript.

use cioq_core::{
    CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, ShardedCgu,
    ShardedCpg, ShardedGm, ShardedPg,
};
use cioq_model::{PortId, SlotId, SwitchConfig, Topology};
use cioq_sim::{
    run_cioq_sharded, run_cioq_sharded_streamed, run_crossbar_sharded,
    run_crossbar_sharded_streamed, serve_cioq, stream_trace, stream_trace_from, CioqPolicy,
    CioqShardPolicy, CrossbarPolicy, CrossbarRecording, CrossbarShardPolicy, DelayLine,
    DelayMatrix, Engine, EngineSnapshot, ExecMode, FabricLink, Immediate, Recording, RunOptions,
    RunOutcome, ShardedOptions, SwitchState, Trace, TraceSource,
};
use cioq_traffic::{gen_trace, OnOffBursty, ValueDist};

const SHARD_COUNTS: [usize; 2] = [2, 4];
const CHECKPOINT_EVERY: SlotId = 8;
const DEPTHS: [usize; 2] = [1, 64];

fn cioq_cfg() -> SwitchConfig {
    SwitchConfig::builder(6, 6)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap()
}

fn bursty_trace(cfg: &SwitchConfig, slots: u64, seed: u64) -> Trace {
    gen_trace(
        &OnOffBursty::new(
            0.85,
            6.0,
            ValueDist::Bimodal {
                high: 40,
                p_high: 0.2,
            },
        ),
        cfg,
        slots,
        seed,
    )
}

fn fabrics() -> Vec<(&'static str, Box<dyn FabricLink>)> {
    vec![
        ("immediate", Box::new(Immediate)),
        ("delay-line d=2", Box::new(DelayLine { d: 2 })),
        (
            "two-tier matrix",
            Box::new(DelayMatrix::new(Topology::two_tier(6, 6, 3, 0, 2).unwrap())),
        ),
    ]
}

fn run_options(link: &dyn FabricLink) -> RunOptions {
    RunOptions {
        checkpoint_every: Some(CHECKPOINT_EVERY),
        ..RunOptions::default()
    }
    .link(link)
}

fn assert_states_equal(a: &SwitchState, b: &SwitchState, what: &str) {
    let (va, vb) = (a.view(), b.view());
    for i in 0..va.n_inputs() {
        for j in 0..va.n_outputs() {
            let (input, output) = (PortId::from(i), PortId::from(j));
            assert_eq!(
                va.input_queue(input, output),
                vb.input_queue(input, output),
                "{what}: Q_{i}{j}"
            );
            if va.has_crossbar() {
                assert_eq!(
                    va.crossbar_queue(input, output),
                    vb.crossbar_queue(input, output),
                    "{what}: C_{i}{j}"
                );
            }
        }
    }
    for j in 0..va.n_outputs() {
        let output = PortId::from(j);
        assert_eq!(
            va.output_queue(output),
            vb.output_queue(output),
            "{what}: Q_{j}"
        );
    }
}

fn assert_checkpoints_identical(a: &[EngineSnapshot], b: &[EngineSnapshot], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: checkpoint count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.to_bytes(),
            y.to_bytes(),
            "{what}: checkpoint at slot {}",
            y.slot()
        );
    }
}

/// The sequential CIOQ parity check for one policy on one fabric: a
/// trace-fed reference run vs stream-fed runs at every depth, full
/// transcript equality included. The trace run pins `slots` to the
/// source horizon implicitly; the streamed runs have no horizon at all —
/// the arrival window closes when the producer hangs up.
fn check_seq_cioq<P: CioqPolicy>(
    make: impl Fn() -> P,
    cfg: &SwitchConfig,
    trace: &Trace,
    link: &dyn FabricLink,
    what: &str,
) -> RunOutcome {
    let mut rec = Recording::with_link(make(), link);
    let full = Engine::new(cfg.clone(), run_options(link))
        .run_cioq_full(&mut rec, &mut TraceSource::new(trace))
        .expect("trace-fed run");
    let full_sched = rec.into_schedule();
    assert!(
        full.checkpoints.len() >= 2,
        "{what}: run too short for the checkpoint cadence"
    );

    for depth in DEPTHS {
        let w = format!("{what} depth={depth}");
        let (mut src, pump) = stream_trace(trace, depth);
        let mut rec = Recording::with_link(make(), link);
        let streamed = Engine::new(cfg.clone(), run_options(link))
            .run_cioq_full(&mut rec, &mut src)
            .expect("stream-fed run");
        let stalls = src.stalls();
        drop(src);
        pump.join();
        let sched = rec.into_schedule();
        assert_eq!(streamed.report, full.report, "{w}: report");
        assert_states_equal(&streamed.final_state, &full.final_state, &w);
        assert_checkpoints_identical(&streamed.checkpoints, &full.checkpoints, &w);
        assert_eq!(sched.transfers, full_sched.transfers, "{w}: transfers");
        assert_eq!(sched.admissions, full_sched.admissions, "{w}: admissions");
        if depth == 1 {
            assert!(stalls >= 1, "{w}: depth-1 channel must engage backpressure");
        }
    }
    full
}

fn check_seq_crossbar<P: CrossbarPolicy>(
    make: impl Fn() -> P,
    cfg: &SwitchConfig,
    trace: &Trace,
    link: &dyn FabricLink,
    what: &str,
) -> RunOutcome {
    let mut rec = CrossbarRecording::with_link(make(), link);
    let full = Engine::new(cfg.clone(), run_options(link))
        .run_crossbar_full(&mut rec, &mut TraceSource::new(trace))
        .expect("trace-fed run");
    let full_sched = rec.into_schedule();

    for depth in DEPTHS {
        let w = format!("{what} depth={depth}");
        let (mut src, pump) = stream_trace(trace, depth);
        let mut rec = CrossbarRecording::with_link(make(), link);
        let streamed = Engine::new(cfg.clone(), run_options(link))
            .run_crossbar_full(&mut rec, &mut src)
            .expect("stream-fed run");
        let stalls = src.stalls();
        drop(src);
        pump.join();
        let sched = rec.into_schedule();
        assert_eq!(streamed.report, full.report, "{w}: report");
        assert_states_equal(&streamed.final_state, &full.final_state, &w);
        assert_checkpoints_identical(&streamed.checkpoints, &full.checkpoints, &w);
        assert_eq!(
            sched.input_transfers, full_sched.input_transfers,
            "{w}: input transfers"
        );
        assert_eq!(
            sched.output_transfers, full_sched.output_transfers,
            "{w}: output transfers"
        );
        assert_eq!(sched.admissions, full_sched.admissions, "{w}: admissions");
        if depth == 1 {
            assert!(stalls >= 1, "{w}: depth-1 channel must engage backpressure");
        }
    }
    full
}

fn sharded_options(
    k: usize,
    link: &dyn FabricLink,
    resume: Option<EngineSnapshot>,
) -> ShardedOptions {
    let mut opts = ShardedOptions::new(k).link(link);
    opts.mode = ExecMode::Inline;
    opts.record = true;
    opts.capture_final_state = true;
    opts.checkpoint_every = Some(CHECKPOINT_EVERY);
    opts.resume_from = resume;
    opts
}

/// Sharded parity for one CIOQ shard policy: the trace-fed sharded run vs
/// the stream-fed one, plus a stream-fed resume from the trace run's
/// middle checkpoint.
fn check_sharded_cioq(
    cfg: &SwitchConfig,
    policy: &dyn CioqShardPolicy,
    trace: &Trace,
    link: &dyn FabricLink,
    what: &str,
) {
    for shards in SHARD_COUNTS {
        let w = format!("{what} K={shards}");
        let full = run_cioq_sharded(cfg, policy, trace, sharded_options(shards, link, None))
            .unwrap_or_else(|e| panic!("{w}: trace-fed sharded run failed: {e}"));
        let full_sched = full.schedule.as_ref().expect("recording requested");

        let (mut src, pump) = stream_trace(trace, 2);
        let streamed =
            run_cioq_sharded_streamed(cfg, policy, &mut src, sharded_options(shards, link, None))
                .unwrap_or_else(|e| panic!("{w}: stream-fed sharded run failed: {e}"));
        drop(src);
        pump.join();
        assert_eq!(streamed.report, full.report, "{w}: report");
        assert_states_equal(
            streamed.final_state.as_ref().expect("capture requested"),
            full.final_state.as_ref().expect("capture requested"),
            &w,
        );
        assert_checkpoints_identical(&streamed.checkpoints, &full.checkpoints, &w);
        let sched = streamed.schedule.as_ref().expect("recording requested");
        assert_eq!(sched.transfers, full_sched.transfers, "{w}: transfers");
        assert_eq!(sched.admissions, full_sched.admissions, "{w}: admissions");

        // Kill/restore mid-stream: resume the sharded run from the middle
        // checkpoint's bytes, re-feeding the stream at its cursor.
        let snap = &full.checkpoints[full.checkpoints.len() / 2];
        let decoded = EngineSnapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
        let cursor = decoded.stream_cursor();
        let (mut src, pump) = stream_trace_from(trace, 2, cursor);
        let resumed = run_cioq_sharded_streamed(
            cfg,
            policy,
            &mut src,
            sharded_options(shards, link, Some(decoded)),
        )
        .unwrap_or_else(|e| panic!("{w}: resumed stream-fed run failed: {e}"));
        drop(src);
        pump.join();
        assert_eq!(
            resumed.report, full.report,
            "{w}: report after stream resume at slot {}",
            cursor.slot
        );
        let tail: Vec<EngineSnapshot> = full
            .checkpoints
            .iter()
            .filter(|c| c.slot() >= cursor.slot)
            .cloned()
            .collect();
        assert_checkpoints_identical(&resumed.checkpoints, &tail, &w);
    }
}

fn check_sharded_crossbar(
    cfg: &SwitchConfig,
    policy: &dyn CrossbarShardPolicy,
    trace: &Trace,
    link: &dyn FabricLink,
    what: &str,
) {
    for shards in SHARD_COUNTS {
        let w = format!("{what} K={shards}");
        let full = run_crossbar_sharded(cfg, policy, trace, sharded_options(shards, link, None))
            .unwrap_or_else(|e| panic!("{w}: trace-fed sharded run failed: {e}"));

        let (mut src, pump) = stream_trace(trace, 2);
        let streamed = run_crossbar_sharded_streamed(
            cfg,
            policy,
            &mut src,
            sharded_options(shards, link, None),
        )
        .unwrap_or_else(|e| panic!("{w}: stream-fed sharded run failed: {e}"));
        drop(src);
        pump.join();
        assert_eq!(streamed.report, full.report, "{w}: report");
        assert_states_equal(
            streamed.final_state.as_ref().expect("capture requested"),
            full.final_state.as_ref().expect("capture requested"),
            &w,
        );
        assert_checkpoints_identical(&streamed.checkpoints, &full.checkpoints, &w);
    }
}

// ---------------------------------------------------------------------------
// The headline matrix: 4 policies × sequential + sharded K ∈ {2, 4} × fabrics
// ---------------------------------------------------------------------------

#[test]
fn cioq_stream_parity() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xD0);
    for (label, link) in fabrics() {
        check_seq_cioq(
            GreedyMatching::new,
            &cfg,
            &trace,
            link.as_ref(),
            &format!("gm {label}"),
        );
        check_seq_cioq(
            PreemptiveGreedy::new,
            &cfg,
            &trace,
            link.as_ref(),
            &format!("pg {label}"),
        );
        check_sharded_cioq(
            &cfg,
            &ShardedGm::new(),
            &trace,
            link.as_ref(),
            &format!("gm {label}"),
        );
        check_sharded_cioq(
            &cfg,
            &ShardedPg::new(),
            &trace,
            link.as_ref(),
            &format!("pg {label}"),
        );
    }
}

#[test]
fn crossbar_stream_parity() {
    let cfg = SwitchConfig::crossbar(6, 3, 1, 2);
    let trace = bursty_trace(&cfg, 48, 0xD1);
    for (label, link) in fabrics() {
        check_seq_crossbar(
            CrossbarGreedyUnit::new,
            &cfg,
            &trace,
            link.as_ref(),
            &format!("cgu {label}"),
        );
        check_seq_crossbar(
            CrossbarPreemptiveGreedy::new,
            &cfg,
            &trace,
            link.as_ref(),
            &format!("cpg {label}"),
        );
        check_sharded_crossbar(
            &cfg,
            &ShardedCgu::new(),
            &trace,
            link.as_ref(),
            &format!("cgu {label}"),
        );
        check_sharded_crossbar(
            &cfg,
            &ShardedCpg::new(),
            &trace,
            link.as_ref(),
            &format!("cpg {label}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Mid-stream kill/restore, replay files, threads mode, service API
// ---------------------------------------------------------------------------

/// Kill a sequential streaming run at its middle checkpoint, restore from
/// the bytes, and re-feed the stream from the checkpoint's cursor: report
/// and the checkpoint tail must match the uninterrupted run.
#[test]
fn sequential_stream_restore_mid_stream() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xD2);
    let link = DelayLine { d: 2 };
    let (full, _) = {
        let (mut src, pump) = stream_trace(&trace, 4);
        let full = Engine::new(cfg.clone(), run_options(&link))
            .run_cioq_full(&mut PreemptiveGreedy::new(), &mut src)
            .expect("stream-fed run");
        drop(src);
        pump.join();
        (full, ())
    };
    let snap = &full.checkpoints[full.checkpoints.len() / 2];
    let decoded = EngineSnapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
    let cursor = decoded.stream_cursor();
    assert_eq!(cursor.slot, snap.slot(), "cursor sits at the kill slot");

    let (mut src, pump) = stream_trace_from(&trace, 4, cursor);
    let resumed = Engine::restore(&decoded, run_options(&link))
        .expect("restore own checkpoint")
        .run_cioq_full(&mut PreemptiveGreedy::new(), &mut src)
        .expect("resumed stream-fed run");
    drop(src);
    pump.join();
    assert_eq!(resumed.report, full.report, "report after stream resume");
    let tail: Vec<EngineSnapshot> = full
        .checkpoints
        .iter()
        .filter(|c| c.slot() >= cursor.slot)
        .cloned()
        .collect();
    assert_checkpoints_identical(&resumed.checkpoints, &tail, "stream resume");
}

/// A replay file (the `cioq-trace v1` wire format) streamed through the
/// incremental reader feeds the same run as the in-memory trace.
#[test]
fn replay_file_stream_matches_trace() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xD3);
    let link = DelayLine { d: 2 };
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("serialize trace");

    let full = Engine::new(cfg.clone(), run_options(&link))
        .run_cioq_full(&mut GreedyMatching::new(), &mut TraceSource::new(&trace))
        .expect("trace-fed run");

    let (mut src, pump) =
        cioq_sim::stream_reader(std::io::BufReader::new(std::io::Cursor::new(bytes)), 4)
            .expect("valid header");
    let streamed = Engine::new(cfg.clone(), run_options(&link))
        .run_cioq_full(&mut GreedyMatching::new(), &mut src)
        .expect("reader-fed run");
    drop(src);
    pump.join();
    assert_eq!(streamed.report, full.report, "replay-file report");
    assert_checkpoints_identical(&streamed.checkpoints, &full.checkpoints, "replay file");
}

/// Thread scheduling cannot leak into a streamed sharded run: threaded
/// workers with a streaming coordinator take the same checkpoints as the
/// inline trace-fed run.
#[test]
fn threads_mode_streamed_matches_inline_trace() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xD4);
    let link = DelayLine { d: 2 };
    let inline = run_cioq_sharded(
        &cfg,
        &ShardedPg::new(),
        &trace,
        sharded_options(4, &link, None),
    )
    .expect("inline trace-fed run");

    let (mut src, pump) = stream_trace(&trace, 2);
    let mut opts = sharded_options(4, &link, None);
    opts.mode = ExecMode::Threads;
    let threaded = run_cioq_sharded_streamed(&cfg, &ShardedPg::new(), &mut src, opts)
        .expect("threaded stream-fed run");
    drop(src);
    pump.join();
    assert_eq!(threaded.report, inline.report, "threaded streamed report");
    assert_checkpoints_identical(&threaded.checkpoints, &inline.checkpoints, "threads mode");
}

/// The service entry point wires channel + producer + engine + drain the
/// same way the manual seam does.
#[test]
fn service_api_matches_trace_fed_run() {
    let cfg = cioq_cfg();
    let trace = bursty_trace(&cfg, 48, 0xD5);
    let full = Engine::new(cfg.clone(), RunOptions::default())
        .run_cioq_full(&mut GreedyMatching::new(), &mut TraceSource::new(&trace))
        .expect("trace-fed run");

    let packets = trace.packets().to_vec();
    let served = serve_cioq(
        cfg.clone(),
        RunOptions::default(),
        &mut GreedyMatching::new(),
        4,
        move |tx| {
            let mut i = 0;
            while i < packets.len() {
                let slot = packets[i].arrival;
                let mut batch = Vec::new();
                while i < packets.len() && packets[i].arrival == slot {
                    batch.push(packets[i]);
                    i += 1;
                }
                if tx.send(slot, batch).is_err() {
                    return;
                }
            }
        },
    )
    .expect("service run");
    assert_eq!(served.outcome.report, full.report, "service report");
    assert_states_equal(
        &served.outcome.final_state,
        &full.final_state,
        "service final state",
    );
}
