//! Property tests for the snapshot codec and the restore seam, over
//! random switch geometries, fabrics and traffic:
//!
//! * `from_bytes(to_bytes(s)) == s` and re-encoding reproduces the exact
//!   bytes (the serialization is canonical);
//! * `Engine::restore(s).snapshot() == s` — restore is lossless;
//! * restoring the re-captured snapshot again is idempotent (double
//!   restore changes nothing);
//! * corrupt inputs (truncation, bad magic, trailing garbage) are
//!   rejected with an error, never misparsed.

use cioq_core::{CrossbarPreemptiveGreedy, PreemptiveGreedy};
use cioq_model::{SwitchConfig, Topology};
use cioq_sim::{
    DelayLine, DelayMatrix, Engine, EngineSnapshot, FabricLink, RunOptions, RunOutcome, TraceSource,
};
use cioq_traffic::{gen_trace, FullFabricChurn, ValueDist};
use proptest::prelude::*;

fn options(link: &dyn FabricLink) -> RunOptions {
    RunOptions {
        checkpoint_every: Some(4),
        ..RunOptions::default()
    }
    .link(link)
}

/// Run a random-config engine to completion, collecting checkpoints.
fn checkpointed_run(cfg: &SwitchConfig, link: &dyn FabricLink, seed: u64) -> RunOutcome {
    let gen = FullFabricChurn::new(2, 5, ValueDist::Uniform { max: 50 });
    let trace = gen_trace(&gen, cfg, 24, seed);
    let engine = Engine::new(cfg.clone(), options(link));
    let mut source = TraceSource::new(&trace);
    if cfg.crossbar_capacity.is_some() {
        engine
            .run_crossbar_full(&mut CrossbarPreemptiveGreedy::new(), &mut source)
            .expect("crossbar run")
    } else {
        engine
            .run_cioq_full(&mut PreemptiveGreedy::new(), &mut source)
            .expect("cioq run")
    }
}

fn assert_roundtrip(snap: &EngineSnapshot, link: &dyn FabricLink) {
    let bytes = snap.to_bytes();
    let decoded = EngineSnapshot::from_bytes(&bytes).expect("decode of a fresh snapshot");
    assert_eq!(&decoded, snap, "decode(encode) structural identity");
    assert_eq!(decoded.to_bytes(), bytes, "re-encoding is canonical");

    let restored = Engine::restore(&decoded, options(link)).expect("restore of a fresh snapshot");
    let recaptured = restored.snapshot();
    assert_eq!(&recaptured, snap, "restore(snapshot) is lossless");

    // Double restore: the recaptured snapshot restores to the same bytes.
    let again = Engine::restore(&recaptured, options(link))
        .expect("second restore")
        .snapshot();
    assert_eq!(again.to_bytes(), bytes, "double restore is idempotent");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CIOQ and crossbar geometries × uniform and matrix fabrics: every
    /// checkpoint of a random run survives the full round-trip.
    #[test]
    fn snapshots_roundtrip_over_random_configs(
        (n_inputs, n_outputs, speedup) in (2usize..7, 2usize..7, 1u32..3),
        (input_cap, output_cap, crossbar_sel) in (1usize..4, 1usize..4, 0usize..3),
        (racks, uniform_d, matrix_sel) in (1usize..4, 0u64..4, 0u8..2),
        (iracks, oracks, latency) in (
            prop::collection::vec(0u16..4, 8),
            prop::collection::vec(0u16..4, 8),
            prop::collection::vec(0u64..5, 16),
        ),
        seed in 0u64..1024,
    ) {
        let mut builder = SwitchConfig::builder(n_inputs, n_outputs)
            .speedup(speedup)
            .input_capacity(input_cap)
            .output_capacity(output_cap);
        // 0 = plain CIOQ, 1..=2 = crossbar with that buffer capacity.
        if crossbar_sel > 0 {
            builder = builder.crossbar_capacity(crossbar_sel);
        }
        let cfg = builder.build().expect("valid random config");

        let link: Box<dyn FabricLink> = if matrix_sel == 1 {
            let topo = Topology::explicit(
                n_inputs,
                n_outputs,
                racks,
                iracks[..n_inputs].iter().map(|&r| r % racks as u16).collect(),
                oracks[..n_outputs].iter().map(|&r| r % racks as u16).collect(),
                latency[..racks * racks].to_vec(),
            )
            .expect("valid random topology");
            Box::new(DelayMatrix::new(topo))
        } else {
            Box::new(DelayLine { d: uniform_d })
        };

        let outcome = checkpointed_run(&cfg, link.as_ref(), seed);
        prop_assert!(
            !outcome.checkpoints.is_empty(),
            "24 arrival slots at cadence 4 must yield checkpoints"
        );
        for snap in &outcome.checkpoints {
            assert_roundtrip(snap, link.as_ref());
        }
    }
}

// ---------------------------------------------------------------------------
// Corrupt inputs are rejected, never misparsed
// ---------------------------------------------------------------------------

fn sample_snapshot() -> EngineSnapshot {
    let cfg = SwitchConfig::cioq(3, 2, 1);
    let link = DelayLine { d: 1 };
    let outcome = checkpointed_run(&cfg, &link, 0x51);
    outcome.checkpoints[0].clone()
}

#[test]
fn truncated_bytes_are_rejected() {
    let bytes = sample_snapshot().to_bytes();
    for cut in [0, 1, 4, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            EngineSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_snapshot().to_bytes();
    bytes[0] ^= 0xFF;
    assert!(EngineSnapshot::from_bytes(&bytes).is_err());
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = sample_snapshot().to_bytes();
    bytes.push(0);
    assert!(
        EngineSnapshot::from_bytes(&bytes).is_err(),
        "a snapshot must consume its input exactly"
    );
}

#[test]
fn unknown_version_is_rejected() {
    let mut bytes = sample_snapshot().to_bytes();
    // The u32 version follows the 8-byte magic, little-endian.
    bytes[8] = 0xFF;
    assert!(EngineSnapshot::from_bytes(&bytes).is_err());
}
