//! Lockstep equivalence of the sharded engine and the sequential engine:
//! identical **per-cycle transfer sets**, **admission transcripts**, **run
//! reports**, and **final queue states** — for all four policies, shard
//! counts K ∈ {1, 2, 4}, and both execution modes (inline and real
//! threads).
//!
//! The sequential side runs under a recording wrapper so its full decision
//! transcript is captured; the sharded side records its merged decisions.
//! Equal transcripts + equal final states + equal reports pin the two
//! engines cycle for cycle, not just end to end — the ISSUE's "bit
//! identical" bar. The thread-count matrix in CI reruns this suite under
//! different `--test-threads` so scheduling races cannot hide behind one
//! lucky interleaving.

use cioq_core::{
    CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, SelectionOrder,
    ShardedCgu, ShardedCpg, ShardedGm, ShardedPg,
};
use cioq_model::{PortId, SwitchConfig};
use cioq_sim::{
    run_cioq_sharded, run_crossbar_sharded, CioqPolicy, CioqShardPolicy, CrossbarPolicy,
    CrossbarRecording, CrossbarShardPolicy, ExecMode, RecordedCrossbarSchedule, RecordedSchedule,
    Recording, RunOptions, RunReport, ShardedOptions, SwitchState, Trace, TraceSource,
};
use cioq_traffic::adversary::gm_iq_flood;
use cioq_traffic::{gen_trace, FullFabricChurn, IncastStorm, OnOffBursty, TrafficGen, ValueDist};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const MODES: [ExecMode; 2] = [ExecMode::Inline, ExecMode::Threads];

// ---- comparison helpers ----

fn assert_reports_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.policy, b.policy, "{what}: policy name");
    assert_eq!(a.slots, b.slots, "{what}: slots");
    assert_eq!(a.arrived, b.arrived, "{what}: arrived");
    assert_eq!(a.arrived_value, b.arrived_value, "{what}: arrived value");
    assert_eq!(a.accepted, b.accepted, "{what}: accepted");
    assert_eq!(a.transferred, b.transferred, "{what}: transferred");
    assert_eq!(
        a.transferred_to_crossbar, b.transferred_to_crossbar,
        "{what}: crossbar transfers"
    );
    assert_eq!(a.transmitted, b.transmitted, "{what}: transmitted");
    assert_eq!(a.benefit, b.benefit, "{what}: benefit");
    assert_eq!(a.losses, b.losses, "{what}: losses");
    assert_eq!(a.latency_sum, b.latency_sum, "{what}: latency sum");
    assert_eq!(
        a.latency_histogram, b.latency_histogram,
        "{what}: latency histogram"
    );
    assert_eq!(
        a.per_output_transmitted, b.per_output_transmitted,
        "{what}: per-output counts"
    );
    assert_eq!(a.residual_count, b.residual_count, "{what}: residual count");
    assert_eq!(a.residual_value, b.residual_value, "{what}: residual value");
}

fn assert_states_equal(a: &SwitchState, b: &SwitchState, what: &str) {
    let (va, vb) = (a.view(), b.view());
    assert_eq!(va.n_inputs(), vb.n_inputs(), "{what}: inputs");
    assert_eq!(va.n_outputs(), vb.n_outputs(), "{what}: outputs");
    for i in 0..va.n_inputs() {
        for j in 0..va.n_outputs() {
            let (input, output) = (PortId::from(i), PortId::from(j));
            assert_eq!(
                va.input_queue(input, output),
                vb.input_queue(input, output),
                "{what}: Q_{i}{j}"
            );
            if va.has_crossbar() {
                assert_eq!(
                    va.crossbar_queue(input, output),
                    vb.crossbar_queue(input, output),
                    "{what}: C_{i}{j}"
                );
            }
        }
    }
    for j in 0..va.n_outputs() {
        let output = PortId::from(j);
        assert_eq!(
            va.output_queue(output),
            vb.output_queue(output),
            "{what}: Q_{j}"
        );
    }
}

/// Sequential reference run: full transcript + report + final state.
fn seq_cioq(
    cfg: &SwitchConfig,
    policy: Box<dyn CioqPolicy>,
    trace: &Trace,
) -> (RunReport, RecordedSchedule, SwitchState) {
    struct BoxedCioq(Box<dyn CioqPolicy>);
    impl CioqPolicy for BoxedCioq {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            p: &cioq_model::Packet,
        ) -> cioq_sim::Admission {
            self.0.admit(view, p)
        }
        fn schedule(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::Transfer>,
        ) {
            self.0.schedule(view, cycle, out)
        }
        fn transmit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            output: PortId,
        ) -> cioq_sim::TransmitChoice {
            self.0.transmit(view, output)
        }
    }
    let mut rec = Recording::new(BoxedCioq(policy));
    let mut source = TraceSource::new(trace);
    let (report, state) = cioq_sim::Engine::new(cfg.clone(), RunOptions::default())
        .run_cioq_capturing(&mut rec, &mut source)
        .expect("sequential run");
    (report, rec.into_schedule(), state)
}

fn seq_crossbar(
    cfg: &SwitchConfig,
    policy: Box<dyn CrossbarPolicy>,
    trace: &Trace,
) -> (RunReport, RecordedCrossbarSchedule, SwitchState) {
    struct BoxedXbar(Box<dyn CrossbarPolicy>);
    impl CrossbarPolicy for BoxedXbar {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn admit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            p: &cioq_model::Packet,
        ) -> cioq_sim::Admission {
            self.0.admit(view, p)
        }
        fn schedule_input(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::InputTransfer>,
        ) {
            self.0.schedule_input(view, cycle, out)
        }
        fn schedule_output(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::OutputTransfer>,
        ) {
            self.0.schedule_output(view, cycle, out)
        }
        fn transmit(
            &mut self,
            view: &cioq_sim::SwitchView<'_>,
            output: PortId,
        ) -> cioq_sim::TransmitChoice {
            self.0.transmit(view, output)
        }
    }
    let mut rec = CrossbarRecording::new(BoxedXbar(policy));
    let mut source = TraceSource::new(trace);
    let (report, state) = cioq_sim::Engine::new(cfg.clone(), RunOptions::default())
        .run_crossbar_capturing(&mut rec, &mut source)
        .expect("sequential run");
    (report, rec.into_schedule(), state)
}

fn sharded_options(k: usize, mode: ExecMode) -> ShardedOptions {
    let mut opts = ShardedOptions::new(k);
    opts.mode = mode;
    opts.record = true;
    opts.capture_final_state = true;
    opts
}

/// Run the sharded twin across the full K × mode matrix and compare every
/// observable against the sequential reference.
fn check_cioq(
    cfg: &SwitchConfig,
    seq: impl Fn() -> Box<dyn CioqPolicy>,
    sharded: &dyn CioqShardPolicy,
    trace: &Trace,
) {
    let (ref_report, ref_schedule, ref_state) = seq_cioq(cfg, seq(), trace);
    for k in SHARD_COUNTS {
        for mode in MODES {
            let what = format!("{} k={k} mode={mode:?}", ref_report.policy);
            let outcome = run_cioq_sharded(cfg, sharded, trace, sharded_options(k, mode))
                .unwrap_or_else(|e| panic!("{what}: sharded run failed: {e}"));
            let schedule = outcome.schedule.as_ref().expect("recording requested");
            assert_eq!(
                schedule.admissions, ref_schedule.admissions,
                "{what}: admissions"
            );
            assert_eq!(
                schedule.transfers, ref_schedule.transfers,
                "{what}: per-cycle transfer sets"
            );
            assert_reports_equal(&outcome.report, &ref_report, &what);
            assert_states_equal(
                outcome.final_state.as_ref().expect("capture requested"),
                &ref_state,
                &what,
            );
        }
    }
}

fn check_crossbar(
    cfg: &SwitchConfig,
    seq: impl Fn() -> Box<dyn CrossbarPolicy>,
    sharded: &dyn CrossbarShardPolicy,
    trace: &Trace,
) {
    let (ref_report, ref_schedule, ref_state) = seq_crossbar(cfg, seq(), trace);
    for k in SHARD_COUNTS {
        for mode in MODES {
            let what = format!("{} k={k} mode={mode:?}", ref_report.policy);
            let outcome = run_crossbar_sharded(cfg, sharded, trace, sharded_options(k, mode))
                .unwrap_or_else(|e| panic!("{what}: sharded run failed: {e}"));
            let schedule = outcome
                .crossbar_schedule
                .as_ref()
                .expect("recording requested");
            assert_eq!(
                schedule.admissions, ref_schedule.admissions,
                "{what}: admissions"
            );
            assert_eq!(
                schedule.input_transfers, ref_schedule.input_transfers,
                "{what}: input subphases"
            );
            assert_eq!(
                schedule.output_transfers, ref_schedule.output_transfers,
                "{what}: output subphases"
            );
            assert_reports_equal(&outcome.report, &ref_report, &what);
            assert_states_equal(
                outcome.final_state.as_ref().expect("capture requested"),
                &ref_state,
                &what,
            );
        }
    }
}

fn trace_from(n: usize, arrivals: &[(u8, u8, u8, u64)]) -> Trace {
    Trace::from_tuples(arrivals.iter().map(|&(t, i, j, v)| {
        (
            t as u64,
            PortId((i as usize % n) as u16),
            PortId((j as usize % n) as u16),
            v,
        )
    }))
}

// ---- random traffic (property tests) ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random bursty/value-skewed traces: GM and PG (default β, swept β,
    /// no-preemption) sharded K ∈ {1,2,4} × {inline, threads} equal the
    /// sequential engine in every observable.
    #[test]
    fn cioq_sharded_equals_sequential(
        n in 1usize..7,
        speedup in 1u32..4,
        in_cap in 1usize..4,
        out_cap in 1usize..4,
        arrivals in prop::collection::vec(
            (0u8..12, 0u8..7, 0u8..7, 1u64..64),
            0..110,
        ),
    ) {
        let cfg = SwitchConfig::builder(n, n)
            .speedup(speedup)
            .input_capacity(in_cap)
            .output_capacity(out_cap)
            .build()
            .unwrap();
        let trace = trace_from(n, &arrivals);
        check_cioq(&cfg, || Box::new(GreedyMatching::new()), &ShardedGm::new(), &trace);
        check_cioq(&cfg, || Box::new(PreemptiveGreedy::new()), &ShardedPg::new(), &trace);
        check_cioq(
            &cfg,
            || Box::new(PreemptiveGreedy::with_beta(1.25)),
            &ShardedPg::with_beta(1.25),
            &trace,
        );
        check_cioq(
            &cfg,
            || Box::new(PreemptiveGreedy::without_preemption()),
            &ShardedPg::without_preemption(),
            &trace,
        );
    }

    /// The same matrix for the buffered-crossbar policies, covering both
    /// subphases and the cross-shard dirty-mark forwarding.
    #[test]
    fn crossbar_sharded_equals_sequential(
        n in 1usize..6,
        speedup in 1u32..3,
        in_cap in 1usize..4,
        out_cap in 1usize..3,
        xbar_cap in 1usize..3,
        arrivals in prop::collection::vec(
            (0u8..10, 0u8..6, 0u8..6, 1u64..64),
            0..90,
        ),
    ) {
        let cfg = SwitchConfig::builder(n, n)
            .speedup(speedup)
            .input_capacity(in_cap)
            .output_capacity(out_cap)
            .crossbar_capacity(xbar_cap)
            .build()
            .unwrap();
        let trace = trace_from(n, &arrivals);
        check_crossbar(&cfg, || Box::new(CrossbarGreedyUnit::new()), &ShardedCgu::new(), &trace);
        check_crossbar(
            &cfg,
            || Box::new(CrossbarGreedyUnit::with_selection(SelectionOrder::RoundRobin)),
            &ShardedCgu::with_selection(SelectionOrder::RoundRobin),
            &trace,
        );
        check_crossbar(
            &cfg,
            || Box::new(CrossbarPreemptiveGreedy::new()),
            &ShardedCpg::new(),
            &trace,
        );
        check_crossbar(
            &cfg,
            || Box::new(CrossbarPreemptiveGreedy::with_params(1.5, 2.0)),
            &ShardedCpg::with_params(1.5, 2.0),
            &trace,
        );
    }
}

// ---- adversarial traffic (deterministic) ----

/// The IQ-model flood that pins greedy unit algorithms to `2 − 1/m`: a
/// single output column (shards 1..K own empty output bands — the extreme
/// asymmetric partition).
#[test]
fn adversarial_flood_equivalence() {
    let cfg = SwitchConfig::iq_model(8, 4);
    let trace = gm_iq_flood(8, 4);
    check_cioq(
        &cfg,
        || Box::new(GreedyMatching::new()),
        &ShardedGm::new(),
        &trace,
    );
    check_cioq(
        &cfg,
        || Box::new(PreemptiveGreedy::new()),
        &ShardedPg::new(),
        &trace,
    );
}

/// Incast storms dirty several whole VOQ columns per slot — maximal
/// cross-shard output contention for the merge step.
#[test]
fn incast_storm_equivalence() {
    let cfg = SwitchConfig::cioq(12, 3, 2);
    let gen = IncastStorm::new(
        4,
        3,
        2,
        0.4,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.1,
        },
    );
    let trace = gen_trace(&gen, &cfg, 48, 0xC01);
    check_cioq(
        &cfg,
        || Box::new(GreedyMatching::new()),
        &ShardedGm::new(),
        &trace,
    );
    check_cioq(
        &cfg,
        || Box::new(PreemptiveGreedy::new()),
        &ShardedPg::new(),
        &trace,
    );

    let xcfg = SwitchConfig::crossbar(12, 3, 2, 2);
    let xtrace = gen_trace(&gen, &xcfg, 48, 0xC02);
    check_crossbar(
        &xcfg,
        || Box::new(CrossbarGreedyUnit::new()),
        &ShardedCgu::new(),
        &xtrace,
    );
    check_crossbar(
        &xcfg,
        || Box::new(CrossbarPreemptiveGreedy::new()),
        &ShardedCpg::new(),
        &xtrace,
    );
}

/// Full-fabric churn: every row dirtied every slot with rotating columns,
/// so every shard's cache repairs and the cross-shard mark stream are under
/// constant pressure.
#[test]
fn full_fabric_churn_equivalence() {
    let gen = FullFabricChurn::new(2, 5, ValueDist::Uniform { max: 50 });

    let cfg = SwitchConfig::cioq(10, 2, 1);
    let trace = gen_trace(&gen, &cfg, 40, 0xC11);
    check_cioq(
        &cfg,
        || Box::new(GreedyMatching::new()),
        &ShardedGm::new(),
        &trace,
    );
    check_cioq(
        &cfg,
        || Box::new(PreemptiveGreedy::new()),
        &ShardedPg::new(),
        &trace,
    );

    let xcfg = SwitchConfig::crossbar(10, 2, 1, 1);
    let xtrace = gen_trace(&gen, &xcfg, 40, 0xC12);
    check_crossbar(
        &xcfg,
        || Box::new(CrossbarGreedyUnit::new()),
        &ShardedCgu::new(),
        &xtrace,
    );
    check_crossbar(
        &xcfg,
        || Box::new(CrossbarPreemptiveGreedy::new()),
        &ShardedCpg::new(),
        &xtrace,
    );
}

/// Bursty on-off traffic on an asymmetric switch: shards get uneven,
/// non-square bands (N ≠ M exercises the independent input/output
/// partitions).
#[test]
fn asymmetric_bursty_equivalence() {
    let cfg = SwitchConfig::builder(9, 5)
        .speedup(2)
        .input_capacity(3)
        .output_capacity(2)
        .build()
        .unwrap();
    let gen = OnOffBursty::new(
        0.8,
        6.0,
        ValueDist::Bimodal {
            high: 40,
            p_high: 0.2,
        },
    );
    let trace = gen.generate(&cfg, 64, 0xA5);
    check_cioq(
        &cfg,
        || Box::new(GreedyMatching::new()),
        &ShardedGm::new(),
        &trace,
    );
    check_cioq(
        &cfg,
        || Box::new(PreemptiveGreedy::new()),
        &ShardedPg::new(),
        &trace,
    );
}

/// More shards than ports: empty shards must be inert, not wrong.
#[test]
fn more_shards_than_ports() {
    let cfg = SwitchConfig::cioq(2, 2, 1);
    let trace = Trace::from_tuples([
        (0, PortId(0), PortId(1), 9),
        (0, PortId(1), PortId(0), 4),
        (1, PortId(0), PortId(0), 7),
        (2, PortId(1), PortId(1), 2),
    ]);
    let (ref_report, ref_schedule, ref_state) =
        seq_cioq(&cfg, Box::new(PreemptiveGreedy::new()), &trace);
    for mode in MODES {
        let outcome =
            run_cioq_sharded(&cfg, &ShardedPg::new(), &trace, sharded_options(5, mode)).unwrap();
        assert_eq!(
            outcome.schedule.as_ref().unwrap().transfers,
            ref_schedule.transfers
        );
        assert_reports_equal(&outcome.report, &ref_report, "k=5 on 2 ports");
        assert_states_equal(
            outcome.final_state.as_ref().unwrap(),
            &ref_state,
            "k=5 on 2 ports",
        );
    }
}
