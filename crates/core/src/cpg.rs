//! CPG — Crossbar Preemptive Greedy (§3.2, Theorem 4): ≈14.83-competitive
//! for arbitrary values on buffered crossbar switches. With α = β it
//! degenerates to the prior 16.24-competitive algorithm of Kesselman,
//! Kogan & Segal [21]; the paper's improvement is exactly the freedom to
//! pick α ≠ β.

use crate::incremental::{BuildMode, CpgCache};
use crate::params::{cpg_alpha_star, cpg_beta_star};
use cioq_model::{exceeds_factor, Cycle, Packet, PortId, Value};
use cioq_sim::{Admission, CrossbarPolicy, InputTransfer, OutputTransfer, PacketPick, SwitchView};

/// The Crossbar Preemptive Greedy algorithm with parameters β, α ≥ 1.
///
/// * Arrival: as PG (accept, preempting `l_ij` when full and smaller).
/// * Input subphase (per input port `i`): among
///   `J = { j : |Q_ij| > 0 ∧ (|C_ij| < B(C_ij) ∨ v(g_ij) > β·v(lc_ij)) }`,
///   pick `j` maximizing `v(g_ij)` and forward `g_ij` into `C_ij`,
///   preempting `lc_ij` when full.
/// * Output subphase (per output port `j`): pick `i` maximizing `v(gc_ij)`
///   among non-empty `C_ij`; forward iff
///   `|Q_j| < B(Q_j) ∨ v(gc_ij) > α·v(l_j)`, preempting `l_j` when full.
/// * Transmission: send the greatest-value packet of each non-empty `Q_j`.
#[derive(Debug)]
pub struct CrossbarPreemptiveGreedy {
    beta: f64,
    alpha: f64,
    mode: BuildMode,
    cache: CpgCache,
    name: String,
}

impl CrossbarPreemptiveGreedy {
    /// CPG at the optimal (β★, α★) of Theorem 4.
    pub fn new() -> Self {
        Self::with_params(cpg_beta_star(), cpg_alpha_star())
    }

    /// CPG with explicit parameters (experiments sweep these; `α = β`
    /// reproduces the prior algorithm of [21]).
    pub fn with_params(beta: f64, alpha: f64) -> Self {
        assert!(beta >= 1.0 && alpha >= 1.0, "alpha, beta must be >= 1");
        CrossbarPreemptiveGreedy {
            beta,
            alpha,
            mode: BuildMode::default(),
            cache: CpgCache::new(),
            name: format!("CPG(beta={beta:.3},alpha={alpha:.3})"),
        }
    }

    /// Select how the per-port candidates are maintained (see
    /// [`BuildMode`]).
    pub fn build_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    /// The prior single-parameter algorithm of Kesselman et al. [21]
    /// (α = β at that paper's optimum for `cpg_ratio(β, β)`).
    pub fn single_parameter() -> Self {
        // Minimize cpg_ratio(b, b) numerically once: b* ≈ 2.097.
        let mut best = (f64::INFINITY, 2.0);
        let mut b = 1.05;
        while b < 5.0 {
            let r = crate::params::cpg_ratio(b, b);
            if r < best.0 {
                best = (r, b);
            }
            b += 1e-4;
        }
        let mut policy = Self::with_params(best.1, best.1);
        policy.name = format!("CPG(alpha=beta={:.3})", best.1);
        policy
    }

    /// Configured β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Configured α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for CrossbarPreemptiveGreedy {
    fn default() -> Self {
        Self::new()
    }
}

impl CrossbarPolicy for CrossbarPreemptiveGreedy {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        let queue = view.input_queue(packet.input, packet.output);
        if !queue.is_full() {
            return Admission::Accept;
        }
        let least = queue.tail_value().expect("full queue has a tail");
        if least < packet.value {
            Admission::AcceptPreemptingLeast
        } else {
            Admission::Reject
        }
    }

    fn schedule_input(
        &mut self,
        view: &SwitchView<'_>,
        _cycle: Cycle,
        out: &mut Vec<InputTransfer>,
    ) {
        if self.mode == BuildMode::Incremental {
            // Only rows with a dirtied `Q_ij` or `C_ij` cell are rescanned;
            // the argmax of an untouched row cannot have changed.
            self.cache.sync(view);
            self.cache.refresh_rows(view, self.beta);
            for (i, best) in self.cache.row_best.iter().enumerate() {
                if let Some((_, j)) = *best {
                    out.push(InputTransfer {
                        input: PortId::from(i),
                        output: PortId::from(j),
                        pick: PacketPick::Greatest,
                        preempt_if_full: true,
                    });
                }
            }
            return;
        }
        for i in 0..view.n_inputs() {
            let input = PortId::from(i);
            let mut best: Option<(Value, usize)> = None;
            for j in 0..view.n_outputs() {
                let output = PortId::from(j);
                let Some(g_ij) = view.input_queue(input, output).head_value() else {
                    continue;
                };
                let xbar = view.crossbar_queue(input, output);
                let eligible = !xbar.is_full()
                    || exceeds_factor(
                        g_ij,
                        self.beta,
                        xbar.tail_value().expect("full queue has a tail"),
                    );
                if !eligible {
                    continue;
                }
                // Maximize v(g_ij); ties to the smallest j (deterministic).
                if best.is_none_or(|(bv, _)| g_ij > bv) {
                    best = Some((g_ij, j));
                }
            }
            if let Some((_, j)) = best {
                out.push(InputTransfer {
                    input,
                    output: PortId::from(j),
                    pick: PacketPick::Greatest,
                    preempt_if_full: true,
                });
            }
        }
    }

    fn schedule_output(
        &mut self,
        view: &SwitchView<'_>,
        _cycle: Cycle,
        out: &mut Vec<OutputTransfer>,
    ) {
        if self.mode == BuildMode::Incremental {
            self.cache.sync(view);
            self.cache.refresh_cols(view);
            for (j, best) in self.cache.col_best.iter().enumerate() {
                let Some((gc, i)) = *best else { continue };
                let output = PortId::from(j);
                // The α threshold involves the (virtual) output queue,
                // which changes every transmission and every dispatch —
                // evaluated fresh, never cached.
                let eligible = !view.output_full(output)
                    || exceeds_factor(
                        gc,
                        self.alpha,
                        view.output_tail_value(output)
                            .expect("full virtual queue has a tail"),
                    );
                if eligible {
                    out.push(OutputTransfer {
                        input: PortId::from(i),
                        output,
                        pick: PacketPick::Greatest,
                        preempt_if_full: true,
                    });
                }
            }
            return;
        }
        for j in 0..view.n_outputs() {
            let output = PortId::from(j);
            // Pick i maximizing v(gc_ij) among non-empty crossbar queues
            // (ties to the smallest i).
            let mut best: Option<(Value, usize)> = None;
            for i in 0..view.n_inputs() {
                let Some(gc_ij) = view.crossbar_queue(PortId::from(i), output).head_value() else {
                    continue;
                };
                if best.is_none_or(|(bv, _)| gc_ij > bv) {
                    best = Some((gc_ij, i));
                }
            }
            let Some((gc, i)) = best else { continue };
            let eligible = !view.output_full(output)
                || exceeds_factor(
                    gc,
                    self.alpha,
                    view.output_tail_value(output)
                        .expect("full virtual queue has a tail"),
                );
            if eligible {
                out.push(OutputTransfer {
                    input: PortId::from(i),
                    output,
                    pick: PacketPick::Greatest,
                    preempt_if_full: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;
    use cioq_sim::{run_crossbar, Trace};

    #[test]
    fn cpg_moves_heaviest_head_per_input() {
        let cfg = SwitchConfig::builder(1, 2)
            .input_capacity(2)
            .output_capacity(2)
            .crossbar_capacity(2)
            .build()
            .unwrap();
        // Input 0 has packets for outputs 0 (value 3) and 1 (value 9): the
        // input subphase must choose output 1 first.
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(0), 3), (0, PortId(0), PortId(1), 9)]);
        let report = run_crossbar(&cfg, &mut CrossbarPreemptiveGreedy::new(), &trace).unwrap();
        assert_eq!(report.benefit.0, 12, "both delivered across two slots");
        // per-output counts: output 1 got its packet.
        assert_eq!(report.per_output_transmitted, vec![1, 1]);
    }

    #[test]
    fn cpg_output_subphase_picks_heaviest_crosspoint() {
        let cfg = SwitchConfig::crossbar(2, 2, 2, 1);
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(0), 5), (0, PortId(1), PortId(0), 8)]);
        // Cycle: both inputs forward into C_00 and C_10; output subphase
        // picks the 8 first. Transmission sends 8 in slot 0, 5 in slot 1.
        let report = run_crossbar(&cfg, &mut CrossbarPreemptiveGreedy::new(), &trace).unwrap();
        assert_eq!(report.benefit.0, 13);
    }

    #[test]
    fn cpg_crossbar_preemption_respects_beta() {
        // B(C)=1. A value-10 packet sits in C_00. Input queue holds a
        // packet that must exceed beta*10 (~18.4) to displace it.
        let cfg = SwitchConfig::crossbar(1, 4, 1, 1);
        let beta = cpg_beta_star();
        let below = (beta * 10.0).floor() as u64; // 18: not > beta*10
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 10),
            (0, PortId(0), PortId(0), below),
        ]);
        // Slot 0 input subphase: head is `below` (18) into C. Output
        // subphase: into Q_0; transmission sends it. Slot 1: 10 follows.
        // No preemption: the queue drains each cycle. Benefit = 28.
        let report = run_crossbar(&cfg, &mut CrossbarPreemptiveGreedy::new(), &trace).unwrap();
        assert_eq!(report.benefit.0, 10 + below as u128);
        assert_eq!(report.losses.preempted_crossbar, 0);
    }

    #[test]
    fn single_parameter_variant_reports_its_name() {
        let p = CrossbarPreemptiveGreedy::single_parameter();
        assert!(p.name().contains("alpha=beta"));
        assert!((p.alpha() - p.beta()).abs() < 1e-9);
        // The single-parameter optimum under the paper's analysis is
        // β ≈ 2.22 (ratio ≈ 15.59).
        assert!((p.beta() - 2.22).abs() < 0.05, "got {}", p.beta());
    }

    #[test]
    fn optimal_parameters_are_distinct() {
        let p = CrossbarPreemptiveGreedy::new();
        assert!(
            p.alpha() > p.beta(),
            "paper: alpha* (~2.84) > beta* (~1.84)"
        );
    }
}
