//! Sharded twins of the paper's four policies, bit-identical to their
//! sequential implementations.
//!
//! * [`ShardedGm`] / [`ShardedPg`] implement [`CioqShardPolicy`]: each
//!   shard proposes candidates from its own rows (repairing only its own
//!   slice of the incremental graph), and a deterministic merge reproduces
//!   the sequential greedy exactly — ascending-row lexicographic for GM
//!   (contended outputs replayed in fixed port order), a K-way
//!   `(weight desc, cell asc)` merge for PG.
//! * [`ShardedCgu`] / [`ShardedCpg`] implement [`CrossbarShardPolicy`]: the
//!   paper's crossbar subphases decide per port with no cross-port
//!   contention, so row decisions shard by input band, column decisions by
//!   output band, and concatenation in shard order *is* the sequential
//!   iteration order.
//!
//! `tests/sharded_equivalence.rs` proves the per-cycle equivalence for all
//! four against the sequential engine, for K ∈ {1, 2, 4}, inline and
//! threaded.

use crate::params::{cpg_alpha_star, cpg_beta_star, PG_BETA};
use crate::shard_builders::{ShardCguCache, ShardCpgCache, ShardVoqCache};
use cioq_model::{exceeds_factor, Cycle, Packet, PortId, SwitchConfig, Value};
use cioq_sim::{
    Admission, CandidateSet, CioqShardPolicy, CioqShardWorker, CrossbarShardPolicy,
    CrossbarShardWorker, FabricView, InputTransfer, MergeContext, MergeScratch, OutputSnapshot,
    OutputTransfer, PacketPick, Partition, ShardView, Transfer,
};

use crate::cgu::SelectionOrder;

// ---------------------------------------------------------------------------
// GM
// ---------------------------------------------------------------------------

/// Sharded Greedy Matching (lexicographic edge order).
///
/// Proposal: each shard repairs its slice of the incremental edge graph and
/// publishes its rows' edge bitmaps (one word-aligned bitmap per owned
/// row). Merge: the lexicographic greedy as pure word arithmetic — per row
/// in ascending order, the first set bit of `row & free` where `free`
/// starts as `!full` and loses a bit per match. Identical to the
/// sequential greedy by construction, and O(N·M/64) per cycle instead of a
/// per-edge walk.
#[derive(Debug, Default)]
pub struct ShardedGm;

impl ShardedGm {
    /// New sharded GM (the twin of [`crate::GreedyMatching::new`]).
    pub fn new() -> Self {
        ShardedGm
    }
}

struct GmShardWorker {
    cache: ShardVoqCache,
}

impl CioqShardPolicy for ShardedGm {
    fn name(&self) -> &str {
        "GM"
    }

    fn new_worker(
        &self,
        _shard: usize,
        _partition: &Partition,
        _cfg: &SwitchConfig,
    ) -> Box<dyn CioqShardWorker> {
        Box::new(GmShardWorker {
            cache: ShardVoqCache::new(false),
        })
    }

    fn merge(&self, ctx: &MergeContext<'_>, scratch: &mut MergeScratch, out: &mut Vec<Transfer>) {
        let words = ctx.cfg.n_outputs.div_ceil(64);
        let free = scratch.free_output_mask(&ctx.outputs.full_words);
        for (s, set) in ctx.candidates.iter().enumerate() {
            let in_lo = ctx.partition.input_range(s).start;
            debug_assert_eq!(set.aux.len() % words.max(1), 0);
            for (local, row) in set.aux.chunks_exact(words).enumerate() {
                // First eligible-and-free output of this row, in fixed
                // port order.
                for (k, (&bits, slot)) in row.iter().zip(free.iter_mut()).enumerate() {
                    let hit = bits & *slot;
                    if hit != 0 {
                        let j = k * 64 + hit.trailing_zeros() as usize;
                        *slot &= !(hit & hit.wrapping_neg()); // claim output j
                        out.push(Transfer {
                            input: PortId::from(in_lo + local),
                            output: PortId::from(j),
                            pick: PacketPick::Greatest,
                            preempt_if_full: false,
                        });
                        break;
                    }
                }
            }
        }
    }
}

impl CioqShardWorker for GmShardWorker {
    fn admit(&mut self, shard: &ShardView<'_>, packet: &Packet) -> Admission {
        if shard.input_queue(packet.input, packet.output).is_full() {
            Admission::Reject
        } else {
            Admission::Accept
        }
    }

    fn propose(
        &mut self,
        shard: &ShardView<'_>,
        _outputs: &OutputSnapshot,
        _cycle: Cycle,
        out: &mut CandidateSet,
    ) {
        self.cache.sync(shard);
        let rows = shard.input_range().len();
        let words = shard.n_outputs().div_ceil(64);
        out.aux.resize(rows * words, 0);
        for local in 0..rows {
            self.cache
                .graph
                .copy_row_bits(local, &mut out.aux[local * words..(local + 1) * words]);
        }
    }
}

// ---------------------------------------------------------------------------
// PG
// ---------------------------------------------------------------------------

/// Sharded Preemptive Greedy.
///
/// Proposal: each shard publishes its cached `(weight desc, cell asc)`
/// order (repaired from its own change log only). Merge: a K-way merge of
/// the per-shard streams — their concatenated key order equals the global
/// cached order exactly — running the sequential weighted greedy with the
/// β output-eligibility filter evaluated in visit order.
#[derive(Debug)]
pub struct ShardedPg {
    beta: f64,
    preemption_enabled: bool,
    name: String,
}

impl ShardedPg {
    /// Sharded PG at the optimal β = 1 + √2 (twin of
    /// [`crate::PreemptiveGreedy::new`]).
    pub fn new() -> Self {
        Self::with_beta(PG_BETA)
    }

    /// Sharded PG with an explicit β ≥ 1.
    pub fn with_beta(beta: f64) -> Self {
        assert!(beta >= 1.0, "beta must be >= 1");
        ShardedPg {
            beta,
            preemption_enabled: true,
            name: format!("PG(beta={beta:.3})"),
        }
    }

    /// Twin of [`crate::PreemptiveGreedy::without_preemption`].
    pub fn without_preemption() -> Self {
        ShardedPg {
            beta: f64::INFINITY,
            preemption_enabled: false,
            name: "PG(no-preempt)".to_string(),
        }
    }
}

impl Default for ShardedPg {
    fn default() -> Self {
        Self::new()
    }
}

struct PgShardWorker {
    cache: ShardVoqCache,
    preemption_enabled: bool,
    /// Sequence number of the next delta publish; 0 forces a full publish
    /// (first cycle, or after a defensive cache rebuild).
    next_seq: u64,
}

impl CioqShardPolicy for ShardedPg {
    fn name(&self) -> &str {
        &self.name
    }

    fn new_worker(
        &self,
        _shard: usize,
        _partition: &Partition,
        _cfg: &SwitchConfig,
    ) -> Box<dyn CioqShardWorker> {
        Box::new(PgShardWorker {
            cache: ShardVoqCache::new(true),
            preemption_enabled: self.preemption_enabled,
            next_seq: 0,
        })
    }

    fn merge(&self, ctx: &MergeContext<'_>, scratch: &mut MergeScratch, out: &mut Vec<Transfer>) {
        let (n, m) = (ctx.cfg.n_inputs, ctx.cfg.n_outputs);
        let k = ctx.candidates.len();
        // Bring the per-shard order mirrors up to date from this cycle's
        // publishes: a full order on seq 0 (first cycle / resync), an edit
        // script otherwise — so the steady-state publish cost is O(dirty),
        // not a bulk copy of the whole order.
        let mut mirrors = std::mem::take(&mut scratch.mirrors);
        if mirrors.len() != k {
            mirrors = (0..k)
                .map(|s| {
                    let mut mirror = cioq_sim::OrderMirror::default();
                    mirror.reserve(ctx.partition.input_range(s).len() * m);
                    mirror
                })
                .collect();
        }
        for (s, set) in ctx.candidates.iter().enumerate() {
            let mirror = &mut mirrors[s];
            if set.seq == 0 {
                mirror.reset_from(&set.pairs);
            } else {
                assert_eq!(
                    set.seq, mirror.expect_seq,
                    "PG delta publish out of sequence (shard {s})"
                );
                mirror.apply(&set.removed, &set.refreshed);
            }
            mirror.expect_seq = set.seq + 1;
        }
        scratch.begin(n, m);
        let cap = n.min(m);
        let mut heads = std::mem::take(&mut scratch.heads);
        heads.clear();
        heads.resize(k, 0);
        loop {
            // Next candidate across all shard streams in (weight desc,
            // global cell asc) order — each stream is already sorted by
            // that key, so this is a K-way merge. Shard-local cells
            // translate to the global key by adding the shard's base cell
            // (streams stay sorted under the translation).
            let mut best: Option<(Value, u64, usize)> = None;
            for (s, mirror) in mirrors.iter().enumerate() {
                if let Some(&(w, local_cell)) = mirror.entries.get(heads[s]) {
                    let base = ctx.partition.input_range(s).start as u64 * m as u64;
                    let cell = base + local_cell as u64;
                    let better = match best {
                        None => true,
                        Some((bw, bc, _)) => w > bw || (w == bw && cell < bc),
                    };
                    if better {
                        best = Some((w, cell, s));
                    }
                }
            }
            let Some((w, cell, s)) = best else { break };
            heads[s] += 1;

            let (i, j) = ((cell / m as u64) as usize, (cell % m as u64) as usize);
            if scratch.input_used(i) || scratch.output_used(j) {
                continue;
            }
            let eligible =
                !ctx.outputs.full[j] || exceeds_factor(w, self.beta, ctx.outputs.tail[j]);
            if !eligible {
                continue;
            }
            scratch.use_input(i);
            scratch.use_output(j);
            out.push(Transfer {
                input: PortId::from(i),
                output: PortId::from(j),
                pick: PacketPick::Greatest,
                preempt_if_full: self.preemption_enabled,
            });
            if out.len() == cap {
                break;
            }
        }
        scratch.mirrors = mirrors;
        scratch.heads = heads;
    }
}

impl CioqShardWorker for PgShardWorker {
    fn admit(&mut self, shard: &ShardView<'_>, packet: &Packet) -> Admission {
        let queue = shard.input_queue(packet.input, packet.output);
        if !queue.is_full() {
            return Admission::Accept;
        }
        let least = queue.tail_value().expect("full queue has a tail");
        if self.preemption_enabled && least < packet.value {
            Admission::AcceptPreemptingLeast
        } else {
            Admission::Reject
        }
    }

    fn propose(
        &mut self,
        shard: &ShardView<'_>,
        _outputs: &OutputSnapshot,
        _cycle: Cycle,
        out: &mut CandidateSet,
    ) {
        // Steady state: publish only the repair's edit script (O(dirty));
        // the coordinator's mirror replays it. A full bulk copy happens
        // only on the first cycle or after a defensive cache rebuild.
        let incremental = self
            .cache
            .sync_recording(shard, &mut out.removed, &mut out.refreshed);
        if incremental && self.next_seq > 0 {
            out.seq = self.next_seq;
        } else {
            out.seq = 0;
            out.removed.clear();
            out.refreshed.clear();
            let order = self.cache.order.as_ref().expect("weighted cache");
            out.pairs.extend_from_slice(order.entries());
        }
        self.next_seq = out.seq + 1;
    }
}

// ---------------------------------------------------------------------------
// CGU
// ---------------------------------------------------------------------------

/// Sharded Crossbar Greedy Unit.
///
/// Both subphases are per-port decisions with strictly row-local (input
/// subphase) / column-local (output subphase) inputs, so sharding needs no
/// merge at all; round-robin pointers are per-port and stay with the owner.
#[derive(Debug)]
pub struct ShardedCgu {
    selection: SelectionOrder,
    name: String,
}

impl ShardedCgu {
    /// Sharded CGU with first-fit selection (twin of
    /// [`crate::CrossbarGreedyUnit::new`]).
    pub fn new() -> Self {
        Self::with_selection(SelectionOrder::FirstFit)
    }

    /// Sharded CGU with an explicit selection order.
    pub fn with_selection(selection: SelectionOrder) -> Self {
        let name = match selection {
            SelectionOrder::FirstFit => "CGU".to_string(),
            SelectionOrder::RoundRobin => "CGU(rr)".to_string(),
        };
        ShardedCgu { selection, name }
    }
}

impl Default for ShardedCgu {
    fn default() -> Self {
        Self::new()
    }
}

struct CguShardWorker {
    cache: ShardCguCache,
    selection: SelectionOrder,
    /// Round-robin pointers for owned input rows (local index).
    input_ptr: Vec<usize>,
    /// Round-robin pointers for owned output columns (local index).
    output_ptr: Vec<usize>,
}

impl CrossbarShardPolicy for ShardedCgu {
    fn name(&self) -> &str {
        &self.name
    }

    fn new_worker(
        &self,
        shard: usize,
        partition: &Partition,
        _cfg: &SwitchConfig,
    ) -> Box<dyn CrossbarShardWorker> {
        Box::new(CguShardWorker {
            cache: ShardCguCache::new(),
            selection: self.selection,
            input_ptr: vec![0; partition.input_range(shard).len()],
            output_ptr: vec![0; partition.output_range(shard).len()],
        })
    }
}

impl CrossbarShardWorker for CguShardWorker {
    fn admit(&mut self, shard: &ShardView<'_>, packet: &Packet) -> Admission {
        if shard.input_queue(packet.input, packet.output).is_full() {
            Admission::Reject
        } else {
            Admission::Accept
        }
    }

    fn propose_input(
        &mut self,
        shard: &ShardView<'_>,
        _cycle: Cycle,
        out: &mut Vec<InputTransfer>,
    ) {
        self.cache.sync_in(shard);
        let m = shard.n_outputs();
        for (local, i) in shard.input_range().enumerate() {
            let start = match self.selection {
                SelectionOrder::FirstFit => 0,
                SelectionOrder::RoundRobin => self.input_ptr[local],
            };
            if let Some(j) = self.cache.in_ok.first_set_cyclic(local, start) {
                out.push(InputTransfer {
                    input: PortId::from(i),
                    output: PortId::from(j),
                    pick: PacketPick::Greatest,
                    preempt_if_full: false,
                });
                if self.selection == SelectionOrder::RoundRobin {
                    self.input_ptr[local] = (j + 1) % m;
                }
            }
        }
    }

    fn propose_output(
        &mut self,
        fabric: &FabricView<'_>,
        shard: usize,
        inbound_xbar: &[u32],
        outputs: &OutputSnapshot,
        _cycle: Cycle,
        out: &mut Vec<OutputTransfer>,
    ) {
        self.cache.sync_out(fabric, shard, inbound_xbar);
        let n = fabric.n_inputs();
        for (local, j) in fabric.partition().output_range(shard).enumerate() {
            if outputs.full[j] {
                continue;
            }
            let start = match self.selection {
                SelectionOrder::FirstFit => 0,
                SelectionOrder::RoundRobin => self.output_ptr[local],
            };
            if let Some(i) = self.cache.out_ok.first_set_cyclic(local, start) {
                out.push(OutputTransfer {
                    input: PortId::from(i),
                    output: PortId::from(j),
                    pick: PacketPick::Greatest,
                    preempt_if_full: false,
                });
                if self.selection == SelectionOrder::RoundRobin {
                    self.output_ptr[local] = (i + 1) % n;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CPG
// ---------------------------------------------------------------------------

/// Sharded Crossbar Preemptive Greedy.
///
/// Per-port argmax decisions: rows shard by input band (β threshold is
/// row-local), columns by output band (the α threshold reads the owned
/// output queue fresh, exactly like the sequential policy).
#[derive(Debug)]
pub struct ShardedCpg {
    beta: f64,
    alpha: f64,
    name: String,
}

impl ShardedCpg {
    /// Sharded CPG at the optimal (β★, α★) (twin of
    /// [`crate::CrossbarPreemptiveGreedy::new`]).
    pub fn new() -> Self {
        Self::with_params(cpg_beta_star(), cpg_alpha_star())
    }

    /// Sharded CPG with explicit parameters.
    pub fn with_params(beta: f64, alpha: f64) -> Self {
        assert!(beta >= 1.0 && alpha >= 1.0, "alpha, beta must be >= 1");
        ShardedCpg {
            beta,
            alpha,
            name: format!("CPG(beta={beta:.3},alpha={alpha:.3})"),
        }
    }
}

impl Default for ShardedCpg {
    fn default() -> Self {
        Self::new()
    }
}

struct CpgShardWorker {
    cache: ShardCpgCache,
    beta: f64,
    alpha: f64,
}

impl CrossbarShardPolicy for ShardedCpg {
    fn name(&self) -> &str {
        &self.name
    }

    fn new_worker(
        &self,
        _shard: usize,
        _partition: &Partition,
        _cfg: &SwitchConfig,
    ) -> Box<dyn CrossbarShardWorker> {
        Box::new(CpgShardWorker {
            cache: ShardCpgCache::new(),
            beta: self.beta,
            alpha: self.alpha,
        })
    }
}

impl CrossbarShardWorker for CpgShardWorker {
    fn admit(&mut self, shard: &ShardView<'_>, packet: &Packet) -> Admission {
        let queue = shard.input_queue(packet.input, packet.output);
        if !queue.is_full() {
            return Admission::Accept;
        }
        let least = queue.tail_value().expect("full queue has a tail");
        if least < packet.value {
            Admission::AcceptPreemptingLeast
        } else {
            Admission::Reject
        }
    }

    fn propose_input(
        &mut self,
        shard: &ShardView<'_>,
        _cycle: Cycle,
        out: &mut Vec<InputTransfer>,
    ) {
        self.cache.refresh_rows(shard, self.beta);
        let in_lo = shard.input_range().start;
        for (local, best) in self.cache.row_best.iter().enumerate() {
            if let Some((_, j)) = *best {
                out.push(InputTransfer {
                    input: PortId::from(in_lo + local),
                    output: PortId::from(j),
                    pick: PacketPick::Greatest,
                    preempt_if_full: true,
                });
            }
        }
    }

    fn propose_output(
        &mut self,
        fabric: &FabricView<'_>,
        shard: usize,
        inbound_xbar: &[u32],
        outputs: &OutputSnapshot,
        _cycle: Cycle,
        out: &mut Vec<OutputTransfer>,
    ) {
        self.cache.refresh_cols(fabric, shard, inbound_xbar);
        let out_lo = fabric.partition().output_range(shard).start;
        for (local, best) in self.cache.col_best.iter().enumerate() {
            let Some((gc, i)) = *best else { continue };
            let j = out_lo + local;
            // The α threshold reads the per-cycle output snapshot (virtual
            // fullness/tail on a delayed fabric), never cached — it
            // changes with every transmission and every dispatch.
            let eligible = !outputs.full[j] || exceeds_factor(gc, self.alpha, outputs.tail[j]);
            if eligible {
                out.push(OutputTransfer {
                    input: PortId::from(i),
                    output: PortId::from(j),
                    pick: PacketPick::Greatest,
                    preempt_if_full: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use cioq_matching::{CachedWeightOrder, IncrementalGraph};
    use cioq_sim::OrderMirror;

    /// The delta-publish protocol's core invariant: replaying each repair's
    /// recorded edit script on a mirror reproduces the repaired order
    /// exactly — over a deterministic pseudo-random edit sequence with
    /// inserts, removals, and reweights.
    #[test]
    fn order_mirror_tracks_repair_recording() {
        let (rows, cols) = (5, 7);
        let mut g = IncrementalGraph::new(rows, cols);
        let mut order = CachedWeightOrder::default();
        order.rebuild(&g);
        let mut mirror = OrderMirror::default();
        mirror.reset_from(order.entries());

        let mut state = 0x5EED_1234_u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let (mut removed, mut refreshed) = (Vec::new(), Vec::new());
        for _ in 0..200 {
            // A batch of 1–4 edits, then one recorded repair.
            removed.clear();
            refreshed.clear();
            for _ in 0..(1 + rng() % 4) {
                let cell = (rng() % (rows * cols) as u64) as usize;
                let (l, r) = (cell / cols, cell % cols);
                if rng() % 4 == 0 {
                    g.clear_edge(l, r);
                } else {
                    g.set_edge(l, r, 1 + rng() % 50);
                }
                order.mark(cell);
            }
            order.repair_recording(&g, &mut removed, &mut refreshed);
            mirror.apply(&removed, &refreshed);
            assert_eq!(
                mirror.entries,
                order.entries(),
                "mirror must equal the repaired order after every publish"
            );
        }
    }
}
