//! GM — Greedy Matching (§2.1, Theorem 1): 3-competitive for unit values on
//! CIOQ switches, at greedy-maximal-matching cost.

use crate::common::build_unit_graph;
use crate::incremental::{BuildMode, VoqCache};
use cioq_matching::{
    greedy_maximal_cells_into, greedy_maximal_into, BipartiteGraph, CellVisit, EdgeOrder,
    GreedyScratch, Matching,
};
use cioq_model::{Cycle, Packet, PortId};
use cioq_sim::{Admission, CioqPolicy, PacketPick, SwitchView, Transfer};

/// How GM iterates edges when computing its greedy maximal matching. The
/// paper allows any order; this is an ablation axis (experiment T5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GmEdgePolicy {
    /// Fixed lexicographic `(i, j)` order.
    Lexicographic,
    /// Rotate the starting edge by the global cycle number, spreading
    /// service across ports.
    RotateByCycle,
}

/// The Greedy Matching algorithm.
///
/// * Arrival: accept iff `Q_ij` is not full.
/// * Scheduling cycle: greedy maximal matching on the graph with an edge
///   `(u_i, v_j)` whenever `Q_ij` is non-empty and `Q_j` is not full; the
///   head packet of each matched `Q_ij` is transferred.
/// * Transmission: send the head of every non-empty output queue.
///
/// By default the scheduling graph is maintained incrementally from the
/// engine's change log ([`BuildMode::Incremental`]); the decisions are
/// identical to the from-scratch [`BuildMode::Rescan`] reference.
#[derive(Debug)]
pub struct GreedyMatching {
    edge_policy: GmEdgePolicy,
    mode: BuildMode,
    graph: BipartiteGraph,
    cache: VoqCache,
    scratch: GreedyScratch,
    /// Pooled result buffer: refilled in place every scheduling cycle so
    /// the steady-state slot loop never allocates a fresh `Matching`.
    matching: Matching,
    name: String,
}

impl GreedyMatching {
    /// GM with the default lexicographic edge order.
    pub fn new() -> Self {
        Self::with_edge_policy(GmEdgePolicy::Lexicographic)
    }

    /// GM with an explicit edge-iteration order.
    pub fn with_edge_policy(edge_policy: GmEdgePolicy) -> Self {
        let name = match edge_policy {
            GmEdgePolicy::Lexicographic => "GM".to_string(),
            GmEdgePolicy::RotateByCycle => "GM(rotate)".to_string(),
        };
        GreedyMatching {
            edge_policy,
            mode: BuildMode::default(),
            graph: BipartiteGraph::default(),
            cache: VoqCache::new(false),
            scratch: GreedyScratch::default(),
            matching: Matching::new(),
            name,
        }
    }

    /// Select how the scheduling graph is maintained (see [`BuildMode`]).
    pub fn build_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }
}

impl Default for GreedyMatching {
    fn default() -> Self {
        Self::new()
    }
}

impl CioqPolicy for GreedyMatching {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        if view.input_queue(packet.input, packet.output).is_full() {
            Admission::Reject
        } else {
            Admission::Accept
        }
    }

    // detlint: hot
    fn schedule(&mut self, view: &SwitchView<'_>, cycle: Cycle, out: &mut Vec<Transfer>) {
        match self.mode {
            BuildMode::Incremental => {
                self.cache.sync(view);
                let visit = match self.edge_policy {
                    GmEdgePolicy::Lexicographic => CellVisit::Lex,
                    GmEdgePolicy::RotateByCycle => {
                        CellVisit::Rotated(cycle.sequence(view.config().speedup) as usize)
                    }
                };
                let out_full = &self.cache.out_full;
                greedy_maximal_cells_into(
                    &self.cache.graph,
                    visit,
                    |_, j, _| !out_full[j],
                    &mut self.scratch,
                    &mut self.matching,
                );
            }
            BuildMode::Rescan => {
                build_unit_graph(view, &mut self.graph);
                let order = match self.edge_policy {
                    GmEdgePolicy::Lexicographic => EdgeOrder::Insertion,
                    GmEdgePolicy::RotateByCycle => {
                        EdgeOrder::Rotated(cycle.sequence(view.config().speedup) as usize)
                    }
                };
                greedy_maximal_into(&self.graph, order, &mut self.scratch, &mut self.matching);
            }
        }
        for &(i, j) in &self.matching.pairs {
            out.push(Transfer {
                input: PortId::from(i),
                output: PortId::from(j),
                pick: PacketPick::Greatest,
                // GM only builds edges to non-full output queues, so a full
                // target here is an algorithm bug — let the engine fail.
                preempt_if_full: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;
    use cioq_sim::{run_cioq, Trace};

    fn uniform_trace() -> Trace {
        // 2x2 switch, one packet per (i, j) pair at slot 0, plus a burst.
        Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(0), PortId(1), 1),
            (0, PortId(1), PortId(0), 1),
            (0, PortId(1), PortId(1), 1),
            (1, PortId(0), PortId(0), 1),
            (1, PortId(1), PortId(1), 1),
        ])
    }

    #[test]
    fn gm_delivers_everything_when_feasible() {
        let cfg = SwitchConfig::cioq(2, 4, 1);
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &uniform_trace()).unwrap();
        assert_eq!(report.transmitted, 6);
        assert_eq!(report.losses.total_count(), 0);
        report.check_conservation().unwrap();
    }

    #[test]
    fn gm_rejects_only_on_full_queue() {
        // B=1: three same-queue packets in one slot -> 2 rejected.
        let cfg = SwitchConfig::cioq(1, 1, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(0), PortId(0), 1),
            (0, PortId(0), PortId(0), 1),
        ]);
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        assert_eq!(report.transmitted, 1);
        assert_eq!(report.losses.rejected, 2);
        assert_eq!(report.losses.preempted_input, 0, "GM never preempts");
    }

    #[test]
    fn gm_is_work_conserving_across_inputs() {
        // Two inputs feed one output; with speedup 1 the output transmits
        // one packet per slot and nothing is wasted.
        let cfg = SwitchConfig::cioq(2, 8, 1);
        let trace = Trace::from_tuples(
            (0..4).flat_map(|t| [(t, PortId(0), PortId(0), 1), (t, PortId(1), PortId(0), 1)]),
        );
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        assert_eq!(report.transmitted, 8, "all packets fit in B=8 buffers");
    }

    #[test]
    fn rotation_variant_also_delivers() {
        let cfg = SwitchConfig::cioq(2, 4, 1);
        let mut gm = GreedyMatching::with_edge_policy(GmEdgePolicy::RotateByCycle);
        let report = run_cioq(&cfg, &mut gm, &uniform_trace()).unwrap();
        assert_eq!(report.transmitted, 6);
        assert_eq!(gm.name(), "GM(rotate)");
    }

    #[test]
    fn speedup_clears_backlog_faster() {
        // Heavy single-slot burst to one output from 4 inputs.
        let cfg_s1 = SwitchConfig::cioq(4, 4, 1);
        let cfg_s4 = SwitchConfig::cioq(4, 4, 4);
        let trace = Trace::from_tuples((0..4).map(|i| (0u64, PortId(i), PortId(0), 1u64)));
        let r1 = run_cioq(&cfg_s1, &mut GreedyMatching::new(), &trace).unwrap();
        let r4 = run_cioq(&cfg_s4, &mut GreedyMatching::new(), &trace).unwrap();
        assert_eq!(r1.transmitted, 4);
        assert_eq!(r4.transmitted, 4);
        // With speedup 4 all packets reach the output queue in slot 0.
        assert!(r4.transferred >= r1.transferred);
    }
}
