//! PG — Preemptive Greedy (§2.2, Theorem 2): (3+2√2)-competitive for
//! arbitrary values on CIOQ switches, using greedy maximal *weighted*
//! matchings instead of the maximum-weight matchings of prior work.

use crate::common::build_weighted_graph;
use crate::incremental::{BuildMode, VoqCache};
use crate::params::PG_BETA;
use cioq_matching::{
    greedy_maximal_cells_into, greedy_maximal_into, BipartiteGraph, CellVisit, EdgeOrder,
    GreedyScratch, Matching,
};
use cioq_model::{exceeds_factor, Cycle, Packet, PortId};
use cioq_sim::{Admission, CioqPolicy, PacketPick, SwitchView, Transfer};

/// The Preemptive Greedy algorithm with threshold parameter β ≥ 1.
///
/// * Arrival: accept if `Q_ij` has room or `v(l_ij) < v(p)` (preempting
///   `l_ij`); otherwise reject.
/// * Scheduling cycle: greedy maximal matching in descending weight order on
///   the graph with an edge `(u_i, v_j)` iff
///   `|Q_ij| > 0 ∧ (|Q_j| < B(Q_j) ∨ v(g_ij) > β·v(l_j))`, edge weight
///   `v(g_ij)`; matched heads are transferred, preempting `l_j` when `Q_j`
///   is full.
/// * Transmission: send the greatest-value packet of each non-empty `Q_j`.
#[derive(Debug)]
pub struct PreemptiveGreedy {
    beta: f64,
    preemption_enabled: bool,
    mode: BuildMode,
    graph: BipartiteGraph,
    cache: VoqCache,
    scratch: GreedyScratch,
    /// Pooled result buffer: refilled in place every scheduling cycle so
    /// the steady-state slot loop never allocates a fresh `Matching`.
    matching: Matching,
    name: String,
}

impl PreemptiveGreedy {
    /// PG at the optimal β = 1 + √2 of Theorem 2.
    pub fn new() -> Self {
        Self::with_beta(PG_BETA)
    }

    /// PG with an explicit β ≥ 1 (experiment F4 sweeps this).
    pub fn with_beta(beta: f64) -> Self {
        assert!(beta >= 1.0, "beta must be >= 1");
        PreemptiveGreedy {
            beta,
            preemption_enabled: true,
            mode: BuildMode::default(),
            graph: BipartiteGraph::default(),
            cache: VoqCache::new(true),
            scratch: GreedyScratch::default(),
            matching: Matching::new(),
            name: format!("PG(beta={beta:.3})"),
        }
    }

    /// Ablation (experiment T5): disable all preemption. Arrivals to a full
    /// input queue are rejected, and edges to full output queues are never
    /// eligible (equivalent to β = ∞).
    pub fn without_preemption() -> Self {
        PreemptiveGreedy {
            beta: f64::INFINITY,
            preemption_enabled: false,
            mode: BuildMode::default(),
            graph: BipartiteGraph::default(),
            cache: VoqCache::new(true),
            scratch: GreedyScratch::default(),
            matching: Matching::new(),
            name: "PG(no-preempt)".to_string(),
        }
    }

    /// Select how the scheduling graph is maintained (see [`BuildMode`]).
    pub fn build_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Default for PreemptiveGreedy {
    fn default() -> Self {
        Self::new()
    }
}

impl CioqPolicy for PreemptiveGreedy {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        let queue = view.input_queue(packet.input, packet.output);
        if !queue.is_full() {
            return Admission::Accept;
        }
        let least = queue.tail_value().expect("full queue has a tail");
        if self.preemption_enabled && least < packet.value {
            Admission::AcceptPreemptingLeast
        } else {
            Admission::Reject
        }
    }

    // detlint: hot
    fn schedule(&mut self, view: &SwitchView<'_>, _cycle: Cycle, out: &mut Vec<Transfer>) {
        match self.mode {
            BuildMode::Incremental => {
                self.cache.sync(view);
                // The cached order spans *every* non-empty VOQ; the paper's
                // output-side eligibility (`|Q_j| < B(Q_j) ∨ v(g_ij) >
                // β·v(l_j)`) is applied as a filter in visit order, which
                // preserves the relative order of the eligible edges.
                let beta = self.beta;
                let order = self.cache.order.as_ref().expect("weighted cache");
                let (out_full, out_tail) = (&self.cache.out_full, &self.cache.out_tail);
                greedy_maximal_cells_into(
                    &self.cache.graph,
                    CellVisit::Ordered(order),
                    |_, j, w| !out_full[j] || exceeds_factor(w, beta, out_tail[j]),
                    &mut self.scratch,
                    &mut self.matching,
                );
            }
            BuildMode::Rescan => {
                build_weighted_graph(view, self.beta, &mut self.graph);
                greedy_maximal_into(
                    &self.graph,
                    EdgeOrder::WeightDescending,
                    &mut self.scratch,
                    &mut self.matching,
                );
            }
        }
        for &(i, j) in &self.matching.pairs {
            out.push(Transfer {
                input: PortId::from(i),
                output: PortId::from(j),
                pick: PacketPick::Greatest,
                // Eligibility already enforced the β threshold; a full
                // output queue here means a legal preemption of l_j.
                preempt_if_full: self.preemption_enabled,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;
    use cioq_sim::{run_cioq, Trace};

    #[test]
    fn pg_accepts_until_full_then_preempts_smaller() {
        // B(Q_ij)=2; values 1,2 fill the queue; 5 preempts the 1.
        let cfg = SwitchConfig::cioq(1, 2, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(0), PortId(0), 2),
            (0, PortId(0), PortId(0), 5),
            (0, PortId(0), PortId(0), 2), // equal to current least -> reject
        ]);
        let report = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        assert_eq!(report.losses.preempted_input, 1);
        assert_eq!(report.losses.preempted_input_value, 1);
        assert_eq!(report.losses.rejected, 1);
        assert_eq!(report.losses.rejected_value, 2);
        assert_eq!(report.benefit.0, 7, "values 5 and 2 are delivered");
    }

    #[test]
    fn pg_transfers_highest_value_first() {
        // Two inputs compete for one output with speedup 1: the heavier
        // head must win the (greedy, weight-descending) matching.
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(0), 3), (0, PortId(1), PortId(0), 9)]);
        let report = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        // Both eventually delivered (B=2 output queue, drain mode).
        assert_eq!(report.benefit.0, 12);
        // Per-output counts confirm single output port use.
        assert_eq!(report.per_output_transmitted[0], 2);
    }

    #[test]
    fn pg_output_preemption_fires_beyond_beta() {
        // speedup 2, B(Q_j) = 1. Cycle T[1]: greedy (weight-descending)
        // matches input 1 to output 1 (weight 200) and input 0 to output 0
        // (weight 1) — so the *small* packet fills output 0. Cycle T[2]:
        // input 1 still holds 100 for output 0; the queue is full with
        // l_0 = 1 and 100 > beta*1, so the edge is eligible and the
        // transfer preempts the 1.
        let cfg = SwitchConfig::builder(2, 2)
            .speedup(2)
            .input_capacity(4)
            .output_capacity(1)
            .build()
            .unwrap();
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(1), PortId(0), 100),
            (0, PortId(1), PortId(1), 200),
        ]);
        let report = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        assert_eq!(report.losses.preempted_output, 1);
        assert_eq!(report.losses.preempted_output_value, 1);
        assert_eq!(report.benefit.0, 300);
        // And both outputs transmitted in slot 0: nothing left to drain.
        assert_eq!(report.slots, 1);
    }

    #[test]
    fn pg_below_beta_does_not_preempt_output() {
        // Same shape, but the contender (value 2) does not exceed
        // beta * l_0 = 2.414, so output 0 keeps the 1 until it is sent.
        let cfg = SwitchConfig::builder(2, 2)
            .speedup(2)
            .input_capacity(4)
            .output_capacity(1)
            .build()
            .unwrap();
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(1), PortId(0), 2),
            (0, PortId(1), PortId(1), 200),
        ]);
        let report = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        assert_eq!(report.losses.preempted_output, 0);
        assert_eq!(report.benefit.0, 203, "the 2 follows one slot later");
    }

    #[test]
    fn pg_transfer_respects_output_fullness_threshold() {
        // Output queue capacity 1, speedup 2. Cycle T[1] fills the output
        // queue with the head (heaviest) packet; cycle T[2] offers the
        // remaining smaller one, which never exceeds beta * l_j, so no
        // edge is built and nothing is preempted.
        let cfg = SwitchConfig::builder(1, 1)
            .speedup(2)
            .input_capacity(4)
            .output_capacity(1)
            .build()
            .unwrap();
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(0), 10), (0, PortId(0), PortId(0), 30)]);
        // T[1]: head 30 moves to the output queue. T[2]: head 10 vs full
        // queue holding 30 -> ineligible. Transmission sends 30; slot 1
        // moves and sends the 10.
        let report = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        assert_eq!(report.benefit.0, 40);
        assert_eq!(report.losses.preempted_output, 0);
    }
    #[test]
    fn no_preempt_ablation_never_preempts() {
        let cfg = SwitchConfig::cioq(1, 1, 1);
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(0), 1), (0, PortId(0), PortId(0), 100)]);
        let mut pg = PreemptiveGreedy::without_preemption();
        let report = run_cioq(&cfg, &mut pg, &trace).unwrap();
        assert_eq!(report.losses.preempted_input, 0);
        assert_eq!(report.losses.rejected, 1);
        assert_eq!(
            report.losses.rejected_value, 100,
            "the valuable one is lost"
        );
        assert_eq!(report.benefit.0, 1);
    }

    #[test]
    fn beta_one_always_preempts_on_bigger_value() {
        let mut pg = PreemptiveGreedy::with_beta(1.0);
        assert_eq!(pg.beta(), 1.0);
        let cfg = SwitchConfig::builder(1, 1)
            .speedup(2)
            .input_capacity(2)
            .output_capacity(1)
            .build()
            .unwrap();
        // T[1] moves value 5; T[2]: head 6 > 1.0*5 -> preempts the 5.
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(0), 5), (0, PortId(0), PortId(0), 6)]);
        // Sorted queue: head 6 moves in T[1]; T[2]: head 5 vs full(6):
        // 5 > 6? no. So again no preemption; benefit 11. (Sortedness makes
        // self-preemption from one queue impossible — a real invariant.)
        let report = run_cioq(&cfg, &mut pg, &trace).unwrap();
        assert_eq!(report.benefit.0, 11);
        assert_eq!(report.losses.preempted_output, 0);
    }
}
