//! # cioq-core
//!
//! The scheduling algorithms of Al-Bawani, Englert & Westermann,
//! *Online Packet Scheduling for CIOQ and Buffered Crossbar Switches*:
//!
//! | Algorithm | Model | Values | Guarantee (any speedup) |
//! |-----------|-------|--------|--------------------------|
//! | [`GreedyMatching`] (gm) | CIOQ | unit | 3-competitive (Thm 1) |
//! | [`PreemptiveGreedy`] (pg) | CIOQ | general | 3+2√2 ≈ 5.83 (Thm 2, β = 1+√2) |
//! | [`CrossbarGreedyUnit`] (cgu) | buffered crossbar | unit | 3-competitive (Thm 3) |
//! | [`CrossbarPreemptiveGreedy`] (cpg) | buffered crossbar | general | ≈ 14.83 (Thm 4) |
//!
//! plus the prior-work baselines the paper measures itself against
//! ([`baselines`]): maximum-matching and maximum-weight-matching CIOQ
//! policies (Kesselman–Rosén), iSLIP, and ablated variants of PG/CPG.
//!
//! All policies implement the [`cioq_sim::CioqPolicy`] /
//! [`cioq_sim::CrossbarPolicy`] traits and never allocate per cycle after
//! warm-up.
//!
//! Since PR 2 every policy maintains its per-cycle scheduling structures
//! **incrementally** from the engine's change log ([`BuildMode`], default
//! [`BuildMode::Incremental`]): one slot dirties at most O(N·ŝ) queues, so
//! refreshing only those replaces the former O(N²) rescan (plus the
//! weighted policies' O(E log E) re-sort) with O(changes) bookkeeping. The
//! from-scratch path is kept as [`BuildMode::Rescan`] and property tests
//! prove both produce identical decisions cycle by cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod cgu;
mod common;
mod cpg;
mod gm;
mod incremental;
pub mod params;
mod pg;
mod shard_builders;
mod sharded;

pub use cgu::{CrossbarGreedyUnit, SelectionOrder};
pub use cpg::CrossbarPreemptiveGreedy;
pub use gm::{GmEdgePolicy, GreedyMatching};
pub use incremental::BuildMode;
pub use pg::PreemptiveGreedy;
pub use sharded::{ShardedCgu, ShardedCpg, ShardedGm, ShardedPg};
