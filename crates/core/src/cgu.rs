//! CGU — Crossbar Greedy Unit (§3.1, Theorem 3): the greedy unit-value
//! policy of Kesselman, Kogan & Segal for buffered crossbars, shown
//! 3-competitive (previously 4) by the paper's improved analysis.

use crate::incremental::{BuildMode, CguCache};
use cioq_model::{Cycle, Packet, PortId};
use cioq_sim::{Admission, CrossbarPolicy, InputTransfer, OutputTransfer, PacketPick, SwitchView};

/// How CGU resolves the paper's "choose an arbitrary queue" steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionOrder {
    /// Always the smallest eligible index (deterministic first-fit).
    FirstFit,
    /// Rotate the starting index by one after each choice per port
    /// (round-robin; spreads service, still "arbitrary" per the paper).
    RoundRobin,
}

/// The Crossbar Greedy Unit algorithm.
///
/// * Arrival: accept iff `Q_ij` is not full.
/// * Input subphase: every input port `i` picks an arbitrary `j` with
///   `|Q_ij| > 0 ∧ |C_ij| < B(C_ij)` and forwards the head packet.
/// * Output subphase: every output port `j` picks an arbitrary `i` with
///   `|Q_j| < B(Q_j) ∧ |C_ij| > 0` and forwards the head packet.
/// * Transmission: send from every non-empty output queue.
///
/// CGU never preempts; every packet it moves into the fabric is eventually
/// delivered (the fact its analysis hinges on).
///
/// By default the per-port eligibility masks are maintained incrementally
/// from the engine's change log ([`BuildMode::Incremental`]); decisions are
/// identical to the from-scratch [`BuildMode::Rescan`] reference.
#[derive(Debug)]
pub struct CrossbarGreedyUnit {
    selection: SelectionOrder,
    mode: BuildMode,
    cache: CguCache,
    /// Round-robin pointers (used by [`SelectionOrder::RoundRobin`]).
    input_ptr: Vec<usize>,
    output_ptr: Vec<usize>,
    name: String,
}

impl CrossbarGreedyUnit {
    /// CGU with deterministic first-fit selection.
    pub fn new() -> Self {
        Self::with_selection(SelectionOrder::FirstFit)
    }

    /// CGU with an explicit selection order.
    pub fn with_selection(selection: SelectionOrder) -> Self {
        let name = match selection {
            SelectionOrder::FirstFit => "CGU".to_string(),
            SelectionOrder::RoundRobin => "CGU(rr)".to_string(),
        };
        CrossbarGreedyUnit {
            selection,
            mode: BuildMode::default(),
            cache: CguCache::new(),
            input_ptr: Vec::new(),
            output_ptr: Vec::new(),
            name,
        }
    }

    /// Select how the eligibility masks are maintained (see [`BuildMode`]).
    pub fn build_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    fn pick_start(ptr: &mut Vec<usize>, port: usize, len: usize) -> usize {
        if ptr.len() < len.max(port + 1) {
            ptr.resize(len.max(port + 1), 0);
        }
        ptr[port]
    }
}

impl Default for CrossbarGreedyUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl CrossbarPolicy for CrossbarGreedyUnit {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        if view.input_queue(packet.input, packet.output).is_full() {
            Admission::Reject
        } else {
            Admission::Accept
        }
    }

    fn schedule_input(
        &mut self,
        view: &SwitchView<'_>,
        _cycle: Cycle,
        out: &mut Vec<InputTransfer>,
    ) {
        let m = view.n_outputs();
        if self.mode == BuildMode::Incremental {
            self.cache.sync(view);
        }
        for i in 0..view.n_inputs() {
            let start = match self.selection {
                SelectionOrder::FirstFit => 0,
                SelectionOrder::RoundRobin => {
                    Self::pick_start(&mut self.input_ptr, i, view.n_inputs())
                }
            };
            let chosen = match self.mode {
                BuildMode::Incremental => self.cache.in_ok.first_set_cyclic(i, start),
                BuildMode::Rescan => (0..m).map(|k| (start + k) % m).find(|&j| {
                    let input = PortId::from(i);
                    let output = PortId::from(j);
                    !view.input_queue(input, output).is_empty()
                        && !view.crossbar_queue(input, output).is_full()
                }),
            };
            if let Some(j) = chosen {
                out.push(InputTransfer {
                    input: PortId::from(i),
                    output: PortId::from(j),
                    pick: PacketPick::Greatest,
                    preempt_if_full: false,
                });
                if self.selection == SelectionOrder::RoundRobin {
                    self.input_ptr[i] = (j + 1) % m;
                }
            }
        }
    }

    fn schedule_output(
        &mut self,
        view: &SwitchView<'_>,
        _cycle: Cycle,
        out: &mut Vec<OutputTransfer>,
    ) {
        let n = view.n_inputs();
        if self.mode == BuildMode::Incremental {
            self.cache.sync(view);
        }
        for j in 0..view.n_outputs() {
            if view.output_full(PortId::from(j)) {
                continue;
            }
            let start = match self.selection {
                SelectionOrder::FirstFit => 0,
                SelectionOrder::RoundRobin => {
                    Self::pick_start(&mut self.output_ptr, j, view.n_outputs())
                }
            };
            let chosen = match self.mode {
                BuildMode::Incremental => self.cache.out_ok.first_set_cyclic(j, start),
                BuildMode::Rescan => (0..n).map(|k| (start + k) % n).find(|&i| {
                    !view
                        .crossbar_queue(PortId::from(i), PortId::from(j))
                        .is_empty()
                }),
            };
            if let Some(i) = chosen {
                out.push(OutputTransfer {
                    input: PortId::from(i),
                    output: PortId::from(j),
                    pick: PacketPick::Greatest,
                    preempt_if_full: false,
                });
                if self.selection == SelectionOrder::RoundRobin {
                    self.output_ptr[j] = (i + 1) % n;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;
    use cioq_sim::{run_crossbar, Trace};

    #[test]
    fn cgu_moves_packets_through_both_subphases() {
        let cfg = SwitchConfig::crossbar(2, 4, 1, 1);
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(1), 1), (0, PortId(1), PortId(0), 1)]);
        let report = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
        assert_eq!(report.transmitted, 2);
        assert_eq!(report.transferred_to_crossbar, 2);
        assert_eq!(report.transferred, 2);
        assert_eq!(report.losses.total_count(), 0);
    }

    #[test]
    fn cut_through_within_one_cycle() {
        // A packet can traverse input subphase then output subphase of the
        // same cycle (subphases are sequential).
        let cfg = SwitchConfig::crossbar(1, 2, 1, 1);
        let trace = Trace::from_tuples([(0, PortId(0), PortId(0), 1)]);
        let report = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
        assert_eq!(report.transmitted, 1);
        // One slot of arrivals; drain needs no extra slot:
        assert_eq!(report.slots, 1);
    }

    #[test]
    fn crossbar_buffer_of_one_still_pipelines() {
        // 4 inputs feed output 0 through B(C)=1 crosspoints; per cycle each
        // input forwards one packet but output 0 accepts only one — the
        // crossbar queues hold the rest without loss (B_in large).
        let cfg = SwitchConfig::crossbar(4, 8, 1, 1);
        let trace = Trace::from_tuples((0..4).map(|i| (0u64, PortId(i), PortId(0), 1u64)));
        let report = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
        assert_eq!(report.transmitted, 4);
        assert_eq!(report.losses.total_count(), 0);
    }

    #[test]
    fn first_fit_vs_round_robin_both_deliver() {
        let cfg = SwitchConfig::crossbar(3, 4, 2, 1);
        let trace = Trace::from_tuples((0..3u64).flat_map(|t| {
            (0..3).map(move |i| {
                (
                    t,
                    PortId(i),
                    PortId((i as usize + t as usize) as u16 % 3),
                    1,
                )
            })
        }));
        let a = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
        let b = run_crossbar(
            &cfg,
            &mut CrossbarGreedyUnit::with_selection(SelectionOrder::RoundRobin),
            &trace,
        )
        .unwrap();
        assert_eq!(a.transmitted, 9);
        assert_eq!(b.transmitted, 9);
    }

    #[test]
    fn cgu_never_preempts() {
        let cfg = SwitchConfig::crossbar(2, 1, 1, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(0), PortId(0), 1), // same queue, B=1 -> rejected
            (0, PortId(1), PortId(0), 1),
        ]);
        let report = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
        assert_eq!(report.losses.rejected, 1);
        assert_eq!(report.losses.preempted_input, 0);
        assert_eq!(report.losses.preempted_crossbar, 0);
        assert_eq!(report.losses.preempted_output, 0);
        assert_eq!(report.transmitted, 2);
    }
}
