//! The algorithms' tuning parameters and competitive-ratio formulas,
//! straight from the paper's theorems.

/// PG's optimal threshold parameter: β = 1 + √2 (Theorem 2).
pub const PG_BETA: f64 = 1.0 + std::f64::consts::SQRT_2;

/// PG's competitive ratio at the optimal β: 3 + 2√2 ≈ 5.8284 (Theorem 2).
pub const PG_RATIO: f64 = 3.0 + 2.0 * std::f64::consts::SQRT_2;

/// PG's competitive ratio as a function of β > 1 (§2.2):
/// `β + 2β/(β−1)`. The first term covers output-queue value displacement,
/// the second the preemption chains — the trade-off the paper's conclusion
/// discusses.
pub fn pg_ratio(beta: f64) -> f64 {
    assert!(beta > 1.0, "pg ratio requires beta > 1");
    beta + 2.0 * beta / (beta - 1.0)
}

/// CPG's competitive ratio as a function of (β, α), both > 1 (§3.2):
/// `αβ + (2αβ + αβ(β−1)) / ((α−1)(β−1))`.
pub fn cpg_ratio(beta: f64, alpha: f64) -> f64 {
    assert!(
        beta > 1.0 && alpha > 1.0,
        "cpg ratio requires alpha, beta > 1"
    );
    let ab = alpha * beta;
    ab + (2.0 * ab + ab * (beta - 1.0)) / ((alpha - 1.0) * (beta - 1.0))
}

/// CPG's optimal β (Theorem 4): `β = (ρ² + ρ + 4) / (3ρ)` with
/// `ρ = (19 + 3√33)^(1/3)`.
pub fn cpg_beta_star() -> f64 {
    let rho = (19.0 + 3.0 * 33f64.sqrt()).cbrt();
    (rho * rho + rho + 4.0) / (3.0 * rho)
}

/// CPG's optimal α (Theorem 4): `α = 2 / (β−1)²` at `β = β★`.
pub fn cpg_alpha_star() -> f64 {
    let beta = cpg_beta_star();
    2.0 / ((beta - 1.0) * (beta - 1.0))
}

/// CPG's competitive ratio at the optimal parameters, ≈ 14.83 (Theorem 4).
pub fn cpg_ratio_star() -> f64 {
    cpg_ratio(cpg_beta_star(), cpg_alpha_star())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pg_constants_match_theorem_2() {
        assert!((PG_BETA - 2.414_213_562).abs() < 1e-8);
        assert!((PG_RATIO - 5.828_427_124).abs() < 1e-8);
        assert!((pg_ratio(PG_BETA) - PG_RATIO).abs() < 1e-12);
    }

    #[test]
    fn pg_beta_star_minimizes_the_ratio() {
        // Sample a dense grid: no β does better than 1 + √2.
        let best = pg_ratio(PG_BETA);
        let mut beta = 1.01;
        while beta < 10.0 {
            assert!(pg_ratio(beta) + 1e-9 >= best, "beta={beta} beats beta*");
            beta += 0.001;
        }
    }

    #[test]
    fn cpg_constants_match_theorem_4() {
        let beta = cpg_beta_star();
        let alpha = cpg_alpha_star();
        // Closed-form check from the paper: alpha = 2/(beta-1)^2.
        assert!((alpha - 2.0 / ((beta - 1.0) * (beta - 1.0))).abs() < 1e-12);
        let ratio = cpg_ratio_star();
        assert!(
            (ratio - 14.83).abs() < 5e-3,
            "paper reports ≈ 14.83, got {ratio}"
        );
    }

    #[test]
    fn cpg_star_is_a_local_minimum() {
        let (b, a) = (cpg_beta_star(), cpg_alpha_star());
        let best = cpg_ratio(b, a);
        for db in [-0.05, 0.05] {
            for da in [-0.05, 0.05] {
                assert!(cpg_ratio(b + db, a + da) >= best - 1e-9);
            }
        }
        // And a grid sweep: nothing does meaningfully better anywhere.
        let mut beta = 1.05;
        while beta < 5.0 {
            let mut alpha = 1.05;
            while alpha < 8.0 {
                assert!(cpg_ratio(beta, alpha) + 1e-9 >= best);
                alpha += 0.05;
            }
            beta += 0.05;
        }
    }

    #[test]
    fn alpha_equals_beta_is_strictly_worse() {
        // The paper notes the prior algorithm of Kesselman et al. [21] is
        // CPG with α = β; its own analysis gave 16.24. Under *this paper's*
        // improved analysis the best single parameter still only reaches
        // ≈ 15.59 — strictly worse than the two-parameter optimum ≈ 14.83,
        // confirming that decoupling α from β is what buys the improvement.
        let single: f64 = (1.05..4.0)
            .step_by_f64(0.001)
            .map(|b| cpg_ratio(b, b))
            .fold(f64::INFINITY, f64::min);
        assert!(single > cpg_ratio_star() + 0.5);
        assert!((single - 15.59).abs() < 0.05, "got {single}");
    }

    trait StepByF64 {
        fn step_by_f64(self, step: f64) -> Box<dyn Iterator<Item = f64>>;
    }

    impl StepByF64 for std::ops::Range<f64> {
        fn step_by_f64(self, step: f64) -> Box<dyn Iterator<Item = f64>> {
            let (start, end) = (self.start, self.end);
            let n = ((end - start) / step) as usize;
            Box::new((0..n).map(move |k| start + k as f64 * step))
        }
    }
}
