//! iSLIP as a CIOQ scheduling policy — the practical, guarantee-free
//! reference point.

use crate::common::build_unit_graph;
use cioq_matching::{BipartiteGraph, Islip};
use cioq_model::{Cycle, Packet, PortId};
use cioq_sim::{Admission, CioqPolicy, PacketPick, SwitchView, Transfer};

/// CIOQ policy driving the [`Islip`] round-robin matcher over GM's
/// eligibility graph. Value-oblivious: requests carry no weights, and the
/// head (greatest-value) packet of a matched queue is forwarded, so on unit
/// traffic it behaves like a desynchronizing variant of GM.
#[derive(Debug)]
pub struct IslipPolicy {
    islip: Option<Islip>,
    iterations: usize,
    graph: BipartiteGraph,
    name: String,
}

impl IslipPolicy {
    /// iSLIP with `iterations` request/grant/accept rounds per cycle.
    pub fn new(iterations: usize) -> Self {
        IslipPolicy {
            islip: None,
            iterations,
            graph: BipartiteGraph::default(),
            name: format!("iSLIP-{iterations}"),
        }
    }
}

impl CioqPolicy for IslipPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        if view.input_queue(packet.input, packet.output).is_full() {
            Admission::Reject
        } else {
            Admission::Accept
        }
    }

    fn schedule(&mut self, view: &SwitchView<'_>, _cycle: Cycle, out: &mut Vec<Transfer>) {
        build_unit_graph(view, &mut self.graph);
        let islip = self
            .islip
            .get_or_insert_with(|| Islip::new(view.n_inputs(), view.n_outputs(), self.iterations));
        let matching = islip.match_cycle(&self.graph);
        for (i, j) in matching.pairs {
            out.push(Transfer {
                input: PortId::from(i),
                output: PortId::from(j),
                pick: PacketPick::Greatest,
                preempt_if_full: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;
    use cioq_sim::{run_cioq, Trace};

    #[test]
    fn islip_delivers_uniform_traffic() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let trace = Trace::from_tuples(
            (0..8u64)
                .flat_map(|t| (0..4).map(move |i| (t, PortId(i), PortId((i + t as u16) % 4), 1))),
        );
        let report = run_cioq(&cfg, &mut IslipPolicy::new(2), &trace).unwrap();
        assert_eq!(report.transmitted, 32);
        report.check_conservation().unwrap();
    }

    #[test]
    fn islip_rotates_under_contention() {
        // All inputs to one output: over N slots each input gets served.
        let cfg = SwitchConfig::cioq(3, 8, 1);
        let trace = Trace::from_tuples((0..3).map(|i| (0u64, PortId(i), PortId(0), 1u64)));
        let report = run_cioq(&cfg, &mut IslipPolicy::new(1), &trace).unwrap();
        assert_eq!(report.transmitted, 3);
    }
}
