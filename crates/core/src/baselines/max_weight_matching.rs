//! The maximum-weight-matching baseline for general values
//! (Kesselman–Rosén [24], 6-competitive).

use crate::common::build_weighted_graph;
use crate::params::PG_BETA;
use cioq_matching::{hungarian_max_weight, BipartiteGraph};
use cioq_model::{Cycle, Packet, PortId};
use cioq_sim::{Admission, CioqPolicy, PacketPick, SwitchView, Transfer};

/// General-value CIOQ policy identical to PG except that each cycle
/// computes a **maximum-weight** matching (Hungarian, O(N³)) on the same
/// eligibility graph, instead of PG's greedy maximal weighted matching.
/// This is the expensive 6-competitive baseline PG improves upon.
#[derive(Debug)]
pub struct MaxWeightMatching {
    beta: f64,
    graph: BipartiteGraph,
    name: String,
}

impl MaxWeightMatching {
    /// Baseline with the same β as PG's optimum (fair comparison).
    pub fn new() -> Self {
        Self::with_beta(PG_BETA)
    }

    /// Baseline with explicit β.
    pub fn with_beta(beta: f64) -> Self {
        assert!(beta >= 1.0);
        MaxWeightMatching {
            beta,
            graph: BipartiteGraph::default(),
            name: format!("KR-MaxWeight(beta={beta:.3})"),
        }
    }
}

impl Default for MaxWeightMatching {
    fn default() -> Self {
        Self::new()
    }
}

impl CioqPolicy for MaxWeightMatching {
    fn name(&self) -> &str {
        &self.name
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        let queue = view.input_queue(packet.input, packet.output);
        if !queue.is_full() {
            return Admission::Accept;
        }
        if queue.tail_value().expect("full queue has a tail") < packet.value {
            Admission::AcceptPreemptingLeast
        } else {
            Admission::Reject
        }
    }

    fn schedule(&mut self, view: &SwitchView<'_>, _cycle: Cycle, out: &mut Vec<Transfer>) {
        build_weighted_graph(view, self.beta, &mut self.graph);
        let matching = hungarian_max_weight(&self.graph);
        for (i, j) in matching.pairs {
            out.push(Transfer {
                input: PortId::from(i),
                output: PortId::from(j),
                pick: PacketPick::Greatest,
                preempt_if_full: true,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;
    use cioq_sim::{run_cioq, Trace};

    #[test]
    fn max_weight_takes_the_globally_best_matching() {
        // Weights force a cardinality-2 matching over the single heaviest
        // edge: (0,0,=8)+(1,1,=7) beats (0,1,=10) alone.
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 8),
            (0, PortId(0), PortId(1), 10),
            (0, PortId(1), PortId(1), 7),
        ]);
        let report = run_cioq(&cfg, &mut MaxWeightMatching::new(), &trace).unwrap();
        // Everything is delivered eventually; what differs from PG is the
        // order. All 25 of value must arrive.
        assert_eq!(report.benefit.0, 25);
    }

    #[test]
    fn same_admission_semantics_as_pg() {
        let cfg = SwitchConfig::cioq(1, 1, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 2),
            (0, PortId(0), PortId(0), 9), // preempts the 2
            (0, PortId(0), PortId(0), 1), // rejected
        ]);
        let report = run_cioq(&cfg, &mut MaxWeightMatching::new(), &trace).unwrap();
        assert_eq!(report.losses.preempted_input, 1);
        assert_eq!(report.losses.rejected, 1);
        assert_eq!(report.benefit.0, 9);
    }
}
