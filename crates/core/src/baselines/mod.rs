//! Baseline policies the paper measures itself against.
//!
//! * [`MaxMatching`] — the maximum-cardinality-matching policy family of
//!   Kesselman & Rosén [23] (unit values, 3-competitive, but O(E·√V) per
//!   cycle instead of GM's O(E)).
//! * [`MaxWeightMatching`] — the maximum-weight-matching policy of
//!   Kesselman & Rosén [24] (general values, 6-competitive, O(N³) per cycle
//!   instead of PG's O(E log E)).
//! * [`IslipPolicy`] — iSLIP, the guarantee-free practical scheduler, as the
//!   "current practice" reference point.
//!
//! Ablations of the paper's own algorithms live on the algorithms
//! themselves: [`crate::PreemptiveGreedy::without_preemption`],
//! [`crate::CrossbarPreemptiveGreedy::single_parameter`],
//! [`crate::GreedyMatching::with_edge_policy`].

mod islip_policy;
mod max_matching;
mod max_weight_matching;

pub use islip_policy::IslipPolicy;
pub use max_matching::MaxMatching;
pub use max_weight_matching::MaxWeightMatching;
