//! The maximum-matching baseline for unit values (Kesselman–Rosén [23]).

use crate::common::build_unit_graph;
use cioq_matching::{hopcroft_karp, BipartiteGraph};
use cioq_model::{Cycle, Packet, PortId};
use cioq_sim::{Admission, CioqPolicy, PacketPick, SwitchView, Transfer};

/// Unit-value CIOQ policy that computes a **maximum** matching (Hopcroft–
/// Karp) on GM's eligibility graph every cycle. Same admission and
/// transmission rules as GM; only the matching differs. This is the
/// 3-competitive but expensive policy the paper's GM replaces.
#[derive(Debug, Default)]
pub struct MaxMatching {
    graph: BipartiteGraph,
}

impl MaxMatching {
    /// New baseline instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CioqPolicy for MaxMatching {
    fn name(&self) -> &str {
        "KR-MaxMatching"
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        if view.input_queue(packet.input, packet.output).is_full() {
            Admission::Reject
        } else {
            Admission::Accept
        }
    }

    fn schedule(&mut self, view: &SwitchView<'_>, _cycle: Cycle, out: &mut Vec<Transfer>) {
        build_unit_graph(view, &mut self.graph);
        let matching = hopcroft_karp(&self.graph);
        for (i, j) in matching.pairs {
            out.push(Transfer {
                input: PortId::from(i),
                output: PortId::from(j),
                pick: PacketPick::Greatest,
                preempt_if_full: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;
    use cioq_sim::{run_cioq, Trace};

    #[test]
    fn maximum_matching_beats_unlucky_greedy_within_a_cycle() {
        // The classic augmenting pattern: edges (0,0),(0,1),(1,0).
        // Greedy insertion order picks (0,0) and strands input 1; maximum
        // matching moves two packets in the first cycle.
        let cfg = SwitchConfig::cioq(2, 4, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(0), PortId(1), 1),
            (0, PortId(1), PortId(0), 1),
        ]);
        let report = run_cioq(&cfg, &mut MaxMatching::new(), &trace).unwrap();
        assert_eq!(report.transmitted, 3);
        // First cycle must transfer 2 packets: transferred across the whole
        // run is 3 either way, so check the timing via slot count: maximum
        // matching finishes all transmissions by slot 1 (2 in slot 0).
        assert!(report.slots <= 2);
    }

    #[test]
    fn same_final_throughput_as_gm_on_easy_traffic() {
        let cfg = SwitchConfig::cioq(3, 4, 1);
        let trace = Trace::from_tuples(
            (0..6u64).flat_map(|t| (0..3).map(move |i| (t, PortId(i), PortId((i + 1) % 3), 1))),
        );
        let max = run_cioq(&cfg, &mut MaxMatching::new(), &trace).unwrap();
        let gm = run_cioq(&cfg, &mut crate::GreedyMatching::new(), &trace).unwrap();
        assert_eq!(max.transmitted, gm.transmitted);
        assert_eq!(max.transmitted, 18);
    }
}
