//! Shared helpers for building per-cycle scheduling graphs.

use cioq_matching::BipartiteGraph;
use cioq_model::{exceeds_factor, PortId};
use cioq_sim::SwitchView;

/// Build GM's scheduling graph (§2.1): edge `(u_i, v_j)` iff `Q_ij` is
/// non-empty and `Q_j` is not full. Weights are 1 (unit model). Output
/// fullness is the *virtual* occupancy (landed + in flight), so the graph
/// never schedules into space a delayed fabric has already committed.
pub(crate) fn build_unit_graph(view: &SwitchView<'_>, graph: &mut BipartiteGraph) {
    graph.reset(view.n_inputs(), view.n_outputs());
    for i in 0..view.n_inputs() {
        for j in 0..view.n_outputs() {
            let iq = view.input_queue(PortId::from(i), PortId::from(j));
            if iq.is_empty() {
                continue;
            }
            if view.output_full(PortId::from(j)) {
                continue;
            }
            graph.add_edge(i, j, 1);
        }
    }
}

/// Build PG's scheduling graph (§2.2): edge `(u_i, v_j)` iff
/// `|Q_ij| > 0 ∧ (|Q_j| < B(Q_j) ∨ v(g_ij) > β·v(l_j))`,
/// with weight `w(u_i, v_j) = v(g_ij)`. `|Q_j|` and `l_j` are read from
/// the virtual output queue (landed + in flight).
pub(crate) fn build_weighted_graph(view: &SwitchView<'_>, beta: f64, graph: &mut BipartiteGraph) {
    graph.reset(view.n_inputs(), view.n_outputs());
    for i in 0..view.n_inputs() {
        for j in 0..view.n_outputs() {
            let iq = view.input_queue(PortId::from(i), PortId::from(j));
            let Some(g_ij) = iq.head_value() else {
                continue;
            };
            let output = PortId::from(j);
            let eligible = !view.output_full(output)
                || exceeds_factor(
                    g_ij,
                    beta,
                    view.output_tail_value(output)
                        .expect("full virtual queue has a tail"),
                );
            if eligible {
                graph.add_edge(i, j, g_ij);
            }
        }
    }
}
