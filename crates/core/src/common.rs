//! Shared helpers for building per-cycle scheduling graphs.

use cioq_matching::BipartiteGraph;
use cioq_model::{exceeds_factor, PortId};
use cioq_sim::SwitchView;

/// Build GM's scheduling graph (§2.1): edge `(u_i, v_j)` iff `Q_ij` is
/// non-empty and `Q_j` is not full. Weights are 1 (unit model).
pub(crate) fn build_unit_graph(view: &SwitchView<'_>, graph: &mut BipartiteGraph) {
    graph.reset(view.n_inputs(), view.n_outputs());
    for i in 0..view.n_inputs() {
        for j in 0..view.n_outputs() {
            let iq = view.input_queue(PortId::from(i), PortId::from(j));
            if iq.is_empty() {
                continue;
            }
            if view.output_queue(PortId::from(j)).is_full() {
                continue;
            }
            graph.add_edge(i, j, 1);
        }
    }
}

/// Build PG's scheduling graph (§2.2): edge `(u_i, v_j)` iff
/// `|Q_ij| > 0 ∧ (|Q_j| < B(Q_j) ∨ v(g_ij) > β·v(l_j))`,
/// with weight `w(u_i, v_j) = v(g_ij)`.
pub(crate) fn build_weighted_graph(view: &SwitchView<'_>, beta: f64, graph: &mut BipartiteGraph) {
    graph.reset(view.n_inputs(), view.n_outputs());
    for i in 0..view.n_inputs() {
        for j in 0..view.n_outputs() {
            let iq = view.input_queue(PortId::from(i), PortId::from(j));
            let Some(g_ij) = iq.head_value() else {
                continue;
            };
            let oq = view.output_queue(PortId::from(j));
            let eligible = !oq.is_full()
                || exceeds_factor(g_ij, beta, oq.tail_value().expect("full queue has a tail"));
            if eligible {
                graph.add_edge(i, j, g_ij);
            }
        }
    }
}
