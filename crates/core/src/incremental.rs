//! Shared incremental schedule-state builders.
//!
//! All four policies derive their per-cycle decisions from queue state that
//! one slot barely changes: a slot dirties at most O(N·ŝ) of the N² VOQs.
//! The caches here consume the engine's change log
//! ([`cioq_sim::ChangeLog`]) and refresh only the dirtied cells, turning the
//! per-cycle rebuild from O(N²) (plus an O(E log E) sort for the weighted
//! policies) into O(changes) (plus an O(E) order repair).
//!
//! ## The consistency handshake
//!
//! The engine flushes the change log after *every* policy scheduling call,
//! so the log a policy sees at call `k` holds exactly the queues dirtied
//! since its call `k − 1` — provided the policy consumed every previous
//! flush of this engine. Each cache records the flush count it expects
//! next; on any mismatch (first call, policy reused across runs, resized
//! switch) it falls back to a full rebuild. Correctness therefore never
//! depends on the handshake — only the cost does.
//!
//! ## Cell-locality
//!
//! Cached state is strictly *cell-local* (VOQ heads, crossbar fullness):
//! eligibility rules that involve output queues (fullness, the β/α
//! preemption thresholds) are re-evaluated each cycle in O(N) and applied
//! as filters at match time, so an output queue changing never invalidates
//! a whole column of cached cells.

use cioq_matching::{CachedWeightOrder, IncrementalGraph};
use cioq_model::{PortId, Value};
use cioq_sim::SwitchView;

/// How a policy maintains its per-cycle scheduling structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildMode {
    /// Refresh only the queues the engine reports as dirtied since the
    /// previous scheduling call — O(changes) per cycle. The default.
    #[default]
    Incremental,
    /// Rebuild from scratch by scanning all N² queues every cycle — the
    /// reference implementation the incremental path is tested against.
    Rescan,
}

/// Sentinel flush count meaning "never synced" — forces a full rebuild on
/// first use and after any reuse across engine runs.
const UNSYNCED: u64 = u64::MAX;

/// Incrementally-maintained VOQ head graph: an edge per non-empty `Q_ij`
/// weighted by `v(g_ij)`, shared by GM (weights ignored) and PG (plus a
/// cached descending-weight visit order).
#[derive(Debug, Default)]
pub(crate) struct VoqCache {
    pub(crate) graph: IncrementalGraph,
    pub(crate) order: Option<CachedWeightOrder>,
    expected_flush: u64,
    /// Last-seen [`cioq_queues::SortedQueue::epoch`] per cell: a dirty
    /// mark whose queue epoch is unchanged is a no-op and skipped, so the
    /// cache stays O(real changes) even under conservative over-marking.
    epochs: Vec<u64>,
    /// Per-output `|Q_j| = B(Q_j)`, refreshed each cycle in O(N).
    pub(crate) out_full: Vec<bool>,
    /// Per-output `v(l_j)` where full (0 otherwise), refreshed with
    /// `out_full`.
    pub(crate) out_tail: Vec<Value>,
}

impl VoqCache {
    pub(crate) fn new(weighted: bool) -> Self {
        VoqCache {
            graph: IncrementalGraph::default(),
            order: weighted.then(CachedWeightOrder::default),
            expected_flush: UNSYNCED,
            epochs: Vec::new(),
            out_full: Vec::new(),
            out_tail: Vec::new(),
        }
    }

    /// Bring the head graph (and weight order, if any) up to date with the
    /// view, then refresh the per-output eligibility inputs.
    pub(crate) fn sync(&mut self, view: &SwitchView<'_>) {
        let (n, m) = (view.n_inputs(), view.n_outputs());
        let changes = view.changes();
        let in_sync = self.expected_flush == changes.flush_count()
            && self.graph.n_left() == n
            && self.graph.n_right() == m;
        if in_sync {
            for &cell in changes.dirty_voqs() {
                let (i, j) = (cell as usize / m, cell as usize % m);
                if self.refresh_cell(view, i, j) {
                    if let Some(order) = &mut self.order {
                        order.mark(cell as usize);
                    }
                }
            }
            if let Some(order) = &mut self.order {
                order.repair(&self.graph);
            }
        } else {
            self.graph.reset(n, m);
            self.epochs.clear();
            self.epochs.resize(n * m, u64::MAX);
            for i in 0..n {
                for j in 0..m {
                    self.refresh_cell(view, i, j);
                }
            }
            if let Some(order) = &mut self.order {
                order.rebuild(&self.graph);
            }
        }
        self.expected_flush = changes.flush_count() + 1;

        self.out_full.clear();
        self.out_full.resize(m, false);
        self.out_tail.clear();
        self.out_tail.resize(m, 0);
        for j in 0..m {
            // Virtual occupancy: landed + in flight through the fabric.
            let output = PortId::from(j);
            if view.output_full(output) {
                self.out_full[j] = true;
                self.out_tail[j] = view
                    .output_tail_value(output)
                    .expect("full virtual queue has a tail");
            }
        }
    }

    /// Re-read one VOQ into the graph; returns whether the queue actually
    /// changed since the last read (by its modification epoch).
    #[inline]
    fn refresh_cell(&mut self, view: &SwitchView<'_>, i: usize, j: usize) -> bool {
        let queue = view.input_queue(PortId::from(i), PortId::from(j));
        let cell = i * self.graph.n_right() + j;
        if self.epochs[cell] == queue.epoch() {
            return false;
        }
        self.epochs[cell] = queue.epoch();
        match queue.head_value() {
            Some(g) => self.graph.set_edge(i, j, g),
            None => self.graph.clear_edge(i, j),
        }
        true
    }
}

/// A dense bit matrix with per-row cyclic first-set scans — the eligibility
/// masks CGU's "first eligible index from the round-robin pointer" scans
/// run over.
#[derive(Debug, Default)]
pub(crate) struct BitGrid {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitGrid {
    pub(crate) fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.words_per_row = cols.div_ceil(64);
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
    }

    #[inline]
    pub(crate) fn set(&mut self, row: usize, col: usize, value: bool) {
        debug_assert!(row < self.rows && col < self.cols);
        let word = row * self.words_per_row + col / 64;
        let bit = 1u64 << (col % 64);
        if value {
            self.words[word] |= bit;
        } else {
            self.words[word] &= !bit;
        }
    }

    /// First set column of `row` scanning cyclically from `start`
    /// (i.e. `start, start+1, …, cols-1, 0, …, start-1`).
    pub(crate) fn first_set_cyclic(&self, row: usize, start: usize) -> Option<usize> {
        debug_assert!(start < self.cols);
        let words = &self.words[row * self.words_per_row..(row + 1) * self.words_per_row];
        let scan = |from: usize, to: usize| -> Option<usize> {
            // Scan bit range [from, to) left to right.
            let mut w = from / 64;
            while w * 64 < to {
                let mut word = words[w];
                if w == from / 64 {
                    word &= !0u64 << (from % 64);
                }
                if word != 0 {
                    let col = w * 64 + word.trailing_zeros() as usize;
                    if col < to {
                        return Some(col);
                    }
                    // First set bit is already past `to`: nothing in range.
                }
                w += 1;
            }
            None
        };
        scan(start, self.cols).or_else(|| scan(0, start))
    }
}

/// CGU's incremental eligibility masks.
///
/// `in_ok[i][j]` ⇔ `|Q_ij| > 0 ∧ |C_ij| < B(C_ij)` (input subphase);
/// `out_ok[j][i]` ⇔ `|C_ij| > 0` (output subphase, stored transposed so a
/// per-output scan is one contiguous row).
#[derive(Debug, Default)]
pub(crate) struct CguCache {
    pub(crate) in_ok: BitGrid,
    pub(crate) out_ok: BitGrid,
    expected_flush: u64,
    dims: (usize, usize),
}

impl CguCache {
    pub(crate) fn new() -> Self {
        CguCache {
            expected_flush: UNSYNCED,
            ..CguCache::default()
        }
    }

    pub(crate) fn sync(&mut self, view: &SwitchView<'_>) {
        let (n, m) = (view.n_inputs(), view.n_outputs());
        let changes = view.changes();
        let in_sync = self.expected_flush == changes.flush_count() && self.dims == (n, m);
        if in_sync {
            for &cell in changes.dirty_voqs() {
                let (i, j) = (cell as usize / m, cell as usize % m);
                self.refresh_in(view, i, j);
            }
            for &cell in changes.dirty_xbars() {
                let (i, j) = (cell as usize / m, cell as usize % m);
                self.refresh_in(view, i, j);
                self.refresh_out(view, i, j);
            }
        } else {
            self.dims = (n, m);
            self.in_ok.reset(n, m);
            self.out_ok.reset(m, n);
            for i in 0..n {
                for j in 0..m {
                    self.refresh_in(view, i, j);
                    self.refresh_out(view, i, j);
                }
            }
        }
        self.expected_flush = changes.flush_count() + 1;
    }

    #[inline]
    fn refresh_in(&mut self, view: &SwitchView<'_>, i: usize, j: usize) {
        let (input, output) = (PortId::from(i), PortId::from(j));
        let ok = !view.input_queue(input, output).is_empty()
            && !view.crossbar_queue(input, output).is_full();
        self.in_ok.set(i, j, ok);
    }

    #[inline]
    fn refresh_out(&mut self, view: &SwitchView<'_>, i: usize, j: usize) {
        let ok = !view
            .crossbar_queue(PortId::from(i), PortId::from(j))
            .is_empty();
        self.out_ok.set(j, i, ok);
    }
}

/// CPG's cached per-row / per-column argmax candidates.
///
/// `row_best[i]` is the input-subphase choice for input `i` — the eligible
/// `j` maximising `v(g_ij)` (ties to the smallest `j`); its inputs (`Q_ij`
/// heads, `C_ij` fullness/tails, β) are all row-local, so it is recomputed
/// only when a cell of row `i` is dirtied. `col_best[j]` is the
/// output-subphase candidate — the `i` maximising `v(gc_ij)` over non-empty
/// `C_ij` — and is column-local likewise. The output-side α threshold is
/// *not* cached; the caller evaluates it fresh per output each cycle.
#[derive(Debug, Default)]
pub(crate) struct CpgCache {
    pub(crate) row_best: Vec<Option<(Value, usize)>>,
    pub(crate) col_best: Vec<Option<(Value, usize)>>,
    row_stale: Vec<bool>,
    col_stale: Vec<bool>,
    expected_flush: u64,
    dims: (usize, usize),
}

impl CpgCache {
    pub(crate) fn new() -> Self {
        CpgCache {
            expected_flush: UNSYNCED,
            ..CpgCache::default()
        }
    }

    /// Consume the change log, marking affected rows/columns stale. Called
    /// at the top of both subphases; the recompute helpers below clear the
    /// staleness they resolve.
    pub(crate) fn sync(&mut self, view: &SwitchView<'_>) {
        let (n, m) = (view.n_inputs(), view.n_outputs());
        let changes = view.changes();
        let in_sync = self.expected_flush == changes.flush_count() && self.dims == (n, m);
        if in_sync {
            for &cell in changes.dirty_voqs() {
                self.row_stale[cell as usize / m] = true;
            }
            for &cell in changes.dirty_xbars() {
                self.row_stale[cell as usize / m] = true;
                self.col_stale[cell as usize % m] = true;
            }
        } else {
            self.dims = (n, m);
            self.row_best.clear();
            self.row_best.resize(n, None);
            self.col_best.clear();
            self.col_best.resize(m, None);
            self.row_stale.clear();
            self.row_stale.resize(n, true);
            self.col_stale.clear();
            self.col_stale.resize(m, true);
        }
        self.expected_flush = changes.flush_count() + 1;
    }

    /// Recompute stale input-subphase candidates (the paper's
    /// `J = { j : |Q_ij| > 0 ∧ (|C_ij| < B(C_ij) ∨ v(g_ij) > β·v(lc_ij)) }`
    /// argmax) and clear their staleness.
    pub(crate) fn refresh_rows(&mut self, view: &SwitchView<'_>, beta: f64) {
        for i in 0..self.dims.0 {
            if !self.row_stale[i] {
                continue;
            }
            self.row_stale[i] = false;
            let input = PortId::from(i);
            let mut best: Option<(Value, usize)> = None;
            for j in 0..self.dims.1 {
                let output = PortId::from(j);
                let Some(g_ij) = view.input_queue(input, output).head_value() else {
                    continue;
                };
                let xbar = view.crossbar_queue(input, output);
                let eligible = !xbar.is_full()
                    || cioq_model::exceeds_factor(
                        g_ij,
                        beta,
                        xbar.tail_value().expect("full queue has a tail"),
                    );
                if eligible && best.is_none_or(|(bv, _)| g_ij > bv) {
                    best = Some((g_ij, j));
                }
            }
            self.row_best[i] = best;
        }
    }

    /// Recompute stale output-subphase candidates (argmax of `v(gc_ij)`
    /// over non-empty `C_ij`, ties to the smallest `i`) and clear their
    /// staleness.
    pub(crate) fn refresh_cols(&mut self, view: &SwitchView<'_>) {
        for j in 0..self.dims.1 {
            if !self.col_stale[j] {
                continue;
            }
            self.col_stale[j] = false;
            let output = PortId::from(j);
            let mut best: Option<(Value, usize)> = None;
            for i in 0..self.dims.0 {
                let Some(gc_ij) = view.crossbar_queue(PortId::from(i), output).head_value() else {
                    continue;
                };
                if best.is_none_or(|(bv, _)| gc_ij > bv) {
                    best = Some((gc_ij, i));
                }
            }
            self.col_best[j] = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitgrid_cyclic_scan_wraps() {
        let mut g = BitGrid::default();
        g.reset(2, 70);
        g.set(0, 3, true);
        g.set(0, 68, true);
        assert_eq!(g.first_set_cyclic(0, 0), Some(3));
        assert_eq!(g.first_set_cyclic(0, 4), Some(68));
        assert_eq!(g.first_set_cyclic(0, 69), Some(3), "wraps past the end");
        assert_eq!(g.first_set_cyclic(1, 0), None, "rows are independent");
        g.set(0, 68, false);
        assert_eq!(g.first_set_cyclic(0, 4), Some(3), "wraps to the start");
    }

    #[test]
    fn bitgrid_scan_respects_start_within_word() {
        let mut g = BitGrid::default();
        g.reset(1, 8);
        g.set(0, 1, true);
        g.set(0, 5, true);
        assert_eq!(g.first_set_cyclic(0, 2), Some(5));
        assert_eq!(g.first_set_cyclic(0, 6), Some(1));
        assert_eq!(g.first_set_cyclic(0, 1), Some(1));
    }
}
