//! Shard-scoped incremental schedule-state builders.
//!
//! The sharded engine ([`cioq_sim::shard`]) gives each shard worker its own
//! change log covering exactly the queues the shard owns, plus a batched
//! inbound stream of crossbar cells other shards dirtied in its columns.
//! The caches here are the shard-local counterparts of the global builders
//! in [`crate::incremental`]: each repairs only its shard's rows (or
//! columns), so a K-shard switch splits the per-cycle O(changes) repair K
//! ways.
//!
//! Workers are constructed fresh for every run, so unlike the global caches
//! there is no cross-run resync concern; the flush-count handshake is still
//! kept as a defensive full-rebuild trigger.

use crate::incremental::BitGrid;
use cioq_matching::{CachedWeightOrder, IncrementalGraph};
use cioq_model::{PortId, Value};
use cioq_sim::{FabricView, ShardView};

/// Sentinel flush count meaning "never synced".
const UNSYNCED: u64 = u64::MAX;

/// A recorded weight-order repair: (cells whose entries drop, refreshed
/// `(weight, cell)` entries to merge back in).
type OrderDelta<'a> = (&'a mut Vec<u32>, &'a mut Vec<(Value, u32)>);

/// Shard-local VOQ head graph over the shard's own rows: an edge per
/// non-empty owned `Q_ij` weighted by `v(g_ij)`, with an optional cached
/// descending-weight visit order (PG). Row indices in the graph are
/// *local* (`global row − in_lo`); columns are global.
#[derive(Debug)]
pub(crate) struct ShardVoqCache {
    pub(crate) graph: IncrementalGraph,
    pub(crate) order: Option<CachedWeightOrder>,
    epochs: Vec<u64>,
    expected_flush: u64,
    pub(crate) in_lo: usize,
    rows: usize,
    m: usize,
}

impl ShardVoqCache {
    pub(crate) fn new(weighted: bool) -> Self {
        ShardVoqCache {
            graph: IncrementalGraph::default(),
            order: weighted.then(CachedWeightOrder::default),
            epochs: Vec::new(),
            expected_flush: UNSYNCED,
            in_lo: 0,
            rows: 0,
            m: 0,
        }
    }

    /// Bring the owned rows up to date from the shard's change log.
    pub(crate) fn sync(&mut self, view: &ShardView<'_>) {
        self.sync_inner(view, None);
    }

    /// Like [`ShardVoqCache::sync`], additionally recording the weight
    /// order's repair as an edit script (see
    /// [`CachedWeightOrder::repair_recording`]). Returns `true` when the
    /// sync was an incremental repair — i.e. the recorded delta transforms
    /// the previous order into the current one — and `false` on a full
    /// rebuild, after which the caller must publish the full order.
    pub(crate) fn sync_recording(
        &mut self,
        view: &ShardView<'_>,
        removed: &mut Vec<u32>,
        refreshed: &mut Vec<(Value, u32)>,
    ) -> bool {
        self.sync_inner(view, Some((removed, refreshed)))
    }

    fn sync_inner(&mut self, view: &ShardView<'_>, delta: Option<OrderDelta<'_>>) -> bool {
        let range = view.input_range();
        let (rows, m) = (range.len(), view.n_outputs());
        let changes = view.changes();
        let in_sync = self.expected_flush == changes.flush_count()
            && self.rows == rows
            && self.m == m
            && self.in_lo == range.start;
        if in_sync {
            for &cell in changes.dirty_voqs() {
                let local = cell as usize;
                let (i, j) = (self.in_lo + local / m, local % m);
                if self.refresh_cell(view, i, j) {
                    if let Some(order) = &mut self.order {
                        order.mark(local);
                    }
                }
            }
            if let Some(order) = &mut self.order {
                match delta {
                    Some((removed, refreshed)) => {
                        order.repair_recording(&self.graph, removed, refreshed)
                    }
                    None => order.repair(&self.graph),
                }
            }
        } else {
            self.in_lo = range.start;
            self.rows = rows;
            self.m = m;
            self.graph.reset(rows, m);
            self.epochs.clear();
            self.epochs.resize(rows * m, u64::MAX);
            for i in range {
                for j in 0..m {
                    self.refresh_cell(view, i, j);
                }
            }
            if let Some(order) = &mut self.order {
                order.rebuild(&self.graph);
            }
        }
        self.expected_flush = changes.flush_count() + 1;
        in_sync
    }

    #[inline]
    fn refresh_cell(&mut self, view: &ShardView<'_>, i: usize, j: usize) -> bool {
        let queue = view.input_queue(PortId::from(i), PortId::from(j));
        let local = (i - self.in_lo) * self.m + j;
        if self.epochs[local] == queue.epoch() {
            return false;
        }
        self.epochs[local] = queue.epoch();
        match queue.head_value() {
            Some(g) => self.graph.set_edge(i - self.in_lo, j, g),
            None => self.graph.clear_edge(i - self.in_lo, j),
        }
        true
    }
}

/// Shard-local CGU eligibility masks.
///
/// `in_ok` covers the shard's own rows (local row × global column) and
/// repairs from the shard's own change log; `out_ok` covers the shard's own
/// columns (local column × global row, transposed for contiguous scans) and
/// repairs from the engine's batched inbound crossbar marks.
#[derive(Debug)]
pub(crate) struct ShardCguCache {
    pub(crate) in_ok: BitGrid,
    pub(crate) out_ok: BitGrid,
    in_flush: u64,
    out_synced: bool,
    in_lo: usize,
    out_lo: usize,
}

impl ShardCguCache {
    pub(crate) fn new() -> Self {
        ShardCguCache {
            in_ok: BitGrid::default(),
            out_ok: BitGrid::default(),
            in_flush: UNSYNCED,
            out_synced: false,
            in_lo: 0,
            out_lo: 0,
        }
    }

    /// Input-subphase sync: repair `in_ok` from the shard's own log.
    pub(crate) fn sync_in(&mut self, view: &ShardView<'_>) {
        let range = view.input_range();
        let m = view.n_outputs();
        let changes = view.changes();
        if self.in_flush == changes.flush_count() && self.in_lo == range.start {
            for &cell in changes.dirty_voqs() {
                self.refresh_in(view, self.in_lo + cell as usize / m, cell as usize % m);
            }
            for &cell in changes.dirty_xbars() {
                self.refresh_in(view, self.in_lo + cell as usize / m, cell as usize % m);
            }
        } else {
            self.in_lo = range.start;
            self.in_ok.reset(range.len(), m);
            for i in range {
                for j in 0..m {
                    self.refresh_in(view, i, j);
                }
            }
        }
        self.in_flush = changes.flush_count() + 1;
    }

    /// Output-subphase sync: repair `out_ok` from the inbound marks.
    pub(crate) fn sync_out(&mut self, fabric: &FabricView<'_>, shard: usize, inbound: &[u32]) {
        let range = fabric.partition().output_range(shard);
        let (n, m) = (fabric.n_inputs(), fabric.n_outputs());
        if self.out_synced && self.out_lo == range.start {
            for &cell in inbound {
                self.refresh_out(fabric, cell as usize / m, cell as usize % m);
            }
        } else {
            self.out_lo = range.start;
            self.out_ok.reset(range.len(), n);
            for j in range {
                for i in 0..n {
                    self.refresh_out(fabric, i, j);
                }
            }
            self.out_synced = true;
        }
    }

    #[inline]
    fn refresh_in(&mut self, view: &ShardView<'_>, i: usize, j: usize) {
        let (input, output) = (PortId::from(i), PortId::from(j));
        let ok = !view.input_queue(input, output).is_empty()
            && !view.crossbar_queue(input, output).is_full();
        self.in_ok.set(i - self.in_lo, j, ok);
    }

    #[inline]
    fn refresh_out(&mut self, fabric: &FabricView<'_>, i: usize, j: usize) {
        self.out_ok
            .set(j - self.out_lo, i, !fabric.crossbar_queue(i, j).is_empty());
    }
}

/// Shard-local CPG argmax candidates: `row_best` over the shard's own rows
/// (repaired from the own log), `col_best` over its own columns (repaired
/// from inbound crossbar marks). Values are `(v, global partner index)`.
#[derive(Debug)]
pub(crate) struct ShardCpgCache {
    pub(crate) row_best: Vec<Option<(Value, usize)>>,
    row_stale: Vec<bool>,
    pub(crate) col_best: Vec<Option<(Value, usize)>>,
    col_stale: Vec<bool>,
    in_flush: u64,
    out_synced: bool,
    in_lo: usize,
    out_lo: usize,
}

impl ShardCpgCache {
    pub(crate) fn new() -> Self {
        ShardCpgCache {
            row_best: Vec::new(),
            row_stale: Vec::new(),
            col_best: Vec::new(),
            col_stale: Vec::new(),
            in_flush: UNSYNCED,
            out_synced: false,
            in_lo: 0,
            out_lo: 0,
        }
    }

    /// Consume the own log, marking dirtied rows stale, then recompute them
    /// (the paper's input-subphase argmax with the β threshold).
    pub(crate) fn refresh_rows(&mut self, view: &ShardView<'_>, beta: f64) {
        let range = view.input_range();
        let m = view.n_outputs();
        let changes = view.changes();
        if self.in_flush == changes.flush_count() && self.in_lo == range.start {
            for &cell in changes.dirty_voqs() {
                self.row_stale[cell as usize / m] = true;
            }
            for &cell in changes.dirty_xbars() {
                self.row_stale[cell as usize / m] = true;
            }
        } else {
            self.in_lo = range.start;
            self.row_best.clear();
            self.row_best.resize(range.len(), None);
            self.row_stale.clear();
            self.row_stale.resize(range.len(), true);
        }
        self.in_flush = changes.flush_count() + 1;

        for local in 0..self.row_stale.len() {
            if !self.row_stale[local] {
                continue;
            }
            self.row_stale[local] = false;
            let i = self.in_lo + local;
            let mut best: Option<(Value, usize)> = None;
            for j in 0..m {
                let (input, output) = (PortId::from(i), PortId::from(j));
                let Some(g_ij) = view.input_queue(input, output).head_value() else {
                    continue;
                };
                let xbar = view.crossbar_queue(input, output);
                let eligible = !xbar.is_full()
                    || cioq_model::exceeds_factor(
                        g_ij,
                        beta,
                        xbar.tail_value().expect("full queue has a tail"),
                    );
                if eligible && best.is_none_or(|(bv, _)| g_ij > bv) {
                    best = Some((g_ij, j));
                }
            }
            self.row_best[local] = best;
        }
    }

    /// Consume the inbound marks, marking dirtied columns stale, then
    /// recompute them (output-subphase argmax over non-empty `C_ij`).
    pub(crate) fn refresh_cols(&mut self, fabric: &FabricView<'_>, shard: usize, inbound: &[u32]) {
        let range = fabric.partition().output_range(shard);
        let (n, m) = (fabric.n_inputs(), fabric.n_outputs());
        if self.out_synced && self.out_lo == range.start {
            for &cell in inbound {
                self.col_stale[cell as usize % m - self.out_lo] = true;
            }
        } else {
            self.out_lo = range.start;
            self.col_best.clear();
            self.col_best.resize(range.len(), None);
            self.col_stale.clear();
            self.col_stale.resize(range.len(), true);
            self.out_synced = true;
        }

        for local in 0..self.col_stale.len() {
            if !self.col_stale[local] {
                continue;
            }
            self.col_stale[local] = false;
            let j = self.out_lo + local;
            let mut best: Option<(Value, usize)> = None;
            for i in 0..n {
                let Some(gc_ij) = fabric.crossbar_queue(i, j).head_value() else {
                    continue;
                };
                if best.is_none_or(|(bv, _)| gc_ij > bv) {
                    best = Some((gc_ij, i));
                }
            }
            self.col_best[local] = best;
        }
    }
}
