//! alloc_census: prove the steady-state slot loop heap-allocation-free.
//!
//! Requires the `alloc-audit` feature (`cargo run -p cioq-bench --release
//! --features alloc-audit --bin alloc_census`); without it the bin exits
//! with a usage error, because there is no allocator ledger to read.
//!
//! ## Methodology
//!
//! Per-config differential measurement: each (policy × engine × fabric)
//! cell is run **twice** over the *same* trace — once for `N1` slots, once
//! for `N2 > N1` — and the steady-state cost is the allocation delta
//! divided by the slot delta:
//!
//! ```text
//! allocs/slot = (A(N2) − A(N1)) / (N2 − N1)
//! ```
//!
//! Both runs share the trace, config, fabric and a fresh policy, so every
//! setup cost (trace prebucketing, shard construction, policy cache
//! warm-up, ring growth to steady capacity) appears identically in both
//! ledgers and cancels; what remains is exactly what the slot loop
//! acquires per slot after warm-up. `N1` is far past the point where every
//! scratch vector, calendar ring and policy cache has reached steady
//! capacity under full-fabric churn. The target is **0** — the bin exits
//! non-zero if any steady-state cell allocates (the CI `alloc-audit` job
//! runs exactly this).
//!
//! Sharded cells run `ExecMode::Inline` so all allocation lands on the
//! measuring thread's ledger.
//!
//! Checkpoint encoding is *exempt* from the zero target (serialising a
//! snapshot owns its buffers by design) but still counted: a second
//! differential pass per engine re-runs the GM/Immediate cell with a
//! checkpoint cadence and reports allocations per checkpoint, so the cost
//! is visible and bounded rather than silently excluded.

#[cfg(not(feature = "alloc-audit"))]
fn main() {
    eprintln!("alloc_census requires the alloc-audit feature:");
    eprintln!("  cargo run -p cioq-bench --release --features alloc-audit --bin alloc_census");
    std::process::exit(2);
}

#[cfg(feature = "alloc-audit")]
fn main() {
    census::main()
}

#[cfg(feature = "alloc-audit")]
mod census {
    use cioq_bench::audit;
    use cioq_core::{
        CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, ShardedCgu,
        ShardedCpg, ShardedGm, ShardedPg,
    };
    use cioq_model::{SwitchConfig, Topology};
    use cioq_sim::{
        run_cioq_sharded, run_crossbar_sharded, CioqShardPolicy, CrossbarShardPolicy, DelayLine,
        DelayMatrix, Engine, ExecMode, FabricLink, FaultPlan, Immediate, RunOptions,
        ShardedOptions, Trace, TraceSource,
    };
    use cioq_traffic::{gen_trace, FullFabricChurn, ValueDist};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Warm-up horizon: slots of churn before the short run ends. Set per
    /// port count in [`main`]: it must outlast every one-time lazy
    /// acquisition — ring/scratch/cache growth, and the first full churn
    /// sweep of the fabric (`j = (i·stride + slot + d) mod M` first
    /// touches its last virtual output queue, and that queue's lazy
    /// backing reserve, near slot `M`).
    static N1: AtomicU64 = AtomicU64::new(96);
    /// Long-run horizon; the steady-state window is `n2() - n1()` slots.
    static N2: AtomicU64 = AtomicU64::new(224);

    fn n1() -> u64 {
        N1.load(Ordering::Relaxed)
    }
    fn n2() -> u64 {
        N2.load(Ordering::Relaxed)
    }
    /// Checkpoint cadence for the exempt-but-reported checkpoint pass.
    const CKPT_EVERY: u64 = 16;

    struct Row {
        policy: &'static str,
        engine: String,
        fabric: &'static str,
        steady: f64,
        raw: u64,
    }

    fn fabrics(n: usize) -> Vec<(&'static str, Box<dyn FabricLink>)> {
        let topo = Topology::two_tier(n, n, 4, 0, 2).expect("valid two-tier topology");
        vec![
            ("immediate", Box::new(Immediate) as Box<dyn FabricLink>),
            ("delay-line(2)", Box::new(DelayLine { d: 2 })),
            ("two-tier", Box::new(DelayMatrix::new(topo))),
        ]
    }

    fn run_options(slots: u64, link: &dyn FabricLink, faults: Option<FaultPlan>) -> RunOptions {
        RunOptions {
            slots: Some(slots),
            drain: false,
            validate: false,
            checkpoint_every: None,
            stats_window: Some(64),
            faults,
            ..RunOptions::default()
        }
        .link(link)
    }

    fn sharded_options(slots: u64, k: usize, link: &dyn FabricLink) -> ShardedOptions {
        ShardedOptions {
            mode: ExecMode::Inline,
            slots: Some(slots),
            drain: false,
            ..ShardedOptions::new(k)
        }
        .link(link)
    }

    /// Allocations on this thread's measure ledger while `f` runs.
    fn measured(f: impl FnOnce()) -> u64 {
        let _g = audit::enter_phase(audit::PHASE_MEASURE);
        let before = audit::phase_count(audit::PHASE_MEASURE);
        f();
        audit::phase_count(audit::PHASE_MEASURE) - before
    }

    /// Differential steady-state cost of `run(slots)` per slot. With
    /// `ALLOC_CENSUS_TRACE=<n>` set, prints a backtrace for the first `n`
    /// steady-window allocations of each cell (the long run's allocations
    /// past the short run's deterministic prefix) — the counts themselves
    /// are polluted by the captures in that mode, so it is diagnostic only.
    fn steady(mut run: impl FnMut(u64)) -> (f64, u64) {
        static DIFF_CELL: AtomicUsize = AtomicUsize::new(0);
        let trace_n: u32 = std::env::var("ALLOC_CENSUS_TRACE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        // `ALLOC_CENSUS_DIFF=<cell>`: trace EVERY allocation of both runs
        // of that one table cell (other cells are skipped entirely), so a
        // per-site count diff pins the extra allocations exactly — no
        // positional guessing about where teardown starts. Diagnostic
        // only; the table is meaningless in this mode.
        if let Some(only) = std::env::var("ALLOC_CENSUS_DIFF")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            let cell = DIFF_CELL.fetch_add(1, Ordering::Relaxed);
            if cell != only {
                return (0.0, 0);
            }
            eprintln!("census-diff-run 1");
            audit::arm_backtraces(0, u32::MAX);
            let a1 = measured(|| run(n1()));
            eprintln!("census-diff-run 2");
            audit::arm_backtraces(0, u32::MAX);
            let a2 = measured(|| run(n2()));
            audit::arm_backtraces(0, 0);
            let raw = a2.saturating_sub(a1);
            return (raw as f64 / (n2() - n1()) as f64, raw);
        }
        let a1 = measured(|| run(n1()));
        if trace_n > 0 {
            static CELL: AtomicUsize = AtomicUsize::new(0);
            // Table-order cell index, so trace output can be attributed to
            // a cell even though the table prints after all runs.
            eprintln!("census-cell {}", CELL.fetch_add(1, Ordering::Relaxed));
            // Back the skip off by the short run's teardown cost
            // (ALLOC_CENSUS_TRACE_BACK, default 0) so the window starts at
            // the long run's first steady-state slot instead of its
            // teardown: the short run's ledger ends with teardown
            // allocations that the long run only reaches at the very end.
            let back: u64 = std::env::var("ALLOC_CENSUS_TRACE_BACK")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            audit::arm_backtraces(a1.saturating_sub(back), trace_n + back as u32);
        }
        let a2 = measured(|| run(n2()));
        audit::arm_backtraces(0, 0);
        let raw = a2.saturating_sub(a1);
        (raw as f64 / (n2() - n1()) as f64, raw)
    }

    fn seq_cioq(
        cfg: &SwitchConfig,
        trace: &Trace,
        link: &dyn FabricLink,
        faults: Option<&FaultPlan>,
        mk: impl Fn() -> Box<dyn cioq_sim::CioqPolicy>,
    ) -> (f64, u64) {
        steady(|slots| {
            let mut policy = mk();
            let mut source = TraceSource::new(trace);
            let engine = Engine::try_new(cfg.clone(), run_options(slots, link, faults.cloned()))
                .expect("valid run options");
            engine
                .run_cioq(policy.as_mut(), &mut source)
                .expect("census run");
        })
    }

    fn seq_crossbar(
        cfg: &SwitchConfig,
        trace: &Trace,
        link: &dyn FabricLink,
        faults: Option<&FaultPlan>,
        mk: impl Fn() -> Box<dyn cioq_sim::CrossbarPolicy>,
    ) -> (f64, u64) {
        steady(|slots| {
            let mut policy = mk();
            let mut source = TraceSource::new(trace);
            let engine = Engine::try_new(cfg.clone(), run_options(slots, link, faults.cloned()))
                .expect("valid run options");
            engine
                .run_crossbar(policy.as_mut(), &mut source)
                .expect("census run");
        })
    }

    fn sharded_cioq(
        cfg: &SwitchConfig,
        trace: &Trace,
        link: &dyn FabricLink,
        k: usize,
        policy: &dyn CioqShardPolicy,
    ) -> (f64, u64) {
        steady(|slots| {
            run_cioq_sharded(cfg, policy, trace, sharded_options(slots, k, link))
                .expect("census run");
        })
    }

    fn sharded_crossbar(
        cfg: &SwitchConfig,
        trace: &Trace,
        link: &dyn FabricLink,
        k: usize,
        policy: &dyn CrossbarShardPolicy,
    ) -> (f64, u64) {
        steady(|slots| {
            run_crossbar_sharded(cfg, policy, trace, sharded_options(slots, k, link))
                .expect("census run");
        })
    }

    pub(super) fn main() {
        let quick = std::env::args().any(|a| a == "--quick");
        let n: usize = if quick { 32 } else { 128 };
        // The warm prefix must contain the whole first churn sweep (every
        // virtual output queue's one-time lazy backing reserve lands by
        // slot ~n), with the same 2× margin the quick census has always
        // had; the measured window stays 128 slots.
        N1.store((2 * n as u64).max(96), Ordering::Relaxed);
        N2.store(n1() + 128, Ordering::Relaxed);
        let seed = 0xA110C;

        let cioq_cfg = SwitchConfig::cioq(n, 8, 2);
        let xbar_cfg = SwitchConfig::crossbar(n, 8, 4, 2);

        // One trace per (config, values) pair, at the long horizon; both
        // differential runs consume the same trace so prebucketing and
        // admission patterns are identical through slot N1.
        let churn_unit = FullFabricChurn::new(2, 5, ValueDist::Unit);
        let churn_vals = FullFabricChurn::new(2, 5, ValueDist::Uniform { max: 9 });
        let cioq_unit = gen_trace(&churn_unit, &cioq_cfg, n2(), seed);
        let cioq_vals = gen_trace(&churn_vals, &cioq_cfg, n2(), seed);
        let xbar_unit = gen_trace(&churn_unit, &xbar_cfg, n2(), seed);
        let xbar_vals = gen_trace(&churn_vals, &xbar_cfg, n2(), seed);

        let mut rows: Vec<Row> = Vec::new();

        for (fname, link) in fabrics(n) {
            // Sequential engines, fault-free.
            let cells: [(&str, (f64, u64)); 4] = [
                (
                    "gm",
                    seq_cioq(&cioq_cfg, &cioq_unit, link.as_ref(), None, || {
                        Box::new(GreedyMatching::new())
                    }),
                ),
                (
                    "pg",
                    seq_cioq(&cioq_cfg, &cioq_vals, link.as_ref(), None, || {
                        Box::new(PreemptiveGreedy::new())
                    }),
                ),
                (
                    "cgu",
                    seq_crossbar(&xbar_cfg, &xbar_unit, link.as_ref(), None, || {
                        Box::new(CrossbarGreedyUnit::new())
                    }),
                ),
                (
                    "cpg",
                    seq_crossbar(&xbar_cfg, &xbar_vals, link.as_ref(), None, || {
                        Box::new(CrossbarPreemptiveGreedy::new())
                    }),
                ),
            ];
            for (policy, (steady, raw)) in cells {
                rows.push(Row {
                    policy,
                    engine: "seq".to_string(),
                    fabric: fname,
                    steady,
                    raw,
                });
            }

            // Sharded inline engines.
            for k in [2usize, 4] {
                let engine = format!("sharded-k{k}");
                let cells: [(&str, (f64, u64)); 4] = [
                    (
                        "gm",
                        sharded_cioq(&cioq_cfg, &cioq_unit, link.as_ref(), k, &ShardedGm::new()),
                    ),
                    (
                        "pg",
                        sharded_cioq(&cioq_cfg, &cioq_vals, link.as_ref(), k, &ShardedPg::new()),
                    ),
                    (
                        "cgu",
                        sharded_crossbar(
                            &xbar_cfg,
                            &xbar_unit,
                            link.as_ref(),
                            k,
                            &ShardedCgu::new(),
                        ),
                    ),
                    (
                        "cpg",
                        sharded_crossbar(
                            &xbar_cfg,
                            &xbar_vals,
                            link.as_ref(),
                            k,
                            &ShardedCpg::new(),
                        ),
                    ),
                ];
                for (policy, (steady, raw)) in cells {
                    rows.push(Row {
                        policy,
                        engine: engine.clone(),
                        fabric: fname,
                        steady,
                        raw,
                    });
                }
            }
        }

        // Faulted sequential pass: the retransmit hold/release machinery
        // must also be allocation-free in steady state. The plan is built
        // over the long horizon and shared by both differential runs.
        let link = DelayLine { d: 2 };
        let plan = FaultPlan::seeded(0xFA17, n, n, n2(), 24);
        let faulted: [(&str, (f64, u64)); 2] = [
            (
                "gm",
                seq_cioq(&cioq_cfg, &cioq_unit, &link, Some(&plan), || {
                    Box::new(GreedyMatching::new())
                }),
            ),
            (
                "pg",
                seq_cioq(&cioq_cfg, &cioq_vals, &link, Some(&plan), || {
                    Box::new(PreemptiveGreedy::new())
                }),
            ),
        ];
        for (policy, (steady, raw)) in faulted {
            rows.push(Row {
                policy,
                engine: "seq+faults".to_string(),
                fabric: "delay-line(2)",
                steady,
                raw,
            });
        }

        // Checkpoint pass (exempt from the zero target, reported): the
        // differential run with a checkpoint cadence minus the fault-free
        // steady cost is the encoder's own traffic per checkpoint.
        let base = seq_cioq(&cioq_cfg, &cioq_unit, &Immediate, None, || {
            Box::new(GreedyMatching::new())
        });
        let with_ckpt = steady(|slots| {
            let mut policy = GreedyMatching::new();
            let mut source = TraceSource::new(&cioq_unit);
            let options = RunOptions {
                checkpoint_every: Some(CKPT_EVERY),
                ..run_options(slots, &Immediate, None)
            };
            let engine = Engine::try_new(cioq_cfg.clone(), options).expect("valid run options");
            engine
                .run_cioq(&mut policy, &mut source)
                .expect("census run");
        });
        let ckpts_in_window = (n2() - n1()) / CKPT_EVERY;
        let per_ckpt = (with_ckpt.1.saturating_sub(base.1)) as f64 / ckpts_in_window.max(1) as f64;

        println!(
            "alloc_census: {n} ports, FullFabricChurn(degree=2), slots {} -> {}",
            n1(),
            n2()
        );
        println!();
        println!(
            "{:<6} {:<12} {:<14} {:>14} {:>10}  verdict",
            "policy", "engine", "fabric", "allocs/slot", "raw"
        );
        let mut failures = 0usize;
        for r in &rows {
            let ok = r.raw == 0;
            if !ok {
                failures += 1;
            }
            println!(
                "{:<6} {:<12} {:<14} {:>14.3} {:>10}  {}",
                r.policy,
                r.engine,
                r.fabric,
                r.steady,
                r.raw,
                if ok { "ok" } else { "ALLOC" }
            );
        }
        println!();
        println!(
            "checkpoint encode (exempt): {per_ckpt:.1} allocs per checkpoint \
             (cadence {CKPT_EVERY}, window {ckpts_in_window} checkpoints)"
        );

        if failures > 0 {
            eprintln!("{failures} steady-state cell(s) allocate; the slot loop is not clean");
            std::process::exit(1);
        }
        println!("census clean: 0 steady-state heap allocations per slot in every cell");
    }
}
