//! Ad-hoc profiling probe for the sharded engine (dev tool, not a bench):
//! sequential vs sharded K ∈ {1,2,4} wall-clock at a given port count.

use cioq_core::{GreedyMatching, PreemptiveGreedy, ShardedGm, ShardedPg};
use cioq_model::SwitchConfig;
use cioq_sim::{run_cioq_sharded, Engine, RunOptions, ShardedOptions, Trace, TraceSource};
use cioq_traffic::{gen_trace, BernoulliUniform, FullFabricChurn, ValueDist};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let churn = std::env::args().any(|a| a == "--churn");
    let slots = 128u64;
    let cfg = SwitchConfig::cioq(n, 8, 1);
    let values = ValueDist::Zipf {
        max: 64,
        exponent: 1.1,
    };
    let trace = if churn {
        gen_trace(&FullFabricChurn::new(2, 5, values), &cfg, slots, 7)
    } else {
        gen_trace(&BernoulliUniform::new(0.9, values), &cfg, slots, 7)
    };
    // Steady-state measurement under overload: drain off, fixed slots.
    let drain = !churn;
    let run_options = RunOptions {
        slots: Some(slots),
        drain,
        validate: false,
        ..RunOptions::default()
    };
    let run_seq = |policy: &mut dyn cioq_sim::CioqPolicy, trace: &Trace| {
        let mut source = TraceSource::new(trace);
        Engine::new(cfg.clone(), run_options.clone())
            .run_cioq(policy, &mut source)
            .unwrap();
    };
    let reps = 3;
    let time = |f: &mut dyn FnMut()| {
        f();
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let gm = time(&mut || run_seq(&mut GreedyMatching::new(), &trace));
    let pg = time(&mut || run_seq(&mut PreemptiveGreedy::new(), &trace));
    println!("n={n} seq GM {gm:.2}ms PG {pg:.2}ms");
    for k in [1usize, 2, 4] {
        let mut opts = ShardedOptions::new(k);
        opts.slots = Some(slots);
        opts.drain = drain;
        let gms = time(&mut || {
            run_cioq_sharded(&cfg, &ShardedGm::new(), &trace, opts.clone()).unwrap();
        });
        let pgs = time(&mut || {
            run_cioq_sharded(&cfg, &ShardedPg::new(), &trace, opts.clone()).unwrap();
        });
        println!("n={n} k={k} GM-sharded {gms:.2}ms PG-sharded {pgs:.2}ms");
    }
}
