//! Compare benchmark baseline snapshots (JSON-lines, as written by the
//! harness under `CRITERION_BASELINE_JSON`) and fail on regressions.
//!
//! Two modes:
//!
//! ```text
//! # Pairwise: candidate vs one explicit baseline.
//! bench_compare <baseline.json> <candidate.json> \
//!     [--threshold 1.25] [--groups matching,scheduling_cycle,end_to_end]
//!
//! # History: candidate vs an append-mode directory of snapshots. The
//! # newest same-machine snapshot (snapshots carry a machine/thread-count
//! # meta line; filenames sort oldest → newest — name them
//! # baseline-YYYY-MM-DD*.json) is the regression baseline, and only
//! # same-machine entries supply the per-benchmark drift band
//! # [min..max], so a slow creep that stays inside the band reads as
//! # drift, not regression, and a foreign machine's numbers never
//! # tighten or loosen the band. A tagged candidate with zero
//! # same-machine history is an error (exit 2) — banding against
//! # foreign machines would silently hide real regressions — unless
//! # --allow-cross-machine explicitly opts into the coarse comparison.
//! # Untagged candidates (pre-metadata snapshots) keep the coarse
//! # whole-directory fallback with a warning.
//! bench_compare --history <dir> <candidate.json> \
//!     [--threshold 1.25] [--groups ...] [--save] [--allow-cross-machine]
//! ```
//!
//! `--save` appends the candidate into the history directory (under its
//! own basename) after a clean run, growing the same-machine history.
//!
//! Exit codes: 0 = no regression, 1 = at least one benchmark in a guarded
//! group regressed beyond the threshold, 2 = usage / parse error.
//!
//! Benchmarks present in only one snapshot are reported but never fail the
//! run (new benchmarks appear, baselines age); only a guarded benchmark
//! measured in **both** snapshots can regress. The parser handles exactly
//! the flat `{"group":…,"name":…,"ns_per_iter":…}` records our harness
//! writes — not general JSON.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Sample {
    ns_per_iter: f64,
}

/// Recording-host metadata carried by a snapshot's meta line
/// (`{"meta":"host","machine":…,"threads":…}`, written by the bench
/// harness).
#[derive(Debug, Clone, PartialEq)]
struct Meta {
    machine: String,
    threads: Option<u64>,
}

/// Per-benchmark range observed across a snapshot history.
#[derive(Debug, Clone, Copy)]
struct Band {
    min: f64,
    max: f64,
    snapshots: usize,
}

fn parse_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

fn parse_snapshot(path: &str) -> Result<(BTreeMap<String, Sample>, Option<Meta>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    let mut meta = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if parse_field(line, "meta").is_some() {
            // Host metadata record; last one wins (one per bench binary).
            meta = Some(Meta {
                machine: parse_field(line, "machine")
                    .unwrap_or("unknown")
                    .to_string(),
                threads: parse_field(line, "threads").and_then(|v| v.parse().ok()),
            });
            continue;
        }
        let group = parse_field(line, "group")
            .ok_or_else(|| format!("{path}:{}: missing \"group\"", lineno + 1))?;
        let name = parse_field(line, "name")
            .ok_or_else(|| format!("{path}:{}: missing \"name\"", lineno + 1))?;
        let ns: f64 = parse_field(line, "ns_per_iter")
            .ok_or_else(|| format!("{path}:{}: missing \"ns_per_iter\"", lineno + 1))?
            .parse()
            .map_err(|e| format!("{path}:{}: bad ns_per_iter: {e}", lineno + 1))?;
        // Last write wins: appended snapshots override earlier runs.
        out.insert(format!("{group}/{name}"), Sample { ns_per_iter: ns });
    }
    Ok((out, meta))
}

/// Snapshot files of a history directory in name order (oldest → newest
/// under the baseline-YYYY-MM-DD naming convention).
fn history_files(dir: &str) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read history dir {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("history dir {dir} holds no .json snapshots"));
    }
    Ok(files)
}

/// Fold a set of snapshots into per-benchmark drift bands.
fn drift_bands<'a>(
    snapshots: impl IntoIterator<Item = &'a BTreeMap<String, Sample>>,
) -> BTreeMap<String, Band> {
    let mut bands: BTreeMap<String, Band> = BTreeMap::new();
    for snap in snapshots {
        for (key, sample) in snap {
            bands
                .entry(key.clone())
                .and_modify(|b| {
                    b.min = b.min.min(sample.ns_per_iter);
                    b.max = b.max.max(sample.ns_per_iter);
                    b.snapshots += 1;
                })
                .or_insert(Band {
                    min: sample.ns_per_iter,
                    max: sample.ns_per_iter,
                    snapshots: 1,
                });
        }
    }
    bands
}

/// Pick the history snapshots to band against, given the candidate's
/// machine tag and each history snapshot's tag (`None` = pre-metadata).
///
/// A tagged candidate bands only same-machine snapshots; when none
/// exist that is an error rather than a silent whole-directory fallback
/// — a band built from foreign machines can be wide enough to swallow a
/// genuine regression — unless `allow_cross_machine` opts in. Untagged
/// candidates can't do better than the whole directory and keep the
/// coarse fallback (flagged by the returned label).
fn select_history(
    candidate_machine: Option<&str>,
    machines: &[Option<String>],
    allow_cross_machine: bool,
) -> Result<(Vec<usize>, &'static str), String> {
    let total = machines.len();
    match candidate_machine {
        Some(m) => {
            let same: Vec<usize> = (0..total)
                .filter(|&idx| machines[idx].as_deref() == Some(m))
                .collect();
            if !same.is_empty() {
                Ok((same, "same-machine"))
            } else if allow_cross_machine {
                Ok(((0..total).collect(), "cross-machine"))
            } else {
                Err(format!(
                    "history holds no snapshot from machine {m:?} — all {total} entr{} \
                     were recorded elsewhere or untagged, and a cross-machine drift band \
                     can hide real regressions. Seed the history from this machine with \
                     --save, or pass --allow-cross-machine for a coarse comparison",
                    if total == 1 { "y" } else { "ies" }
                ))
            }
        }
        None => Ok(((0..total).collect(), "untagged")),
    }
}

struct Args {
    paths: Vec<String>,
    history: Option<String>,
    save: bool,
    allow_cross_machine: bool,
    threshold: f64,
    groups: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        paths: Vec::new(),
        history: None,
        save: false,
        allow_cross_machine: false,
        threshold: 1.25,
        groups: vec![
            "matching".into(),
            "scheduling_cycle".into(),
            "end_to_end".into(),
        ],
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => parsed.threshold = v,
                None => return Err("--threshold needs a float argument".into()),
            },
            "--groups" => match it.next() {
                Some(v) => parsed.groups = v.split(',').map(|s| s.trim().to_string()).collect(),
                None => return Err("--groups needs a comma-separated list".into()),
            },
            "--history" => match it.next() {
                Some(v) => parsed.history = Some(v.clone()),
                None => return Err("--history needs a directory argument".into()),
            },
            "--save" => parsed.save = true,
            "--allow-cross-machine" => parsed.allow_cross_machine = true,
            _ => parsed.paths.push(arg.clone()),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let usage = "usage: bench_compare <baseline.json> <candidate.json> | \
                 bench_compare --history <dir> <candidate.json> [--save] \
                 [--allow-cross-machine] [--threshold 1.25] \
                 [--groups matching,scheduling_cycle,end_to_end]";

    // Resolve the candidate, the baseline (pairwise or history head), and
    // the drift bands.
    let (baseline, bands, candidate, candidate_path) = if let Some(dir) = &args.history {
        if args.paths.len() != 1 {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
        let candidate_path = args.paths[0].clone();
        let (candidate, candidate_meta) = match parse_snapshot(&candidate_path) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        // A machine named "unknown" is the harness's could-not-tell
        // fallback, shared by every host without a resolvable hostname —
        // matching on it would band foreign machines as "same". Treat it
        // as untagged instead.
        let candidate_meta = candidate_meta.filter(|m| m.machine != "unknown");
        let files = match history_files(dir) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let mut snapshots = Vec::new();
        for f in &files {
            match parse_snapshot(&f.to_string_lossy()) {
                Ok(s) => snapshots.push(s),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        // Band only same-machine entries: a foreign machine's numbers
        // must never widen or narrow this machine's drift band, and the
        // regression baseline should be the newest snapshot this machine
        // recorded. Zero same-machine history is an error unless
        // --allow-cross-machine; untagged candidates keep the coarse
        // whole-directory fallback.
        let total = snapshots.len();
        let machines: Vec<Option<String>> = snapshots
            .iter()
            .map(|(_, m)| m.as_ref().map(|m| m.machine.clone()))
            .collect();
        let (mut usable, which) = match select_history(
            candidate_meta.as_ref().map(|m| m.machine.as_str()),
            &machines,
            args.allow_cross_machine,
        ) {
            Ok(sel) => sel,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        match which {
            "cross-machine" => println!(
                "history: no snapshot from this machine; comparing against all \
                 {total} entries (cross-machine, coarse — --allow-cross-machine)"
            ),
            "untagged" => println!(
                "history: candidate snapshot carries no machine tag; comparing \
                 against all {total} entries (coarse)"
            ),
            _ => {}
        }
        let newest = usable.pop().expect("non-empty history");
        println!(
            "history: banding {} of {total} snapshots in {dir} ({which}), \
             regression baseline = {}",
            usable.len() + 1,
            files[newest].display()
        );
        // Same machine, different parallelism still shifts timings — say
        // so rather than silently comparing across thread counts.
        if let (Some(ct), Some(bt)) = (
            candidate_meta.as_ref().and_then(|m| m.threads),
            snapshots[newest].1.as_ref().and_then(|m| m.threads),
        ) {
            if ct != bt {
                println!(
                    "history: candidate recorded with {ct} threads, baseline with {bt} — \
                     expect extra drift"
                );
            }
        }
        let bands = drift_bands(
            usable
                .iter()
                .chain(std::iter::once(&newest))
                .map(|&idx| &snapshots[idx].0),
        );
        let baseline = snapshots.swap_remove(newest).0;
        (baseline, Some(bands), candidate, candidate_path)
    } else {
        if args.paths.len() != 2 {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
        let baseline = match parse_snapshot(&args.paths[0]) {
            Ok((b, _)) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let candidate = match parse_snapshot(&args.paths[1]) {
            Ok((c, _)) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        (baseline, None, candidate, args.paths[1].clone())
    };

    let guarded = |key: &str| {
        args.groups
            .iter()
            .any(|g| key.starts_with(&format!("{g}/")))
    };
    let mut regressions = 0u32;
    println!(
        "{:<50} {:>12} {:>12} {:>8}  {}",
        "benchmark",
        "baseline",
        "candidate",
        "ratio",
        if bands.is_some() { "history band" } else { "" }
    );
    for (key, base) in &baseline {
        let Some(cand) = candidate.get(key) else {
            println!(
                "{key:<50} {:>12.1} {:>12} {:>8}",
                base.ns_per_iter, "absent", "-"
            );
            continue;
        };
        let ratio = cand.ns_per_iter / base.ns_per_iter;
        let band = bands.as_ref().and_then(|b| b.get(key));
        let band_note = match band {
            Some(b) if b.snapshots >= 2 => {
                if cand.ns_per_iter <= b.max {
                    format!("  [{:.0}..{:.0}] within band", b.min, b.max)
                } else {
                    format!(
                        "  [{:.0}..{:.0}] {:.2}x beyond band",
                        b.min,
                        b.max,
                        cand.ns_per_iter / b.max
                    )
                }
            }
            _ => String::new(),
        };
        let verdict = if guarded(key) && ratio > args.threshold {
            regressions += 1;
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "{key:<50} {:>12.1} {:>12.1} {ratio:>7.2}x{verdict}{band_note}",
            base.ns_per_iter, cand.ns_per_iter
        );
    }
    for key in candidate.keys() {
        if !baseline.contains_key(key) {
            println!("{key:<50} {:>12} (new benchmark)", "-");
        }
    }

    if regressions > 0 {
        eprintln!(
            "{regressions} benchmark(s) regressed more than {:.0}% in guarded groups {:?}",
            (args.threshold - 1.0) * 100.0,
            args.groups
        );
        return ExitCode::from(1);
    }
    println!(
        "no regressions beyond {:.2}x in guarded groups {:?}",
        args.threshold, args.groups
    );

    if args.save {
        let Some(dir) = &args.history else {
            eprintln!("--save requires --history");
            return ExitCode::from(2);
        };
        let name = Path::new(&candidate_path)
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_else(|| "candidate.json".into());
        let target = Path::new(dir).join(&name);
        if target.exists() {
            eprintln!(
                "refusing to overwrite existing snapshot {}",
                target.display()
            );
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::copy(&candidate_path, &target) {
            eprintln!("cannot save snapshot into history: {e}");
            return ExitCode::from(2);
        }
        println!("saved {} into the history", target.display());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_our_jsonl_records() {
        let line =
            r#"{"group":"matching","name":"greedy_maximal/16","ns_per_iter":260.2,"elements":120}"#;
        assert_eq!(parse_field(line, "group"), Some("matching"));
        assert_eq!(parse_field(line, "name"), Some("greedy_maximal/16"));
        assert_eq!(parse_field(line, "ns_per_iter"), Some("260.2"));
        // Trailing field without a comma terminator.
        let tail = r#"{"group":"opt_bounds","name":"unit/4x4x128","ns_per_iter":3292836.4}"#;
        assert_eq!(parse_field(tail, "ns_per_iter"), Some("3292836.4"));
    }

    #[test]
    fn drift_bands_fold_min_max_across_snapshots() {
        let snap = |ns: f64| {
            let mut m = BTreeMap::new();
            m.insert("matching/greedy/16".to_string(), Sample { ns_per_iter: ns });
            m
        };
        let bands = drift_bands(&[snap(100.0), snap(120.0), snap(90.0)]);
        let b = bands.get("matching/greedy/16").expect("band exists");
        assert_eq!(b.snapshots, 3);
        assert_eq!(b.min, 90.0);
        assert_eq!(b.max, 120.0);
    }

    #[test]
    fn history_files_sort_and_filter() {
        let dir = std::env::temp_dir().join(format!("bench_hist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "baseline-2026-07-28-b.json",
            "baseline-2026-07-01.json",
            "notes.txt",
        ] {
            std::fs::write(dir.join(name), "").unwrap();
        }
        let files = history_files(&dir.to_string_lossy()).unwrap();
        assert_eq!(files.len(), 2, ".txt files are ignored");
        assert!(
            files[1]
                .to_string_lossy()
                .ends_with("baseline-2026-07-28-b.json"),
            "newest snapshot sorts last"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_lines_parse_and_skip_sample_records() {
        let dir = std::env::temp_dir().join(format!("bench_meta_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        std::fs::write(
            &path,
            concat!(
                "{\"meta\":\"host\",\"machine\":\"rig-a\",\"threads\":8}\n",
                "{\"group\":\"matching\",\"name\":\"greedy/16\",\"ns_per_iter\":100.0}\n",
                "{\"meta\":\"host\",\"machine\":\"rig-b\",\"threads\":4}\n",
            ),
        )
        .unwrap();
        let (samples, meta) = parse_snapshot(&path.to_string_lossy()).unwrap();
        assert_eq!(samples.len(), 1, "meta lines are not samples");
        let meta = meta.expect("meta present");
        assert_eq!(meta.machine, "rig-b", "last meta line wins");
        assert_eq!(meta.threads, Some(4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn untagged_snapshots_still_parse() {
        let dir = std::env::temp_dir().join(format!("bench_untag_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.json");
        std::fs::write(
            &path,
            "{\"group\":\"matching\",\"name\":\"greedy/16\",\"ns_per_iter\":100.0}\n",
        )
        .unwrap();
        let (samples, meta) = parse_snapshot(&path.to_string_lossy()).unwrap();
        assert_eq!(samples.len(), 1);
        assert!(meta.is_none(), "pre-metadata snapshots carry no tag");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arg_parser_handles_history_mode() {
        let args: Vec<String> = ["--history", "benchmarks/history", "fresh.json", "--save"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_args(&args).unwrap();
        assert_eq!(parsed.history.as_deref(), Some("benchmarks/history"));
        assert!(parsed.save);
        assert!(!parsed.allow_cross_machine);
        assert_eq!(parsed.paths, vec!["fresh.json".to_string()]);
    }

    #[test]
    fn select_history_prefers_same_machine() {
        let machines = vec![
            Some("rig-a".to_string()),
            Some("rig-b".to_string()),
            None,
            Some("rig-a".to_string()),
        ];
        let (idx, which) = select_history(Some("rig-a"), &machines, false).unwrap();
        assert_eq!(idx, vec![0, 3]);
        assert_eq!(which, "same-machine");
    }

    #[test]
    fn select_history_rejects_foreign_only_history() {
        let machines = vec![Some("rig-b".to_string()), None];
        let err = select_history(Some("rig-a"), &machines, false).unwrap_err();
        assert!(
            err.contains("--save") && err.contains("--allow-cross-machine"),
            "error must point at the fixes: {err}"
        );
    }

    #[test]
    fn select_history_cross_machine_needs_opt_in() {
        let machines = vec![Some("rig-b".to_string())];
        let (idx, which) = select_history(Some("rig-a"), &machines, true).unwrap();
        assert_eq!(idx, vec![0]);
        assert_eq!(which, "cross-machine");
    }

    #[test]
    fn select_history_untagged_candidate_keeps_coarse_fallback() {
        let machines = vec![Some("rig-b".to_string()), None];
        let (idx, which) = select_history(None, &machines, false).unwrap();
        assert_eq!(idx, vec![0, 1]);
        assert_eq!(which, "untagged");
    }
}
