//! Compare two benchmark baseline snapshots (JSON-lines, as written by the
//! harness under `CRITERION_BASELINE_JSON`) and fail on regressions.
//!
//! ```text
//! bench_compare <baseline.json> <candidate.json> \
//!     [--threshold 1.25] [--groups matching,scheduling_cycle,end_to_end]
//! ```
//!
//! Exit codes: 0 = no regression, 1 = at least one benchmark in a guarded
//! group regressed beyond the threshold, 2 = usage / parse error.
//!
//! Benchmarks present in only one snapshot are reported but never fail the
//! run (new benchmarks appear, baselines age); only a guarded benchmark
//! measured in **both** snapshots can regress. The parser handles exactly
//! the flat `{"group":…,"name":…,"ns_per_iter":…}` records our harness
//! writes — not general JSON.

use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Sample {
    ns_per_iter: f64,
}

fn parse_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

fn parse_snapshot(path: &str) -> Result<BTreeMap<String, Sample>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let group = parse_field(line, "group")
            .ok_or_else(|| format!("{path}:{}: missing \"group\"", lineno + 1))?;
        let name = parse_field(line, "name")
            .ok_or_else(|| format!("{path}:{}: missing \"name\"", lineno + 1))?;
        let ns: f64 = parse_field(line, "ns_per_iter")
            .ok_or_else(|| format!("{path}:{}: missing \"ns_per_iter\"", lineno + 1))?
            .parse()
            .map_err(|e| format!("{path}:{}: bad ns_per_iter: {e}", lineno + 1))?;
        // Last write wins: appended snapshots override earlier runs.
        out.insert(format!("{group}/{name}"), Sample { ns_per_iter: ns });
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 1.25_f64;
    let mut groups: Vec<String> = vec![
        "matching".into(),
        "scheduling_cycle".into(),
        "end_to_end".into(),
    ];
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold = v,
                None => {
                    eprintln!("--threshold needs a float argument");
                    return ExitCode::from(2);
                }
            },
            "--groups" => match it.next() {
                Some(v) => groups = v.split(',').map(|s| s.trim().to_string()).collect(),
                None => {
                    eprintln!("--groups needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            _ => paths.push(arg.clone()),
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_compare <baseline.json> <candidate.json> \
             [--threshold 1.25] [--groups matching,scheduling_cycle,end_to_end]"
        );
        return ExitCode::from(2);
    }
    let (baseline, candidate) = match (parse_snapshot(&paths[0]), parse_snapshot(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let guarded = |key: &str| groups.iter().any(|g| key.starts_with(&format!("{g}/")));
    let mut regressions = 0u32;
    println!(
        "{:<50} {:>12} {:>12} {:>8}",
        "benchmark", "baseline", "candidate", "ratio"
    );
    for (key, base) in &baseline {
        let Some(cand) = candidate.get(key) else {
            println!(
                "{key:<50} {:>12.1} {:>12} {:>8}",
                base.ns_per_iter, "absent", "-"
            );
            continue;
        };
        let ratio = cand.ns_per_iter / base.ns_per_iter;
        let verdict = if guarded(key) && ratio > threshold {
            regressions += 1;
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "{key:<50} {:>12.1} {:>12.1} {ratio:>7.2}x{verdict}",
            base.ns_per_iter, cand.ns_per_iter
        );
    }
    for key in candidate.keys() {
        if !baseline.contains_key(key) {
            println!("{key:<50} {:>12} (new benchmark)", "-");
        }
    }

    if regressions > 0 {
        eprintln!(
            "{regressions} benchmark(s) regressed more than {:.0}% in guarded groups {:?}",
            (threshold - 1.0) * 100.0,
            groups
        );
        ExitCode::from(1)
    } else {
        println!("no regressions beyond {threshold:.2}x in guarded groups {groups:?}");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_our_jsonl_records() {
        let line =
            r#"{"group":"matching","name":"greedy_maximal/16","ns_per_iter":260.2,"elements":120}"#;
        assert_eq!(parse_field(line, "group"), Some("matching"));
        assert_eq!(parse_field(line, "name"), Some("greedy_maximal/16"));
        assert_eq!(parse_field(line, "ns_per_iter"), Some("260.2"));
        // Trailing field without a comma terminator.
        let tail = r#"{"group":"opt_bounds","name":"unit/4x4x128","ns_per_iter":3292836.4}"#;
        assert_eq!(parse_field(tail, "ns_per_iter"), Some("3292836.4"));
    }
}
