//! # cioq-bench
//!
//! Criterion benchmarks for the workspace; see `benches/`. This library
//! crate only hosts shared workload-construction helpers for the benches.

#![forbid(unsafe_code)]

use cioq_model::SwitchConfig;
use cioq_sim::Trace;
use cioq_traffic::{gen_trace, BernoulliUniform, ValueDist};

/// A deterministic medium-load uniform workload used by several benches.
pub fn uniform_workload(n: usize, slots: u64, load: f64, values: ValueDist, seed: u64) -> Trace {
    let cfg = SwitchConfig::cioq(n, 8, 1);
    let gen = BernoulliUniform::new(load, values);
    gen_trace(&gen, &cfg, slots, seed)
}
