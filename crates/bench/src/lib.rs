//! # cioq-bench
//!
//! Criterion benchmarks for the workspace; see `benches/`. This library
//! crate hosts shared workload-construction helpers for the benches and,
//! behind the `alloc-audit` feature, the counting global allocator the
//! `alloc_census` harness uses to prove the slot loop allocation-free
//! (see [`audit`]).

// The audit allocator is the one sanctioned unsafe block in the crate
// (a `GlobalAlloc` impl forwarding to `System`); without the feature the
// crate stays entirely safe code.
#![cfg_attr(not(feature = "alloc-audit"), forbid(unsafe_code))]

#[cfg(feature = "alloc-audit")]
pub mod audit;

use cioq_model::SwitchConfig;
use cioq_sim::Trace;
use cioq_traffic::{gen_trace, BernoulliUniform, ValueDist};

/// A deterministic medium-load uniform workload used by several benches.
pub fn uniform_workload(n: usize, slots: u64, load: f64, values: ValueDist, seed: u64) -> Trace {
    let cfg = SwitchConfig::cioq(n, 8, 1);
    let gen = BernoulliUniform::new(load, values);
    gen_trace(&gen, &cfg, slots, seed)
}
