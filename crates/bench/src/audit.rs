//! Allocation audit: a counting [`GlobalAlloc`] behind the `alloc-audit`
//! feature flag.
//!
//! When the feature is enabled this module installs a global allocator
//! that forwards every request to [`System`] after bumping a thread-local
//! counter, giving harnesses (notably `src/bin/alloc_census.rs`) an exact
//! per-thread ledger of heap acquisitions. The counters are plain
//! `Cell<u64>` thread-locals — no atomics, no locks — so the audited
//! binary's allocation *pattern* is unchanged and the overhead is a few
//! nanoseconds per allocation. When the feature is off this module does
//! not exist and the crate keeps `forbid(unsafe_code)`, so release
//! binaries carry zero audit cost.
//!
//! Only acquisition traffic is counted (`alloc`, `alloc_zeroed`,
//! `realloc`): the zero-allocation claim is about the slot loop not
//! *acquiring* memory, and every steady-state acquisition implies a
//! matching free somewhere, so counting `dealloc` would double-book.
//!
//! Counts are split across [`PHASES`] per-thread ledgers selected by
//! [`enter_phase`], so a harness can separate its own setup traffic
//! (trace generation, engine construction) from the measured region
//! without ever pausing the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Number of per-thread phase ledgers. Phase 0 is the default ledger a
/// thread starts on; harnesses claim the others via [`enter_phase`].
pub const PHASES: usize = 4;

/// Conventional ledger for harness setup work (the thread-start default).
pub const PHASE_SETUP: usize = 0;

/// Conventional ledger for the measured region.
pub const PHASE_MEASURE: usize = 1;

thread_local! {
    /// Which ledger this thread's allocations currently land on.
    static PHASE: Cell<usize> = const { Cell::new(0) };
    /// Allocations recorded per phase on this thread.
    static COUNTS: [Cell<u64>; PHASES] = const { [const { Cell::new(0) }; PHASES] };
    /// Backtraces still to print for measure-phase allocations (see
    /// [`arm_backtraces`]); 0 = disarmed.
    static TRACE_BUDGET: Cell<u32> = const { Cell::new(0) };
    /// Measure-phase allocations to pass over before printing starts —
    /// lets a differential harness skip straight past the warm-up prefix
    /// it already measured (deterministic runs repeat it exactly).
    static TRACE_SKIP: Cell<u64> = const { Cell::new(0) };
    /// Re-entrancy guard: capturing/printing a backtrace allocates, and
    /// those inner allocations must not recurse into another capture.
    static TRACING: Cell<bool> = const { Cell::new(false) };
}

/// The counting allocator. Installed as `#[global_allocator]` below when
/// the `alloc-audit` feature is on.
pub struct CountingAlloc;

// SAFETY: every method forwards its exact `Layout`/pointer arguments to
// `System`, which upholds the `GlobalAlloc` contract; the counter bump is
// a thread-local `Cell` increment and never allocates or unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: pure forwarding; see the impl-level SAFETY comment.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: arguments forwarded verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: pure forwarding; see the impl-level SAFETY comment.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System` via the methods above and
        // is released with the same layout, as the contract requires.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: pure forwarding; see the impl-level SAFETY comment.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: arguments forwarded verbatim to the system allocator.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: pure forwarding; see the impl-level SAFETY comment.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: arguments forwarded verbatim; `ptr`/`layout` pair came
        // from `System` per the contract on the caller.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static AUDIT_ALLOC: CountingAlloc = CountingAlloc;

#[inline]
fn bump() {
    // try_with (not with): allocations can occur while thread-locals are
    // being torn down at thread exit; those land nowhere rather than
    // aborting the process.
    let _ = PHASE.try_with(|p| {
        let phase = p.get();
        let _ = COUNTS.try_with(|c| c[phase].set(c[phase].get() + 1));
        if phase == PHASE_MEASURE {
            maybe_trace();
        }
    });
}

/// Print a backtrace for this measure-phase allocation if [`arm_backtraces`]
/// armed a budget. Never inlined into `bump`: the armed path is the cold
/// diagnostic, the counter bump is the product.
#[inline(never)]
fn maybe_trace() {
    if TRACING.try_with(Cell::get).unwrap_or(true) {
        return;
    }
    let skipping = TRACE_SKIP
        .try_with(|s| {
            let left = s.get();
            if left > 0 {
                s.set(left - 1);
                true
            } else {
                false
            }
        })
        .unwrap_or(true);
    if skipping {
        return;
    }
    let armed = TRACE_BUDGET
        .try_with(|b| {
            let n = b.get();
            if n > 0 {
                b.set(n - 1);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    if armed {
        TRACING.with(|t| t.set(true));
        eprintln!(
            "== alloc-audit: measure-phase allocation ==\n{}",
            std::backtrace::Backtrace::force_capture()
        );
        TRACING.with(|t| t.set(false));
    }
}

/// Diagnostic hook for a failing census: skip the next `skip` allocations
/// recorded on this thread's [`PHASE_MEASURE`] ledger, then print a
/// backtrace for the `n` after that. A differential harness passes the
/// short run's count as `skip` — deterministic runs repeat their warm-up
/// prefix exactly, so printing starts at the first steady-state
/// allocation. The capture itself allocates; those inner allocations are
/// counted (they happen) but never recursively traced. Build with
/// debuginfo (`CARGO_PROFILE_RELEASE_DEBUG=1`) for symbol names.
pub fn arm_backtraces(skip: u64, n: u32) {
    TRACE_SKIP.with(|s| s.set(skip));
    TRACE_BUDGET.with(|b| b.set(n));
}

/// Allocations recorded on this thread under `phase` so far.
pub fn phase_count(phase: usize) -> u64 {
    assert!(phase < PHASES, "phase out of range");
    COUNTS.with(|c| c[phase].get())
}

/// Total allocations recorded on this thread across all phases.
pub fn thread_count() -> u64 {
    COUNTS.with(|c| c.iter().map(Cell::get).sum())
}

/// Route this thread's subsequent allocations to `phase` until the
/// returned guard drops (restoring the previous phase). Guards nest.
pub fn enter_phase(phase: usize) -> PhaseGuard {
    assert!(phase < PHASES, "phase out of range");
    PhaseGuard {
        prev: PHASE.with(|p| p.replace(phase)),
    }
}

/// RAII guard from [`enter_phase`]; restores the prior phase on drop.
pub struct PhaseGuard {
    prev: usize,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        PHASE.with(|p| p.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The census methodology rests on exactly this property: heap
    // acquisitions on the current thread are visible in the ledger.
    #[test]
    fn synthetic_allocation_is_counted() {
        let before = thread_count();
        let v: Vec<u64> = Vec::with_capacity(64);
        let after = thread_count();
        assert!(after > before, "Vec::with_capacity must bump the ledger");
        drop(v);
    }

    #[test]
    fn dealloc_is_not_counted() {
        let v: Vec<u64> = Vec::with_capacity(64);
        let before = thread_count();
        drop(v);
        let after = thread_count();
        assert_eq!(after, before, "frees must not bump the ledger");
    }

    #[test]
    fn phases_split_the_ledger() {
        let m0 = phase_count(PHASE_MEASURE);
        {
            let _g = enter_phase(PHASE_MEASURE);
            let v: Vec<u8> = Vec::with_capacity(32);
            drop(v);
        }
        let in_phase = phase_count(PHASE_MEASURE) - m0;
        assert!(
            in_phase >= 1,
            "allocation inside the guard lands on its phase"
        );
        // After the guard, traffic goes back to the previous phase.
        let m1 = phase_count(PHASE_MEASURE);
        let v: Vec<u8> = Vec::with_capacity(32);
        drop(v);
        assert_eq!(phase_count(PHASE_MEASURE), m1);
    }

    #[test]
    fn realloc_growth_is_counted() {
        let mut v: Vec<u64> = Vec::with_capacity(1);
        v.push(0);
        let before = thread_count();
        // Forcing growth past capacity must register (alloc or realloc).
        v.extend(0..1024);
        assert!(thread_count() > before);
    }
}
