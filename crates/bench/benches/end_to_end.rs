//! End-to-end simulation throughput (slots/second) for both fabrics,
//! 16 to 512 ports, sequential and sharded engines.

use cioq_core::{
    CrossbarGreedyUnit, CrossbarPreemptiveGreedy, GreedyMatching, PreemptiveGreedy, ShardedCgu,
    ShardedCpg, ShardedGm, ShardedPg,
};
use cioq_model::{SwitchConfig, Topology};
use cioq_sim::{
    run_cioq, run_cioq_linked, run_cioq_sharded, run_crossbar, run_crossbar_linked,
    run_crossbar_sharded, DelayLine, DelayMatrix, ShardedOptions,
};
use cioq_traffic::{gen_trace, OnOffBursty, ValueDist};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    let slots = 512u64;
    let cioq = SwitchConfig::cioq(16, 8, 2);
    let xbar = SwitchConfig::crossbar(16, 8, 2, 2);
    let gen = OnOffBursty::new(
        0.8,
        10.0,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.0,
        },
    );
    let cioq_trace = gen_trace(&gen, &cioq, slots, 3);
    let xbar_trace = gen_trace(&gen, &xbar, slots, 3);

    group.throughput(Throughput::Elements(slots));
    group.bench_function("cioq_gm_16x16_s2", |b| {
        b.iter(|| run_cioq(&cioq, &mut GreedyMatching::new(), &cioq_trace).unwrap())
    });
    group.bench_function("cioq_pg_16x16_s2", |b| {
        b.iter(|| run_cioq(&cioq, &mut PreemptiveGreedy::new(), &cioq_trace).unwrap())
    });
    group.bench_function("xbar_cgu_16x16_s2", |b| {
        b.iter(|| run_crossbar(&xbar, &mut CrossbarGreedyUnit::new(), &xbar_trace).unwrap())
    });
    group.bench_function("xbar_cpg_16x16_s2", |b| {
        b.iter(|| run_crossbar(&xbar, &mut CrossbarPreemptiveGreedy::new(), &xbar_trace).unwrap())
    });

    // Large fabrics (the incremental core's target): fewer slots so one
    // iteration stays well inside the measurement budget. From 256 ports
    // the sharded engine (K = 4) runs alongside the sequential one.
    for &n in &[128usize, 256, 512] {
        let slots = 64u64;
        let cioq = SwitchConfig::cioq(n, 8, 2);
        let xbar = SwitchConfig::crossbar(n, 8, 2, 2);
        let cioq_trace = gen_trace(&gen, &cioq, slots, 3);
        let xbar_trace = gen_trace(&gen, &xbar, slots, 3);
        group.throughput(Throughput::Elements(slots));
        group.bench_function(format!("cioq_gm_{n}x{n}_s2"), |b| {
            b.iter(|| run_cioq(&cioq, &mut GreedyMatching::new(), &cioq_trace).unwrap())
        });
        group.bench_function(format!("cioq_pg_{n}x{n}_s2"), |b| {
            b.iter(|| run_cioq(&cioq, &mut PreemptiveGreedy::new(), &cioq_trace).unwrap())
        });
        group.bench_function(format!("xbar_cgu_{n}x{n}_s2"), |b| {
            b.iter(|| run_crossbar(&xbar, &mut CrossbarGreedyUnit::new(), &xbar_trace).unwrap())
        });
        group.bench_function(format!("xbar_cpg_{n}x{n}_s2"), |b| {
            b.iter(|| {
                run_crossbar(&xbar, &mut CrossbarPreemptiveGreedy::new(), &xbar_trace).unwrap()
            })
        });
        if n >= 256 {
            let sharded = ShardedOptions::new(4);
            group.bench_function(format!("cioq_gm_sharded_k4_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_cioq_sharded(&cioq, &ShardedGm::new(), &cioq_trace, sharded.clone())
                        .unwrap()
                })
            });
            group.bench_function(format!("cioq_pg_sharded_k4_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_cioq_sharded(&cioq, &ShardedPg::new(), &cioq_trace, sharded.clone())
                        .unwrap()
                })
            });
            group.bench_function(format!("xbar_cgu_sharded_k4_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_crossbar_sharded(&xbar, &ShardedCgu::new(), &xbar_trace, sharded.clone())
                        .unwrap()
                })
            });
            group.bench_function(format!("xbar_cpg_sharded_k4_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_crossbar_sharded(&xbar, &ShardedCpg::new(), &xbar_trace, sharded.clone())
                        .unwrap()
                })
            });
        }
        // Delayed fabric (d = 4): the in-flight accounting plus the
        // landing phase are the extra cost over the immediate fast path;
        // measured at 128 ports on both engines.
        if n == 128 {
            let link = DelayLine { d: 4 };
            group.bench_function(format!("cioq_gm_delay4_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_cioq_linked(&cioq, &mut GreedyMatching::new(), &cioq_trace, &link).unwrap()
                })
            });
            group.bench_function(format!("cioq_pg_delay4_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_cioq_linked(&cioq, &mut PreemptiveGreedy::new(), &cioq_trace, &link)
                        .unwrap()
                })
            });
            group.bench_function(format!("xbar_cpg_delay4_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_crossbar_linked(
                        &xbar,
                        &mut CrossbarPreemptiveGreedy::new(),
                        &xbar_trace,
                        &link,
                    )
                    .unwrap()
                })
            });
            let sharded_delay = ShardedOptions::new(4).link(&link);
            group.bench_function(format!("cioq_gm_sharded_k4_delay4_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_cioq_sharded(&cioq, &ShardedGm::new(), &cioq_trace, sharded_delay.clone())
                        .unwrap()
                })
            });

            // Two-tier topology (2 racks × 64 ports, chassis-local intra
            // pairs at d = 0, cross-rack at d = 4): the per-pair delay
            // lookup, the mixed mailbox + ring transport, and the
            // canonical landing sort are the extra cost over the uniform
            // delay line above.
            let topo = DelayMatrix::new(Topology::two_tier(n, n, 2, 0, 4).expect("two racks"));
            group.bench_function(format!("cioq_gm_twotier2_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_cioq_linked(&cioq, &mut GreedyMatching::new(), &cioq_trace, &topo).unwrap()
                })
            });
            group.bench_function(format!("cioq_pg_twotier2_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_cioq_linked(&cioq, &mut PreemptiveGreedy::new(), &cioq_trace, &topo)
                        .unwrap()
                })
            });
            group.bench_function(format!("xbar_cpg_twotier2_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_crossbar_linked(
                        &xbar,
                        &mut CrossbarPreemptiveGreedy::new(),
                        &xbar_trace,
                        &topo,
                    )
                    .unwrap()
                })
            });
            let sharded_topo = ShardedOptions::new(4).link(&topo);
            group.bench_function(format!("cioq_gm_sharded_k4_twotier2_{n}x{n}_s2"), |b| {
                b.iter(|| {
                    run_cioq_sharded(&cioq, &ShardedGm::new(), &cioq_trace, sharded_topo.clone())
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
