//! Buffer substrate micro-benchmarks: the per-packet operations on the hot
//! path of every arrival/scheduling phase.

use cioq_model::{Packet, PacketId, PortId};
use cioq_queues::SortedQueue;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorted_queue");
    for &cap in &[4usize, 16, 64] {
        let mut rng = SmallRng::seed_from_u64(1);
        let packets: Vec<Packet> = (0..1024)
            .map(|id| {
                Packet::new(
                    PacketId(id),
                    rng.gen_range(1..1000),
                    0,
                    PortId(0),
                    PortId(0),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("insert_preempt_cycle", cap),
            &packets,
            |b, packets| {
                b.iter(|| {
                    let mut q = SortedQueue::new(cap);
                    for p in packets {
                        if q.is_full() {
                            if q.tail_value().unwrap() < p.value {
                                q.pop_tail();
                                q.insert(*p).unwrap();
                            }
                        } else {
                            q.insert(*p).unwrap();
                        }
                    }
                    q.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fill_drain", cap),
            &packets,
            |b, packets| {
                b.iter(|| {
                    let mut q = SortedQueue::new(cap);
                    let mut total = 0u64;
                    for chunk in packets.chunks(cap) {
                        for p in chunk {
                            let _ = q.insert(*p);
                        }
                        while let Some(p) = q.pop_head() {
                            total += p.value;
                        }
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
