//! Experiment F6's rigorous form: per-cycle matching cost, greedy maximal
//! (the paper's contribution) vs maximum matchings (prior work) vs iSLIP.

use cioq_matching::{
    greedy_maximal, greedy_maximal_weighted, hopcroft_karp, hungarian_max_weight, BipartiteGraph,
    EdgeOrder, Islip,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn dense_graph(n: usize, density: f64, seed: u64) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = BipartiteGraph::new(n, n);
    for i in 0..n {
        for j in 0..n {
            if rng.gen::<f64>() < density {
                g.add_edge(i, j, rng.gen_range(1..1000));
            }
        }
    }
    g
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &n in &[16usize, 64, 256] {
        let g = dense_graph(n, 0.5, 42);
        group.throughput(Throughput::Elements(g.n_edges() as u64));
        group.bench_with_input(BenchmarkId::new("greedy_maximal", n), &g, |b, g| {
            b.iter(|| greedy_maximal(g, EdgeOrder::Insertion))
        });
        group.bench_with_input(BenchmarkId::new("greedy_weighted", n), &g, |b, g| {
            b.iter(|| greedy_maximal_weighted(g))
        });
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &g, |b, g| {
            b.iter(|| hopcroft_karp(g))
        });
        // O(n^3) but still bounded at 256 (~tens of ms per iteration);
        // sample_size keeps real criterion's run time sane (our offline
        // stand-in is time-budgeted and ignores it). Included at every
        // size so the baseline snapshot is complete. Restored to the
        // criterion default afterwards — the setting sticks to the group.
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("hungarian", n), &g, |b, g| {
            b.iter(|| hungarian_max_weight(g))
        });
        group.sample_size(100);
        group.bench_with_input(BenchmarkId::new("islip2", n), &g, |b, g| {
            let mut islip = Islip::new(n, n, 2);
            b.iter(|| islip.match_cycle(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
