//! Per-slot scheduling cost of the full policies inside the engine:
//! GM vs PG vs the maximum-matching baselines at switch sizes 8..512.
//!
//! The 128- and 256-port configurations exist to demonstrate the
//! incremental scheduling core: the former O(N²)-per-cycle rebuild made
//! them impractical, the O(changes) path keeps per-slot cost flat in the
//! offered load rather than the port count. 256 and 512 ports additionally
//! run the **sharded engine** (K = 4): per-row proposal scans with early
//! exit plus a deterministic merge replace the sequential full-edge greedy
//! walk, and on multi-core hosts the shards run on real threads.

use cioq_core::baselines::{MaxMatching, MaxWeightMatching};
use cioq_core::{BuildMode, GreedyMatching, PreemptiveGreedy, ShardedGm, ShardedPg};
use cioq_model::SwitchConfig;
use cioq_sim::{
    run_cioq, run_cioq_sharded, CioqPolicy, Engine, RunOptions, ShardedOptions, TraceSource,
};
use cioq_traffic::{gen_trace, BernoulliUniform, FullFabricChurn, ValueDist};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_cycle");
    let slots = 128u64;
    for &n in &[8usize, 16, 32, 64, 128, 256, 512] {
        let cfg = SwitchConfig::cioq(n, 8, 1);
        let trace = gen_trace(
            &BernoulliUniform::new(
                0.9,
                ValueDist::Zipf {
                    max: 64,
                    exponent: 1.1,
                },
            ),
            &cfg,
            slots,
            7,
        );
        group.throughput(Throughput::Elements(slots));
        group.bench_with_input(BenchmarkId::new("GM", n), &(), |b, _| {
            b.iter(|| run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("PG", n), &(), |b, _| {
            b.iter(|| run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap())
        });
        // The from-scratch reference at the sizes where the incremental
        // win is the headline number.
        if (64..=256).contains(&n) {
            group.bench_with_input(BenchmarkId::new("GM-rescan", n), &(), |b, _| {
                b.iter(|| {
                    let mut gm = GreedyMatching::new().build_mode(BuildMode::Rescan);
                    run_cioq(&cfg, &mut gm, &trace).unwrap()
                })
            });
            group.bench_with_input(BenchmarkId::new("PG-rescan", n), &(), |b, _| {
                b.iter(|| {
                    let mut pg = PreemptiveGreedy::new().build_mode(BuildMode::Rescan);
                    run_cioq(&cfg, &mut pg, &trace).unwrap()
                })
            });
        } else if n > 256 {
            println!(
                "scheduling_cycle/GM-rescan/{n}, PG-rescan/{n}: skipped \
                 (O(N^2) per cycle is impractical above 256 ports)"
            );
        }
        // The sharded engine at the port counts it targets (K = 4; auto
        // execution: threads on multi-core hosts, inline otherwise).
        if n >= 128 {
            let sharded = ShardedOptions::new(4);
            group.bench_with_input(BenchmarkId::new("GM-sharded-k4", n), &(), |b, _| {
                b.iter(|| {
                    run_cioq_sharded(&cfg, &ShardedGm::new(), &trace, sharded.clone()).unwrap()
                })
            });
            group.bench_with_input(BenchmarkId::new("PG-sharded-k4", n), &(), |b, _| {
                b.iter(|| {
                    run_cioq_sharded(&cfg, &ShardedPg::new(), &trace, sharded.clone()).unwrap()
                })
            });
        }
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("KR-MaxMatching", n), &(), |b, _| {
                b.iter(|| run_cioq(&cfg, &mut MaxMatching::new(), &trace).unwrap())
            });
        } else {
            println!(
                "scheduling_cycle/KR-MaxMatching/{n}: skipped \
                 (O(E·sqrt(V)) per cycle is impractical above 64 ports)"
            );
        }
        if n <= 32 {
            group.bench_with_input(BenchmarkId::new("KR-MaxWeight", n), &(), |b, _| {
                b.iter(|| run_cioq(&cfg, &mut MaxWeightMatching::new(), &trace).unwrap())
            });
        } else {
            println!(
                "scheduling_cycle/KR-MaxWeight/{n}: skipped \
                 (O(n^3) per cycle is impractical above 32 ports)"
            );
        }
    }
    group.finish();

    // --- Dirty-set-width stress: full-fabric churn at overload ---
    //
    // Degree-2 churn saturates every VOQ, so the scheduling graph holds all
    // N·M edges while the *dirty set* stays Θ(N) — the regime the ROADMAP's
    // "where does O(changes) stop paying" question points at. Steady-state
    // measurement: fixed slots, drain off (the drain tail would otherwise
    // dominate and measure residual scans, not scheduling). This is where
    // the sharded engine's O(N·M/64) word merge decisively beats the
    // sequential per-edge greedy walk.
    let mut group = c.benchmark_group("scheduling_cycle");
    for &n in &[256usize, 512] {
        // Long enough for the rotating churn to saturate the grid (each
        // cell is revisited every M/degree slots): the second half of the
        // run measures the all-N·M-edges steady state.
        let slots = 128u64;
        let cfg = SwitchConfig::cioq(n, 8, 1);
        let trace = gen_trace(
            &FullFabricChurn::new(
                2,
                5,
                ValueDist::Zipf {
                    max: 64,
                    exponent: 1.1,
                },
            ),
            &cfg,
            slots,
            7,
        );
        let run_options = RunOptions {
            slots: Some(slots),
            drain: false,
            validate: false,
            ..RunOptions::default()
        };
        let run_seq = |policy: &mut dyn CioqPolicy| {
            let mut source = TraceSource::new(&trace);
            Engine::new(cfg.clone(), run_options.clone())
                .run_cioq(policy, &mut source)
                .unwrap()
        };
        let mut sharded = ShardedOptions::new(4);
        sharded.slots = Some(slots);
        sharded.drain = false;

        group.throughput(Throughput::Elements(slots));
        group.bench_with_input(BenchmarkId::new("GM-churn", n), &(), |b, _| {
            b.iter(|| run_seq(&mut GreedyMatching::new()))
        });
        group.bench_with_input(BenchmarkId::new("GM-sharded-k4-churn", n), &(), |b, _| {
            b.iter(|| run_cioq_sharded(&cfg, &ShardedGm::new(), &trace, sharded.clone()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("PG-churn", n), &(), |b, _| {
            b.iter(|| run_seq(&mut PreemptiveGreedy::new()))
        });
        group.bench_with_input(BenchmarkId::new("PG-sharded-k4-churn", n), &(), |b, _| {
            b.iter(|| run_cioq_sharded(&cfg, &ShardedPg::new(), &trace, sharded.clone()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycles);
criterion_main!(benches);
