//! Per-slot scheduling cost of the full policies inside the engine:
//! GM vs PG vs the maximum-matching baselines at switch sizes 8..256.
//!
//! The 128- and 256-port configurations exist to demonstrate the
//! incremental scheduling core: the former O(N²)-per-cycle rebuild made
//! them impractical, the O(changes) path keeps per-slot cost flat in the
//! offered load rather than the port count.

use cioq_core::baselines::{MaxMatching, MaxWeightMatching};
use cioq_core::{BuildMode, GreedyMatching, PreemptiveGreedy};
use cioq_model::SwitchConfig;
use cioq_sim::run_cioq;
use cioq_traffic::{gen_trace, BernoulliUniform, ValueDist};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_cycle");
    let slots = 128u64;
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        let cfg = SwitchConfig::cioq(n, 8, 1);
        let trace = gen_trace(
            &BernoulliUniform::new(
                0.9,
                ValueDist::Zipf {
                    max: 64,
                    exponent: 1.1,
                },
            ),
            &cfg,
            slots,
            7,
        );
        group.throughput(Throughput::Elements(slots));
        group.bench_with_input(BenchmarkId::new("GM", n), &(), |b, _| {
            b.iter(|| run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("PG", n), &(), |b, _| {
            b.iter(|| run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap())
        });
        // The from-scratch reference at the sizes where the incremental
        // win is the headline number.
        if n >= 64 {
            group.bench_with_input(BenchmarkId::new("GM-rescan", n), &(), |b, _| {
                b.iter(|| {
                    let mut gm = GreedyMatching::new().build_mode(BuildMode::Rescan);
                    run_cioq(&cfg, &mut gm, &trace).unwrap()
                })
            });
            group.bench_with_input(BenchmarkId::new("PG-rescan", n), &(), |b, _| {
                b.iter(|| {
                    let mut pg = PreemptiveGreedy::new().build_mode(BuildMode::Rescan);
                    run_cioq(&cfg, &mut pg, &trace).unwrap()
                })
            });
        }
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("KR-MaxMatching", n), &(), |b, _| {
                b.iter(|| run_cioq(&cfg, &mut MaxMatching::new(), &trace).unwrap())
            });
        } else {
            println!(
                "scheduling_cycle/KR-MaxMatching/{n}: skipped \
                 (O(E·sqrt(V)) per cycle is impractical above 64 ports)"
            );
        }
        if n <= 32 {
            group.bench_with_input(BenchmarkId::new("KR-MaxWeight", n), &(), |b, _| {
                b.iter(|| run_cioq(&cfg, &mut MaxWeightMatching::new(), &trace).unwrap())
            });
        } else {
            println!(
                "scheduling_cycle/KR-MaxWeight/{n}: skipped \
                 (O(n^3) per cycle is impractical above 32 ports)"
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cycles);
criterion_main!(benches);
