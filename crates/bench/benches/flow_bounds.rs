//! Cost of the certified OPT bounds (the expensive side of every ratio
//! experiment): per-output vs destination-oblivious, unit vs weighted.

use cioq_model::SwitchConfig;
use cioq_opt::opt_upper_bound;
use cioq_traffic::{gen_trace, BernoulliUniform, ValueDist};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_bounds");
    group.sample_size(10);
    for &(n, slots) in &[(4usize, 128u64), (8, 128)] {
        let cfg = SwitchConfig::cioq(n, 4, 1);
        let unit = gen_trace(&BernoulliUniform::new(0.8, ValueDist::Unit), &cfg, slots, 1);
        let zipf = gen_trace(
            &BernoulliUniform::new(
                0.8,
                ValueDist::Zipf {
                    max: 32,
                    exponent: 1.0,
                },
            ),
            &cfg,
            slots,
            1,
        );
        group.bench_with_input(
            BenchmarkId::new("unit", format!("{n}x{n}x{slots}")),
            &(),
            |b, _| b.iter(|| opt_upper_bound(&cfg, &unit)),
        );
        group.bench_with_input(
            BenchmarkId::new("zipf", format!("{n}x{n}x{slots}")),
            &(),
            |b, _| b.iter(|| opt_upper_bound(&cfg, &zipf)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
