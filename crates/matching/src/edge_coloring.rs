//! König edge colouring of bipartite multigraphs.
//!
//! König's theorem: a bipartite multigraph with maximum degree Δ is
//! Δ-edge-colourable. This is the combinatorial fact behind the
//! *destination-oblivious* OPT relaxation in `cioq-opt`: a per-slot
//! transfer multiset in which every input port releases ≤ ŝ packets and
//! every output port admits ≤ ŝ packets decomposes into ŝ matchings — i.e.
//! into ŝ legal scheduling cycles. [`edge_color`] computes that
//! decomposition constructively (alternating-path recolouring, O(E·(N+M))
//! overall), and tests in `cioq-opt` use it to certify that flow solutions
//! are realizable cycle schedules.

use crate::graph::Matching;

const FREE: usize = usize::MAX;

/// Colour the edges of a bipartite multigraph given as `(left, right)`
/// pairs, using at most `max(Δ, 1)` colours, such that no two edges sharing
/// an endpoint get the same colour. Returns one colour index per edge, in
/// input order.
pub fn edge_color(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut deg_l = vec![0usize; n_left];
    let mut deg_r = vec![0usize; n_right];
    for &(l, r) in edges {
        assert!(l < n_left && r < n_right, "edge endpoint out of range");
        deg_l[l] += 1;
        deg_r[r] += 1;
    }
    let delta = deg_l
        .iter()
        .chain(deg_r.iter())
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);

    // at_left[l][c] / at_right[r][c]: the edge using colour c at a vertex.
    let mut at_left = vec![vec![FREE; delta]; n_left];
    let mut at_right = vec![vec![FREE; delta]; n_right];
    let mut colors = vec![FREE; edges.len()];

    for (id, &(l, r)) in edges.iter().enumerate() {
        let ca = (0..delta)
            .find(|&c| at_left[l][c] == FREE)
            .expect("left degree <= delta");
        let cb = (0..delta)
            .find(|&c| at_right[r][c] == FREE)
            .expect("right degree <= delta");
        if ca != cb {
            // Free colour ca at r: flip the ca/cb alternating path that
            // starts at r with a ca-edge. By König's parity argument the
            // path never reaches l, so ca stays free at l.
            let mut path = Vec::new();
            let mut on_right = true;
            let mut vert = r;
            let mut want = ca;
            loop {
                let e = if on_right {
                    at_right[vert][want]
                } else {
                    at_left[vert][want]
                };
                if e == FREE {
                    break;
                }
                path.push(e);
                let (el, er) = edges[e];
                vert = if on_right { el } else { er };
                on_right = !on_right;
                want = if want == ca { cb } else { ca };
            }
            debug_assert!(
                !path.iter().any(|&e| edges[e].0 == l && colors[e] == cb),
                "alternating path must not occupy cb at l"
            );
            // Erase the path from the tables, flip, re-insert.
            for &e in &path {
                let (el, er) = edges[e];
                let c = colors[e];
                at_left[el][c] = FREE;
                at_right[er][c] = FREE;
            }
            for &e in &path {
                let (el, er) = edges[e];
                let c = if colors[e] == ca { cb } else { ca };
                colors[e] = c;
                at_left[el][c] = e;
                at_right[er][c] = e;
            }
        }
        debug_assert_eq!(at_left[l][ca], FREE);
        debug_assert_eq!(at_right[r][ca], FREE);
        at_left[l][ca] = id;
        at_right[r][ca] = id;
        colors[id] = ca;
    }
    colors
}

/// Decompose a bipartite multigraph into matchings: returns one
/// [`Matching`] per colour, covering every input edge exactly once.
pub fn decompose_into_matchings(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize)],
) -> Vec<Matching> {
    let colors = edge_color(n_left, n_right, edges);
    let n_colors = colors.iter().copied().max().map_or(0, |c| c + 1);
    let mut matchings = vec![Matching::new(); n_colors];
    for (id, &(l, r)) in edges.iter().enumerate() {
        matchings[colors[id]].pairs.push((l, r));
    }
    matchings
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_proper(n_left: usize, n_right: usize, edges: &[(usize, usize)], colors: &[usize]) {
        let delta = {
            let mut dl = vec![0usize; n_left];
            let mut dr = vec![0usize; n_right];
            for &(l, r) in edges {
                dl[l] += 1;
                dr[r] += 1;
            }
            dl.iter()
                .chain(dr.iter())
                .copied()
                .max()
                .unwrap_or(0)
                .max(1)
        };
        assert_eq!(colors.len(), edges.len());
        for &c in colors {
            assert!(c < delta, "colour {c} exceeds delta {delta}");
        }
        for i in 0..edges.len() {
            for j in i + 1..edges.len() {
                if colors[i] == colors[j] {
                    assert_ne!(edges[i].0, edges[j].0, "left clash at edges {i},{j}");
                    assert_ne!(edges[i].1, edges[j].1, "right clash at edges {i},{j}");
                }
            }
        }
    }

    #[test]
    fn simple_path_needs_two_colors() {
        let edges = [(0, 0), (1, 0), (1, 1)];
        let colors = edge_color(2, 2, &edges);
        check_proper(2, 2, &edges, &colors);
    }

    #[test]
    fn complete_bipartite_k33_uses_three_colors() {
        let edges: Vec<_> = (0..3).flat_map(|l| (0..3).map(move |r| (l, r))).collect();
        let colors = edge_color(3, 3, &edges);
        check_proper(3, 3, &edges, &colors);
        let distinct: std::collections::BTreeSet<_> = colors.iter().collect();
        assert_eq!(distinct.len(), 3, "K3,3 is 3-edge-chromatic");
    }

    #[test]
    fn parallel_edges_get_distinct_colors() {
        let edges = [(0, 0), (0, 0), (0, 0)];
        let colors = edge_color(1, 1, &edges);
        check_proper(1, 1, &edges, &colors);
        let distinct: std::collections::BTreeSet<_> = colors.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn forced_recolor_path() {
        // Edges arranged so the last insertion must flip a chain:
        // (0,0)c?, (1,0), (1,1), (2,1), then (0,1) or (2,0) forces work.
        let edges = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 0), (0, 1)];
        let colors = edge_color(3, 2, &edges);
        check_proper(3, 2, &edges, &colors);
    }

    #[test]
    fn decomposition_covers_all_edges() {
        let edges = [(0, 1), (0, 2), (1, 0), (1, 1), (2, 2), (2, 0)];
        let ms = decompose_into_matchings(3, 3, &edges);
        let total: usize = ms.iter().map(|m| m.len()).sum();
        assert_eq!(total, edges.len());
        for m in &ms {
            let mut seen_l = std::collections::BTreeSet::new();
            let mut seen_r = std::collections::BTreeSet::new();
            for &(l, r) in &m.pairs {
                assert!(seen_l.insert(l));
                assert!(seen_r.insert(r));
            }
        }
    }

    #[test]
    fn empty_graph() {
        assert!(edge_color(3, 3, &[]).is_empty());
        assert!(decompose_into_matchings(3, 3, &[]).is_empty());
    }

    proptest! {
        /// König's theorem, constructively: any bipartite multigraph is
        /// properly colourable with Δ colours by this implementation.
        #[test]
        fn konig_on_random_multigraphs(
            n in 1usize..5,
            edges in prop::collection::vec((0usize..5, 0usize..5), 0..24),
        ) {
            let edges: Vec<_> = edges.into_iter()
                .filter(|&(l, r)| l < n && r < n)
                .collect();
            let colors = edge_color(n, n, &edges);
            check_proper(n, n, &edges, &colors);
        }

        /// The scheduling-aggregation fact used by the oblivious bound:
        /// a transfer multiset with per-port degree <= s decomposes into
        /// <= s matchings (legal cycles).
        #[test]
        fn degree_s_decomposes_into_s_matchings(
            n in 1usize..5,
            s in 1usize..4,
            seed_edges in prop::collection::vec((0usize..5, 0usize..5), 0..32),
        ) {
            let mut dl = vec![0usize; n];
            let mut dr = vec![0usize; n];
            let mut edges = Vec::new();
            for (l, r) in seed_edges {
                if l < n && r < n && dl[l] < s && dr[r] < s {
                    dl[l] += 1;
                    dr[r] += 1;
                    edges.push((l, r));
                }
            }
            let ms = decompose_into_matchings(n, n, &edges);
            prop_assert!(ms.len() <= s, "needed {} > s = {s} matchings", ms.len());
        }
    }
}
