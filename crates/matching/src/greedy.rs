//! Greedy maximal matchings — the scheduling kernel of GM and PG.
//!
//! GM (§2.1): *"Start with an empty matching and iterate over all edges of
//! E. Add an edge e to the current matching if e does not violate the
//! matching property."*
//!
//! PG (§2.2): the same, but *"iterate over all edges of E in a descending
//! order of their weights."*
//!
//! Both produce **maximal** matchings: after the loop no edge has two free
//! endpoints. That single property carries the entire competitive analysis
//! (Lemmas 2, 5, 6, 13), which is why the expensive maximum matchings of
//! earlier work can be dropped.

use crate::graph::{BipartiteGraph, Matching};

/// The order in which [`greedy_maximal`] visits edges. The paper allows any
/// order ("arbitrary"); the choice is an ablation axis (experiment T5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOrder {
    /// Visit edges in graph insertion order (lexicographic `(i, j)` when the
    /// policy builds the graph port-by-port — the default).
    Insertion,
    /// Visit edges rotated by an offset that changes every cycle, spreading
    /// service across ports (round-robin flavoured; `offset` is typically
    /// the cycle sequence number).
    Rotated(usize),
    /// Visit edges in descending weight order with deterministic
    /// tie-breaking — turning the unit greedy into the weighted greedy.
    WeightDescending,
}

/// Scratch buffers reused across cycles so the hot path does not allocate.
#[derive(Debug, Default, Clone)]
pub struct GreedyScratch {
    pub(crate) left_used: Vec<bool>,
    pub(crate) right_used: Vec<bool>,
    pub(crate) order: Vec<usize>,
    /// Per-edge sort keys for [`EdgeOrder::WeightDescending`], precomputed
    /// so the hot sort never recomputes a key mid-comparison.
    keyed: Vec<u128>,
}

impl GreedyScratch {
    fn prepare(&mut self, n_left: usize, n_right: usize, n_edges: usize) {
        self.prepare_used(n_left, n_right);
        self.order.clear();
        self.order.extend(0..n_edges);
    }

    pub(crate) fn prepare_used(&mut self, n_left: usize, n_right: usize) {
        self.left_used.clear();
        self.left_used.resize(n_left, false);
        self.right_used.clear();
        self.right_used.resize(n_right, false);
    }
}

/// Compute a greedy maximal matching over `g`, visiting edges in `order`.
///
/// O(E) for [`EdgeOrder::Insertion`] / [`EdgeOrder::Rotated`];
/// O(E log E) for [`EdgeOrder::WeightDescending`].
pub fn greedy_maximal(g: &BipartiteGraph, order: EdgeOrder) -> Matching {
    let mut scratch = GreedyScratch::default();
    greedy_maximal_with(g, order, &mut scratch)
}

/// Scratch-reusing variant of [`greedy_maximal`] for per-cycle use.
pub fn greedy_maximal_with(
    g: &BipartiteGraph,
    order: EdgeOrder,
    scratch: &mut GreedyScratch,
) -> Matching {
    let mut m = Matching::new();
    greedy_maximal_into(g, order, scratch, &mut m);
    m
}

/// As [`greedy_maximal_with`], but writing into `m` (cleared first) so a
/// per-cycle caller reuses one pair buffer instead of allocating a fresh
/// `Matching` per call — the zero-allocation hot path.
pub fn greedy_maximal_into(
    g: &BipartiteGraph,
    order: EdgeOrder,
    scratch: &mut GreedyScratch,
    m: &mut Matching,
) {
    scratch.prepare(g.n_left(), g.n_right(), g.n_edges());
    m.pairs.clear();
    let edges = g.edges();
    match order {
        EdgeOrder::Insertion => {}
        EdgeOrder::Rotated(offset) => {
            if !edges.is_empty() {
                let k = offset % edges.len();
                scratch.order.rotate_left(k);
            }
        }
        EdgeOrder::WeightDescending => {
            // Descending weight; ties by (left, right) for determinism —
            // the paper's "ties broken arbitrarily but consistently".
            // The key `(!weight, left, right)` is packed into one `u128`
            // and precomputed per edge, so the unstable sort (no stable
            // sort's temp allocation) compares plain integers instead of
            // recomputing a tuple from the edge list per comparison. The
            // result is identical to the previous stable `sort_by_key`:
            // edges that tie on the full key share endpoints and weight,
            // so their mutual order cannot affect the matching.
            debug_assert!(
                g.n_left() <= u32::MAX as usize && g.n_right() <= u32::MAX as usize,
                "packed sort key assumes port counts fit in 32 bits"
            );
            scratch.keyed.clear();
            scratch.keyed.extend(
                edges.iter().map(|e| {
                    ((!e.weight as u128) << 64) | ((e.left as u128) << 32) | e.right as u128
                }),
            );
            let keyed = &scratch.keyed;
            scratch.order.sort_unstable_by_key(|&id| keyed[id]);
        }
    }

    for &id in &scratch.order {
        let e = &edges[id];
        if !scratch.left_used[e.left] && !scratch.right_used[e.right] {
            scratch.left_used[e.left] = true;
            scratch.right_used[e.right] = true;
            m.pairs.push((e.left, e.right));
        }
    }
}

/// Greedy maximal matching in descending weight order — PG's scheduling step.
pub fn greedy_maximal_weighted(g: &BipartiteGraph) -> Matching {
    greedy_maximal(g, EdgeOrder::WeightDescending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use proptest::prelude::*;

    fn graph(n: usize, edges: &[(usize, usize, u64)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n, n);
        for &(l, r, w) in edges {
            g.add_edge(l, r, w);
        }
        g
    }

    #[test]
    fn greedy_is_maximal_and_valid() {
        let g = graph(3, &[(0, 0, 1), (0, 1, 1), (1, 0, 1), (2, 2, 1)]);
        let m = greedy_maximal(&g, EdgeOrder::Insertion);
        assert!(m.is_valid_for(&g));
        assert!(m.is_maximal_in(&g));
        // Insertion order takes (0,0) first, blocking (0,1) and (1,0).
        assert_eq!(m.pairs, vec![(0, 0), (2, 2)]);
    }

    #[test]
    fn rotation_changes_which_maximal_matching() {
        let g = graph(2, &[(0, 0, 1), (1, 0, 1)]);
        let m0 = greedy_maximal(&g, EdgeOrder::Rotated(0));
        let m1 = greedy_maximal(&g, EdgeOrder::Rotated(1));
        assert_eq!(m0.pairs, vec![(0, 0)]);
        assert_eq!(m1.pairs, vec![(1, 0)]);
    }

    #[test]
    fn weighted_greedy_prefers_heavy_edges() {
        let g = graph(2, &[(0, 0, 1), (0, 1, 10), (1, 1, 9)]);
        let m = greedy_maximal_weighted(&g);
        // Heaviest first: (0,1,10); then (1,1) blocked, (0,0) blocked on left?
        // (0,0) left endpoint 0 already used -> skip. Result: only (0,1)?
        // No: edge (1,1) right endpoint used; edge (0,0) left endpoint used.
        assert_eq!(m.pairs, vec![(0, 1)]);
        assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn weighted_ties_break_consistently() {
        let g = graph(2, &[(1, 0, 5), (0, 0, 5), (0, 1, 5)]);
        let m = greedy_maximal_weighted(&g);
        // Ties by (left, right): (0,0) first, then (1,0) blocked, (0,1) blocked.
        // Then (1,1)? not an edge. So matching = {(0,0)} ... but (1,0) shares
        // right 0, (0,1) shares left 0. Maximal: edge (1,0): left 1 free,
        // right 0 used -> ok.
        assert_eq!(m.pairs, vec![(0, 0)]);
        assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn empty_graph_gives_empty_matching() {
        let g = BipartiteGraph::new(4, 4);
        let m = greedy_maximal(&g, EdgeOrder::Insertion);
        assert!(m.is_empty());
        assert!(m.is_maximal_in(&g));
    }

    proptest! {
        /// Any greedy maximal matching is valid, maximal, and at least half
        /// the size of a maximum matching (the classic maximal >= max/2).
        #[test]
        fn greedy_half_of_maximum(
            n in 1usize..5,
            edges in prop::collection::vec((0usize..5, 0usize..5, 1u64..10), 0..12),
            offset in 0usize..16,
        ) {
            let edges: Vec<_> = edges.into_iter()
                .filter(|&(l, r, _)| l < n && r < n)
                .collect();
            let g = graph(n, &edges);
            for order in [EdgeOrder::Insertion, EdgeOrder::Rotated(offset), EdgeOrder::WeightDescending] {
                let m = greedy_maximal(&g, order);
                prop_assert!(m.is_valid_for(&g));
                prop_assert!(m.is_maximal_in(&g));
                let max = brute::max_cardinality(&g);
                prop_assert!(2 * m.len() >= max.len(),
                    "maximal matching must be >= half of maximum");
            }
        }

        /// Weighted greedy achieves at least half the maximum weight
        /// (standard 1/2-approximation of greedy on weighted matching).
        #[test]
        fn weighted_greedy_half_of_max_weight(
            n in 1usize..5,
            edges in prop::collection::vec((0usize..5, 0usize..5, 1u64..100), 0..12),
        ) {
            let edges: Vec<_> = edges.into_iter()
                .filter(|&(l, r, _)| l < n && r < n)
                .collect();
            let g = graph(n, &edges);
            let m = greedy_maximal_weighted(&g);
            let best = brute::max_weight(&g);
            prop_assert!(2 * m.weight_in(&g) >= best.weight_in(&g));
        }
    }
}
