//! Hopcroft–Karp maximum-cardinality bipartite matching, O(E·√V).
//!
//! This is the scheduling kernel of the *baseline* CIOQ policies
//! (Kesselman–Rosén [23] and successors), which compute a **maximum**
//! matching every cycle. The paper's contribution is showing the greedy
//! maximal matching of `greedy.rs` suffices; this implementation exists so
//! that experiments F2/F6 can compare both throughput parity and cost.

use crate::graph::{BipartiteGraph, Matching};

const NIL: usize = usize::MAX;
const INF: u32 = u32::MAX;

/// Compute a maximum-cardinality matching of `g`.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    let n_left = g.n_left();
    let n_right = g.n_right();

    // Dedup adjacency (parallel edges add nothing for cardinality).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_left];
    for e in g.edges() {
        adj[e.left].push(e.right);
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }

    let mut match_left = vec![NIL; n_left];
    let mut match_right = vec![NIL; n_right];
    let mut dist = vec![INF; n_left];
    let mut queue = Vec::with_capacity(n_left);

    loop {
        // BFS from all free left vertices, layering the graph.
        queue.clear();
        for l in 0..n_left {
            if match_left[l] == NIL {
                dist[l] = 0;
                queue.push(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        let mut qi = 0;
        while qi < queue.len() {
            let l = queue[qi];
            qi += 1;
            for &r in &adj[l] {
                let next = match_right[r];
                if next == NIL {
                    found_augmenting = true;
                } else if dist[next] == INF {
                    dist[next] = dist[l] + 1;
                    queue.push(next);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS along layered graph augmenting vertex-disjoint shortest paths.
        for l in 0..n_left {
            if match_left[l] == NIL {
                dfs(l, &adj, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }

    let pairs = match_left
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r != NIL)
        .map(|(l, &r)| (l, r))
        .collect();
    Matching { pairs }
}

fn dfs(
    l: usize,
    adj: &[Vec<usize>],
    match_left: &mut [usize],
    match_right: &mut [usize],
    dist: &mut [u32],
) -> bool {
    for k in 0..adj[l].len() {
        let r = adj[l][k];
        let next = match_right[r];
        if next == NIL
            || (dist[next] == dist[l] + 1 && dfs(next, adj, match_left, match_right, dist))
        {
            match_left[l] = r;
            match_right[r] = l;
            return true;
        }
    }
    dist[l] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use proptest::prelude::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n, n);
        for &(l, r) in edges {
            g.add_edge(l, r, 1);
        }
        g
    }

    #[test]
    fn finds_augmenting_path() {
        let g = graph(2, &[(0, 0), (0, 1), (1, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn perfect_matching_on_permutation() {
        let g = graph(5, &[(0, 3), (1, 0), (2, 4), (3, 1), (4, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn empty_graph_empty_matching() {
        let g = BipartiteGraph::new(3, 3);
        assert!(hopcroft_karp(&g).is_empty());
    }

    #[test]
    fn handles_parallel_edges() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 0, 1);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn star_graph_matches_one() {
        let g = graph(4, &[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 1);
    }

    proptest! {
        /// Hopcroft–Karp equals the exhaustive maximum on random graphs.
        #[test]
        fn matches_brute_force(
            n in 1usize..6,
            edges in prop::collection::vec((0usize..6, 0usize..6), 0..14),
        ) {
            let edges: Vec<_> = edges.into_iter()
                .filter(|&(l, r)| l < n && r < n)
                .collect();
            let g = graph(n, &edges);
            let hk = hopcroft_karp(&g);
            let exact = brute::max_cardinality(&g);
            prop_assert!(hk.is_valid_for(&g));
            prop_assert_eq!(hk.len(), exact.len());
        }
    }
}
