//! Exhaustive matching oracles for tests.
//!
//! Exponential in the number of edges — only ever used on tiny graphs in
//! unit/property tests to validate the production algorithms.

use crate::graph::{BipartiteGraph, Matching};

/// Exact maximum-cardinality matching by branching over edges.
pub fn max_cardinality(g: &BipartiteGraph) -> Matching {
    let mut best = Matching::new();
    let mut current = Matching::new();
    let mut left_used = vec![false; g.n_left()];
    let mut right_used = vec![false; g.n_right()];
    branch(
        g,
        0,
        &mut current,
        &mut left_used,
        &mut right_used,
        &mut best,
        &mut |m| m.len() as u128,
        &mut 0,
    );
    best
}

/// Exact maximum-weight matching by branching over edges.
pub fn max_weight(g: &BipartiteGraph) -> Matching {
    let mut best = Matching::new();
    let mut current = Matching::new();
    let mut left_used = vec![false; g.n_left()];
    let mut right_used = vec![false; g.n_right()];
    let mut best_score = 0u128;
    branch(
        g,
        0,
        &mut current,
        &mut left_used,
        &mut right_used,
        &mut best,
        &mut |m| m.weight_in_fast(g),
        &mut best_score,
    );
    best
}

trait MatchingScore {
    fn weight_in_fast(&self, g: &BipartiteGraph) -> u128;
}

impl MatchingScore for Matching {
    fn weight_in_fast(&self, g: &BipartiteGraph) -> u128 {
        // During branching, `pairs` correspond to concrete edges appended in
        // edge order, so re-deriving from edge list max is fine for tests.
        self.weight_in(g)
    }
}

#[allow(clippy::too_many_arguments)]
fn branch(
    g: &BipartiteGraph,
    idx: usize,
    current: &mut Matching,
    left_used: &mut [bool],
    right_used: &mut [bool],
    best: &mut Matching,
    score: &mut dyn FnMut(&Matching) -> u128,
    best_score: &mut u128,
) {
    if idx == g.n_edges() {
        let s = score(current);
        if s > *best_score {
            *best_score = s;
            *best = current.clone();
        }
        return;
    }
    let e = g.edges()[idx];
    // Branch 1: skip edge.
    branch(
        g,
        idx + 1,
        current,
        left_used,
        right_used,
        best,
        score,
        best_score,
    );
    // Branch 2: take edge if possible.
    if !left_used[e.left] && !right_used[e.right] {
        left_used[e.left] = true;
        right_used[e.right] = true;
        current.pairs.push((e.left, e.right));
        branch(
            g,
            idx + 1,
            current,
            left_used,
            right_used,
            best,
            score,
            best_score,
        );
        current.pairs.pop();
        left_used[e.left] = false;
        right_used[e.right] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_cardinality_finds_augmenting_structure() {
        // Greedy on insertion order would find 1; maximum is 2.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 0, 1);
        let m = max_cardinality(&g);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn max_weight_trades_cardinality_for_weight() {
        // One heavy edge beats two light ones.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0, 10);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 0, 1);
        let m = max_weight(&g);
        assert_eq!(m.weight_in(&g), 10);
        assert_eq!(m.pairs, vec![(0, 0)]);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        assert!(max_cardinality(&g).is_empty());
        assert!(max_weight(&g).is_empty());
    }
}
