//! Incrementally-maintained scheduling graphs.
//!
//! Every policy in this workspace schedules over a bipartite graph whose
//! vertex sets are the switch ports and whose edges are derived from queue
//! state. One slot mutates at most O(N·ŝ) queues, yet a from-scratch
//! rebuild touches all N² VOQ cells and (for the weighted policies)
//! re-sorts every edge. The types here make the per-cycle cost proportional
//! to what actually changed:
//!
//! * [`IncrementalGraph`] — a dense (bitset + weight array) edge store over
//!   the `n_left × n_right` cell grid with O(1) [`IncrementalGraph::set_edge`]
//!   / [`IncrementalGraph::clear_edge`], iterated in lexicographic `(i, j)`
//!   order — exactly the insertion order of the from-scratch builders.
//! * [`CachedWeightOrder`] — the descending-weight visit order of the
//!   weighted greedy, repaired after each batch of edge updates by dropping
//!   the dirty entries (one `retain` pass) and merging the re-sorted dirty
//!   edges back in: O(E + k log k) for k dirty cells instead of a full
//!   O(E log E) sort.
//! * [`greedy_maximal_cells`] — greedy maximal matching over an
//!   [`IncrementalGraph`] with a per-edge eligibility filter, reproducing
//!   [`greedy_maximal_with`](crate::greedy_maximal_with) bit-for-bit for
//!   each visit order.
//!
//! Per-cell state is *cell-local* by design: eligibility rules that depend
//! on output-side queues (fullness, preemption thresholds) are evaluated by
//! the caller's `edge_ok` filter at match time, so an output queue changing
//! never invalidates a whole column of cached edges.

use crate::graph::Matching;
use crate::greedy::GreedyScratch;
use cioq_model::Value;

use crate::graph::BipartiteGraph;

/// A bipartite scheduling graph over the `n_left × n_right` cell grid with
/// O(1) edge updates and lexicographic edge iteration.
///
/// Cells are flat row-major indices `left * n_right + right` — the same
/// layout the simulator's change log reports dirty VOQs in.
#[derive(Debug, Clone, Default)]
pub struct IncrementalGraph {
    n_left: usize,
    n_right: usize,
    /// One bit per cell: is there an edge?
    present: Vec<u64>,
    /// Weight per cell (meaningful only where `present`).
    weights: Vec<Value>,
    n_edges: usize,
}

impl IncrementalGraph {
    /// An empty graph over the given vertex sets.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        let mut g = IncrementalGraph::default();
        g.reset(n_left, n_right);
        g
    }

    /// Clear all edges and resize to a (possibly different) vertex set.
    pub fn reset(&mut self, n_left: usize, n_right: usize) {
        self.n_left = n_left;
        self.n_right = n_right;
        let cells = n_left * n_right;
        self.present.clear();
        self.present.resize(cells.div_ceil(64), 0);
        self.weights.clear();
        self.weights.resize(cells, 0);
        self.n_edges = 0;
    }

    /// Number of left vertices.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices.
    #[inline]
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Number of edges currently present.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    #[inline]
    fn cell(&self, left: usize, right: usize) -> usize {
        debug_assert!(left < self.n_left && right < self.n_right);
        left * self.n_right + right
    }

    /// Insert or reweight the edge `(left, right)`. O(1).
    #[inline]
    pub fn set_edge(&mut self, left: usize, right: usize, weight: Value) {
        let cell = self.cell(left, right);
        let (word, bit) = (cell / 64, 1u64 << (cell % 64));
        if self.present[word] & bit == 0 {
            self.present[word] |= bit;
            self.n_edges += 1;
        }
        self.weights[cell] = weight;
    }

    /// Remove the edge `(left, right)` if present. O(1).
    #[inline]
    pub fn clear_edge(&mut self, left: usize, right: usize) {
        let cell = self.cell(left, right);
        let (word, bit) = (cell / 64, 1u64 << (cell % 64));
        if self.present[word] & bit != 0 {
            self.present[word] &= !bit;
            self.n_edges -= 1;
        }
    }

    /// The weight of edge `(left, right)`, or `None` if absent.
    #[inline]
    pub fn weight(&self, left: usize, right: usize) -> Option<Value> {
        self.weight_of_cell(self.cell(left, right))
    }

    /// The weight of a flat cell index, or `None` if absent.
    #[inline]
    pub fn weight_of_cell(&self, cell: usize) -> Option<Value> {
        if self.present[cell / 64] & (1u64 << (cell % 64)) != 0 {
            Some(self.weights[cell])
        } else {
            None
        }
    }

    /// First edge of `left`'s row (in ascending `right` order) whose
    /// `(right, weight)` satisfies `pred`, or `None`.
    ///
    /// Scans the row's bitset words and stops at the first hit, so a row
    /// whose first eligible edge is early costs O(1) — the proposal scan of
    /// the sharded engine leans on this, where the sequential greedy has to
    /// walk every edge of the graph.
    pub fn first_edge_in_row_where(
        &self,
        left: usize,
        mut pred: impl FnMut(usize, Value) -> bool,
    ) -> Option<(usize, Value)> {
        debug_assert!(left < self.n_left);
        let start = left * self.n_right;
        let end = start + self.n_right;
        let mut w = start / 64;
        while w * 64 < end {
            let mut word = self.present[w];
            // Mask off bits before the row start / after the row end.
            if w == start / 64 {
                word &= !0u64 << (start % 64);
            }
            while word != 0 {
                let cell = w * 64 + word.trailing_zeros() as usize;
                if cell >= end {
                    break;
                }
                word &= word - 1;
                let right = cell - start;
                let weight = self.weights[cell];
                if pred(right, weight) {
                    return Some((right, weight));
                }
            }
            w += 1;
        }
        None
    }

    /// Copy row `left`'s edge-presence bits into `out` as a word-aligned
    /// bitmap (`out[k]` bit `b` ⇔ edge `(left, k·64 + b)`), regardless of
    /// the row's alignment inside the flat cell bitset. `out` must hold at
    /// least `n_right.div_ceil(64)` words.
    ///
    /// The sharded GM merge runs the lexicographic greedy as pure word
    /// arithmetic over these bitmaps (`row & !used & !full`), so each shard
    /// publishes its rows per cycle with this.
    pub fn copy_row_bits(&self, left: usize, out: &mut [u64]) {
        let m = self.n_right;
        let words = m.div_ceil(64);
        debug_assert!(left < self.n_left);
        debug_assert!(out.len() >= words);
        let start = left * m;
        for (k, slot) in out.iter_mut().enumerate().take(words) {
            let bit = start + k * 64;
            let lo = self.present.get(bit / 64).copied().unwrap_or(0) >> (bit % 64);
            let hi = if bit.is_multiple_of(64) {
                0
            } else {
                self.present.get(bit / 64 + 1).copied().unwrap_or(0) << (64 - bit % 64)
            };
            let mut word = lo | hi;
            if k == words - 1 && !m.is_multiple_of(64) {
                word &= (1u64 << (m % 64)) - 1;
            }
            *slot = word;
        }
    }

    /// Visit every edge in lexicographic `(left, right)` order.
    #[inline]
    pub fn for_each_edge(&self, mut f: impl FnMut(usize, usize, Value)) {
        for (w_idx, &word) in self.present.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let cell = w_idx * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(cell / self.n_right, cell % self.n_right, self.weights[cell]);
            }
        }
    }

    /// Materialise into a [`BipartiteGraph`] (lexicographic insertion order,
    /// matching the from-scratch builders). Used by equivalence tests.
    pub fn to_bipartite(&self, out: &mut BipartiteGraph) {
        out.reset(self.n_left, self.n_right);
        self.for_each_edge(|l, r, w| {
            out.add_edge(l, r, w);
        });
    }
}

/// The descending-weight visit order of the weighted greedy, cached across
/// cycles and repaired incrementally.
///
/// Invariant between repairs: `entries` holds exactly the edges of the
/// companion [`IncrementalGraph`], sorted by `(weight desc, cell asc)` —
/// the same order as sorting from scratch by `(Reverse(weight), left,
/// right)`, since the flat cell index is lexicographic in `(left, right)`.
#[derive(Debug, Clone, Default)]
pub struct CachedWeightOrder {
    entries: Vec<(Value, u32)>,
    dirty: Vec<u32>,
    dirty_marked: Vec<bool>,
    /// Scratch for `repair` (kept to avoid per-cycle allocation).
    pending: Vec<(Value, u32)>,
    merged: Vec<(Value, u32)>,
}

/// `(weight desc, cell asc)` — strict total order because cells are unique.
#[inline]
fn order_before(a: (Value, u32), b: (Value, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl CachedWeightOrder {
    /// Rebuild from scratch to match `g` exactly. O(E log E).
    pub fn rebuild(&mut self, g: &IncrementalGraph) {
        // Reserve every buffer to the cell-count bound once: entries are
        // unique cells, pending holds at most one refresh per cell, and a
        // merge result is again unique cells — so no later repair can
        // outgrow this, however deep the backlog gets.
        let cells = g.n_left() * g.n_right();
        self.entries.reserve(cells);
        self.pending.reserve(cells);
        self.merged.reserve(cells);
        self.dirty.reserve(cells);
        self.entries.clear();
        g.for_each_edge(|l, r, w| {
            self.entries.push((w, (l * g.n_right() + r) as u32));
        });
        // Unique cells make (Reverse(weight), cell) a total order.
        self.entries
            .sort_unstable_by_key(|&(w, cell)| (std::cmp::Reverse(w), cell));
        self.dirty.clear();
        self.dirty_marked.clear();
        self.dirty_marked.resize(g.n_left() * g.n_right(), false);
    }

    /// Mark a flat cell whose edge may have been added, removed, or
    /// reweighted since the last repair. O(1), deduplicated.
    #[inline]
    pub fn mark(&mut self, cell: usize) {
        if !self.dirty_marked[cell] {
            self.dirty_marked[cell] = true;
            self.dirty.push(cell as u32);
        }
    }

    /// Re-establish the sorted invariant against `g` after a batch of
    /// [`CachedWeightOrder::mark`]s: one pass dropping stale entries, then a
    /// merge with the re-sorted dirty edges. O(E + k log k) for k dirty.
    pub fn repair(&mut self, g: &IncrementalGraph) {
        if self.dirty.is_empty() {
            return;
        }
        self.pending.clear();
        for &cell in &self.dirty {
            if let Some(w) = g.weight_of_cell(cell as usize) {
                self.pending.push((w, cell));
            }
        }
        self.pending
            .sort_unstable_by_key(|&(w, cell)| (std::cmp::Reverse(w), cell));

        // Merge `entries` (minus every dirty cell — their cached weights
        // are stale) with the refreshed `pending`.
        self.merged.clear();
        let mut pending = self.pending.iter().copied().peekable();
        for &entry in &self.entries {
            if self.dirty_marked[entry.1 as usize] {
                continue;
            }
            while let Some(&p) = pending.peek() {
                if order_before(p, entry) {
                    self.merged.push(p);
                    pending.next();
                } else {
                    break;
                }
            }
            self.merged.push(entry);
        }
        self.merged.extend(pending);
        std::mem::swap(&mut self.entries, &mut self.merged);

        for &cell in &self.dirty {
            self.dirty_marked[cell as usize] = false;
        }
        self.dirty.clear();
    }

    /// Like [`CachedWeightOrder::repair`], additionally recording the edit
    /// script that transforms the pre-repair order into the post-repair
    /// one: `removed` receives every dirty cell (whose old entries, if
    /// any, must be dropped) and `refreshed` the re-sorted refreshed dirty
    /// edges (to merge back in). A mirror holding the pre-repair entries
    /// that drops `removed` cells and order-merges `refreshed` reproduces
    /// the post-repair entries exactly — the sharded PG publishes this
    /// script per cycle instead of bulk-copying the whole order.
    pub fn repair_recording(
        &mut self,
        g: &IncrementalGraph,
        removed: &mut Vec<u32>,
        refreshed: &mut Vec<(Value, u32)>,
    ) {
        if self.dirty.is_empty() {
            return;
        }
        removed.extend_from_slice(&self.dirty);
        self.repair(g);
        // `repair` leaves the refreshed dirty edges in `pending`.
        refreshed.extend_from_slice(&self.pending);
    }

    /// The edges as `(weight, flat cell)` in visit order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (Value, usize)> + '_ {
        self.entries.iter().map(|&(w, cell)| (w, cell as usize))
    }

    /// The raw sorted entries `(weight, flat cell)` — lets callers bulk-copy
    /// the visit order (the sharded PG publishes it per cycle).
    #[inline]
    pub fn entries(&self) -> &[(Value, u32)] {
        &self.entries
    }

    /// Number of cached edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no edges are cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Which order [`greedy_maximal_cells`] visits edges in — the cell-graph
/// analogue of [`EdgeOrder`](crate::EdgeOrder).
#[derive(Debug, Clone, Copy)]
pub enum CellVisit<'a> {
    /// Lexicographic `(left, right)` — [`EdgeOrder::Insertion`]
    /// (crate::EdgeOrder::Insertion) for graphs built port-by-port.
    Lex,
    /// Lexicographic rotated by `offset % |eligible edges|` —
    /// [`EdgeOrder::Rotated`](crate::EdgeOrder::Rotated).
    Rotated(usize),
    /// Descending weight with `(left, right)` tie-break —
    /// [`EdgeOrder::WeightDescending`](crate::EdgeOrder::WeightDescending).
    /// The caller keeps the order repaired against the same graph.
    Ordered(&'a CachedWeightOrder),
}

/// Greedy maximal matching over the eligible edges of an
/// [`IncrementalGraph`].
///
/// `edge_ok(left, right, weight)` applies the caller's eligibility rule
/// (e.g. "output queue not full") on top of edge presence; it is evaluated
/// in visit order, so the result is identical to building a
/// [`BipartiteGraph`] of exactly the eligible edges and running
/// [`greedy_maximal_with`](crate::greedy_maximal_with) with the matching
/// [`EdgeOrder`](crate::EdgeOrder).
pub fn greedy_maximal_cells(
    g: &IncrementalGraph,
    visit: CellVisit<'_>,
    edge_ok: impl FnMut(usize, usize, Value) -> bool,
    scratch: &mut GreedyScratch,
) -> Matching {
    let mut m = Matching::new();
    greedy_maximal_cells_into(g, visit, edge_ok, scratch, &mut m);
    m
}

/// As [`greedy_maximal_cells`], but writing into `m` (cleared first) so a
/// per-cycle caller reuses one pair buffer instead of allocating a fresh
/// `Matching` every scheduling call — the zero-allocation hot path.
pub fn greedy_maximal_cells_into(
    g: &IncrementalGraph,
    visit: CellVisit<'_>,
    mut edge_ok: impl FnMut(usize, usize, Value) -> bool,
    scratch: &mut GreedyScratch,
    m: &mut Matching,
) {
    scratch.prepare_used(g.n_left(), g.n_right());
    m.pairs.clear();
    let cap = g.n_left().min(g.n_right());
    match visit {
        CellVisit::Lex => {
            g.for_each_edge(|l, r, w| {
                if m.pairs.len() < cap
                    && !scratch.left_used[l]
                    && !scratch.right_used[r]
                    && edge_ok(l, r, w)
                {
                    scratch.left_used[l] = true;
                    scratch.right_used[r] = true;
                    m.pairs.push((l, r));
                }
            });
        }
        CellVisit::Rotated(offset) => {
            // The rotation offset is taken modulo the number of *eligible*
            // edges (as the from-scratch path does), so the eligible list
            // must be materialised first.
            scratch.order.clear();
            g.for_each_edge(|l, r, w| {
                if edge_ok(l, r, w) {
                    scratch.order.push(l * g.n_right() + r);
                }
            });
            if !scratch.order.is_empty() {
                let k = offset % scratch.order.len();
                scratch.order.rotate_left(k);
            }
            for &cell in &scratch.order {
                let (l, r) = (cell / g.n_right(), cell % g.n_right());
                if !scratch.left_used[l] && !scratch.right_used[r] {
                    scratch.left_used[l] = true;
                    scratch.right_used[r] = true;
                    m.pairs.push((l, r));
                    if m.pairs.len() == cap {
                        break;
                    }
                }
            }
        }
        CellVisit::Ordered(order) => {
            debug_assert_eq!(order.len(), g.n_edges(), "order out of sync");
            for (w, cell) in order.iter() {
                let (l, r) = (cell / g.n_right(), cell % g.n_right());
                if !scratch.left_used[l] && !scratch.right_used[r] && edge_ok(l, r, w) {
                    scratch.left_used[l] = true;
                    scratch.right_used[r] = true;
                    m.pairs.push((l, r));
                    if m.pairs.len() == cap {
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_maximal_with, EdgeOrder};
    use proptest::prelude::*;

    fn from_scratch(g: &IncrementalGraph) -> BipartiteGraph {
        let mut b = BipartiteGraph::new(g.n_left(), g.n_right());
        g.to_bipartite(&mut b);
        b
    }

    #[test]
    fn set_and_clear_edges_track_count_and_weight() {
        let mut g = IncrementalGraph::new(3, 3);
        assert_eq!(g.n_edges(), 0);
        g.set_edge(0, 1, 5);
        g.set_edge(2, 2, 7);
        g.set_edge(0, 1, 9); // reweight, not a new edge
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.weight(0, 1), Some(9));
        assert_eq!(g.weight(1, 1), None);
        g.clear_edge(0, 1);
        g.clear_edge(0, 1); // double-clear is a no-op
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.weight(0, 1), None);
    }

    #[test]
    fn first_edge_in_row_scans_with_predicate() {
        // A wide row so the scan crosses word boundaries (n_right = 70).
        let mut g = IncrementalGraph::new(3, 70);
        g.set_edge(1, 3, 5);
        g.set_edge(1, 68, 9);
        g.set_edge(2, 0, 1);
        assert_eq!(g.first_edge_in_row_where(0, |_, _| true), None);
        assert_eq!(g.first_edge_in_row_where(1, |_, _| true), Some((3, 5)));
        assert_eq!(
            g.first_edge_in_row_where(1, |j, _| j != 3),
            Some((68, 9)),
            "predicate skips to the next edge across a word boundary"
        );
        assert_eq!(g.first_edge_in_row_where(1, |_, w| w > 10), None);
        // Row 2's edge shares word 0 with rows 0/1 cells; masking must not
        // leak it into row 1 or vice versa.
        assert_eq!(g.first_edge_in_row_where(2, |_, _| true), Some((0, 1)));
    }

    #[test]
    fn copy_row_bits_handles_unaligned_rows() {
        // m = 70: rows start mid-word, so every row after the first needs
        // the shift-and-stitch path.
        let m = 70;
        let mut g = IncrementalGraph::new(3, m);
        let edges = [(0, 0), (0, 69), (1, 3), (1, 64), (2, 69)];
        for &(l, r) in &edges {
            g.set_edge(l, r, 1);
        }
        for row in 0..3 {
            let mut words = vec![0u64; m.div_ceil(64)];
            g.copy_row_bits(row, &mut words);
            let mut got = Vec::new();
            for (k, w) in words.iter().enumerate() {
                for b in 0..64 {
                    if w & (1 << b) != 0 {
                        got.push(k * 64 + b);
                    }
                }
            }
            let want: Vec<usize> = edges
                .iter()
                .filter(|&&(l, _)| l == row)
                .map(|&(_, r)| r)
                .collect();
            assert_eq!(got, want, "row {row}");
        }
    }

    #[test]
    fn lex_iteration_matches_from_scratch_build_order() {
        let mut g = IncrementalGraph::new(2, 3);
        g.set_edge(1, 0, 4);
        g.set_edge(0, 2, 3);
        g.set_edge(0, 0, 1);
        let b = from_scratch(&g);
        let edges: Vec<_> = b
            .edges()
            .iter()
            .map(|e| (e.left, e.right, e.weight))
            .collect();
        assert_eq!(edges, vec![(0, 0, 1), (0, 2, 3), (1, 0, 4)]);
    }

    #[test]
    fn cached_order_repair_equals_full_sort() {
        let mut g = IncrementalGraph::new(3, 3);
        let mut order = CachedWeightOrder::default();
        g.set_edge(0, 0, 5);
        g.set_edge(1, 1, 5);
        g.set_edge(2, 0, 9);
        order.rebuild(&g);
        assert_eq!(
            order.iter().collect::<Vec<_>>(),
            vec![(9, 6), (5, 0), (5, 4)]
        );

        // Reweight, remove, add — then repair.
        g.set_edge(0, 0, 1);
        order.mark(0);
        g.clear_edge(1, 1);
        order.mark(4);
        g.set_edge(1, 2, 7);
        order.mark(5);
        order.repair(&g);

        let mut reference = CachedWeightOrder::default();
        reference.rebuild(&g);
        assert_eq!(
            order.iter().collect::<Vec<_>>(),
            reference.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn greedy_cells_matches_edge_list_greedy() {
        let mut g = IncrementalGraph::new(3, 3);
        for &(l, r, w) in &[(0, 0, 2), (0, 1, 9), (1, 0, 9), (2, 2, 1)] {
            g.set_edge(l, r, w);
        }
        let b = from_scratch(&g);
        let mut scratch = GreedyScratch::default();
        let mut order = CachedWeightOrder::default();
        order.rebuild(&g);

        for (visit, edge_order) in [
            (CellVisit::Lex, EdgeOrder::Insertion),
            (CellVisit::Rotated(5), EdgeOrder::Rotated(5)),
            (CellVisit::Ordered(&order), EdgeOrder::WeightDescending),
        ] {
            let got = greedy_maximal_cells(&g, visit, |_, _, _| true, &mut scratch);
            let want = greedy_maximal_with(&b, edge_order, &mut GreedyScratch::default());
            assert_eq!(got.pairs, want.pairs, "{edge_order:?}");
        }
    }

    proptest! {
        /// Random edit scripts: after every batch of edits + repair, the
        /// incremental graph and cached order are identical (edges, weights,
        /// visit order) to a from-scratch rebuild, and the greedy matching
        /// over cells equals the edge-list greedy for every visit order —
        /// including under a per-edge eligibility filter.
        #[test]
        fn incremental_equals_from_scratch_under_random_edits(
            n in 1usize..6,
            batches in prop::collection::vec(
                prop::collection::vec((0usize..36, 0u64..20), 1..8),
                1..12,
            ),
            offset in 0usize..32,
            blocked_right in 0usize..6,
        ) {
            let mut g = IncrementalGraph::new(n, n);
            let mut order = CachedWeightOrder::default();
            order.rebuild(&g);
            let mut scratch = GreedyScratch::default();

            for batch in batches {
                for (cell, w) in batch {
                    let (l, r) = (cell / 6, cell % 6);
                    if l >= n || r >= n {
                        continue;
                    }
                    // w == 0 removes the edge; otherwise upsert with weight w.
                    if w == 0 {
                        g.clear_edge(l, r);
                    } else {
                        g.set_edge(l, r, w);
                    }
                    order.mark(l * n + r);
                }
                order.repair(&g);

                // Graph (edges + weights + lex order) matches from-scratch.
                let b = from_scratch(&g);
                let mut reference = CachedWeightOrder::default();
                reference.rebuild(&g);
                prop_assert_eq!(
                    order.iter().collect::<Vec<_>>(),
                    reference.iter().collect::<Vec<_>>()
                );

                // Matchings match for all visit orders, with and without an
                // eligibility filter (drop one right vertex).
                let eligible = |_l: usize, r: usize, _w: u64| r != blocked_right;
                let mut filtered = BipartiteGraph::new(n, n);
                for e in b.edges() {
                    if e.right != blocked_right {
                        filtered.add_edge(e.left, e.right, e.weight);
                    }
                }
                for (visit, edge_order) in [
                    (CellVisit::Lex, EdgeOrder::Insertion),
                    (CellVisit::Rotated(offset), EdgeOrder::Rotated(offset)),
                    (CellVisit::Ordered(&order), EdgeOrder::WeightDescending),
                ] {
                    let got = greedy_maximal_cells(&g, visit, eligible, &mut scratch);
                    let want = greedy_maximal_with(
                        &filtered,
                        edge_order,
                        &mut GreedyScratch::default(),
                    );
                    prop_assert_eq!(&got.pairs, &want.pairs, "{:?}", edge_order);
                }
            }
        }
    }
}
