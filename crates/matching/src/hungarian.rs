//! Hungarian (Kuhn–Munkres) maximum-weight bipartite matching, O(n³).
//!
//! Scheduling kernel of the weighted baseline (Kesselman–Rosén [24]), which
//! computes a **maximum-weight** matching every cycle; PG replaces it with
//! the greedy maximal weighted matching. Experiments F4/F6 compare both.
//!
//! Implementation: classic potentials formulation on a square matrix padded
//! with zero-weight cells. Zero-weight assignments act as "unmatched", so
//! the result is a maximum-weight matching (not necessarily perfect or of
//! maximum cardinality). Costs are negated weights in `i128`, immune to
//! overflow for any `u64` weights on realistic port counts.

use crate::graph::{BipartiteGraph, Matching};
use cioq_model::Value;

/// Compute a maximum-weight matching of `g`.
///
/// Zero-weight edges never appear in the output (they contribute nothing to
/// the objective, and dropping them keeps the result a maximum-weight
/// matching).
pub fn hungarian_max_weight(g: &BipartiteGraph) -> Matching {
    let n = g.n_left().max(g.n_right());
    if n == 0 || g.n_edges() == 0 {
        return Matching::new();
    }

    // Dense weight matrix; parallel edges collapse to their max weight.
    let mut w = vec![vec![0u128; n]; n];
    for e in g.edges() {
        let cell = &mut w[e.left][e.right];
        *cell = (*cell).max(e.weight as u128);
    }

    // Min-cost perfect assignment on cost = -weight (1-based arrays).
    const INF: i128 = i128::MAX / 4;
    let mut u = vec![0i128; n + 1];
    let mut v = vec![0i128; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row assigned to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cost = -(w[i0 - 1][j - 1] as i128);
                    let cur = cost - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = Vec::new();
    for (j, &i) in p.iter().enumerate().take(n + 1).skip(1) {
        if i == 0 {
            continue;
        }
        let (l, r) = (i - 1, j - 1);
        if l < g.n_left() && r < g.n_right() && w[l][r] > 0 {
            pairs.push((l, r));
        }
    }
    pairs.sort_unstable();
    Matching { pairs }
}

/// Total weight the Hungarian solution achieves on `g` — convenience used by
/// tests and baselines.
pub fn max_weight_value(g: &BipartiteGraph) -> u128 {
    hungarian_max_weight(g).weight_in(g)
}

#[allow(dead_code)]
fn weight_of(g: &BipartiteGraph, l: usize, r: usize) -> Option<Value> {
    g.edges()
        .iter()
        .filter(|e| e.left == l && e.right == r)
        .map(|e| e.weight)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use proptest::prelude::*;

    fn graph(nl: usize, nr: usize, edges: &[(usize, usize, u64)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(nl, nr);
        for &(l, r, w) in edges {
            g.add_edge(l, r, w);
        }
        g
    }

    #[test]
    fn picks_heavy_over_cardinality_when_better() {
        let g = graph(2, 2, &[(0, 0, 10), (0, 1, 1), (1, 0, 1)]);
        let m = hungarian_max_weight(&g);
        // max weight: (0,0)=10 alone vs (0,1)+(1,0)=2 -> choose 10.
        assert_eq!(m.weight_in(&g), 10);
    }

    #[test]
    fn picks_two_light_over_one_heavy_when_better() {
        let g = graph(2, 2, &[(0, 0, 10), (0, 1, 7), (1, 0, 7)]);
        let m = hungarian_max_weight(&g);
        assert_eq!(m.weight_in(&g), 14);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn rectangular_graphs() {
        let g = graph(3, 1, &[(0, 0, 5), (1, 0, 9), (2, 0, 7)]);
        let m = hungarian_max_weight(&g);
        assert_eq!(m.pairs, vec![(1, 0)]);
        let g = graph(1, 3, &[(0, 0, 5), (0, 1, 9), (0, 2, 7)]);
        let m = hungarian_max_weight(&g);
        assert_eq!(m.pairs, vec![(0, 1)]);
    }

    #[test]
    fn empty_and_no_edges() {
        assert!(hungarian_max_weight(&BipartiteGraph::new(0, 0)).is_empty());
        assert!(hungarian_max_weight(&BipartiteGraph::new(3, 3)).is_empty());
    }

    #[test]
    fn parallel_edges_collapse_to_max() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 2);
        g.add_edge(0, 0, 9);
        let m = hungarian_max_weight(&g);
        assert_eq!(m.weight_in(&g), 9);
    }

    proptest! {
        /// Hungarian equals the exhaustive maximum weight on random graphs.
        #[test]
        fn matches_brute_force(
            nl in 1usize..5,
            nr in 1usize..5,
            edges in prop::collection::vec((0usize..5, 0usize..5, 1u64..50), 0..12),
        ) {
            let edges: Vec<_> = edges.into_iter()
                .filter(|&(l, r, _)| l < nl && r < nr)
                .collect();
            let g = graph(nl, nr, &edges);
            let hung = hungarian_max_weight(&g);
            let exact = brute::max_weight(&g);
            prop_assert!(hung.is_valid_for(&g));
            prop_assert_eq!(hung.weight_in(&g), exact.weight_in(&g));
        }
    }
}
