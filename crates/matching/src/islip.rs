//! iSLIP: iterative round-robin request/grant/accept matching.
//!
//! The de-facto practical scheduler for input-queued crossbars (McKeown,
//! ToN 1999). Included as the "current practice in distributed systems"
//! the paper's introduction alludes to: like GM it computes a *maximal*
//! matching in a few cheap iterations, but with rotating priority pointers
//! that desynchronize under uniform traffic. It carries **no** competitive
//! guarantee — experiments use it to show where guarantee-free practical
//! schedulers fall behind on adversarial inputs.

use crate::graph::{BipartiteGraph, Matching};

/// Stateful iSLIP scheduler. Keep one instance alive across cycles: the
/// grant/accept pointers are the algorithm's memory.
#[derive(Debug, Clone)]
pub struct Islip {
    /// One grant pointer per output: next input to favour.
    grant_ptr: Vec<usize>,
    /// One accept pointer per input: next output to favour.
    accept_ptr: Vec<usize>,
    /// Number of request/grant/accept iterations per cycle (≥ 1).
    iterations: usize,
}

impl Islip {
    /// Create an iSLIP scheduler for an `n_inputs × n_outputs` switch
    /// running `iterations` rounds per cycle (1–4 is typical hardware).
    pub fn new(n_inputs: usize, n_outputs: usize, iterations: usize) -> Self {
        assert!(iterations >= 1);
        Islip {
            grant_ptr: vec![0; n_outputs],
            accept_ptr: vec![0; n_inputs],
            iterations,
        }
    }

    /// Compute a matching for the current cycle. `g` encodes the requests:
    /// edge (i, j) ⟺ input i has a packet for output j and `Q_j` can accept.
    pub fn match_cycle(&mut self, g: &BipartiteGraph) -> Matching {
        let n_in = g.n_left();
        let n_out = g.n_right();
        debug_assert_eq!(n_out, self.grant_ptr.len());
        debug_assert_eq!(n_in, self.accept_ptr.len());

        // requests[j] = sorted inputs requesting output j.
        let mut requests: Vec<Vec<usize>> = vec![Vec::new(); n_out];
        for e in g.edges() {
            requests[e.right].push(e.left);
        }
        for r in &mut requests {
            r.sort_unstable();
            r.dedup();
        }

        let mut input_matched = vec![false; n_in];
        let mut output_matched = vec![false; n_out];
        let mut m = Matching::new();

        for _ in 0..self.iterations {
            // Grant phase: each unmatched output grants to the first
            // requesting, unmatched input at or after its pointer.
            let mut grants: Vec<Option<usize>> = vec![None; n_out];
            for j in 0..n_out {
                if output_matched[j] || requests[j].is_empty() {
                    continue;
                }
                grants[j] =
                    round_robin_pick(&requests[j], self.grant_ptr[j], |i| !input_matched[i]);
            }

            // Accept phase: each input accepts the first granting output at
            // or after its accept pointer.
            let mut granted_to_input: Vec<Vec<usize>> = vec![Vec::new(); n_in];
            for (j, g) in grants.iter().enumerate() {
                if let Some(i) = g {
                    granted_to_input[*i].push(j);
                }
            }
            let mut progressed = false;
            for i in 0..n_in {
                if input_matched[i] || granted_to_input[i].is_empty() {
                    continue;
                }
                let j = round_robin_pick(&granted_to_input[i], self.accept_ptr[i], |_| true)
                    .expect("non-empty grant list");
                input_matched[i] = true;
                output_matched[j] = true;
                m.pairs.push((i, j));
                progressed = true;
                // Pointer update rule: only on accept, and only in the first
                // iteration (the classic iSLIP desynchronization rule);
                // pointers move one past the matched partner.
                self.grant_ptr[j] = (i + 1) % n_in;
                self.accept_ptr[i] = (j + 1) % n_out;
            }
            if !progressed {
                break;
            }
        }
        m
    }
}

/// First element of `candidates` (sorted ascending) at or cyclically after
/// `start` that satisfies `ok`.
fn round_robin_pick(
    candidates: &[usize],
    start: usize,
    ok: impl Fn(usize) -> bool,
) -> Option<usize> {
    let later = candidates
        .iter()
        .copied()
        .filter(|&c| c >= start && ok(c))
        .min();
    later.or_else(|| candidates.iter().copied().filter(|&c| ok(c)).min())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n, n);
        for &(l, r) in edges {
            g.add_edge(l, r, 1);
        }
        g
    }

    #[test]
    fn single_iteration_matches_something() {
        let mut islip = Islip::new(2, 2, 1);
        let g = graph(2, &[(0, 0), (1, 0)]);
        let m = islip.match_cycle(&g);
        assert_eq!(m.len(), 1);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn pointers_rotate_service() {
        let mut islip = Islip::new(2, 2, 1);
        let g = graph(2, &[(0, 0), (1, 0)]);
        let first = islip.match_cycle(&g).pairs[0].0;
        let second = islip.match_cycle(&g).pairs[0].0;
        assert_ne!(first, second, "grant pointer must rotate between inputs");
    }

    #[test]
    fn multiple_iterations_reach_maximal() {
        // Conflict pattern where one iteration may leave an edge addable.
        let g = graph(3, &[(0, 0), (0, 1), (1, 0), (2, 2)]);
        let mut islip = Islip::new(3, 3, 3);
        let m = islip.match_cycle(&g);
        assert!(m.is_valid_for(&g));
        assert!(
            m.is_maximal_in(&g),
            "k iterations should reach maximality here"
        );
    }

    #[test]
    fn full_crossbar_perfect_matching_under_iterations() {
        let edges: Vec<_> = (0..4).flat_map(|i| (0..4).map(move |j| (i, j))).collect();
        let g = graph(4, &edges);
        let mut islip = Islip::new(4, 4, 4);
        let m = islip.match_cycle(&g);
        assert_eq!(m.len(), 4, "complete graph admits a perfect matching");
    }

    #[test]
    fn empty_requests() {
        let g = BipartiteGraph::new(2, 2);
        let mut islip = Islip::new(2, 2, 2);
        assert!(islip.match_cycle(&g).is_empty());
    }
}
