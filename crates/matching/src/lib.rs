//! # cioq-matching
//!
//! Bipartite matching algorithms for per-cycle switch scheduling.
//!
//! The paper's central efficiency claim is that **greedy maximal matchings**
//! (O(E) unweighted / O(E log E) weighted) can replace the **maximum
//! matchings** used by all previous competitive CIOQ policies without losing
//! competitiveness. This crate provides both families plus the practical
//! round-robin scheduler (iSLIP) used in real switches, and exhaustive
//! oracles for testing:
//!
//! * [`greedy_maximal`] — iterate edges in a given order, add whenever both
//!   endpoints are free (the matching step of **GM**, Thm 1).
//! * [`greedy_maximal_weighted`] — same, in descending weight order (the
//!   matching step of **PG**, Thm 2).
//! * [`hopcroft_karp`] — maximum-cardinality matching, O(E·√V): the
//!   scheduling step of the Kesselman–Rosén baseline.
//! * [`hungarian_max_weight`] — maximum-weight matching, O(n³): the
//!   scheduling step of the weighted Kesselman–Rosén baseline.
//! * [`Islip`] — iterative round-robin request/grant/accept matching.
//! * [`brute`] — exponential-time exact maximum / maximum-weight matching,
//!   used only as a test oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
mod edge_coloring;
mod graph;
mod greedy;
mod hopcroft_karp;
mod hungarian;
mod incremental;
mod islip;

pub use edge_coloring::{decompose_into_matchings, edge_color};
pub use graph::{BipartiteGraph, Edge, EdgeId, Matching};
pub use greedy::{
    greedy_maximal, greedy_maximal_into, greedy_maximal_weighted, greedy_maximal_with, EdgeOrder,
    GreedyScratch,
};
pub use hopcroft_karp::hopcroft_karp;
pub use hungarian::{hungarian_max_weight, max_weight_value};
pub use incremental::{
    greedy_maximal_cells, greedy_maximal_cells_into, CachedWeightOrder, CellVisit, IncrementalGraph,
};
pub use islip::Islip;
