//! Bipartite graph and matching containers.

use cioq_model::Value;

/// Index of an edge within a [`BipartiteGraph`].
pub type EdgeId = usize;

/// One edge `(u_i, v_j)` of the scheduling graph `G_{T[s]}`, optionally
/// weighted by `w(u_i, v_j) = v(g_ij)` (PG) or 1 (GM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Left endpoint (input port index).
    pub left: usize,
    /// Right endpoint (output port index).
    pub right: usize,
    /// Edge weight; 1 for unit-value scheduling.
    pub weight: Value,
}

/// A bipartite graph with `n_left` left vertices (input ports) and `n_right`
/// right vertices (output ports). Edges are stored in insertion order, which
/// is the "arbitrary" iteration order of the paper's greedy matching.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    edges: Vec<Edge>,
}

impl BipartiteGraph {
    /// An empty graph over the given vertex sets.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        BipartiteGraph {
            n_left,
            n_right,
            edges: Vec::new(),
        }
    }

    /// Reuse this graph's allocation for a new cycle (hot path: one graph is
    /// rebuilt every scheduling cycle).
    pub fn reset(&mut self, n_left: usize, n_right: usize) {
        self.n_left = n_left;
        self.n_right = n_right;
        self.edges.clear();
    }

    /// Number of left vertices.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices.
    #[inline]
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Add an edge; panics (debug) on out-of-range endpoints.
    pub fn add_edge(&mut self, left: usize, right: usize, weight: Value) -> EdgeId {
        debug_assert!(left < self.n_left && right < self.n_right);
        self.edges.push(Edge {
            left,
            right,
            weight,
        });
        self.edges.len() - 1
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adjacency list `left -> [(right, weight, edge id)]`.
    pub fn adjacency(&self) -> Vec<Vec<(usize, Value, EdgeId)>> {
        let mut adj = vec![Vec::new(); self.n_left];
        for (id, e) in self.edges.iter().enumerate() {
            adj[e.left].push((e.right, e.weight, id));
        }
        adj
    }
}

/// A matching: a set of edges, no two sharing an endpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    /// The matched edges as `(left, right)` pairs, in the order they were
    /// added by the algorithm.
    pub pairs: Vec<(usize, usize)>,
}

impl Matching {
    /// An empty matching.
    pub fn new() -> Self {
        Matching { pairs: Vec::new() }
    }

    /// Cardinality of the matching.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no edges are matched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The right vertex matched to `left`, if any. O(|M|).
    pub fn right_of(&self, left: usize) -> Option<usize> {
        self.pairs
            .iter()
            .find(|&&(l, _)| l == left)
            .map(|&(_, r)| r)
    }

    /// The left vertex matched to `right`, if any. O(|M|).
    pub fn left_of(&self, right: usize) -> Option<usize> {
        self.pairs
            .iter()
            .find(|&&(_, r)| r == right)
            .map(|&(l, _)| l)
    }

    /// Verify the matching property (no shared endpoints) and that every
    /// pair is an edge of `g`.
    pub fn is_valid_for(&self, g: &BipartiteGraph) -> bool {
        let mut left_used = vec![false; g.n_left()];
        let mut right_used = vec![false; g.n_right()];
        for &(l, r) in &self.pairs {
            if l >= g.n_left() || r >= g.n_right() || left_used[l] || right_used[r] {
                return false;
            }
            if !g.edges().iter().any(|e| e.left == l && e.right == r) {
                return false;
            }
            left_used[l] = true;
            right_used[r] = true;
        }
        true
    }

    /// Whether the matching is **maximal** in `g`: no edge of `g` has both
    /// endpoints unmatched. (Lemma 2 and Lemma 5 of the paper rest on
    /// exactly this property.)
    pub fn is_maximal_in(&self, g: &BipartiteGraph) -> bool {
        let mut left_used = vec![false; g.n_left()];
        let mut right_used = vec![false; g.n_right()];
        for &(l, r) in &self.pairs {
            left_used[l] = true;
            right_used[r] = true;
        }
        g.edges()
            .iter()
            .all(|e| left_used[e.left] || right_used[e.right])
    }

    /// Total weight of the matching in `g` (sums the *maximum* weight edge
    /// between each matched pair, which equals the matched edge's weight when
    /// the graph has no parallel edges — scheduling graphs never do).
    pub fn weight_in(&self, g: &BipartiteGraph) -> u128 {
        self.pairs
            .iter()
            .map(|&(l, r)| {
                g.edges()
                    .iter()
                    .filter(|e| e.left == l && e.right == r)
                    .map(|e| e.weight as u128)
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> BipartiteGraph {
        // 2x2 complete bipartite graph with distinct weights.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0, 4);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 0, 2);
        g.add_edge(1, 1, 1);
        g
    }

    #[test]
    fn adjacency_lists_group_by_left() {
        let g = diamond();
        let adj = g.adjacency();
        assert_eq!(adj[0], vec![(0, 4, 0), (1, 3, 1)]);
        assert_eq!(adj[1], vec![(0, 2, 2), (1, 1, 3)]);
    }

    #[test]
    fn matching_validity() {
        let g = diamond();
        let m = Matching {
            pairs: vec![(0, 0), (1, 1)],
        };
        assert!(m.is_valid_for(&g));
        assert!(m.is_maximal_in(&g));
        assert_eq!(m.weight_in(&g), 5);

        let clash = Matching {
            pairs: vec![(0, 0), (1, 0)],
        };
        assert!(!clash.is_valid_for(&g));

        let non_edge = Matching {
            pairs: vec![(1, 1)],
        };
        assert!(non_edge.is_valid_for(&g));
        assert!(!non_edge.is_maximal_in(&g), "edge (0,0) is still free");
    }

    #[test]
    fn lookup_by_endpoint() {
        let m = Matching {
            pairs: vec![(0, 1), (2, 0)],
        };
        assert_eq!(m.right_of(0), Some(1));
        assert_eq!(m.right_of(1), None);
        assert_eq!(m.left_of(0), Some(2));
        assert_eq!(m.left_of(1), Some(0));
    }

    #[test]
    fn reset_reuses_graph() {
        let mut g = diamond();
        g.reset(3, 3);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.n_left(), 3);
        g.add_edge(2, 2, 1);
        assert_eq!(g.n_edges(), 1);
    }
}
