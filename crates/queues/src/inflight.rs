//! Per-output accounting of packets that have been dispatched into the
//! switching fabric but have not yet landed in their output queue.
//!
//! On an ideal (zero-latency) fabric a transfer scheduled in cycle `T[s]`
//! is inserted into `Q_j` in the same cycle, so "how full is `Q_j`?" has a
//! single answer. A latency-`d` fabric (multi-chassis, long cables) splits
//! that question in two: the *landed* occupancy (what the output line card
//! holds) and the *scheduler's* occupancy (landed plus everything already
//! committed to the wire). Schedulers must reserve against the latter or
//! they overrun the buffer `d` slots later; transmission can only use the
//! former. [`InFlight`] is the bookkeeping for the difference: a per-output
//! multiset of the values currently in flight, with O(1) dispatch and
//! O(in-flight per output) landing/min queries — in-flight populations are
//! bounded by `d · ŝ` per output, so small vectors beat any ordered
//! structure.

use cioq_model::Value;

/// Per-output in-flight accounting for a latency-`d` fabric.
///
/// Tracks, for every output `j`, the multiset of packet values dispatched
/// toward `Q_j` and not yet landed, plus running totals for residual
/// (conservation) accounting. Empty at all times on an immediate fabric.
#[derive(Debug, Clone, Default)]
pub struct InFlight {
    /// Values in flight toward each output (unordered multiset).
    values: Vec<Vec<Value>>,
    /// Total packets in flight (all outputs).
    total: u64,
    /// Total value in flight (all outputs).
    total_value: u128,
}

impl InFlight {
    /// Empty accounting for `n_outputs` outputs.
    pub fn new(n_outputs: usize) -> Self {
        InFlight {
            values: vec![Vec::new(); n_outputs],
            total: 0,
            total_value: 0,
        }
    }

    /// Total packets in flight across all outputs.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total value in flight across all outputs.
    #[inline]
    pub fn total_value(&self) -> u128 {
        self.total_value
    }

    /// Whether nothing is in flight anywhere.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Packets in flight toward output `j`.
    #[inline]
    pub fn len(&self, j: usize) -> usize {
        self.values[j].len()
    }

    /// Least value in flight toward output `j`, if any.
    #[inline]
    pub fn min_value(&self, j: usize) -> Option<Value> {
        self.values[j].iter().copied().min()
    }

    /// Record a packet of value `v` dispatched toward output `j`.
    #[inline]
    pub fn dispatch(&mut self, j: usize, v: Value) {
        self.values[j].push(v);
        self.total += 1;
        self.total_value += v as u128;
    }

    /// Record the landing of a packet of value `v` at output `j`, removing
    /// one matching in-flight entry.
    ///
    /// # Panics
    ///
    /// Panics if no packet of value `v` is in flight toward `j` — a landing
    /// that was never dispatched is an engine bug, never a policy error.
    #[inline]
    pub fn land(&mut self, j: usize, v: Value) {
        let vs = &mut self.values[j];
        let pos = vs
            .iter()
            .position(|&x| x == v)
            .expect("landing packet must be in flight");
        vs.swap_remove(pos);
        self.total -= 1;
        self.total_value -= v as u128;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_and_land_round_trip() {
        let mut f = InFlight::new(3);
        assert!(f.is_empty());
        f.dispatch(1, 5);
        f.dispatch(1, 2);
        f.dispatch(2, 7);
        assert_eq!(f.total(), 3);
        assert_eq!(f.total_value(), 14);
        assert_eq!(f.len(1), 2);
        assert_eq!(f.min_value(1), Some(2));
        assert_eq!(f.min_value(0), None);
        f.land(1, 2);
        assert_eq!(f.len(1), 1);
        assert_eq!(f.min_value(1), Some(5));
        f.land(1, 5);
        f.land(2, 7);
        assert!(f.is_empty());
        assert_eq!(f.total_value(), 0);
    }

    #[test]
    #[should_panic(expected = "must be in flight")]
    fn landing_without_dispatch_panics() {
        let mut f = InFlight::new(1);
        f.land(0, 1);
    }
}
