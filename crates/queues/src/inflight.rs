//! Per-output accounting of packets that have been dispatched into the
//! switching fabric but have not yet landed in their output queue.
//!
//! On an ideal (zero-latency) fabric a transfer scheduled in cycle `T[s]`
//! is inserted into `Q_j` in the same cycle, so "how full is `Q_j`?" has a
//! single answer. A delayed fabric (multi-chassis, long cables) splits
//! that question in two: the *landed* occupancy (what the output line card
//! holds) and the *scheduler's* occupancy (landed plus everything already
//! committed to the wire). Schedulers must reserve against the latter or
//! they overrun the buffer when the transfer lands; transmission can only
//! use the former. [`InFlight`] is the bookkeeping for the difference: a
//! per-output multiset of `(source input, value)` entries currently in
//! flight, with O(1) dispatch and O(in-flight per output) landing/min
//! queries — in-flight populations are bounded by `d̂ · ŝ` per output
//! (`d̂` the largest per-pair latency), so small vectors beat any ordered
//! structure. Entries are tagged with their source input so a
//! heterogeneous (per-pair latency) fabric can be audited pair by pair: a
//! landing must match both the pair it was dispatched on and its value.

use cioq_model::Value;

/// Per-output, per-pair in-flight accounting for a delayed fabric.
///
/// Tracks, for every output `j`, the multiset of `(input, value)` pairs
/// dispatched toward `Q_j` and not yet landed, plus running totals for
/// residual (conservation) accounting. Empty at all times on an immediate
/// fabric.
#[derive(Debug, Clone, Default)]
pub struct InFlight {
    /// `(source input, value)` entries in flight toward each output
    /// (unordered multiset). snapshot: transient — rebuilt by replaying
    /// `dispatch` for every serialized calendar landing and fault-held
    /// packet on restore.
    values: Vec<Vec<(u16, Value)>>,
    /// Total packets in flight (all outputs). snapshot: transient —
    /// rebuilt with `values` by the same dispatch replay.
    total: u64,
    /// Total value in flight (all outputs). snapshot: transient —
    /// rebuilt with `values` by the same dispatch replay.
    total_value: u128,
}

impl InFlight {
    /// Empty accounting for `n_outputs` outputs.
    pub fn new(n_outputs: usize) -> Self {
        InFlight {
            values: vec![Vec::new(); n_outputs],
            total: 0,
            total_value: 0,
        }
    }

    /// Pre-reserve every per-output multiset for `per_output` entries.
    /// Engines with a delayed or faulted fabric call this once at
    /// construction with their in-flight bound, so steady-state dispatch
    /// accounting never grows a vector.
    pub fn reserve(&mut self, per_output: usize) {
        for v in &mut self.values {
            v.reserve(per_output);
        }
    }

    /// Total packets in flight across all outputs.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total value in flight across all outputs.
    #[inline]
    pub fn total_value(&self) -> u128 {
        self.total_value
    }

    /// Whether nothing is in flight anywhere.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Packets in flight toward output `j`.
    #[inline]
    pub fn len(&self, j: usize) -> usize {
        self.values[j].len()
    }

    /// Packets in flight on the specific pair (input `i` → output `j`).
    #[inline]
    pub fn pair_len(&self, i: usize, j: usize) -> usize {
        self.values[j]
            .iter()
            .filter(|&&(src, _)| src as usize == i)
            .count()
    }

    /// Least value in flight toward output `j`, if any.
    #[inline]
    pub fn min_value(&self, j: usize) -> Option<Value> {
        self.values[j].iter().map(|&(_, v)| v).min()
    }

    /// Record a packet of value `v` dispatched from input `i` toward
    /// output `j`.
    #[inline]
    pub fn dispatch(&mut self, i: usize, j: usize, v: Value) {
        self.values[j].push((i as u16, v));
        self.total += 1;
        self.total_value += v as u128;
    }

    /// Verify the cached totals against a recount of the per-output
    /// multisets, and that every entry's source input is a valid port.
    /// O(total in flight); meant for the debug-build invariant auditor.
    pub fn check_consistency(&self, n_inputs: usize) -> Result<(), String> {
        let mut count = 0u64;
        let mut value = 0u128;
        for (j, vs) in self.values.iter().enumerate() {
            for &(src, v) in vs {
                if src as usize >= n_inputs {
                    return Err(format!(
                        "in-flight entry toward output {j} has source input {src} >= {n_inputs}"
                    ));
                }
                count += 1;
                value += v as u128;
            }
        }
        if count != self.total {
            return Err(format!(
                "in-flight count cache {} != recount {count}",
                self.total
            ));
        }
        if value != self.total_value {
            return Err(format!(
                "in-flight value cache {} != recount {value}",
                self.total_value
            ));
        }
        Ok(())
    }

    /// Record the landing at output `j` of a packet of value `v` that was
    /// dispatched from input `i`, removing one matching in-flight entry.
    ///
    /// # Panics
    ///
    /// Panics if no packet of value `v` from input `i` is in flight toward
    /// `j` — a landing that was never dispatched (or that crossed to the
    /// wrong pair) is an engine bug, never a policy error.
    #[inline]
    pub fn land(&mut self, i: usize, j: usize, v: Value) {
        let vs = &mut self.values[j];
        let pos = vs
            .iter()
            .position(|&(src, x)| src as usize == i && x == v)
            .expect("landing packet must be in flight on its pair");
        vs.swap_remove(pos);
        self.total -= 1;
        self.total_value -= v as u128;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_and_land_round_trip() {
        let mut f = InFlight::new(3);
        assert!(f.is_empty());
        f.dispatch(0, 1, 5);
        f.dispatch(4, 1, 2);
        f.dispatch(0, 2, 7);
        assert_eq!(f.total(), 3);
        assert_eq!(f.total_value(), 14);
        assert_eq!(f.len(1), 2);
        assert_eq!(f.pair_len(0, 1), 1);
        assert_eq!(f.pair_len(4, 1), 1);
        assert_eq!(f.pair_len(4, 2), 0);
        assert_eq!(f.min_value(1), Some(2));
        assert_eq!(f.min_value(0), None);
        f.land(4, 1, 2);
        assert_eq!(f.len(1), 1);
        assert_eq!(f.min_value(1), Some(5));
        f.land(0, 1, 5);
        f.land(0, 2, 7);
        assert!(f.is_empty());
        assert_eq!(f.total_value(), 0);
    }

    #[test]
    fn consistency_check_accepts_live_state() {
        let mut f = InFlight::new(2);
        f.dispatch(0, 1, 5);
        f.dispatch(1, 0, 3);
        assert_eq!(f.check_consistency(2), Ok(()));
        f.land(0, 1, 5);
        assert_eq!(f.check_consistency(2), Ok(()));
        // A source port outside the switch is flagged.
        f.dispatch(7, 0, 1);
        assert!(f.check_consistency(2).is_err());
    }

    #[test]
    #[should_panic(expected = "must be in flight")]
    fn landing_without_dispatch_panics() {
        let mut f = InFlight::new(1);
        f.land(0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "must be in flight")]
    fn landing_on_the_wrong_pair_panics() {
        let mut f = InFlight::new(2);
        f.dispatch(3, 0, 9);
        f.land(2, 0, 9);
    }
}
