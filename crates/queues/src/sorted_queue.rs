//! Bounded value-sorted packet queue.

use cioq_model::{Packet, PacketId, Value};

/// A bounded, non-FIFO packet queue kept sorted by (value desc, id asc).
///
/// * `head()` is `g` — the packet with the greatest value (paper notation
///   `g_ij(t)`), position 1 in the paper's `δ(k, t)` indexing.
/// * `tail()` is `l` — the packet with the least value (`l_ij(t)` / `l_j(t)`).
/// * `insert` refuses to overflow: callers decide whether to preempt first
///   (that decision is algorithm policy, not buffer mechanics).
///
/// Backing storage is allocated lazily: an empty queue costs no heap until
/// its first insert, which reserves the full `capacity` in one shot (and
/// never reallocates after that). Large fabrics hold N² queues of which
/// sparse traffic touches a fraction, so construction of a 512-port switch
/// stays cheap.
///
/// Every successful mutation bumps a monotone **modification epoch**
/// ([`SortedQueue::epoch`]), so incremental schedulers can detect "did this
/// queue change since I last looked?" with one integer compare instead of
/// re-reading the contents.
#[derive(Debug, Clone)]
pub struct SortedQueue {
    /// Sorted packets, index 0 = head = greatest value.
    /// snapshot: serialized — stored order is the canonical wire order.
    items: Vec<Packet>,
    /// snapshot: serialized — part of the switch geometry.
    capacity: usize,
    /// Count of successful mutations since construction.
    /// snapshot: transient — bookkeeping for incremental schedulers, not
    /// state (content equality deliberately ignores it); a restored
    /// queue restarts at 0 and fresh policies resync from contents.
    epoch: u64,
}

/// Equality is over contents and capacity only: two queues that hold the
/// same packets compare equal even if they took different mutation paths
/// (the epoch is bookkeeping, not state).
impl PartialEq for SortedQueue {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items && self.capacity == other.capacity
    }
}

impl Eq for SortedQueue {}

impl SortedQueue {
    /// Create an empty queue with capacity `B ≥ 1`. Does not allocate; the
    /// first insert reserves the full backing storage in one shot. Keeping
    /// construction allocation-free matters at scale — a 512-port fabric
    /// holds N² ≈ 262k virtual output queues, most never touched in a
    /// short run — and the one reserve per *touched* queue is bounded by
    /// the geometry, not the slot count, so the allocation census stays
    /// clean once its warm-up outlasts the first full fabric sweep.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be >= 1");
        SortedQueue {
            items: Vec::new(),
            capacity,
            epoch: 0,
        }
    }

    /// Capacity `B(Q)`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Monotone modification epoch: incremented by every successful
    /// `insert` / `pop_head` / `pop_tail` / `remove` / non-empty
    /// `drain_all`. Unchanged epoch ⇒ unchanged contents.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of packets currently stored, `|Q(t)|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no packets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The packet with the greatest value (`g`), if any.
    #[inline]
    pub fn head(&self) -> Option<&Packet> {
        self.items.first()
    }

    /// The packet with the least value (`l`), if any.
    #[inline]
    pub fn tail(&self) -> Option<&Packet> {
        self.items.last()
    }

    /// Value of the head packet, if any.
    #[inline]
    pub fn head_value(&self) -> Option<Value> {
        self.head().map(|p| p.value)
    }

    /// Value of the tail (least) packet, if any.
    #[inline]
    pub fn tail_value(&self) -> Option<Value> {
        self.tail().map(|p| p.value)
    }

    /// Packet at paper position `k` (1-based; 1 = head), i.e. `δ(k, t)`.
    pub fn at_position(&self, k: usize) -> Option<&Packet> {
        if k == 0 {
            return None;
        }
        self.items.get(k - 1)
    }

    /// Iterate packets head-to-tail (descending value).
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.items.iter()
    }

    /// Sum of all stored values (u128 to match benefit accounting).
    pub fn total_value(&self) -> u128 {
        self.items.iter().map(|p| p.value as u128).sum()
    }

    /// Insert a packet, keeping sorted order. Returns `Err(packet)` if the
    /// queue is full (the caller may preempt and retry).
    pub fn insert(&mut self, p: Packet) -> Result<(), Packet> {
        if self.is_full() {
            return Err(p);
        }
        if self.items.capacity() < self.capacity {
            // Lazy backing storage: reserved in full on first use, so the
            // queue never reallocates afterwards. The `<` (not `== 0`)
            // also repairs clones, whose Vec capacity is only their length.
            let additional = self.capacity - self.items.len();
            self.items.reserve_exact(additional);
        }
        let pos = self
            .items
            .partition_point(|q| q.queue_key() <= p.queue_key());
        self.items.insert(pos, p);
        self.epoch += 1;
        Ok(())
    }

    /// Remove and return the head (greatest-value) packet.
    pub fn pop_head(&mut self) -> Option<Packet> {
        if self.items.is_empty() {
            None
        } else {
            self.epoch += 1;
            Some(self.items.remove(0))
        }
    }

    /// Remove and return the tail (least-value) packet — the preemption
    /// victim `l` in PG/CPG ("if p is accepted while the queue is full,
    /// l is preempted").
    pub fn pop_tail(&mut self) -> Option<Packet> {
        let p = self.items.pop();
        if p.is_some() {
            self.epoch += 1;
        }
        p
    }

    /// Remove a specific packet by id. O(B).
    pub fn remove(&mut self, id: PacketId) -> Option<Packet> {
        let pos = self.items.iter().position(|p| p.id == id)?;
        self.epoch += 1;
        Some(self.items.remove(pos))
    }

    /// Find a packet by id.
    pub fn get(&self, id: PacketId) -> Option<&Packet> {
        self.items.iter().find(|p| p.id == id)
    }

    /// Whether the invariant (sorted by value desc, id asc; within capacity)
    /// holds. Used by the simulator's validation mode and by property tests.
    pub fn check_invariants(&self) -> bool {
        if self.items.len() > self.capacity {
            return false;
        }
        self.items
            .windows(2)
            .all(|w| w[0].queue_key() <= w[1].queue_key())
    }

    /// Drain all packets (used when tearing down a run to account for
    /// residual buffered value).
    pub fn drain_all(&mut self) -> Vec<Packet> {
        if !self.items.is_empty() {
            self.epoch += 1;
        }
        std::mem::take(&mut self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::{PacketId, PortId};
    use proptest::prelude::*;

    fn mk(id: u64, value: Value) -> Packet {
        Packet::new(PacketId(id), value, 0, PortId(0), PortId(0))
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut q = SortedQueue::new(8);
        for (id, v) in [(0, 5), (1, 9), (2, 1), (3, 9), (4, 7)] {
            q.insert(mk(id, v)).unwrap();
        }
        let values: Vec<_> = q.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![9, 9, 7, 5, 1]);
        // Equal values: lower id first (assumption A3 consistency).
        assert_eq!(q.head().unwrap().id, PacketId(1));
        assert!(q.check_invariants());
    }

    #[test]
    fn full_queue_rejects_insert() {
        let mut q = SortedQueue::new(2);
        q.insert(mk(0, 1)).unwrap();
        q.insert(mk(1, 2)).unwrap();
        let rejected = q.insert(mk(2, 3)).unwrap_err();
        assert_eq!(rejected.id, PacketId(2));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn preempt_least_then_insert() {
        let mut q = SortedQueue::new(2);
        q.insert(mk(0, 1)).unwrap();
        q.insert(mk(1, 5)).unwrap();
        let victim = q.pop_tail().unwrap();
        assert_eq!(victim.value, 1);
        q.insert(mk(2, 9)).unwrap();
        assert_eq!(q.head_value(), Some(9));
        assert_eq!(q.tail_value(), Some(5));
    }

    #[test]
    fn head_and_tail_on_empty() {
        let mut q = SortedQueue::new(1);
        assert!(q.head().is_none());
        assert!(q.tail().is_none());
        assert!(q.pop_head().is_none());
        assert!(q.pop_tail().is_none());
    }

    #[test]
    fn position_is_one_based() {
        let mut q = SortedQueue::new(4);
        q.insert(mk(0, 3)).unwrap();
        q.insert(mk(1, 7)).unwrap();
        assert_eq!(q.at_position(0), None);
        assert_eq!(q.at_position(1).unwrap().value, 7);
        assert_eq!(q.at_position(2).unwrap().value, 3);
        assert_eq!(q.at_position(3), None);
    }

    #[test]
    fn remove_by_id() {
        let mut q = SortedQueue::new(4);
        q.insert(mk(0, 3)).unwrap();
        q.insert(mk(1, 7)).unwrap();
        q.insert(mk(2, 5)).unwrap();
        assert_eq!(q.remove(PacketId(2)).unwrap().value, 5);
        assert_eq!(q.remove(PacketId(2)), None);
        assert_eq!(q.len(), 2);
        assert!(q.check_invariants());
    }

    #[test]
    fn epoch_counts_only_successful_mutations() {
        let mut q = SortedQueue::new(2);
        assert_eq!(q.epoch(), 0);
        assert!(q.pop_head().is_none());
        assert!(q.pop_tail().is_none());
        assert!(q.remove(PacketId(9)).is_none());
        assert!(q.drain_all().is_empty());
        assert_eq!(q.epoch(), 0, "failed ops leave the epoch unchanged");

        q.insert(mk(0, 3)).unwrap();
        q.insert(mk(1, 7)).unwrap();
        assert_eq!(q.epoch(), 2);
        let _ = q.insert(mk(2, 9)).unwrap_err();
        assert_eq!(q.epoch(), 2, "rejected insert leaves the epoch unchanged");
        q.pop_head().unwrap();
        q.pop_tail().unwrap();
        assert_eq!(q.epoch(), 4);

        // Epochs are bookkeeping: content-equal queues compare equal.
        let mut other = SortedQueue::new(2);
        assert_ne!(q.epoch(), other.epoch());
        other.drain_all();
        assert_eq!(q, other);
    }

    #[test]
    fn total_value_sums() {
        let mut q = SortedQueue::new(4);
        q.insert(mk(0, 3)).unwrap();
        q.insert(mk(1, 7)).unwrap();
        assert_eq!(q.total_value(), 10);
    }

    proptest! {
        /// Random insert / pop-head / pop-tail / remove sequences keep the
        /// queue sorted, within capacity, and consistent with a model
        /// implemented over a plain sorted Vec.
        #[test]
        fn random_ops_preserve_invariants(
            cap in 1usize..8,
            ops in prop::collection::vec((0u8..4, 1u64..16), 0..64)
        ) {
            let mut q = SortedQueue::new(cap);
            let mut model: Vec<Packet> = Vec::new();
            let mut next_id = 0u64;
            for (op, v) in ops {
                match op {
                    0 => {
                        let p = mk(next_id, v);
                        next_id += 1;
                        let res = q.insert(p);
                        if model.len() < cap {
                            prop_assert!(res.is_ok());
                            model.push(p);
                            model.sort_by_key(|p| p.queue_key());
                        } else {
                            prop_assert!(res.is_err());
                        }
                    }
                    1 => {
                        let got = q.pop_head().map(|p| p.id);
                        let want = if model.is_empty() { None } else { Some(model.remove(0).id) };
                        prop_assert_eq!(got, want);
                    }
                    2 => {
                        let got = q.pop_tail().map(|p| p.id);
                        let want = model.pop().map(|p| p.id);
                        prop_assert_eq!(got, want);
                    }
                    _ => {
                        // remove a pseudo-random existing id (if any)
                        if let Some(p) = model.get((v as usize) % model.len().max(1)).copied() {
                            let got = q.remove(p.id);
                            prop_assert!(got.is_some());
                            model.retain(|m| m.id != p.id);
                        }
                    }
                }
                prop_assert!(q.check_invariants());
                prop_assert_eq!(q.len(), model.len());
            }
        }
    }
}
