//! Dense row-major grid indexed by (input port, output port).

use cioq_model::PortId;

/// An `n_inputs × n_outputs` matrix of `T`, used for the virtual output
/// queues `Q_ij` and the crossbar queues `C_ij`.
///
/// Stored row-major (input-major) in one contiguous allocation, so iterating
/// a single input port's queues is cache-friendly — that is the access
/// pattern of every scheduling policy in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid<T> {
    n_inputs: usize,
    n_outputs: usize,
    cells: Vec<T>,
}

impl<T> Grid<T> {
    /// Build a grid by calling `f(i, j)` for every cell.
    pub fn from_fn(
        n_inputs: usize,
        n_outputs: usize,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Self {
        let mut cells = Vec::with_capacity(n_inputs * n_outputs);
        for i in 0..n_inputs {
            for j in 0..n_outputs {
                cells.push(f(i, j));
            }
        }
        Grid {
            n_inputs,
            n_outputs,
            cells,
        }
    }

    /// Number of input-port rows.
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of output-port columns.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n_inputs && j < self.n_outputs);
        i * self.n_outputs + j
    }

    /// Shared access to cell `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> &T {
        &self.cells[self.idx(i, j)]
    }

    /// Mutable access to cell `(i, j)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut T {
        let idx = self.idx(i, j);
        &mut self.cells[idx]
    }

    /// Shared access via typed port ids.
    #[inline]
    pub fn at(&self, input: PortId, output: PortId) -> &T {
        self.get(input.index(), output.index())
    }

    /// Mutable access via typed port ids.
    #[inline]
    pub fn at_mut(&mut self, input: PortId, output: PortId) -> &mut T {
        self.get_mut(input.index(), output.index())
    }

    /// Iterate one input port's row `(j, &cell)`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, &T)> {
        let start = i * self.n_outputs;
        self.cells[start..start + self.n_outputs].iter().enumerate()
    }

    /// Iterate one output port's column `(i, &cell)`.
    pub fn column(&self, j: usize) -> impl Iterator<Item = (usize, &T)> + '_ {
        (0..self.n_inputs).map(move |i| (i, self.get(i, j)))
    }

    /// Iterate all cells as `(i, j, &cell)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let n_outputs = self.n_outputs;
        self.cells
            .iter()
            .enumerate()
            .map(move |(k, c)| (k / n_outputs, k % n_outputs, c))
    }

    /// Iterate all cells mutably as `(i, j, &mut cell)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, usize, &mut T)> {
        let n_outputs = self.n_outputs;
        self.cells
            .iter_mut()
            .enumerate()
            .map(move |(k, c)| (k / n_outputs, k % n_outputs, c))
    }
}

/// A contiguous band of rows of a conceptual larger grid, addressed by
/// **global** row indices.
///
/// The sharded engine partitions the `N × M` queue grids into per-shard row
/// bands; each shard owns one band outright (all mutation goes through the
/// owner) while other shards read it through shared references. Keeping the
/// band a separate allocation — rather than a slice view into one big grid —
/// is what lets every shard be owned by its own thread without `unsafe`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBand<T> {
    grid: Grid<T>,
    row_offset: usize,
}

impl<T> RowBand<T> {
    /// Build the band covering global rows `row_offset .. row_offset + rows`
    /// by calling `f(global_row, col)` for every cell.
    pub fn from_fn(
        row_offset: usize,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Self {
        RowBand {
            grid: Grid::from_fn(rows, cols, |r, c| f(row_offset + r, c)),
            row_offset,
        }
    }

    /// First global row of the band.
    #[inline]
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// Number of rows in the band.
    #[inline]
    pub fn rows(&self) -> usize {
        self.grid.n_inputs()
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.grid.n_outputs()
    }

    /// Whether the band owns global row `row`.
    #[inline]
    pub fn owns_row(&self, row: usize) -> bool {
        (self.row_offset..self.row_offset + self.rows()).contains(&row)
    }

    /// Shared access by global row index.
    #[inline]
    pub fn at_global(&self, row: usize, col: usize) -> &T {
        debug_assert!(self.owns_row(row), "row {row} outside band");
        self.grid.get(row - self.row_offset, col)
    }

    /// Mutable access by global row index.
    #[inline]
    pub fn at_global_mut(&mut self, row: usize, col: usize) -> &mut T {
        debug_assert!(self.owns_row(row), "row {row} outside band");
        self.grid.get_mut(row - self.row_offset, col)
    }

    /// Iterate all cells as `(global_row, col, &cell)`.
    pub fn iter_global(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let off = self.row_offset;
        self.grid.iter().map(move |(r, c, t)| (off + r, c, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_band_addresses_globally() {
        let band = RowBand::from_fn(3, 2, 4, |i, j| 10 * i + j);
        assert_eq!(band.row_offset(), 3);
        assert_eq!(band.rows(), 2);
        assert_eq!(band.cols(), 4);
        assert!(band.owns_row(3) && band.owns_row(4));
        assert!(!band.owns_row(2) && !band.owns_row(5));
        assert_eq!(*band.at_global(3, 0), 30);
        assert_eq!(*band.at_global(4, 3), 43);
        let all: Vec<_> = band.iter_global().map(|(i, j, &v)| (i, j, v)).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], (3, 0, 30));
        assert_eq!(all[7], (4, 3, 43));
    }

    #[test]
    fn row_band_mutation() {
        let mut band = RowBand::from_fn(1, 1, 2, |_, _| 0);
        *band.at_global_mut(1, 1) = 9;
        assert_eq!(*band.at_global(1, 1), 9);
    }

    #[test]
    fn from_fn_fills_row_major() {
        let g = Grid::from_fn(2, 3, |i, j| 10 * i + j);
        assert_eq!(*g.get(0, 0), 0);
        assert_eq!(*g.get(0, 2), 2);
        assert_eq!(*g.get(1, 1), 11);
        assert_eq!(g.n_inputs(), 2);
        assert_eq!(g.n_outputs(), 3);
    }

    #[test]
    fn row_and_column_views() {
        let g = Grid::from_fn(3, 2, |i, j| (i, j));
        let row: Vec<_> = g.row(1).map(|(j, &(i2, j2))| (j, i2, j2)).collect();
        assert_eq!(row, vec![(0, 1, 0), (1, 1, 1)]);
        let col: Vec<_> = g.column(1).map(|(i, &(i2, j2))| (i, i2, j2)).collect();
        assert_eq!(col, vec![(0, 0, 1), (1, 1, 1), (2, 2, 1)]);
    }

    #[test]
    fn iter_yields_coordinates() {
        let g = Grid::from_fn(2, 2, |i, j| i + j);
        let all: Vec<_> = g.iter().map(|(i, j, &v)| (i, j, v)).collect();
        assert_eq!(all, vec![(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 2)]);
    }

    #[test]
    fn mutation_through_port_ids() {
        let mut g = Grid::from_fn(2, 2, |_, _| 0);
        *g.at_mut(PortId(1), PortId(0)) = 7;
        assert_eq!(*g.at(PortId(1), PortId(0)), 7);
        for (_, _, v) in g.iter_mut() {
            *v += 1;
        }
        assert_eq!(*g.get(0, 0), 1);
        assert_eq!(*g.get(1, 0), 8);
    }
}
