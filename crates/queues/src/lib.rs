//! # cioq-queues
//!
//! The buffer substrate of the switch simulator: bounded, **non-FIFO**,
//! value-sorted packet queues (`SortedQueue`) and a dense `Grid` container
//! for the N×M matrix of virtual output queues / crossbar queues.
//!
//! The paper's queues are non-FIFO ("packets may be stored in and released
//! from queues in any arbitrary order") and its analysis assumption A3 keeps
//! every queue sorted by value with consistent tie-breaking. `SortedQueue`
//! implements exactly that discipline: descending value, ascending packet id,
//! head = greatest value. All algorithm operations used by GM/PG/CGU/CPG —
//! head (`g`), tail (`l`), preempt-least, remove-by-id — are O(B) or better,
//! and B (buffer capacity) is small in every realistic configuration, so a
//! sorted `Vec` dominates any pointer-based structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod inflight;
mod sorted_queue;

pub use grid::{Grid, RowBand};
pub use inflight::InFlight;
pub use sorted_queue::SortedQueue;
