//! Exact OPT for small instances by memoized exhaustive search.
//!
//! The search space is pruned by the paper's WLOG assumptions about OPT
//! (§2.2, A1–A3), each of which is a dominance argument:
//!
//! * **Arrivals** need no branching: accepting into a non-full queue, and
//!   swapping out the least-valuable packet when the queue is full and the
//!   arrival is strictly more valuable, always yields a pointwise-dominant
//!   queue multiset (a clairvoyant schedule for the dominated state maps
//!   packet-for-packet onto the dominant one with no loss of value).
//! * **Scheduling** branches over *all sub-matchings* of the eligibility
//!   graph — that choice genuinely matters — but within a chosen edge it
//!   always moves the greatest-value packet (A1) and preempts the
//!   least-valuable packet of a full target (both exchange arguments).
//!   Edges whose head would not exceed a full target queue's minimum are
//!   dominated (the swap only shrinks the multiset) and skipped.
//! * **Transmission** is greedy and work-conserving (A1, A2).
//! * After the last arrival, a slot in which nothing moves and nothing is
//!   sent can be cut: idling is never required once the input is fixed
//!   (shift the remaining schedule one slot earlier).
//!
//! Memoization is on the exact queue contents at slot boundaries; once
//! arrivals are exhausted the slot number is canonicalized away, so
//! post-arrival drain states are shared regardless of when they occur.

use cioq_model::{Benefit, SwitchConfig, Value};
use cioq_sim::Trace;
use std::collections::HashMap;

/// Search limits for [`exact_opt`].
#[derive(Debug, Clone, Copy)]
pub struct BruteForceLimits {
    /// Maximum number of memoized states before giving up.
    pub max_states: usize,
}

impl Default for BruteForceLimits {
    fn default() -> Self {
        BruteForceLimits {
            max_states: 2_000_000,
        }
    }
}

/// Compute the exact offline optimum benefit, or `None` if the state limit
/// is exceeded. Supports both CIOQ and buffered crossbar configurations;
/// intended for tiny instances (N, M ≤ 3, a handful of slots).
pub fn exact_opt(cfg: &SwitchConfig, trace: &Trace, limits: BruteForceLimits) -> Option<Benefit> {
    let mut search = Search::new(cfg, trace, limits);
    search.best_from_slot(&State::empty(cfg), 0).map(Benefit)
}

/// Queue contents: every queue is a multiset kept sorted descending.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// Input queues, row-major `i*m + j`.
    iq: Vec<Vec<Value>>,
    /// Crossbar queues (empty vec when CIOQ).
    cb: Vec<Vec<Value>>,
    /// Output queues.
    oq: Vec<Vec<Value>>,
}

impl State {
    fn empty(cfg: &SwitchConfig) -> State {
        let nm = cfg.n_inputs * cfg.n_outputs;
        State {
            iq: vec![Vec::new(); nm],
            cb: if cfg.crossbar_capacity.is_some() {
                vec![Vec::new(); nm]
            } else {
                Vec::new()
            },
            oq: vec![Vec::new(); cfg.n_outputs],
        }
    }

    fn is_empty(&self) -> bool {
        self.iq.iter().all(|q| q.is_empty())
            && self.cb.iter().all(|q| q.is_empty())
            && self.oq.iter().all(|q| q.is_empty())
    }
}

/// Insert keeping descending order.
fn insert_sorted(q: &mut Vec<Value>, v: Value) {
    let pos = q.partition_point(|&x| x >= v);
    q.insert(pos, v);
}

/// Greedy-dominant admission: accept if room; swap out the minimum if full
/// and strictly smaller.
fn admit(q: &mut Vec<Value>, cap: usize, v: Value) {
    if q.len() < cap {
        insert_sorted(q, v);
    } else if let Some(&min) = q.last() {
        if min < v {
            q.pop();
            insert_sorted(q, v);
        }
    }
}

struct Search<'a> {
    cfg: &'a SwitchConfig,
    /// Arrivals grouped by slot: `(input, output, value)`.
    per_slot: Vec<Vec<(usize, usize, Value)>>,
    memo: HashMap<(u64, State), u128>,
    limit: usize,
    exceeded: bool,
}

impl<'a> Search<'a> {
    fn new(cfg: &'a SwitchConfig, trace: &Trace, limits: BruteForceLimits) -> Self {
        let slots = trace.arrival_slots() as usize;
        let mut per_slot = vec![Vec::new(); slots];
        for p in trace.packets() {
            per_slot[p.arrival as usize].push((p.input.index(), p.output.index(), p.value));
        }
        Search {
            cfg,
            per_slot,
            memo: HashMap::new(),
            limit: limits.max_states,
            exceeded: false,
        }
    }

    fn arrival_slots(&self) -> u64 {
        self.per_slot.len() as u64
    }

    /// Best achievable benefit from `state` at the start of `slot`
    /// (before that slot's arrival phase).
    fn best_from_slot(&mut self, state: &State, slot: u64) -> Option<u128> {
        if self.exceeded {
            return None;
        }
        let past_arrivals = slot >= self.arrival_slots();
        if past_arrivals && state.is_empty() {
            return Some(0);
        }
        let key = (slot.min(self.arrival_slots()), state.clone());
        if let Some(&v) = self.memo.get(&key) {
            return Some(v);
        }
        if self.memo.len() >= self.limit {
            self.exceeded = true;
            return None;
        }

        let mut st = state.clone();
        if !past_arrivals {
            for &(i, j, v) in &self.per_slot[slot as usize].clone() {
                admit(
                    &mut st.iq[i * self.cfg.n_outputs + j],
                    self.cfg.input_capacity,
                    v,
                );
            }
        }

        let best = self.run_cycles(&st, slot, 0, false)?;
        self.memo.insert(key, best);
        Some(best)
    }

    /// Enumerate the remaining cycles of `slot`, then transmit and recurse.
    fn run_cycles(
        &mut self,
        state: &State,
        slot: u64,
        cycle: u32,
        progressed: bool,
    ) -> Option<u128> {
        if cycle == self.cfg.speedup {
            return self.transmit_and_continue(state, slot, progressed);
        }
        if self.cfg.crossbar_capacity.is_some() {
            let mut best = 0u128;
            let mut after_input = Vec::new();
            enumerate_input_subphase(self.cfg, state, 0, &mut Vec::new(), &mut after_input);
            for (st1, moved_in) in after_input {
                let mut after_output = Vec::new();
                enumerate_output_subphase(self.cfg, &st1, 0, &mut Vec::new(), &mut after_output);
                for (st2, moved_out) in after_output {
                    let b = self.run_cycles(
                        &st2,
                        slot,
                        cycle + 1,
                        progressed || moved_in || moved_out,
                    )?;
                    best = best.max(b);
                }
            }
            Some(best)
        } else {
            let mut best = 0u128;
            let mut outcomes = Vec::new();
            enumerate_cioq_matchings(
                self.cfg,
                state,
                0,
                &mut vec![false; self.cfg.n_outputs],
                &mut Vec::new(),
                &mut outcomes,
            );
            for (st1, moved) in outcomes {
                let b = self.run_cycles(&st1, slot, cycle + 1, progressed || moved)?;
                best = best.max(b);
            }
            Some(best)
        }
    }

    fn transmit_and_continue(
        &mut self,
        state: &State,
        slot: u64,
        progressed: bool,
    ) -> Option<u128> {
        let mut st = state.clone();
        let mut gained = 0u128;
        let mut sent = false;
        for q in &mut st.oq {
            if !q.is_empty() {
                gained += q.remove(0) as u128;
                sent = true;
            }
        }
        // Post-arrival idle slot: nothing moved, nothing sent — idling
        // cannot be part of any strictly better schedule.
        if slot >= self.arrival_slots() && !progressed && !sent {
            return Some(0);
        }
        Some(gained + self.best_from_slot(&st, slot + 1)?)
    }
}

/// Is a transfer of `head` into `target` (capacity `cap`) worthwhile?
/// Returns what to do: `None` = ineligible/dominated, `Some(preempt)`.
fn transfer_mode(head: Value, target: &[Value], cap: usize) -> Option<bool> {
    if target.len() < cap {
        Some(false)
    } else if target.last().copied().unwrap_or(0) < head {
        Some(true)
    } else {
        None
    }
}

fn apply_transfer(from: &mut Vec<Value>, to: &mut Vec<Value>, preempt: bool) {
    let head = from.remove(0);
    if preempt {
        to.pop();
    }
    insert_sorted(to, head);
}

/// All CIOQ sub-matchings over inputs `i..`, producing resulting states.
fn enumerate_cioq_matchings(
    cfg: &SwitchConfig,
    state: &State,
    i: usize,
    outputs_used: &mut Vec<bool>,
    _path: &mut Vec<(usize, usize)>,
    out: &mut Vec<(State, bool)>,
) {
    if i == cfg.n_inputs {
        out.push((state.clone(), !_path.is_empty()));
        return;
    }
    // Option: input i idles this cycle.
    enumerate_cioq_matchings(cfg, state, i + 1, outputs_used, _path, out);
    for j in 0..cfg.n_outputs {
        if outputs_used[j] || state.iq[i * cfg.n_outputs + j].is_empty() {
            continue;
        }
        let head = state.iq[i * cfg.n_outputs + j][0];
        let Some(preempt) = transfer_mode(head, &state.oq[j], cfg.output_capacity) else {
            continue;
        };
        let mut st = state.clone();
        {
            // Split-borrow via index juggling: move head from iq to oq.
            let from = &mut st.iq[i * cfg.n_outputs + j];
            let head_val = from.remove(0);
            let to = &mut st.oq[j];
            if preempt {
                to.pop();
            }
            insert_sorted(to, head_val);
        }
        outputs_used[j] = true;
        _path.push((i, j));
        enumerate_cioq_matchings(cfg, &st, i + 1, outputs_used, _path, out);
        _path.pop();
        outputs_used[j] = false;
    }
}

/// All input-subphase decisions (≤1 transfer per input port, independent
/// across ports).
fn enumerate_input_subphase(
    cfg: &SwitchConfig,
    state: &State,
    i: usize,
    _path: &mut Vec<usize>,
    out: &mut Vec<(State, bool)>,
) {
    if i == cfg.n_inputs {
        out.push((state.clone(), !_path.is_empty()));
        return;
    }
    enumerate_input_subphase(cfg, state, i + 1, _path, out);
    let bc = cfg.crossbar_capacity.expect("crossbar enumeration");
    for j in 0..cfg.n_outputs {
        let idx = i * cfg.n_outputs + j;
        if state.iq[idx].is_empty() {
            continue;
        }
        let head = state.iq[idx][0];
        let Some(preempt) = transfer_mode(head, &state.cb[idx], bc) else {
            continue;
        };
        let mut st = state.clone();
        let (iq, cb) = (&mut st.iq[idx], &mut st.cb[idx]);
        // Manual split borrow: iq and cb are distinct vectors.
        apply_transfer_pair(iq, cb, preempt);
        _path.push(idx);
        enumerate_input_subphase(cfg, &st, i + 1, _path, out);
        _path.pop();
    }
}

/// All output-subphase decisions (≤1 transfer per output port).
fn enumerate_output_subphase(
    cfg: &SwitchConfig,
    state: &State,
    j: usize,
    _path: &mut Vec<usize>,
    out: &mut Vec<(State, bool)>,
) {
    if j == cfg.n_outputs {
        out.push((state.clone(), !_path.is_empty()));
        return;
    }
    enumerate_output_subphase(cfg, state, j + 1, _path, out);
    for i in 0..cfg.n_inputs {
        let idx = i * cfg.n_outputs + j;
        if state.cb[idx].is_empty() {
            continue;
        }
        let head = state.cb[idx][0];
        let Some(preempt) = transfer_mode(head, &state.oq[j], cfg.output_capacity) else {
            continue;
        };
        let mut st = state.clone();
        let head_val = st.cb[idx].remove(0);
        if preempt {
            st.oq[j].pop();
        }
        insert_sorted(&mut st.oq[j], head_val);
        _path.push(idx);
        enumerate_output_subphase(cfg, &st, j + 1, _path, out);
        _path.pop();
    }
}

fn apply_transfer_pair(from: &mut Vec<Value>, to: &mut Vec<Value>, preempt: bool) {
    apply_transfer(from, to, preempt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::PortId;

    fn trace(tuples: &[(u64, u16, u16, u64)]) -> Trace {
        Trace::from_tuples(
            tuples
                .iter()
                .map(|&(t, i, j, v)| (t, PortId(i), PortId(j), v)),
        )
    }

    fn opt(cfg: &SwitchConfig, tr: &Trace) -> u128 {
        exact_opt(cfg, tr, BruteForceLimits::default()).unwrap().0
    }

    #[test]
    fn empty_instance() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        assert_eq!(opt(&cfg, &Trace::default()), 0);
    }

    #[test]
    fn single_packet() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        assert_eq!(opt(&cfg, &trace(&[(0, 0, 1, 7)])), 7);
    }

    #[test]
    fn buffer_overflow_keeps_best() {
        // B(Q_ij)=1, one slot, values 3 and 9 to the same queue.
        let cfg = SwitchConfig::cioq(1, 1, 1);
        assert_eq!(opt(&cfg, &trace(&[(0, 0, 0, 3), (0, 0, 0, 9)])), 9);
    }

    #[test]
    fn opt_exploits_matching_choice() {
        // Inputs 0,1 both have packets for output 0; input 0 also for
        // output 1. Speedup 1, one slot of arrivals. OPT: cycle of slot 0
        // moves (0->1) and (1->0); slot 1 moves (0->0). All 3 delivered.
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let tr = trace(&[(0, 0, 0, 1), (0, 0, 1, 1), (0, 1, 0, 1)]);
        assert_eq!(opt(&cfg, &tr), 3);
    }

    #[test]
    fn output_queue_capacity_binds() {
        // 1x1 switch, B_in=3, B_out=1, speedup 3: even with huge fabric
        // speed, one packet transmits per slot and the output queue holds
        // only 1 — but input queues retain the rest, so over 3 slots all
        // 3 unit packets are delivered.
        let cfg = SwitchConfig::builder(1, 1)
            .speedup(3)
            .input_capacity(3)
            .output_capacity(1)
            .build()
            .unwrap();
        let tr = trace(&[(0, 0, 0, 1), (0, 0, 0, 1), (0, 0, 0, 1)]);
        assert_eq!(opt(&cfg, &tr), 3);
    }

    #[test]
    fn preemption_upgrades_output_queue() {
        // B_out = 1, speedup 2. Slot 0: value 5 fills the output queue in
        // cycle 1; cycle 2 can preempt it with the 100 from another input.
        // OPT instead transfers 100 first and keeps 5 in the input queue:
        // both delivered (5 one slot later) = 105.
        let cfg = SwitchConfig::builder(2, 1)
            .speedup(2)
            .input_capacity(1)
            .output_capacity(1)
            .build()
            .unwrap();
        let tr = trace(&[(0, 0, 0, 5), (0, 1, 0, 100)]);
        assert_eq!(opt(&cfg, &tr), 105);
    }

    #[test]
    fn crossbar_exact_opt_runs() {
        let cfg = SwitchConfig::crossbar(2, 2, 1, 1);
        let tr = trace(&[(0, 0, 0, 1), (0, 1, 1, 1), (1, 0, 1, 1)]);
        assert_eq!(opt(&cfg, &tr), 3);
    }

    #[test]
    fn crossbar_buffer_pipelines_contention() {
        // Both inputs to output 0, B(C)=1, speedup 1: input subphase moves
        // both packets into their crosspoints in slot 0; output subphase
        // takes one per slot. All delivered.
        let cfg = SwitchConfig::crossbar(2, 1, 1, 1);
        let tr = trace(&[(0, 0, 0, 1), (0, 1, 0, 1)]);
        assert_eq!(opt(&cfg, &tr), 2);
    }

    #[test]
    fn state_limit_returns_none() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let tr = trace(&[(0, 0, 0, 1), (1, 0, 1, 1), (2, 1, 0, 1), (3, 1, 1, 1)]);
        let result = exact_opt(&cfg, &tr, BruteForceLimits { max_states: 1 });
        assert_eq!(result, None);
    }

    #[test]
    fn flood_instance_matches_formula() {
        // The gm_iq_flood OPT formula (2m-1)*b, checked by brute force on
        // a small instance: m=2, b=1 -> 3.
        let cfg = SwitchConfig::iq_model(2, 1);
        let tr = trace(&[(0, 0, 0, 1), (0, 1, 0, 1), (1, 1, 0, 1)]);
        assert_eq!(opt(&cfg, &tr), 3);
    }
}
