//! Public bound API and certified ratio reporting.

use crate::network::{oblivious_bound, per_output_bound};
use cioq_model::{Benefit, SwitchConfig};
use cioq_sim::Trace;

/// The two relaxation bounds on `OPT(σ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptBounds {
    /// Per-output relaxation (drops cross-output input-port coupling).
    pub per_output: u128,
    /// Destination-oblivious relaxation (keeps both port couplings,
    /// forgets destinations).
    pub oblivious: u128,
}

impl OptBounds {
    /// The tighter (smaller) of the two upper bounds.
    pub fn best(&self) -> u128 {
        self.per_output.min(self.oblivious)
    }
}

/// Compute both certified upper bounds on `OPT(σ)`.
pub fn opt_upper_bound(cfg: &SwitchConfig, trace: &Trace) -> OptBounds {
    OptBounds {
        per_output: per_output_bound(cfg, trace),
        oblivious: oblivious_bound(cfg, trace),
    }
}

/// Whether the per-output bound is *exact* OPT for this configuration:
/// true for `N×1` switches (the IQ model), where the single output's
/// per-slot admission capacity `ŝ` subsumes the per-input-port constraint
/// (any per-slot aggregate of ≤ ŝ transfers serializes into ŝ cycles of
/// singleton matchings).
pub fn opt_upper_bound_is_exact(cfg: &SwitchConfig) -> bool {
    cfg.n_outputs == 1
}

/// `UB(OPT) / benefit` — an upper bound on the true competitive ratio of
/// the run. Uses the tighter of the two relaxations.
pub fn certified_ratio(cfg: &SwitchConfig, trace: &Trace, benefit: Benefit) -> f64 {
    let ub = opt_upper_bound(cfg, trace).best();
    Benefit(ub).ratio_over(benefit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::PortId;

    #[test]
    fn bounds_and_ratio() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let tr = Trace::from_tuples([(0, PortId(0), PortId(0), 4), (0, PortId(1), PortId(1), 6)]);
        let b = opt_upper_bound(&cfg, &tr);
        assert_eq!(b.best(), 10);
        assert_eq!(certified_ratio(&cfg, &tr, Benefit(5)), 2.0);
    }

    #[test]
    fn exactness_predicate() {
        assert!(opt_upper_bound_is_exact(&SwitchConfig::iq_model(8, 4)));
        assert!(!opt_upper_bound_is_exact(&SwitchConfig::cioq(2, 4, 1)));
    }
}
