//! Time-expanded flow networks for the two OPT relaxations.
//!
//! Shared structure (one copy per slot `t`):
//!
//! ```text
//!   packets ─► [IQ chain, cap B_in] ─► fabric stage(s) ─► [OQ chain, cap B_out] ─► sink (1/slot)
//!                    │ carryover                                  │ carryover
//!                    ▼ t+1                                        ▼ t+1
//! ```
//!
//! *Per-output* (one network per output `j`): the fabric stage is a single
//! per-slot aggregate of capacity `ŝ` (at most one packet enters `Q_j` per
//! cycle). The constraint "input port `i` releases ≤ 1 packet per cycle
//! *across all outputs*" is dropped — that is the relaxation.
//!
//! *Destination-oblivious* (one network for the whole switch): per-slot
//! input-port nodes (cap `ŝ`) and output-port nodes (cap `ŝ`) are both kept
//! — by König's edge-colouring theorem a per-slot transfer multiset with
//! degrees ≤ `ŝ` is exactly realizable as `ŝ` matchings — but the fabric
//! connects every input-port node to every output-port node, i.e. packets
//! forget their destination. That is this relaxation.
//!
//! Buffered crossbar configs get an extra buffered stage: per-output keeps
//! per-crosspoint queues `C_ij` exactly; the oblivious network pools row
//! `i`'s crosspoints into one buffer of capacity `M·B_c` (a further
//! relaxation, still sound).

use cioq_flow::profit::{max_profit_by_classes, merge_classes, ValueClass};
use cioq_flow::FlowNetwork;
use cioq_model::{SwitchConfig, Value};
use cioq_sim::Trace;
use std::collections::HashMap;

/// Horizon: arrival slots plus enough drain slots to empty every buffer
/// through a single output (`B_out + N·B_in (+ N·B_c)`).
pub(crate) fn horizon(cfg: &SwitchConfig, trace: &Trace) -> u64 {
    let drain = cfg.output_capacity
        + cfg.n_inputs * cfg.input_capacity
        + cfg.n_inputs * cfg.crossbar_capacity.unwrap_or(0);
    trace.arrival_slots() + drain as u64 + 1
}

/// The per-output relaxation bound: Σ_j maxprofit(network_j).
pub(crate) fn per_output_bound(cfg: &SwitchConfig, trace: &Trace) -> u128 {
    (0..cfg.n_outputs)
        .map(|j| per_output_single(cfg, trace, j))
        .sum()
}

fn per_output_single(cfg: &SwitchConfig, trace: &Trace, j: usize) -> u128 {
    let h = horizon(cfg, trace) as usize;
    let n = cfg.n_inputs;
    let s_hat = cfg.speedup as u64;
    let has_cb = cfg.crossbar_capacity.is_some();
    let b_cb = cfg.crossbar_capacity.unwrap_or(0) as u64;

    let mut net = FlowNetwork::new();
    let source = net.add_node();
    let sink = net.add_node();

    // Node id helpers (all chains are split into in/out pairs).
    let iq_base = net.add_nodes(2 * n * h);
    let iq_in = |i: usize, t: usize| iq_base + 2 * (t * n + i);
    let iq_out = |i: usize, t: usize| iq_base + 2 * (t * n + i) + 1;
    let cb_base = if has_cb { net.add_nodes(2 * n * h) } else { 0 };
    let cb_in = move |i: usize, t: usize| cb_base + 2 * (t * n + i);
    let cb_out = move |i: usize, t: usize| cb_base + 2 * (t * n + i) + 1;
    let agg_base = net.add_nodes(2 * h);
    let agg_in = |t: usize| agg_base + 2 * t;
    let agg_out = |t: usize| agg_base + 2 * t + 1;
    let oq_base = net.add_nodes(2 * h);
    let oq_in = |t: usize| oq_base + 2 * t;
    let oq_out = |t: usize| oq_base + 2 * t + 1;

    for t in 0..h {
        for i in 0..n {
            net.add_arc(iq_in(i, t), iq_out(i, t), cfg.input_capacity as u64);
            if t + 1 < h {
                net.add_arc(iq_out(i, t), iq_in(i, t + 1), cfg.input_capacity as u64);
            }
            if has_cb {
                net.add_arc(iq_out(i, t), cb_in(i, t), s_hat);
                // Through-capacity is B_c + ŝ: insertions (input subphase)
                // and removals (output subphase) interleave across the ŝ
                // cycles of a slot, so up to ŝ packets can pass through a
                // momentarily-full crosspoint on top of its carryover.
                net.add_arc(cb_in(i, t), cb_out(i, t), b_cb + s_hat);
                if t + 1 < h {
                    net.add_arc(cb_out(i, t), cb_in(i, t + 1), b_cb);
                }
                net.add_arc(cb_out(i, t), agg_in(t), s_hat);
            } else {
                net.add_arc(iq_out(i, t), agg_in(t), s_hat);
            }
        }
        net.add_arc(agg_in(t), agg_out(t), s_hat);
        net.add_arc(agg_out(t), oq_in(t), s_hat);
        net.add_arc(oq_in(t), oq_out(t), cfg.output_capacity as u64);
        if t + 1 < h {
            net.add_arc(oq_out(t), oq_in(t + 1), cfg.output_capacity as u64);
        }
        net.add_arc(oq_out(t), sink, 1);
    }

    // Value classes: packets destined to output j, grouped by value and
    // entry node.
    let mut entries: HashMap<(Value, usize), u64> = HashMap::new();
    for p in trace.packets() {
        if p.output.index() != j {
            continue;
        }
        *entries
            .entry((p.value, iq_in(p.input.index(), p.arrival as usize)))
            .or_insert(0) += 1;
    }
    let classes = merge_classes(
        entries
            .into_iter()
            .map(|((value, node), cap)| ValueClass {
                value,
                entries: vec![(node, cap)],
            })
            .collect(),
    );
    max_profit_by_classes(&mut net, source, sink, classes).profit
}

/// The destination-oblivious relaxation bound.
pub(crate) fn oblivious_bound(cfg: &SwitchConfig, trace: &Trace) -> u128 {
    let h = horizon(cfg, trace) as usize;
    let n = cfg.n_inputs;
    let m = cfg.n_outputs;
    let s_hat = cfg.speedup as u64;
    let has_cb = cfg.crossbar_capacity.is_some();
    let b_row = (cfg.crossbar_capacity.unwrap_or(0) * m) as u64;

    let mut net = FlowNetwork::new();
    let source = net.add_node();
    let sink = net.add_node();

    let iq_base = net.add_nodes(2 * n * m * h);
    let iq_in = |i: usize, jj: usize, t: usize| iq_base + 2 * ((t * n + i) * m + jj);
    let iq_out = |i: usize, jj: usize, t: usize| iq_base + 2 * ((t * n + i) * m + jj) + 1;
    let ip_base = net.add_nodes(2 * n * h);
    let ip_in = |i: usize, t: usize| ip_base + 2 * (t * n + i);
    let ip_out = |i: usize, t: usize| ip_base + 2 * (t * n + i) + 1;
    let row_base = if has_cb { net.add_nodes(2 * n * h) } else { 0 };
    let row_in = move |i: usize, t: usize| row_base + 2 * (t * n + i);
    let row_out = move |i: usize, t: usize| row_base + 2 * (t * n + i) + 1;
    let op_base = net.add_nodes(2 * m * h);
    let op_in = |jj: usize, t: usize| op_base + 2 * (t * m + jj);
    let op_out = |jj: usize, t: usize| op_base + 2 * (t * m + jj) + 1;
    let oq_base = net.add_nodes(2 * m * h);
    let oq_in = |jj: usize, t: usize| oq_base + 2 * (t * m + jj);
    let oq_out = |jj: usize, t: usize| oq_base + 2 * (t * m + jj) + 1;

    for t in 0..h {
        for i in 0..n {
            for jj in 0..m {
                net.add_arc(iq_in(i, jj, t), iq_out(i, jj, t), cfg.input_capacity as u64);
                if t + 1 < h {
                    net.add_arc(
                        iq_out(i, jj, t),
                        iq_in(i, jj, t + 1),
                        cfg.input_capacity as u64,
                    );
                }
                net.add_arc(iq_out(i, jj, t), ip_in(i, t), s_hat);
            }
            net.add_arc(ip_in(i, t), ip_out(i, t), s_hat);
            if has_cb {
                // Pooled crosspoint row buffer (cap M·B_c), then fan out.
                net.add_arc(ip_out(i, t), row_in(i, t), s_hat);
                net.add_arc(row_in(i, t), row_out(i, t), b_row + s_hat);
                if t + 1 < h {
                    net.add_arc(row_out(i, t), row_in(i, t + 1), b_row);
                }
                for jj in 0..m {
                    net.add_arc(row_out(i, t), op_in(jj, t), s_hat);
                }
            } else {
                for jj in 0..m {
                    net.add_arc(ip_out(i, t), op_in(jj, t), s_hat);
                }
            }
        }
        for jj in 0..m {
            net.add_arc(op_in(jj, t), op_out(jj, t), s_hat);
            net.add_arc(op_out(jj, t), oq_in(jj, t), s_hat);
            net.add_arc(oq_in(jj, t), oq_out(jj, t), cfg.output_capacity as u64);
            if t + 1 < h {
                net.add_arc(oq_out(jj, t), oq_in(jj, t + 1), cfg.output_capacity as u64);
            }
            net.add_arc(oq_out(jj, t), sink, 1);
        }
    }

    let mut entries: HashMap<(Value, usize), u64> = HashMap::new();
    for p in trace.packets() {
        let node = iq_in(p.input.index(), p.output.index(), p.arrival as usize);
        *entries.entry((p.value, node)).or_insert(0) += 1;
    }
    let classes = merge_classes(
        entries
            .into_iter()
            .map(|((value, node), cap)| ValueClass {
                value,
                entries: vec![(node, cap)],
            })
            .collect(),
    );
    max_profit_by_classes(&mut net, source, sink, classes).profit
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::PortId;

    fn trace(tuples: &[(u64, u16, u16, u64)]) -> Trace {
        Trace::from_tuples(
            tuples
                .iter()
                .map(|&(t, i, j, v)| (t, PortId(i), PortId(j), v)),
        )
    }

    #[test]
    fn single_packet_flows_through() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let tr = trace(&[(0, 0, 1, 5)]);
        assert_eq!(per_output_bound(&cfg, &tr), 5);
        assert_eq!(oblivious_bound(&cfg, &tr), 5);
    }

    #[test]
    fn transmission_rate_caps_throughput() {
        // 6 unit packets to one output in one slot, B large: the output
        // can transmit 1/slot and buffer B; all 6 eventually deliverable.
        let cfg = SwitchConfig::cioq(2, 8, 1);
        let tr = trace(&[
            (0, 0, 0, 1),
            (0, 0, 0, 1),
            (0, 0, 0, 1),
            (0, 1, 0, 1),
            (0, 1, 0, 1),
            (0, 1, 0, 1),
        ]);
        assert_eq!(per_output_bound(&cfg, &tr), 6);
        assert_eq!(oblivious_bound(&cfg, &tr), 6);
    }

    #[test]
    fn input_buffer_capacity_limits_acceptance() {
        // B(Q_ij) = 1: three same-slot packets into one queue -> only one
        // can be accepted (no scheduling happens before the arrival phase
        // ends... but a same-slot transfer frees nothing DURING arrivals).
        let cfg = SwitchConfig::cioq(1, 1, 1);
        let tr = trace(&[(0, 0, 0, 1), (0, 0, 0, 1), (0, 0, 0, 1)]);
        assert_eq!(per_output_bound(&cfg, &tr), 1);
        // Spread over slots they all fit.
        let tr = trace(&[(0, 0, 0, 1), (1, 0, 0, 1), (2, 0, 0, 1)]);
        assert_eq!(per_output_bound(&cfg, &tr), 3);
    }

    #[test]
    fn weighted_bound_prefers_value() {
        // B=1 queue, same slot: values 1 and 9 compete for the slot.
        let cfg = SwitchConfig::cioq(1, 1, 1);
        let tr = trace(&[(0, 0, 0, 1), (0, 0, 0, 9)]);
        assert_eq!(per_output_bound(&cfg, &tr), 9);
        assert_eq!(oblivious_bound(&cfg, &tr), 9);
    }

    #[test]
    fn oblivious_keeps_input_port_coupling() {
        // One input, two outputs, speedup 1, 2 slots: the input port can
        // release only 1 packet per cycle, so of the 4 packets (2 per
        // output, all arriving slot 0, B_in >= 2) only 2 can cross within
        // 2 slots... they continue draining in later slots though. Use the
        // *transmission* cap to pin the difference instead: input coupling
        // means at most `slots` packets total can ever cross the fabric.
        let cfg = SwitchConfig::cioq(2, 2, 1);
        // Both packets at input 0, different outputs, same slot:
        let tr = trace(&[(0, 0, 0, 1), (0, 0, 1, 1)]);
        // Per-output bound decouples: each output sees its own packet ->
        // bound 2. Oblivious keeps the port cap but packets drain over two
        // slots -> also 2. Both sound; equality here.
        assert_eq!(per_output_bound(&cfg, &tr), 2);
        assert_eq!(oblivious_bound(&cfg, &tr), 2);
    }

    #[test]
    fn crossbar_stage_adds_buffering() {
        // CIOQ with B_in=1: second same-slot packet to the same queue is
        // lost. A crossbar with B_c=1 cannot help *during* the arrival
        // phase (transfers happen in the scheduling phase), so the bound
        // is unchanged here — but a burst across two slots can pipeline.
        let cioq = SwitchConfig::cioq(1, 1, 1);
        let xbar = SwitchConfig::crossbar(1, 1, 1, 1);
        let tr = trace(&[(0, 0, 0, 1), (0, 0, 0, 1)]);
        assert_eq!(per_output_bound(&cioq, &tr), 1);
        assert_eq!(per_output_bound(&xbar, &tr), 1);
        let tr2 = trace(&[(0, 0, 0, 1), (1, 0, 0, 1), (2, 0, 0, 1)]);
        assert_eq!(per_output_bound(&xbar, &tr2), 3);
    }

    #[test]
    fn speedup_relaxes_fabric_not_transmission() {
        // 4 packets, one output, speedup 4, B_out=4: all cross in slot 0,
        // but transmission is still 1/slot -> all 4 delivered over 4 slots.
        let cfg = SwitchConfig::cioq(4, 4, 4);
        let tr = trace(&[(0, 0, 0, 1), (0, 1, 0, 1), (0, 2, 0, 1), (0, 3, 0, 1)]);
        assert_eq!(per_output_bound(&cfg, &tr), 4);
        assert_eq!(oblivious_bound(&cfg, &tr), 4);
    }

    #[test]
    fn empty_trace_zero_bound() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let tr = Trace::default();
        assert_eq!(per_output_bound(&cfg, &tr), 0);
        assert_eq!(oblivious_bound(&cfg, &tr), 0);
    }
}
