//! The paper's proof machinery, executable: the *modified OPT* of §2.1.
//!
//! Theorem 1's analysis runs GM alongside an arbitrary feasible offline
//! schedule ("opt"), then modifies opt at the end of every scheduling
//! cycle:
//!
//! * **Modification 2.1.1** — if GM transfers from `Q_ij` and opt does not
//!   transfer from `Q*_ij`, and `Q*_ij` is non-empty, opt sends one packet
//!   from `Q*_ij` straight out of the switch (a *privileged packet of
//!   Type 1*).
//! * **Modification 2.1.2** — if opt transfers a packet into `Q*_j`, GM
//!   transfers nothing into `Q_j`, and `Q_j` is not full, the packet goes
//!   straight out instead (a *privileged packet of Type 2*).
//!
//! With these modifications **Lemma 1** holds: at every instant
//! `|Q*_ij| ≤ |Q_ij|` (I1) and `|Q*_j| ≤ |Q_j|` (I2). I2 forces opt's
//! normal transmissions to be dominated (`|S*| ≤ |S|`), and the mapping
//! scheme of Lemma 3 gives `|P*| ≤ 2|S|` — together, `OPT ≤ 3·GM`.
//!
//! [`gm_lemma1_machinery`] performs this construction concretely: it
//! simulates GM (unit values) in lockstep with a recorded offline schedule,
//! applies both modifications, checks I1/I2 after every phase, and returns
//! the `(|S|, |S*|, |P*|)` accounting. Tests feed it arbitrary recorded
//! schedules and verify that the invariants *never* fail and the theorem's
//! inequalities always hold — the proof, run as a program.

use cioq_model::SwitchConfig;
use cioq_sim::{RecordedSchedule, Trace};

/// Accounting produced by one run of the modified-OPT construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lemma1Report {
    /// `|S|`: packets GM transmitted.
    pub alg_sent: u64,
    /// `|S*|`: packets the modified opt sent through normal channels.
    pub opt_normal_sent: u64,
    /// Privileged packets of Type 1 (Modification 2.1.1).
    pub privileged_type1: u64,
    /// Privileged packets of Type 2 (Modification 2.1.2).
    pub privileged_type2: u64,
    /// Invariant I1/I2 violations observed (must be 0).
    pub invariant_violations: u64,
}

impl Lemma1Report {
    /// `|P*|`: all privileged packets.
    pub fn privileged(&self) -> u64 {
        self.privileged_type1 + self.privileged_type2
    }

    /// The modified opt's total benefit `|S*| + |P*|` (unit values).
    pub fn opt_total(&self) -> u64 {
        self.opt_normal_sent + self.privileged()
    }

    /// The three inequalities of the proof of Theorem 1.
    pub fn theorem_1_holds(&self) -> bool {
        self.invariant_violations == 0
            && self.opt_normal_sent <= self.alg_sent
            && self.privileged() <= 2 * self.alg_sent
            && self.opt_total() <= 3 * self.alg_sent
    }
}

/// Occupancy-only switch state (unit values: counts suffice).
#[derive(Debug, Clone)]
struct UnitState {
    n: usize,
    m: usize,
    iq: Vec<u32>,
    oq: Vec<u32>,
}

impl UnitState {
    fn new(cfg: &SwitchConfig) -> Self {
        UnitState {
            n: cfg.n_inputs,
            m: cfg.n_outputs,
            iq: vec![0; cfg.n_inputs * cfg.n_outputs],
            oq: vec![0; cfg.n_outputs],
        }
    }

    #[inline]
    fn iq_at(&self, i: usize, j: usize) -> u32 {
        self.iq[i * self.m + j]
    }

    fn is_empty(&self) -> bool {
        self.iq.iter().all(|&c| c == 0) && self.oq.iter().all(|&c| c == 0)
    }
}

/// Run the §2.1 modified-OPT construction: GM (lexicographic greedy
/// maximal matching, accept-iff-not-full, greedy transmission) against the
/// recorded `schedule` on the same `trace`. The schedule must come from a
/// feasible run on this exact `(cfg, trace)` pair (any CIOQ policy recorded
/// through [`cioq_sim::Recording`] qualifies). Unit-value traces only.
pub fn gm_lemma1_machinery(
    cfg: &SwitchConfig,
    trace: &Trace,
    schedule: &RecordedSchedule,
) -> Lemma1Report {
    assert!(
        cfg.crossbar_capacity.is_none(),
        "the §2.1 machinery targets CIOQ switches"
    );
    assert!(
        trace.packets().iter().all(|p| p.value == 1),
        "the §2.1 machinery targets the unit-value model"
    );
    assert_eq!(
        schedule.fabric_delay, 0,
        "the §2.1 machinery replays transcripts with same-cycle transfer \
         semantics; a delay-line transcript (fabric_delay > 0) would be \
         replayed infeasibly"
    );

    let b_in = cfg.input_capacity as u32;
    let b_out = cfg.output_capacity as u32;
    let mut alg = UnitState::new(cfg);
    let mut opt = UnitState::new(cfg);
    let mut report = Lemma1Report {
        alg_sent: 0,
        opt_normal_sent: 0,
        privileged_type1: 0,
        privileged_type2: 0,
        invariant_violations: 0,
    };

    let check_invariants = |alg: &UnitState, opt: &UnitState, report: &mut Lemma1Report| {
        for idx in 0..alg.iq.len() {
            if opt.iq[idx] > alg.iq[idx] {
                report.invariant_violations += 1;
            }
        }
        for j in 0..alg.m {
            if opt.oq[j] > alg.oq[j] {
                report.invariant_violations += 1;
            }
        }
    };

    let packets = trace.packets();
    let mut next_packet = 0usize;
    let arrival_slots = trace.arrival_slots();
    let mut cycle_idx = 0usize;
    let mut slot: u64 = 0;

    // Scratch for GM's per-cycle greedy matching.
    let mut alg_from: Vec<Option<usize>> = vec![None; alg.n]; // input -> j
    let mut alg_into: Vec<bool> = vec![false; alg.m];

    loop {
        let arrivals_pending = slot < arrival_slots;
        let schedule_pending = cycle_idx < schedule.transfers.len();
        if !arrivals_pending && !schedule_pending && alg.is_empty() && opt.is_empty() {
            break;
        }
        // Hard safety net: everything drains within residual-many slots.
        if slot > arrival_slots + (trace.len() as u64) + 64 {
            break;
        }

        // --- Arrival phase ---
        if arrivals_pending {
            while next_packet < packets.len() && packets[next_packet].arrival == slot {
                let p = &packets[next_packet];
                let idx = p.input.index() * alg.m + p.output.index();
                // GM: accept iff not full.
                if alg.iq[idx] < b_in {
                    alg.iq[idx] += 1;
                }
                // opt: recorded admission, feasible a fortiori (its queues
                // only ever shrank under the modifications).
                if schedule
                    .admissions
                    .get(next_packet)
                    .copied()
                    .unwrap_or(false)
                {
                    debug_assert!(opt.iq[idx] < b_in, "recorded accept must stay feasible");
                    if opt.iq[idx] < b_in {
                        opt.iq[idx] += 1;
                    }
                }
                next_packet += 1;
                check_invariants(&alg, &opt, &mut report);
            }
        }

        // --- Scheduling phase: ŝ cycles ---
        for _ in 0..cfg.speedup {
            // GM's greedy maximal matching in lexicographic order.
            alg_from.iter_mut().for_each(|x| *x = None);
            alg_into.iter_mut().for_each(|x| *x = false);
            for (i, from) in alg_from.iter_mut().enumerate() {
                for (j, into) in alg_into.iter_mut().enumerate() {
                    if from.is_none() && !*into && alg.iq_at(i, j) > 0 && alg.oq[j] < b_out {
                        *from = Some(j);
                        *into = true;
                    }
                }
            }
            for (i, j) in alg_from
                .iter()
                .enumerate()
                .filter_map(|(i, j)| j.map(|j| (i, j)))
            {
                alg.iq[i * alg.m + j] -= 1;
                alg.oq[j] += 1;
            }

            // opt: recorded transfers for this cycle (skipping any whose
            // source queue the modifications already drained).
            let empty = Vec::new();
            let recorded = schedule.transfers.get(cycle_idx).unwrap_or(&empty);
            let mut opt_from: Vec<bool> = vec![false; alg.n];
            for &(i16, j16) in recorded {
                let (i, j) = (i16 as usize, j16 as usize);
                let idx = i * alg.m + j;
                if opt.iq[idx] == 0 {
                    continue; // packet left early as privileged
                }
                opt.iq[idx] -= 1;
                opt_from[i] = true;
                // Modification 2.1.2: GM transferred nothing into Q_j and
                // Q_j is not full -> privileged Type 2 (skip the insert).
                if !alg_into[j] && alg.oq[j] < b_out {
                    report.privileged_type2 += 1;
                } else {
                    debug_assert!(opt.oq[j] < b_out, "recorded insert must stay feasible");
                    opt.oq[j] += 1;
                }
            }
            // Modification 2.1.1: GM transferred from Q_ij, opt did not
            // transfer from input port... the paper's condition is per
            // queue Q_ij: opt transferred no packet from Q*_ij this cycle.
            for (i, j) in alg_from
                .iter()
                .enumerate()
                .filter_map(|(i, j)| j.map(|j| (i, j)))
            {
                let opt_used_same_queue = recorded
                    .iter()
                    .any(|&(ri, rj)| ri as usize == i && rj as usize == j);
                let idx = i * alg.m + j;
                if !opt_used_same_queue && opt.iq[idx] > 0 {
                    opt.iq[idx] -= 1;
                    report.privileged_type1 += 1;
                }
            }
            cycle_idx += 1;
            check_invariants(&alg, &opt, &mut report);
        }

        // --- Transmission phase (both greedy / work-conserving, A2) ---
        for j in 0..alg.m {
            if alg.oq[j] > 0 {
                alg.oq[j] -= 1;
                report.alg_sent += 1;
            }
            if opt.oq[j] > 0 {
                opt.oq[j] -= 1;
                report.opt_normal_sent += 1;
            }
        }
        check_invariants(&alg, &opt, &mut report);
        slot += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::PortId;

    #[test]
    fn trivial_instance_all_inequalities_hold() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let trace =
            Trace::from_tuples([(0, PortId(0), PortId(0), 1), (0, PortId(1), PortId(1), 1)]);
        // Offline schedule: accept both, transfer both in cycle 0.
        let schedule = RecordedSchedule {
            admissions: vec![true, true],
            transfers: vec![vec![(0, 0), (1, 1)]],
            fabric_delay: 0,
        };
        let report = gm_lemma1_machinery(&cfg, &trace, &schedule);
        assert_eq!(report.alg_sent, 2);
        assert_eq!(report.opt_normal_sent, 2);
        assert_eq!(report.privileged(), 0);
        assert!(report.theorem_1_holds());
    }

    #[test]
    fn privileged_type1_fires_when_opt_idles() {
        let cfg = SwitchConfig::cioq(1, 1, 1);
        let trace = Trace::from_tuples([(0, PortId(0), PortId(0), 1)]);
        // Offline schedule that accepts but never transfers: GM transfers
        // in cycle 0, opt does not -> the packet leaves as privileged.
        let schedule = RecordedSchedule {
            admissions: vec![true],
            transfers: vec![vec![]],
            fabric_delay: 0,
        };
        let report = gm_lemma1_machinery(&cfg, &trace, &schedule);
        assert_eq!(report.alg_sent, 1);
        assert_eq!(report.privileged_type1, 1);
        assert_eq!(report.opt_normal_sent, 0);
        assert!(report.theorem_1_holds());
    }

    #[test]
    fn empty_trace_is_clean() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let report = gm_lemma1_machinery(&cfg, &Trace::default(), &RecordedSchedule::default());
        assert_eq!(report.alg_sent, 0);
        assert!(report.theorem_1_holds());
    }
}
