//! # cioq-opt
//!
//! Offline-optimum machinery for measuring empirical competitive ratios.
//!
//! Competitive analysis compares an online algorithm's benefit to `OPT(σ)`,
//! the clairvoyant optimum. Computing `OPT` exactly is intractable at scale
//! (per-cycle matching constraints couple all ports over time), so this
//! crate provides three tools with different exactness/scale trade-offs:
//!
//! * [`exact_opt`] — **exact** `OPT` by memoized search, for small
//!   instances (property tests of Theorems 1–4 use this).
//! * [`opt_upper_bound`] — two *certified upper bounds* on `OPT` via
//!   max-profit flow over time-expanded relaxations (§4.2 of DESIGN.md):
//!   the **per-output** relaxation (drops cross-output input-port coupling)
//!   and the **destination-oblivious** relaxation (keeps both per-port
//!   fabric capacities, forgets packet destinations). Ratios reported
//!   against `min` of the two are upper bounds on the true ratio — sound,
//!   never flattering.
//! * For `N×1` (IQ-model) switches the per-output relaxation is **exact**
//!   ([`opt_upper_bound_is_exact`] tells you when), so adversarial
//!   experiments on IQ configurations report true ratios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod brute;
mod network;
mod shadow;

pub use bounds::{certified_ratio, opt_upper_bound, opt_upper_bound_is_exact, OptBounds};
pub use brute::{exact_opt, BruteForceLimits};
pub use shadow::{gm_lemma1_machinery, Lemma1Report};
