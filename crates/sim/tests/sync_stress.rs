//! Permuted-arrival stress tests for the sharded engine's synchronisation
//! protocol: the [`SpinBarrier`] phase discipline and the per-(dest, src)
//! mailbox-cell pattern built on top of it (`shard.rs` routes every
//! cross-shard packet through a `Mutex<Vec<_>>` cell written before a
//! barrier crossing and drained after it).
//!
//! The lockstep equivalence suites only sample the schedules a real run
//! produces; these tests adversarially permute thread arrival order with
//! seeded jitter (random yield/spin bursts before every protocol step) so
//! late spinners, early parkers, and generation-lapped waiters all occur.
//! Failures here are ordering bugs — the assertions check the protocol's
//! contract (no thread crosses early; every write before a crossing is
//! visible after it), not any timing property. Seeded and deterministic in
//! structure; run under the CI `--test-threads` 1/2/4 matrix like the
//! equivalence suites.

use cioq_sim::SpinBarrier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Burn a seeded-random number of yields/spins, permuting this thread's
/// arrival time relative to its peers.
fn jitter(rng: &mut SmallRng) {
    if rng.gen_bool(0.5) {
        for _ in 0..rng.gen_range(0..32usize) {
            std::hint::spin_loop();
        }
    } else {
        for _ in 0..rng.gen_range(0..4usize) {
            std::thread::yield_now();
        }
    }
}

/// A seeded permutation of `0..n` (Fisher-Yates; the vendored rand has no
/// shuffle helper).
fn permutation(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order
}

#[test]
fn barrier_keeps_lockstep_under_permuted_arrivals() {
    const PARTIES: usize = 8;
    const PHASES: u32 = 300;
    for seed in [1u64, 42, 0xC109] {
        let barrier = SpinBarrier::new(PARTIES);
        let counter = AtomicU32::new(0);
        let mut spawn_rng = SmallRng::seed_from_u64(seed);
        let order = permutation(PARTIES, &mut spawn_rng);
        std::thread::scope(|scope| {
            for &t in &order {
                let barrier = &barrier;
                let counter = &counter;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                    for phase in 0..PHASES {
                        jitter(&mut rng);
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between the two crossings the counter is frozen:
                        // every increment of this phase happened before the
                        // first barrier, none of the next phase's can
                        // happen until the second.
                        assert_eq!(
                            counter.load(Ordering::Relaxed),
                            (phase + 1) * PARTIES as u32,
                            "a thread passed the barrier before all parties arrived (seed {seed})"
                        );
                        jitter(&mut rng);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), PHASES * PARTIES as u32);
    }
}

/// The mailbox value for phase `p`, route `src -> dest`, item `k` — unique
/// across everything, so any misrouted or stale delivery is identifiable.
fn payload(phase: u32, src: usize, dest: usize, k: usize) -> u64 {
    ((phase as u64) << 32) | ((src as u64) << 24) | ((dest as u64) << 16) | k as u64
}

#[test]
fn mailbox_cells_deliver_exactly_once_per_phase() {
    const K: usize = 6;
    const PHASES: u32 = 200;
    for seed in [7u64, 1234] {
        // Per-(dest, src) cells, exactly the sharded engine's comms shape.
        let mail: Vec<Vec<Mutex<Vec<u64>>>> = (0..K)
            .map(|_| (0..K).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = SpinBarrier::new(K);
        let mut spawn_rng = SmallRng::seed_from_u64(seed);
        let order = permutation(K, &mut spawn_rng);
        std::thread::scope(|scope| {
            for &me in &order {
                let mail = &mail;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x51D));
                    for phase in 0..PHASES {
                        // Write half: as src, push a variable-size batch to
                        // every dest cell, in a seeded dest order.
                        for dest in permutation(K, &mut rng) {
                            jitter(&mut rng);
                            let n = 1 + (phase as usize + me + dest) % 3;
                            let mut cell = mail[dest][me].lock().expect("no poisoned locks");
                            for k in 0..n {
                                cell.push(payload(phase, me, dest, k));
                            }
                        }
                        jitter(&mut rng);
                        barrier.wait();
                        // Read half: as dest, drain own cells in src order
                        // and verify every batch arrived exactly once, in
                        // push order, with nothing stale or misrouted.
                        for (src, cell) in mail[me].iter().enumerate() {
                            jitter(&mut rng);
                            let mut cell = cell.lock().expect("no poisoned locks");
                            let n = 1 + (phase as usize + src + me) % 3;
                            let want: Vec<u64> =
                                (0..n).map(|k| payload(phase, src, me, k)).collect();
                            assert_eq!(
                                *cell, want,
                                "mailbox ({me} <- {src}) corrupt in phase {phase} (seed {seed})"
                            );
                            cell.clear();
                        }
                        jitter(&mut rng);
                        // Second crossing: nobody starts the next write
                        // half until every cell has been drained.
                        barrier.wait();
                    }
                });
            }
        });
    }
}

/// Heterogeneous party counts: barriers of size 1 (degenerate, pure
/// fast-path) through odd sizes, each re-used across enough phases for the
/// generation counter to lap the spin budget when oversubscribed.
#[test]
fn barrier_sizes_from_one_to_oversubscribed() {
    for parties in [1usize, 2, 3, 5, 16] {
        let barrier = SpinBarrier::new(parties);
        let counter = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for t in 0..parties {
                let barrier = &barrier;
                let counter = &counter;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for phase in 0..100u32 {
                        jitter(&mut rng);
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(
                            counter.load(Ordering::Relaxed),
                            (phase + 1) * parties as u32
                        );
                        barrier.wait();
                    }
                });
            }
        });
    }
}
