//! Streaming ingestion: push-fed arrivals over a bounded per-slot channel.
//!
//! The paper's online model reveals σ slot by slot; this module is that
//! seam. A producer thread pushes one batch of packets per slot through a
//! [`StreamSender`]; the engine pulls them through a [`StreamingSource`]
//! (an [`ArrivalSource`] with no horizon). Nothing materialises the full
//! trace: memory is bounded by the channel depth. Drained batch buffers
//! flow back to the producer through a bounded recycle ring
//! ([`StreamSender::send_reusing`]), so steady-state streaming neither
//! allocates nor frees — `depth + 1` buffers circulate for the life of
//! the channel.
//!
//! ## Backpressure contract
//!
//! The channel holds at most `depth` slot batches. When the producer
//! outruns the switch, [`StreamSender::send`] **blocks** until the engine
//! consumes a batch — a stall, counted once per blocking send and readable
//! via [`StreamingSource::stalls`]. Nothing is ever dropped, and the
//! sequence of batches crossing the channel is independent of timing, so
//! a streamed run's transcript does not depend on the channel depth or on
//! how often the producer stalled. Stall counters are diagnostics only:
//! they never enter reports or snapshots.
//!
//! ## Cursor and restore
//!
//! The consumer cursor is `(next slot, packets consumed)`. At a checkpoint
//! boundary it is a pure function of the snapshot — the checkpoint slot
//! and the arrived-packet count — so snapshots need no extra streaming
//! state: [`crate::EngineSnapshot::stream_cursor`] recovers it, and
//! [`channel_at`] opens a resumed channel whose producer must re-feed the
//! stream from exactly that point (enforced: batch slots are checked
//! against the cursor, and the replay adapters verify the skipped prefix
//! matches the consumed count).
//!
//! ## Shutdown
//!
//! Dropping the last [`StreamSender`] closes the stream: the engine's
//! arrival window ends, and the run drains in-flight fabric and queue
//! state exactly like a trace-fed run reaching its horizon. Dropping the
//! [`StreamingSource`] (consumer gone) unblocks and errors the producer,
//! so an aborted run cannot deadlock its feeder.

use crate::source::ArrivalSource;
use crate::state::SwitchView;
use crate::trace::{Trace, TraceReader};
use cioq_model::{Packet, SlotId};
use std::collections::VecDeque;
use std::io::BufRead;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Consumer position in a stream: the next slot to pull and how many
/// packets were consumed before it. At a checkpoint boundary this equals
/// `(snapshot slot, snapshot arrived count)` — see
/// [`crate::EngineSnapshot::stream_cursor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCursor {
    /// Next slot the consumer will pull.
    pub slot: SlotId,
    /// Packets consumed in slots before `slot` (equals the next packet id
    /// for trace-numbered streams).
    pub consumed: u64,
}

impl StreamCursor {
    /// Cursor at the beginning of a stream.
    pub fn start() -> Self {
        StreamCursor {
            slot: 0,
            consumed: 0,
        }
    }
}

/// The producer observed a closed channel: the consumer was dropped
/// before the stream ended. Feeding can stop; nothing more will be read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamClosed;

impl std::fmt::Display for StreamClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream consumer hung up")
    }
}

impl std::error::Error for StreamClosed {}

struct ChannelState {
    /// Buffered `(slot, packets)` batches, slots strictly increasing.
    batches: VecDeque<(SlotId, Vec<Packet>)>,
    /// Lowest slot the producer may push next.
    next_push: SlotId,
    /// Producer dropped: no further batches will arrive.
    closed: bool,
    /// Consumer dropped: sends fail instead of blocking forever.
    receiver_gone: bool,
    /// Times a send found the buffer full and had to block. Diagnostic
    /// only — never serialized, never part of a report.
    stalls: u64,
    /// Emptied batch buffers returned by the consumer for the producer to
    /// refill ([`StreamSender::send_reusing`]): at most `depth + 1`
    /// buffers circulate, so a steady-state producer/consumer pair stops
    /// allocating once every buffer has grown to its high-water capacity.
    recycled: Vec<Vec<Packet>>,
}

struct Channel {
    state: Mutex<ChannelState>,
    /// Producer waits here for buffer space.
    space: Condvar,
    /// Consumer (and backpressure observers) wait here for batches,
    /// close, or a stall.
    data: Condvar,
    depth: usize,
}

impl Channel {
    fn lock(&self) -> MutexGuard<'_, ChannelState> {
        // A panicking holder leaves consistent state (all updates are
        // single assignments), so poisoning is not propagated.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Producer handle of a streaming channel. Push one batch per slot with
/// [`send`](Self::send); dropping the handle closes the stream.
pub struct StreamSender {
    chan: Arc<Channel>,
}

impl StreamSender {
    /// Push the arrivals of `slot`, in arrival order. Slots must be
    /// pushed in strictly increasing order; slots without arrivals may be
    /// skipped entirely (or sent with an empty batch, which only advances
    /// the producer cursor). Blocks while the channel holds `depth`
    /// batches — the backpressure stall. Returns [`StreamClosed`] if the
    /// consumer is gone.
    ///
    /// Panics if `slot` is below the producer cursor or a packet's
    /// arrival disagrees with `slot` — both are producer bugs that would
    /// desynchronise the stream from the slot clock.
    pub fn send(&self, slot: SlotId, mut packets: Vec<Packet>) -> Result<(), StreamClosed> {
        self.send_reusing(slot, &mut packets)
    }

    /// Like [`send`](Self::send), but the batch buffer stays with the
    /// caller: its contents move into the channel and it comes back empty
    /// — swapped, when one is available, for a buffer the consumer
    /// already drained (capacity included). A producer that refills the
    /// same buffer every slot therefore stops allocating once the ring's
    /// `depth + 1` buffers have grown to the largest batch seen: the
    /// steady-state streaming hot path is allocation-free.
    pub fn send_reusing(
        &self,
        slot: SlotId,
        packets: &mut Vec<Packet>,
    ) -> Result<(), StreamClosed> {
        let mut st = self.chan.lock();
        assert!(
            slot >= st.next_push,
            "invariant violated: stream producer pushed slot {slot} after slot {}",
            st.next_push
        );
        for p in packets.iter() {
            assert!(
                p.arrival == slot,
                "invariant violated: packet {} arrives at slot {} but was pushed in slot {slot}",
                p.id.0,
                p.arrival
            );
        }
        let mut counted = false;
        while st.batches.len() >= self.chan.depth && !st.receiver_gone {
            if !counted {
                st.stalls += 1;
                counted = true;
                self.chan.data.notify_all();
            }
            st = self.chan.space.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.receiver_gone {
            return Err(StreamClosed);
        }
        st.next_push = slot + 1;
        if !packets.is_empty() {
            let replacement = st.recycled.pop().unwrap_or_default();
            st.batches
                .push_back((slot, std::mem::replace(packets, replacement)));
            self.chan.data.notify_all();
        }
        Ok(())
    }

    /// Backpressure stalls so far (sends that found the buffer full).
    pub fn stalls(&self) -> u64 {
        self.chan.lock().stalls
    }
}

impl Drop for StreamSender {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.closed = true;
        self.chan.data.notify_all();
    }
}

/// Consumer half of a streaming channel: an [`ArrivalSource`] with no
/// horizon that pulls each slot's batch as the engine reaches it,
/// blocking (inside [`ArrivalSource::in_arrival_window`]) until the
/// producer either supplies a batch or closes the stream.
pub struct StreamingSource {
    // snapshot: derived — the channel holds only in-flight batches; a
    // snapshot: restored run reopens a fresh channel via `channel_at`.
    chan: Arc<Channel>,
    // snapshot: derived — equals `EngineSnapshot::slot()` at a checkpoint
    // snapshot: boundary (checkpoints fire before the arrival phase).
    next_slot: SlotId,
    // snapshot: derived — equals the snapshot's arrived-packet count; see
    // snapshot: `EngineSnapshot::stream_cursor`.
    consumed: u64,
}

impl StreamingSource {
    /// Pull the arrivals of `slot` into `out`, blocking until the
    /// producer has caught up to `slot` or closed the stream. Slots must
    /// be consumed in order from the cursor — a gap would silently lose
    /// arrivals, so it is a hard invariant.
    pub fn pull(&mut self, slot: SlotId, out: &mut Vec<Packet>) {
        assert!(
            slot == self.next_slot,
            "invariant violated: streaming source consumed out of order \
             (asked for slot {slot}, cursor sits at slot {})",
            self.next_slot
        );
        let mut st = self.chan.lock();
        loop {
            match st.batches.front() {
                Some(&(s, _)) if s <= slot => {
                    assert!(
                        s == slot,
                        "invariant violated: batch for slot {s} stranded below the cursor"
                    );
                    let (_, mut packets) = st.batches.pop_front().expect("front just matched");
                    self.chan.space.notify_all();
                    self.consumed += packets.len() as u64;
                    out.append(&mut packets);
                    // Hand the emptied buffer back for `send_reusing`;
                    // the ring is bounded so a plain `send` producer
                    // cannot make it grow without limit.
                    if st.recycled.len() <= self.chan.depth {
                        st.recycled.push(packets);
                    }
                    drop(st);
                    break;
                }
                // The next buffered batch is for a later slot: this slot
                // has no arrivals.
                Some(_) => break,
                None if st.closed => break,
                None => st = self.chan.data.wait(st).unwrap_or_else(|e| e.into_inner()),
            }
        }
        self.next_slot = slot + 1;
    }

    /// The consumer cursor: next slot to pull and packets consumed.
    pub fn cursor(&self) -> StreamCursor {
        StreamCursor {
            slot: self.next_slot,
            consumed: self.consumed,
        }
    }

    /// Packets consumed so far (the id the next trace-numbered packet
    /// would carry).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Backpressure stalls so far (sends that found the buffer full).
    pub fn stalls(&self) -> u64 {
        self.chan.lock().stalls
    }

    /// Block until the producer has stalled on backpressure at least
    /// once (or closed the stream). Lets a harness prove deterministically
    /// that the bounded buffer actually engaged, without sampling races.
    pub fn wait_backpressure(&self) {
        let mut st = self.chan.lock();
        while st.stalls == 0 && !st.closed {
            st = self.chan.data.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for StreamingSource {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.receiver_gone = true;
        // Unblock a producer stuck in `send` so an aborted run cannot
        // deadlock its feeder thread.
        self.chan.space.notify_all();
    }
}

impl ArrivalSource for StreamingSource {
    fn arrivals(&mut self, _view: &SwitchView<'_>, slot: SlotId, out: &mut Vec<Packet>) {
        self.pull(slot, out);
    }

    fn in_arrival_window(&mut self, _slot: SlotId) -> bool {
        let mut st = self.chan.lock();
        loop {
            // Any buffered batch is at a slot ≥ the cursor, so the window
            // is still open; an empty closed channel ends it.
            if !st.batches.is_empty() {
                return true;
            }
            if st.closed {
                return false;
            }
            st = self.chan.data.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Open a streaming channel buffering at most `depth` slot batches.
pub fn channel(depth: usize) -> (StreamSender, StreamingSource) {
    channel_at(depth, StreamCursor::start())
}

/// Open a streaming channel resumed at `cursor`: the consumer pulls from
/// `cursor.slot`, and the producer must push slots from there on. Used
/// to re-attach a stream to an engine restored from a checkpoint taken
/// at that cursor (see [`crate::EngineSnapshot::stream_cursor`]).
pub fn channel_at(depth: usize, cursor: StreamCursor) -> (StreamSender, StreamingSource) {
    assert!(depth >= 1, "stream channel depth must be >= 1");
    let chan = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            batches: VecDeque::with_capacity(depth),
            next_push: cursor.slot,
            closed: false,
            receiver_gone: false,
            stalls: 0,
            recycled: Vec::with_capacity(depth + 1),
        }),
        space: Condvar::new(),
        data: Condvar::new(),
        depth,
    });
    (
        StreamSender { chan: chan.clone() },
        StreamingSource {
            chan,
            next_slot: cursor.slot,
            consumed: cursor.consumed,
        },
    )
}

/// A running producer thread. [`join`](Self::join) it after the run: a
/// panic on the producer side (bad replay file, cursor mismatch) is
/// re-raised there instead of being lost.
pub struct StreamPump {
    handle: JoinHandle<()>,
}

impl StreamPump {
    /// Wait for the producer to finish, re-raising its panic if it died.
    pub fn join(self) {
        if let Err(panic) = self.handle.join() {
            std::panic::resume_unwind(panic);
        }
    }
}

/// Spawn a producer thread running `feed` over `sender`. The sender is
/// dropped — closing the stream — when `feed` returns or panics.
pub fn spawn_producer<F>(sender: StreamSender, feed: F) -> StreamPump
where
    F: FnOnce(StreamSender) + Send + 'static,
{
    StreamPump {
        handle: std::thread::spawn(move || feed(sender)),
    }
}

/// Stream a pre-recorded trace: a convenience producer for parity tests
/// and replay (it clones the trace tail up front — true streaming uses
/// [`stream_reader`] or a slot generator).
pub fn stream_trace(trace: &Trace, depth: usize) -> (StreamingSource, StreamPump) {
    stream_trace_from(trace, depth, StreamCursor::start())
}

/// Stream a trace from `cursor` onward, as when resuming from a
/// checkpoint. Panics if the trace's prefix before `cursor.slot` does not
/// hold exactly `cursor.consumed` packets — the stream being re-fed would
/// not be the one the checkpoint was taken on.
pub fn stream_trace_from(
    trace: &Trace,
    depth: usize,
    cursor: StreamCursor,
) -> (StreamingSource, StreamPump) {
    let skip = trace.packets().partition_point(|p| p.arrival < cursor.slot);
    assert!(
        skip as u64 == cursor.consumed,
        "stream cursor does not match this trace: {skip} packets arrive before slot {} \
         but the checkpoint consumed {}",
        cursor.slot,
        cursor.consumed
    );
    let tail: Vec<Packet> = trace.packets()[skip..].to_vec();
    let (tx, src) = channel_at(depth, cursor);
    let pump = spawn_producer(tx, move |tx| {
        let mut i = 0;
        let mut batch: Vec<Packet> = Vec::new();
        while i < tail.len() {
            let slot = tail[i].arrival;
            while i < tail.len() && tail[i].arrival == slot {
                batch.push(tail[i]);
                i += 1;
            }
            if tx.send_reusing(slot, &mut batch).is_err() {
                return;
            }
        }
    });
    (src, pump)
}

/// Stream a `cioq-trace v1` replay file without materialising it: the
/// producer thread reads, parses and pushes one slot batch at a time.
/// Returns an error if the header is malformed; a malformed body panics
/// the producer (re-raised at [`StreamPump::join`]) after closing the
/// stream, so the consumer still drains instead of deadlocking.
pub fn stream_reader<R>(
    reader: R,
    depth: usize,
) -> Result<(StreamingSource, StreamPump), crate::trace::TraceError>
where
    R: BufRead + Send + 'static,
{
    stream_reader_from(reader, depth, StreamCursor::start())
}

/// Stream a replay file from `cursor` onward. The prefix before
/// `cursor.slot` is parsed and discarded; the producer panics if its
/// packet count disagrees with `cursor.consumed`.
pub fn stream_reader_from<R>(
    reader: R,
    depth: usize,
    cursor: StreamCursor,
) -> Result<(StreamingSource, StreamPump), crate::trace::TraceError>
where
    R: BufRead + Send + 'static,
{
    let mut rd = TraceReader::new(reader)?;
    let (tx, src) = channel_at(depth, cursor);
    let pump = spawn_producer(tx, move |tx| {
        let mut next = || {
            rd.next_packet()
                .unwrap_or_else(|e| panic!("replay stream: {e}"))
        };
        let mut skipped: u64 = 0;
        let mut pending = loop {
            match next() {
                Some(p) if p.arrival < cursor.slot => skipped += 1,
                other => break other,
            }
        };
        assert!(
            skipped == cursor.consumed,
            "stream cursor does not match this replay file: {skipped} packets arrive \
             before slot {} but the checkpoint consumed {}",
            cursor.slot,
            cursor.consumed
        );
        let mut batch: Vec<Packet> = Vec::new();
        while let Some(first) = pending {
            let slot = first.arrival;
            batch.push(first);
            pending = loop {
                match next() {
                    Some(p) if p.arrival == slot => batch.push(p),
                    other => break other,
                }
            };
            if tx.send_reusing(slot, &mut batch).is_err() {
                return;
            }
        }
    });
    Ok((src, pump))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::{PacketId, PortId};

    fn pkt(id: u64, slot: SlotId) -> Packet {
        Packet::new(PacketId(id), 1, slot, PortId(0), PortId(0))
    }

    #[test]
    fn batches_cross_in_order_and_close_ends_window() {
        let (tx, mut rx) = channel(4);
        tx.send(0, vec![pkt(0, 0), pkt(1, 0)]).unwrap();
        tx.send(2, vec![pkt(2, 2)]).unwrap();
        drop(tx);

        let mut out = Vec::new();
        assert!(rx.in_arrival_window(0));
        rx.pull(0, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        rx.pull(1, &mut out);
        assert!(out.is_empty(), "slot 1 was skipped by the producer");
        rx.pull(2, &mut out);
        assert_eq!(out.len(), 1);
        assert!(!rx.in_arrival_window(3), "closed and drained");
        assert_eq!(
            rx.cursor(),
            StreamCursor {
                slot: 3,
                consumed: 3
            }
        );
    }

    #[test]
    fn backpressure_blocks_producer_and_counts_one_stall() {
        let (tx, mut rx) = channel(1);
        tx.send(0, vec![pkt(0, 0)]).unwrap();
        let pump = spawn_producer(tx, |tx| {
            // Buffer is full: this send must stall until the consumer
            // pulls slot 0.
            tx.send(1, vec![pkt(1, 1)]).unwrap();
        });
        rx.wait_backpressure();
        assert_eq!(rx.stalls(), 1);
        let mut out = Vec::new();
        rx.pull(0, &mut out);
        rx.pull(1, &mut out);
        assert_eq!(out.len(), 2);
        pump.join();
        assert_eq!(rx.stalls(), 1, "a blocking send stalls once, not per retry");
    }

    #[test]
    fn send_reusing_recycles_drained_buffers() {
        let (tx, mut rx) = channel(2);
        let mut batch = Vec::with_capacity(64);
        batch.push(pkt(0, 0));
        tx.send_reusing(0, &mut batch).unwrap();
        assert!(batch.is_empty(), "contents moved into the channel");
        let mut out = Vec::new();
        rx.pull(0, &mut out);
        assert_eq!(out.len(), 1);
        // The drained 64-capacity buffer is back in the ring: the next
        // reusing send must swap it out instead of allocating.
        batch.push(pkt(1, 1));
        tx.send_reusing(1, &mut batch).unwrap();
        assert!(
            batch.capacity() >= 64,
            "producer got the consumer's drained buffer back (capacity {})",
            batch.capacity()
        );
        rx.pull(1, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn recycle_ring_stays_bounded_under_plain_send() {
        // `send` never takes from the ring, so the consumer must cap it
        // rather than let every drained batch pile up.
        let (tx, mut rx) = channel(1);
        let mut out = Vec::new();
        for slot in 0..16 {
            tx.send(slot, vec![pkt(slot, slot)]).unwrap();
            out.clear();
            rx.pull(slot, &mut out);
            assert_eq!(out.len(), 1);
        }
        assert!(
            rx.chan.lock().recycled.len() <= 2,
            "ring must stay within depth + 1 buffers"
        );
    }

    #[test]
    fn dropped_consumer_errors_the_producer() {
        let (tx, rx) = channel(1);
        tx.send(0, vec![pkt(0, 0)]).unwrap();
        drop(rx);
        assert_eq!(tx.send(1, vec![pkt(1, 1)]), Err(StreamClosed));
    }

    #[test]
    #[should_panic(expected = "consumed out of order")]
    fn pull_rejects_slot_gaps() {
        let (_tx, mut rx) = channel(1);
        rx.pull(3, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "pushed slot")]
    fn send_rejects_backwards_slots() {
        let (tx, _rx) = channel(4);
        tx.send(5, vec![]).unwrap();
        let _ = tx.send(4, vec![]);
    }

    #[test]
    #[should_panic(expected = "was pushed in slot")]
    fn send_rejects_mislabelled_packets() {
        let (tx, _rx) = channel(4);
        let _ = tx.send(1, vec![pkt(0, 0)]);
    }

    #[test]
    fn trace_pump_reproduces_the_trace() {
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(1), 5),
            (0, PortId(1), PortId(0), 3),
            (3, PortId(0), PortId(0), 4),
        ]);
        let (mut rx, pump) = stream_trace(&trace, 1);
        let mut got = Vec::new();
        for slot in 0..4 {
            rx.pull(slot, &mut got);
        }
        pump.join();
        assert_eq!(got, trace.packets());
    }

    #[test]
    fn trace_pump_resumes_mid_stream() {
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(1), 5),
            (1, PortId(1), PortId(0), 3),
            (3, PortId(0), PortId(0), 4),
        ]);
        let cursor = StreamCursor {
            slot: 2,
            consumed: 2,
        };
        let (mut rx, pump) = stream_trace_from(&trace, 2, cursor);
        let mut got = Vec::new();
        rx.pull(2, &mut got);
        assert!(got.is_empty());
        rx.pull(3, &mut got);
        pump.join();
        assert_eq!(got, &trace.packets()[2..]);
        assert_eq!(rx.consumed(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match this trace")]
    fn trace_pump_rejects_a_wrong_cursor() {
        let trace = Trace::from_tuples([(0, PortId(0), PortId(0), 1)]);
        stream_trace_from(
            &trace,
            1,
            StreamCursor {
                slot: 1,
                consumed: 7,
            },
        );
    }

    #[test]
    fn reader_pump_streams_a_replay_file() {
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(1), 5),
            (2, PortId(1), PortId(0), 3),
            (2, PortId(0), PortId(0), 4),
        ]);
        let mut file = Vec::new();
        trace.write_to(&mut file).unwrap();
        let (mut rx, pump) = stream_reader(std::io::Cursor::new(file), 1).unwrap();
        let mut got = Vec::new();
        for slot in 0..3 {
            rx.pull(slot, &mut got);
        }
        pump.join();
        assert_eq!(got, trace.packets());
    }

    #[test]
    fn reader_pump_resumes_mid_file() {
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(1), 5),
            (1, PortId(1), PortId(0), 3),
            (4, PortId(0), PortId(0), 4),
        ]);
        let mut file = Vec::new();
        trace.write_to(&mut file).unwrap();
        let cursor = StreamCursor {
            slot: 3,
            consumed: 2,
        };
        let (mut rx, pump) = stream_reader_from(std::io::Cursor::new(file), 2, cursor).unwrap();
        let mut got = Vec::new();
        rx.pull(3, &mut got);
        rx.pull(4, &mut got);
        pump.join();
        assert_eq!(got, &trace.packets()[2..]);
    }

    #[test]
    fn reader_pump_rejects_a_bad_header() {
        assert!(stream_reader(std::io::Cursor::new(b"garbage\n".to_vec()), 1).is_err());
    }
}
