//! Sharded slot engine: the N ports split into K contiguous shards, each
//! shard running its share of every phase — on std scoped threads when the
//! host has the cores for it, inline otherwise — with cross-shard traffic
//! batched per cycle and reconciled deterministically.
//!
//! ## Ownership model
//!
//! Shard `s` owns a contiguous band of input rows and a contiguous band of
//! output columns (see [`Partition`]). Every queue has exactly one owning
//! shard and **all mutation goes through the owner**:
//!
//! * `Q_ij` (VOQs) and `C_ij` (crossbar queues) belong to the owner of input
//!   row `i` — arrivals insert there, scheduling pops there.
//! * `Q_j` (output queues) belong to the owner of output column `j` —
//!   fabric transfers insert there, transmission pops there.
//!
//! A transfer whose input row and output column live on different shards is
//! *cross-shard*: the row owner pops the packet and posts it to the column
//! owner's per-cycle mailbox; the column owner drains its mailbox in the
//! next sub-phase. Crossbar mutations are likewise forwarded as dirty-cell
//! marks to the column owner, whose incremental column caches consume them —
//! the engine-level [`ChangeLog`] discipline of the sequential engine,
//! stretched across shards.
//!
//! ## Bit-identity
//!
//! The sharded engine is **bit-identical** to the sequential [`Engine`]
//! (`tests/sharded_equivalence.rs` proves it per cycle): every phase runs
//! between barriers, so shards only ever read frozen state; per-shard
//! proposals are combined by a *deterministic merge* that resolves contended
//! crosspoints in fixed port order (ascending input for GM-style lexicographic
//! greedy, `(weight desc, cell asc)` for PG-style weighted greedy); and all
//! cross-shard batches are either per-queue unique within a cycle or
//! idempotent (dirty marks), so apply order cannot influence the result.
//! Thread scheduling therefore never changes a single decision — only how
//! long the slot takes.
//!
//! [`Engine`]: crate::engine::Engine

use crate::changes::ChangeLog;
use crate::engine::take_pick;
use crate::policy::{Admission, InputTransfer, OutputTransfer, PacketPick, PolicyError, Transfer};
use crate::record::{RecordedCrossbarSchedule, RecordedSchedule};
use crate::snapshot::{EngineSnapshot, SnapLanding};
use crate::state::SwitchState;
use crate::stats::{RunReport, StatsRecorder};
use crate::stream::StreamingSource;
use crate::sync::SpinBarrier;
use crate::trace::Trace;
use crate::transport::{FabricLink, FabricSpec};
use crate::validate::check_state_invariants;
use cioq_model::{Cycle, Packet, PortId, SlotId, SwitchConfig, Value};
use cioq_queues::{RowBand, SortedQueue};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard};

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

/// Contiguous assignment of the N input rows and M output columns to K
/// shards: shard `s` owns rows `⌊sN/K⌋ .. ⌊(s+1)N/K⌋` and columns likewise.
#[derive(Debug, Clone)]
pub struct Partition {
    k: usize,
    n_inputs: usize,
    n_outputs: usize,
    input_owner: Vec<u16>,
    output_owner: Vec<u16>,
}

impl Partition {
    /// Partition an `n_inputs × n_outputs` switch into `k ≥ 1` shards.
    pub fn new(k: usize, n_inputs: usize, n_outputs: usize) -> Self {
        assert!(k >= 1, "need at least one shard");
        assert!(k <= u16::MAX as usize, "shard count exceeds u16");
        let owners = |n: usize| {
            let mut owner = vec![0u16; n];
            for s in 0..k {
                for o in owner.iter_mut().take((s + 1) * n / k).skip(s * n / k) {
                    *o = s as u16;
                }
            }
            owner
        };
        Partition {
            k,
            n_inputs,
            n_outputs,
            input_owner: owners(n_inputs),
            output_owner: owners(n_outputs),
        }
    }

    /// Number of shards K.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Global input rows owned by shard `s`.
    #[inline]
    pub fn input_range(&self, s: usize) -> Range<usize> {
        (s * self.n_inputs / self.k)..((s + 1) * self.n_inputs / self.k)
    }

    /// Global output columns owned by shard `s`.
    #[inline]
    pub fn output_range(&self, s: usize) -> Range<usize> {
        (s * self.n_outputs / self.k)..((s + 1) * self.n_outputs / self.k)
    }

    /// Owner shard of input row `i`.
    #[inline]
    pub fn input_owner(&self, i: usize) -> usize {
        self.input_owner[i] as usize
    }

    /// Owner shard of output column `j`.
    #[inline]
    pub fn output_owner(&self, j: usize) -> usize {
        self.output_owner[j] as usize
    }
}

// ---------------------------------------------------------------------------
// Options and outcome
// ---------------------------------------------------------------------------

/// How the shards execute within a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Threads when `K > 1` and the host reports more than one core,
    /// inline otherwise.
    #[default]
    Auto,
    /// Run every shard's phase work on the calling thread, in shard order.
    /// Zero synchronisation cost; the right choice on single-core hosts.
    Inline,
    /// One std scoped thread per shard, phase-stepped by barriers. The
    /// results are identical to [`ExecMode::Inline`] by construction.
    Threads,
}

/// Options for a sharded run (the sharded analogue of
/// [`RunOptions`](crate::engine::RunOptions)).
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Number of shards K ≥ 1.
    pub shards: usize,
    /// Execution strategy.
    pub mode: ExecMode,
    /// Arrival slots to simulate; defaults to the trace horizon.
    pub slots: Option<SlotId>,
    /// Keep running arrival-free slots until drained (as the sequential
    /// engine does by default).
    pub drain: bool,
    /// Check full structural invariants on an assembled global state after
    /// every slot (slow; meant for tests).
    pub validate: bool,
    /// Record the full decision transcript (admissions + per-cycle
    /// transfer sets) for equivalence checking.
    pub record: bool,
    /// Assemble and return the final global [`SwitchState`].
    pub capture_final_state: bool,
    /// Resolved fabric transport: per-pair latencies (the default, uniform
    /// 0, is the same-cycle fabric). Every positive-latency fabric
    /// transfer — cross-shard *and* same-shard, so results are
    /// partition-independent — rides a per-(dest, src) ring of slot-buckets
    /// and lands `delay(src, dst)` slots after dispatch; latency-0 pairs
    /// take the mailbox path within the cycle. Set via
    /// [`ShardedOptions::link`].
    pub fabric: FabricSpec,
    /// Take an [`EngineSnapshot`] at the top of every slot `k` with
    /// `k > 0 && k % n == 0` (before that slot's landings and arrivals),
    /// byte-compatible with the sequential engine's checkpoints of the
    /// same run. Collected into [`ShardedOutcome::checkpoints`].
    pub checkpoint_every: Option<SlotId>,
    /// Resume from a checkpoint instead of a fresh switch: queue
    /// contents, in-flight fabric packets and cumulative statistics are
    /// seeded from the snapshot and the run continues at its slot,
    /// byte-identical to the uninterrupted run on the same trace. The
    /// snapshot may come from a sequential or a sharded run (their
    /// checkpoints are byte-compatible); it must match the run's config
    /// and [`ShardedOptions::fabric`], and must carry no fault-held
    /// packets or stats window — the sharded engine has no fault layer
    /// and keeps full history. Violations panic loudly.
    pub resume_from: Option<EngineSnapshot>,
}

impl ShardedOptions {
    /// Default options for `k` shards: auto execution, drain on, no
    /// validation or capture, immediate fabric.
    pub fn new(k: usize) -> Self {
        ShardedOptions {
            shards: k,
            mode: ExecMode::Auto,
            slots: None,
            drain: true,
            validate: false,
            record: false,
            capture_final_state: false,
            fabric: FabricSpec::default(),
            checkpoint_every: None,
            resume_from: None,
        }
    }

    /// Use the given fabric transport (see [`crate::transport`]).
    pub fn link(mut self, link: &dyn FabricLink) -> Self {
        self.fabric = link.spec();
        self
    }

    fn use_threads(&self) -> bool {
        match self.mode {
            ExecMode::Inline => false,
            ExecMode::Threads => true,
            ExecMode::Auto => {
                self.shards > 1
                    && std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        > 1
            }
        }
    }
}

/// Everything a sharded run produces.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// The merged run report — field-for-field equal to the sequential
    /// engine's on the same input.
    pub report: RunReport,
    /// CIOQ decision transcript, when recording was requested.
    pub schedule: Option<RecordedSchedule>,
    /// Crossbar decision transcript, when recording was requested.
    pub crossbar_schedule: Option<RecordedCrossbarSchedule>,
    /// Final global switch state, when capture was requested.
    pub final_state: Option<SwitchState>,
    /// Snapshots taken at every `checkpoint_every` boundary, in slot
    /// order — byte-compatible with the sequential engine's.
    pub checkpoints: Vec<EngineSnapshot>,
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

/// Read-only view of one shard's own slice, handed to workers for
/// admission and for shard-local proposal steps (CIOQ proposals and the
/// crossbar input subphase read nothing outside the shard's own rows, so
/// they get this one-lock view instead of a whole-fabric view).
pub struct ShardView<'a> {
    cfg: &'a SwitchConfig,
    partition: &'a Partition,
    shard: usize,
    state: &'a ShardState,
}

impl<'a> ShardView<'a> {
    /// The switch configuration.
    #[inline]
    pub fn config(&self) -> &'a SwitchConfig {
        self.cfg
    }

    /// The partition in force.
    #[inline]
    pub fn partition(&self) -> &'a Partition {
        self.partition
    }

    /// This shard's index.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of output ports `M`.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.cfg.n_outputs
    }

    /// Global input rows this shard owns.
    #[inline]
    pub fn input_range(&self) -> Range<usize> {
        self.partition.input_range(self.shard)
    }

    /// Input queue `Q_ij` (must be an owned row).
    #[inline]
    pub fn input_queue(&self, input: PortId, output: PortId) -> &'a SortedQueue {
        self.state.voq.at_global(input.index(), output.index())
    }

    /// Crossbar queue `C_ij` (must be an owned row); panics on CIOQ.
    #[inline]
    pub fn crossbar_queue(&self, input: PortId, output: PortId) -> &'a SortedQueue {
        self.state
            .xbar
            .as_ref()
            .expect("crossbar queue requested on a CIOQ switch")
            .at_global(input.index(), output.index())
    }

    /// This shard's change log. VOQ/crossbar cells are **shard-local**
    /// (`(i − in_lo)·M + j`); output indices are global `j`.
    #[inline]
    pub fn changes(&self) -> &'a ChangeLog {
        &self.state.changes
    }
}

/// Read-only view over **every** shard's queues, alive only between
/// barriers while no shard mutates. Proposal and merge steps read through
/// it; global indices throughout.
pub struct FabricView<'a> {
    cfg: &'a SwitchConfig,
    partition: &'a Partition,
    /// Borrowed read guards, one per shard in shard order — a slice into
    /// the worker's pooled guard buffer, so building a view per cycle
    /// costs no allocation.
    shards: &'a [RwLockReadGuard<'a, ShardState>],
    slot: SlotId,
}

impl<'a> FabricView<'a> {
    /// The switch configuration.
    #[inline]
    pub fn config(&self) -> &'a SwitchConfig {
        self.cfg
    }

    /// The partition in force.
    #[inline]
    pub fn partition(&self) -> &'a Partition {
        self.partition
    }

    /// Number of input ports.
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.cfg.n_inputs
    }

    /// Number of output ports.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.cfg.n_outputs
    }

    /// Current slot.
    #[inline]
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// Input queue `Q_ij` (any row).
    #[inline]
    pub fn input_queue(&self, input: usize, output: usize) -> &'a SortedQueue {
        self.shards[self.partition.input_owner(input)]
            .voq
            .at_global(input, output)
    }

    /// Crossbar queue `C_ij` (any row); panics on a CIOQ config.
    #[inline]
    pub fn crossbar_queue(&self, input: usize, output: usize) -> &'a SortedQueue {
        self.shards[self.partition.input_owner(input)]
            .xbar
            .as_ref()
            .expect("crossbar queue requested on a CIOQ switch")
            .at_global(input, output)
    }

    /// Output queue `Q_j` (any column).
    #[inline]
    pub fn output_queue(&self, output: usize) -> &'a SortedQueue {
        let shard: &'a ShardState = &self.shards[self.partition.output_owner(output)];
        &shard.outputs[output - shard.out_lo]
    }

    /// The change log of shard `s` — VOQ/crossbar cells in shard-local
    /// indexing (`(i − in_lo)·M + j`), flushed once per scheduling call
    /// exactly like the sequential engine's log.
    #[inline]
    pub fn changes(&self, shard: usize) -> &'a ChangeLog {
        &self.shards[shard].changes
    }
}

/// Per-cycle snapshot of the output side, computed once before each
/// proposal step: `full[j]` is the *virtual* fullness (landed occupancy
/// plus packets in flight through the fabric) and `tail[j]` the least value
/// of the virtual queue where full (0 otherwise). On an immediate fabric
/// this degenerates to `|Q_j| = B(Q_j)` / `v(l_j)` — exactly the
/// output-eligibility inputs the sequential policies refresh at the top of
/// every scheduling call.
#[derive(Debug, Default)]
pub struct OutputSnapshot {
    /// Whether the virtual queue at `j` is full.
    pub full: Vec<bool>,
    /// Least virtual-queue value where full, 0 otherwise.
    pub tail: Vec<Value>,
    /// `full` as a packed bitmap (`full_words[j/64]` bit `j%64`), for
    /// word-level merge arithmetic.
    pub full_words: Vec<u64>,
    /// Packets in flight toward each output (all zero when immediate).
    pub in_flight: Vec<u32>,
    /// Least value in flight toward each output; meaningful only where
    /// `in_flight[j] > 0`.
    pub in_flight_min: Vec<Value>,
}

// ---------------------------------------------------------------------------
// Policy traits
// ---------------------------------------------------------------------------

/// One candidate fabric transfer proposed by a shard: global ports plus the
/// head value (the weight the merge orders by, 0 for unit policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Global input port `i`.
    pub input: u16,
    /// Global output port `j`.
    pub output: u16,
    /// `v(g_ij)` at proposal time (merge-visit weight).
    pub weight: Value,
}

/// A shard's per-cycle proposal payload: an explicit candidate list, a
/// policy-defined auxiliary word array, or both. GM publishes its rows'
/// edge bitmaps through `aux` (one `n_outputs.div_ceil(64)`-word bitmap per
/// owned row, ascending) so the merge can run the lexicographic greedy as
/// word arithmetic; PG publishes its ordered candidate list through `list`.
#[derive(Debug, Default)]
pub struct CandidateSet {
    /// Ordered candidates (policy-defined order).
    pub list: Vec<Candidate>,
    /// Ordered `(weight, shard-local flat cell)` pairs — lets a policy
    /// bulk-copy a cached visit order (PG publishes its full repaired
    /// descending-weight order this way on a resync cycle).
    pub pairs: Vec<(Value, u32)>,
    /// Auxiliary packed words (policy-defined layout).
    pub aux: Vec<u64>,
    /// Delta-publish handshake (weighted policies): the sequence number of
    /// this publish. `0` means `pairs` holds the full order (first cycle or
    /// resync); `seq ≥ 1` means `removed` / `refreshed` hold an edit script
    /// against publish `seq − 1`, applied to the coordinator's
    /// [`OrderMirror`].
    pub seq: u64,
    /// Delta publish: shard-local cells whose old entries must be dropped.
    pub removed: Vec<u32>,
    /// Delta publish: refreshed `(weight, cell)` entries, sorted in
    /// `(weight desc, cell asc)` order, to merge back in.
    pub refreshed: Vec<(Value, u32)>,
}

impl CandidateSet {
    fn clear(&mut self) {
        self.list.clear();
        self.pairs.clear();
        self.aux.clear();
        self.seq = 0;
        self.removed.clear();
        self.refreshed.clear();
    }
}

/// Coordinator-side mirror of one shard's published `(weight, cell)` visit
/// order, kept in sync by the per-cycle delta publishes of
/// [`CandidateSet::removed`] / [`CandidateSet::refreshed`]. Lives in
/// [`MergeScratch`], so its lifetime is one run — a fresh run's workers
/// publish `seq = 0` and rebuild it.
#[derive(Debug, Default)]
pub struct OrderMirror {
    /// The mirrored entries in `(weight desc, cell asc)` order — equal to
    /// the worker's `CachedWeightOrder::entries()` after every publish.
    pub entries: Vec<(Value, u32)>,
    /// The publish sequence number expected next (0 = full publish).
    pub expect_seq: u64,
    marked: Vec<bool>,
    merged: Vec<(Value, u32)>,
}

impl OrderMirror {
    /// Pre-reserve for a shard whose order covers at most `cells` VOQ
    /// cells: entries are unique cells, a merge result is again unique
    /// cells, and `marked` indexes by cell — so a mirror reserved here
    /// never grows during the run, however deep the backlog gets.
    pub fn reserve(&mut self, cells: usize) {
        self.entries.reserve(cells);
        self.merged.reserve(cells);
        self.marked.reserve(cells);
    }

    /// Replace the mirror with a full publish.
    pub fn reset_from(&mut self, full: &[(Value, u32)]) {
        self.entries.clear();
        self.entries.extend_from_slice(full);
    }

    /// Apply a delta publish: drop every entry whose cell appears in
    /// `removed`, then merge the re-sorted `refreshed` entries back in —
    /// the exact repair `CachedWeightOrder::repair` performed worker-side,
    /// replayed on the mirror in O(E + k).
    pub fn apply(&mut self, removed: &[u32], refreshed: &[(Value, u32)]) {
        if removed.is_empty() && refreshed.is_empty() {
            return;
        }
        let need = removed.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        if self.marked.len() < need {
            self.marked.resize(need, false);
        }
        for &c in removed {
            self.marked[c as usize] = true;
        }
        self.merged.clear();
        let mut pending = refreshed.iter().copied().peekable();
        for &entry in &self.entries {
            if (entry.1 as usize) < self.marked.len() && self.marked[entry.1 as usize] {
                continue;
            }
            while let Some(&p) = pending.peek() {
                if p.0 > entry.0 || (p.0 == entry.0 && p.1 < entry.1) {
                    self.merged.push(p);
                    pending.next();
                } else {
                    break;
                }
            }
            self.merged.push(entry);
        }
        self.merged.extend(pending);
        std::mem::swap(&mut self.entries, &mut self.merged);
        for &c in removed {
            self.marked[c as usize] = false;
        }
    }
}

/// Generation-stamped used-port masks for the merge step — O(1) reset per
/// cycle, no per-cycle allocation — plus a reusable word buffer for
/// bitmap-based merges.
#[derive(Debug, Default)]
pub struct MergeScratch {
    stamp: u64,
    input_stamp: Vec<u64>,
    output_stamp: Vec<u64>,
    words: Vec<u64>,
    /// Per-shard mirrored publish streams for delta-publishing policies
    /// (PG) — empty until the policy's merge first uses them.
    pub mirrors: Vec<OrderMirror>,
    /// Pooled per-shard stream cursors for K-way merges, so a merge never
    /// allocates a fresh cursor vector per cycle.
    pub heads: Vec<usize>,
}

impl MergeScratch {
    /// Start a new merge over `n` inputs and `m` outputs.
    pub fn begin(&mut self, n: usize, m: usize) {
        if self.input_stamp.len() < n {
            self.input_stamp.resize(n, 0);
        }
        if self.output_stamp.len() < m {
            self.output_stamp.resize(m, 0);
        }
        self.stamp += 1;
    }

    /// Whether input `i` is already matched this cycle.
    #[inline]
    pub fn input_used(&self, i: usize) -> bool {
        self.input_stamp[i] == self.stamp
    }

    /// Whether output `j` is already matched this cycle.
    #[inline]
    pub fn output_used(&self, j: usize) -> bool {
        self.output_stamp[j] == self.stamp
    }

    /// Mark input `i` matched.
    #[inline]
    pub fn use_input(&mut self, i: usize) {
        self.input_stamp[i] = self.stamp;
    }

    /// Mark output `j` matched.
    #[inline]
    pub fn use_output(&mut self, j: usize) {
        self.output_stamp[j] = self.stamp;
    }

    /// Fill the reusable word buffer with `!full_words` (i.e. a bitmap of
    /// outputs that are free to receive) and return it; bitmap merges
    /// clear bits as they match outputs.
    pub fn free_output_mask(&mut self, full_words: &[u64]) -> &mut Vec<u64> {
        self.words.clear();
        self.words.extend(full_words.iter().map(|w| !w));
        &mut self.words
    }
}

/// Everything a CIOQ merge step consults: geometry, the pre-cycle output
/// snapshot, the cycle, and every shard's proposal payload (shard order =
/// ascending port ranges). Deliberately queue-free: merges work over
/// published payloads and the snapshot, so the merge step costs no locks
/// and no cache-missing queue reads.
pub struct MergeContext<'a> {
    /// The switch configuration.
    pub cfg: &'a SwitchConfig,
    /// The partition in force.
    pub partition: &'a Partition,
    /// Pre-cycle output fullness/tails.
    pub outputs: &'a OutputSnapshot,
    /// The cycle being scheduled.
    pub cycle: Cycle,
    /// Per-shard proposal payloads, in shard order.
    pub candidates: &'a [CandidateSet],
}

/// A CIOQ policy that can run sharded: a factory for per-shard workers plus
/// the deterministic merge combining their proposals into the global
/// matching.
pub trait CioqShardPolicy: Sync {
    /// Policy name (must match the sequential twin so reports compare
    /// equal).
    fn name(&self) -> &str;

    /// Create the worker for shard `shard`. Workers are created fresh for
    /// every run, so caches never need cross-run resync.
    fn new_worker(
        &self,
        shard: usize,
        partition: &Partition,
        cfg: &SwitchConfig,
    ) -> Box<dyn CioqShardWorker>;

    /// Deterministically combine per-shard candidates into the cycle's
    /// matching, resolving contended ports in fixed port order. Must append
    /// transfers in the exact order the sequential policy would.
    fn merge(&self, ctx: &MergeContext<'_>, scratch: &mut MergeScratch, out: &mut Vec<Transfer>);
}

/// The per-shard worker half of a [`CioqShardPolicy`].
pub trait CioqShardWorker: Send {
    /// Admission for a packet arriving on an owned row (row-local by
    /// construction: the view only exposes owned rows).
    fn admit(&mut self, shard: &ShardView<'_>, packet: &Packet) -> Admission;

    /// Propose this shard's candidates for the cycle. Shard-local by
    /// construction (one lock, no whole-fabric view): `shard.changes()`
    /// holds exactly the owned queues dirtied since the previous proposal,
    /// `outputs` is the pre-cycle output snapshot.
    fn propose(
        &mut self,
        shard: &ShardView<'_>,
        outputs: &OutputSnapshot,
        cycle: Cycle,
        out: &mut CandidateSet,
    );
}

/// A buffered-crossbar policy that can run sharded. Both subphases decide
/// per-port with no cross-port contention, so no merge is needed: the
/// engine concatenates per-shard proposals in shard order (= ascending port
/// order, matching the sequential policies' iteration order).
pub trait CrossbarShardPolicy: Sync {
    /// Policy name (must match the sequential twin).
    fn name(&self) -> &str;

    /// Create the worker for shard `shard`.
    fn new_worker(
        &self,
        shard: usize,
        partition: &Partition,
        cfg: &SwitchConfig,
    ) -> Box<dyn CrossbarShardWorker>;
}

/// The per-shard worker half of a [`CrossbarShardPolicy`].
pub trait CrossbarShardWorker: Send {
    /// Admission for a packet arriving on an owned row.
    fn admit(&mut self, shard: &ShardView<'_>, packet: &Packet) -> Admission;

    /// Input subphase: ≤ 1 transfer per owned input row. Shard-local by
    /// construction (row decisions read only owned rows).
    fn propose_input(&mut self, shard: &ShardView<'_>, cycle: Cycle, out: &mut Vec<InputTransfer>);

    /// Output subphase: ≤ 1 transfer per owned output column.
    /// `inbound_xbar` is the batch of global crossbar cells other shards
    /// dirtied in owned columns since this worker's previous output
    /// proposal — the cross-shard half of the change-log discipline.
    /// `outputs` is the pre-subphase output snapshot (virtual fullness and
    /// tails — the only legal way to read output occupancy, since a
    /// delayed fabric has committed packets the queues don't show yet).
    fn propose_output(
        &mut self,
        fabric: &FabricView<'_>,
        shard: usize,
        inbound_xbar: &[u32],
        outputs: &OutputSnapshot,
        cycle: Cycle,
        out: &mut Vec<OutputTransfer>,
    );
}

// ---------------------------------------------------------------------------
// Internal shared state
// ---------------------------------------------------------------------------

/// One shard's owned slice of the switch plus its accounting.
struct ShardState {
    /// Owned VOQ rows, globally addressed.
    voq: RowBand<SortedQueue>,
    /// Owned crossbar rows (buffered crossbar only).
    xbar: Option<RowBand<SortedQueue>>,
    /// Owned output queues, `outputs[j - out_lo]` = `Q_j`.
    outputs: Vec<SortedQueue>,
    /// First owned output column.
    out_lo: usize,
    /// Dirty-queue log over **shard-local** flat cells
    /// `(i − in_lo)·M + j` (outputs by global `j`), so K shards together
    /// hold exactly one switch's worth of dirty bitmaps. Flushed once per
    /// scheduling call, like the sequential log.
    changes: ChangeLog,
    /// This shard's share of the run statistics (summed at the end).
    stats: StatsRecorder,
    /// Recorded admissions `(global arrival index, accepted)`.
    admits: Vec<(u64, bool)>,
}

impl ShardState {
    fn new(cfg: &SwitchConfig, partition: &Partition, s: usize) -> Self {
        let rows = partition.input_range(s);
        let cols = partition.output_range(s);
        let voq = RowBand::from_fn(rows.start, rows.len(), cfg.n_outputs, |_, _| {
            SortedQueue::new(cfg.input_capacity)
        });
        let xbar = cfg.crossbar_capacity.map(|bc| {
            RowBand::from_fn(rows.start, rows.len(), cfg.n_outputs, |_, _| {
                SortedQueue::new(bc)
            })
        });
        let outputs = cols
            .clone()
            .map(|_| SortedQueue::new(cfg.output_capacity))
            .collect();
        ShardState {
            voq,
            xbar,
            outputs,
            out_lo: cols.start,
            changes: ChangeLog::new(rows.len(), cfg.n_outputs, cfg.crossbar_capacity.is_some()),
            stats: StatsRecorder::new(cfg.n_outputs),
            admits: Vec::new(),
        }
    }

    fn residual(&self) -> (u64, u128) {
        let mut count = 0u64;
        let mut value = 0u128;
        for (_, _, q) in self.voq.iter_global() {
            count += q.len() as u64;
            value += q.total_value();
        }
        if let Some(xbar) = &self.xbar {
            for (_, _, q) in xbar.iter_global() {
                count += q.len() as u64;
                value += q.total_value();
            }
        }
        for q in &self.outputs {
            count += q.len() as u64;
            value += q.total_value();
        }
        (count, value)
    }
}

/// A packet in flight between shards: popped by the row owner, to be
/// inserted into `Q_j` by the column owner. At most one per output queue
/// per cycle, so same-slot mailbox drain order cannot matter.
struct Routed {
    input: u16,
    output: u16,
    preempt: bool,
    packet: Packet,
}

/// A routed packet riding the delay line, tagged with its dispatch time:
/// with per-pair latencies one landing slot can gather transfers
/// dispatched in *different* slots (and up to ŝ per output within a
/// slot), and with preemption their per-queue apply order matters — the
/// landing phase sorts by the canonical landing order
/// `(dispatch slot, dispatch cycle, output, input)` to reproduce the
/// sequential engine's delivery order exactly.
struct Delayed {
    slot: SlotId,
    cycle: u32,
    r: Routed,
}

/// All cross-shard communication channels plus run-wide control state.
struct Comms {
    /// Per-shard CIOQ proposal payloads.
    candidates: Vec<Mutex<CandidateSet>>,
    /// Per-shard pop assignments (CIOQ transfers by row owner).
    assignments: Vec<Mutex<Vec<Transfer>>>,
    /// Per-shard crossbar input-subphase assignments.
    in_assignments: Vec<Mutex<Vec<InputTransfer>>>,
    /// Per-shard crossbar output-subphase pop assignments (by row owner).
    out_assignments: Vec<Mutex<Vec<OutputTransfer>>>,
    /// Routed-packet mailboxes, one cell per (destination, source) pair so
    /// a flush is a buffer swap, never a copy. Same-slot transport only
    /// (latency-0 pairs); positive-latency pairs ride `rings`.
    mail: Vec<Vec<Mutex<Vec<Routed>>>>,
    /// Delay-line rings, one per (destination, source) shard pair, of
    /// *heterogeneous* depth: ring `(dest, src)` holds
    /// `ring_depth[dest][src]` slot-buckets — the largest per-pair latency
    /// between a source-owned input and a destination-owned output, so a
    /// shard pair whose racks sit close never pays for the fabric's worst
    /// path. A dispatch in slot `t` on a pair at latency `dd ≥ 1` pushes
    /// into bucket `(t + dd) % depth`; the destination drains bucket
    /// `t % depth` at the start of slot `t` (before the slot's dispatches
    /// refill it), so every packet in a drained bucket is due exactly now.
    /// Empty when the fabric is immediate.
    rings: Vec<Vec<Mutex<Vec<Vec<Delayed>>>>>,
    /// Bucket count of each `(dest, src)` ring (0 = all pairs immediate).
    ring_depth: Vec<Vec<SlotId>>,
    /// Per-pair fabric latencies.
    spec: FabricSpec,
    /// Largest per-pair latency (0 = immediate fabric, no landing phase).
    horizon: SlotId,
    /// Whether any pair delivers same-cycle (the mailbox path is live).
    has_zero: bool,
    /// Forwarded crossbar dirty-mark batches, likewise (destination, source).
    /// Dirty marks are control-plane traffic (cache coherence for the
    /// column-side incremental caches), so they are never delayed — only
    /// packets ride the delay line.
    xbar_marks: Vec<Vec<Mutex<Vec<u32>>>>,
    /// Pre-cycle output snapshot.
    snapshot: RwLock<OutputSnapshot>,
    /// Current slot / cycle broadcast.
    slot: AtomicU64,
    cycle: AtomicU32,
    /// First policy error (sticky).
    error: Mutex<Option<PolicyError>>,
    /// First worker panic message (threaded mode only).
    panic: Mutex<Option<String>>,
    failed: AtomicBool,
    record: bool,
}

impl Comms {
    fn new(
        k: usize,
        record: bool,
        spec: FabricSpec,
        partition: &Partition,
        cfg: &SwitchConfig,
    ) -> Self {
        // Every channel is reserved at its hard per-cycle bound up front,
        // so the steady-state slot loop never grows a comms vector: each
        // owned input pops at most once per cycle, so a (dest, src)
        // mailbox / ring-bucket / mark batch sees at most `rows(src)`
        // entries per cycle (`rows(src) * speedup` per slot for cells
        // that accumulate across a whole slot).
        fn vecs<T>(k: usize, cap_of: impl Fn(usize) -> usize) -> Vec<Mutex<Vec<T>>> {
            (0..k)
                .map(|s| Mutex::new(Vec::with_capacity(cap_of(s))))
                .collect()
        }
        fn cells<T>(k: usize, cap_of: impl Fn(usize) -> usize + Copy) -> Vec<Vec<Mutex<Vec<T>>>> {
            (0..k).map(|_| vecs(k, cap_of)).collect()
        }
        let speedup = cfg.speedup.max(1) as usize;
        let rows = |s: usize| partition.input_range(s).len();
        let horizon = spec.max_delay();
        let has_zero = spec.has_zero_pair();
        // Heterogeneous ring depths: ring (dest, src) only needs buckets
        // for the worst latency between a src-owned input and a dest-owned
        // output. One pass at run start; the slot loop never recomputes.
        let ring_depth: Vec<Vec<SlotId>> = (0..if horizon >= 1 { k } else { 0 })
            .map(|dest| {
                (0..k)
                    .map(|src| {
                        let mut depth = 0;
                        for i in partition.input_range(src) {
                            for j in partition.output_range(dest) {
                                depth = depth.max(spec.delay(PortId::from(i), PortId::from(j)));
                            }
                        }
                        depth
                    })
                    .collect()
            })
            .collect();
        let rings = ring_depth
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(src, &depth)| {
                        Mutex::new(
                            (0..depth)
                                .map(|_| Vec::with_capacity(rows(src) * speedup))
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect();
        Comms {
            candidates: (0..k)
                .map(|_| Mutex::new(CandidateSet::default()))
                .collect(),
            assignments: vecs(k, rows),
            in_assignments: vecs(k, rows),
            // An out-assignment cell holds a worker's own output proposals
            // (≤ its columns) and then, after the coordinator redistributes
            // them by *row* owner, up to one proposal per global output —
            // all of which can land on a single owner.
            out_assignments: vecs(k, |s| rows(s).max(cfg.n_outputs)),
            mail: cells(k, rows),
            rings,
            ring_depth,
            spec,
            horizon,
            has_zero,
            // Marks accumulate for up to a whole slot before the column
            // owner drains them (one mark per crosspoint pop, in-side and
            // out-side per cycle).
            xbar_marks: cells(k, |s| 2 * rows(s) * speedup),
            snapshot: RwLock::new(OutputSnapshot::default()),
            slot: AtomicU64::new(0),
            cycle: AtomicU32::new(0),
            error: Mutex::new(None),
            panic: Mutex::new(None),
            failed: AtomicBool::new(false),
            record,
        }
    }

    fn fail(&self, e: PolicyError) {
        let mut slot = lock(&self.error);
        if slot.is_none() {
            *slot = Some(e);
        }
        self.failed.store(true, Ordering::Release);
    }

    fn cycle_now(&self) -> Cycle {
        Cycle {
            slot: self.slot.load(Ordering::Relaxed),
            index: self.cycle.load(Ordering::Relaxed),
        }
    }
}

/// Lock helpers that ignore poisoning: a panicking worker already records
/// its payload; subsequent phases must still be able to shut down cleanly.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_shard<'a>(l: &'a RwLock<ShardState>) -> RwLockReadGuard<'a, ShardState> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_shard<'a>(l: &'a RwLock<ShardState>) -> std::sync::RwLockWriteGuard<'a, ShardState> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// The whole fabric: per-shard states behind phase-disciplined locks plus
/// the communication channels.
struct Fabric<'a> {
    cfg: &'a SwitchConfig,
    partition: Partition,
    shards: Vec<RwLock<ShardState>>,
    /// The whole trace pre-bucketed by row owner `(global index, packet)`,
    /// built once at run start — the arrival phase is a cursor walk with no
    /// per-slot copying or locking. Empty in streaming mode.
    arrivals: Vec<Vec<(u64, Packet)>>,
    /// Streaming mode's per-owner staging cells: the coordinator fills
    /// them with the slot's batch between barriers (workers parked, so
    /// the locks are uncontended) and each shard drains its own cell in
    /// the arrival phase. Indices are the trace-numbered global packet
    /// ids, so recorded admissions line up with the prebucketed path.
    staged: Vec<Mutex<Vec<(u64, Packet)>>>,
    /// Whether arrivals come from `staged` (live stream) or `arrivals`
    /// (pre-bucketed trace).
    streamed: bool,
    comms: Comms,
}

impl Fabric<'_> {
    fn view_of<'g>(&'g self, guards: &'g [RwLockReadGuard<'g, ShardState>]) -> FabricView<'g> {
        FabricView {
            cfg: self.cfg,
            partition: &self.partition,
            shards: guards,
            slot: self.comms.slot.load(Ordering::Relaxed),
        }
    }

    /// Read-lock every shard into `out` (cleared first) — pooled variant
    /// of a collect, so the per-cycle global view reuses one buffer.
    fn read_all_into<'g>(&'g self, out: &mut Vec<RwLockReadGuard<'g, ShardState>>) {
        out.clear();
        out.extend(self.shards.iter().map(read_shard));
    }

    /// (transmitted, moved) sums for the progress check.
    fn progress(&self) -> (u64, u64) {
        let mut transmitted = 0;
        let mut moved = 0;
        for l in &self.shards {
            let st = read_shard(l);
            transmitted += st.stats.transmitted;
            moved += st.stats.transferred + st.stats.transferred_to_crossbar;
        }
        (transmitted, moved)
    }

    /// Visit every packet currently riding the delay line (coordinator
    /// only, between phases).
    fn for_each_in_flight(&self, mut f: impl FnMut(&Delayed)) {
        for dest in &self.comms.rings {
            for src in dest {
                let cell = lock(src);
                for bucket in cell.iter() {
                    for p in bucket {
                        f(p);
                    }
                }
            }
        }
    }

    /// Packets currently in flight through the fabric (0 when immediate).
    fn in_flight_total(&self) -> u64 {
        let mut n = 0;
        self.for_each_in_flight(|_| n += 1);
        n
    }

    fn residual(&self) -> (u64, u128) {
        let mut count = 0;
        let mut value = 0;
        for l in &self.shards {
            let (c, v) = read_shard(l).residual();
            count += c;
            value += v;
        }
        self.for_each_in_flight(|p| {
            count += 1;
            value += p.r.packet.value as u128;
        });
        (count, value)
    }

    /// Refresh the pre-cycle output snapshot (coordinator only, between
    /// phases): virtual fullness and tails — landed occupancy plus the
    /// delay line's in-flight packets.
    fn refresh_snapshot(&self) {
        let m = self.cfg.n_outputs;
        let mut snap = self
            .comms
            .snapshot
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let snap = &mut *snap;
        snap.full.clear();
        snap.full.resize(m, false);
        snap.tail.clear();
        snap.tail.resize(m, 0);
        snap.full_words.clear();
        snap.full_words.resize(m.div_ceil(64), 0);
        snap.in_flight.clear();
        snap.in_flight.resize(m, 0);
        snap.in_flight_min.clear();
        snap.in_flight_min.resize(m, Value::MAX);
        self.for_each_in_flight(|p| {
            let j = p.r.output as usize;
            snap.in_flight[j] += 1;
            snap.in_flight_min[j] = snap.in_flight_min[j].min(p.r.packet.value);
        });
        for l in &self.shards {
            let st = read_shard(l);
            for (local_j, q) in st.outputs.iter().enumerate() {
                let j = st.out_lo + local_j;
                let in_flight = snap.in_flight[j] as usize;
                if q.len() + in_flight >= q.capacity() {
                    snap.full[j] = true;
                    snap.full_words[j / 64] |= 1u64 << (j % 64);
                    let landed = q.tail_value().unwrap_or(Value::MAX);
                    let flying = if in_flight > 0 {
                        snap.in_flight_min[j]
                    } else {
                        Value::MAX
                    };
                    snap.tail[j] = landed.min(flying);
                }
            }
        }
    }

    /// Assemble the global [`SwitchState`] (tests / validation / capture).
    fn assemble_state(&self) -> SwitchState {
        let mut state = SwitchState::new(self.cfg.clone());
        state.slot = self.comms.slot.load(Ordering::Relaxed);
        for l in &self.shards {
            let st = read_shard(l);
            for (i, j, q) in st.voq.iter_global() {
                *state.input_queues.get_mut(i, j) = q.clone();
            }
            if let Some(xbar) = &st.xbar {
                let grid = state
                    .crossbar_queues
                    .as_mut()
                    .expect("both states share the config");
                for (i, j, q) in xbar.iter_global() {
                    *grid.get_mut(i, j) = q.clone();
                }
            }
            for (local_j, q) in st.outputs.iter().enumerate() {
                state.output_queues[st.out_lo + local_j] = q.clone();
            }
        }
        state
    }
}

// ---------------------------------------------------------------------------
// Phase identifiers
// ---------------------------------------------------------------------------

const PH_ARRIVAL: u8 = 0;
const PH_PROPOSE: u8 = 1;
const PH_APPLY_POP: u8 = 2;
const PH_APPLY_INSERT: u8 = 3;
const PH_PROPOSE_IN: u8 = 4;
const PH_APPLY_IN: u8 = 5;
const PH_PROPOSE_OUT: u8 = 6;
const PH_APPLY_OUT_POP: u8 = 7;
const PH_TRANSMIT: u8 = 8;
const PH_EXIT: u8 = 9;
/// Landing phase (delayed fabric only): each column owner drains its due
/// delay-line bucket into its output queues at the start of the slot.
const PH_LAND: u8 = 10;

// ---------------------------------------------------------------------------
// Worker-side phase execution
// ---------------------------------------------------------------------------

/// Admit one arriving packet into shard `s` — the shared per-packet body
/// of both arrival modes (pre-bucketed cursor walk and staged streaming
/// drain), mirroring `Engine::arrival_phase` decision for decision.
/// Returns `false` when the phase must stop (policy error recorded).
fn admit_arrival(
    s: usize,
    st: &mut ShardState,
    fabric: &Fabric<'_>,
    idx: u64,
    p: Packet,
    admit: &mut impl FnMut(&ShardView<'_>, &Packet) -> Admission,
) -> bool {
    st.stats.on_arrival(&p);
    let decision = {
        let view = ShardView {
            cfg: fabric.cfg,
            partition: &fabric.partition,
            shard: s,
            state: st,
        };
        admit(&view, &p)
    };
    if fabric.comms.record {
        st.admits
            .push((idx, !matches!(decision, Admission::Reject)));
    }
    if !matches!(decision, Admission::Reject) {
        let local_row = p.input.index() - st.voq.row_offset();
        st.changes
            .voq
            .mark(local_row * fabric.cfg.n_outputs + p.output.index());
    }
    let queue = st.voq.at_global_mut(p.input.index(), p.output.index());
    match decision {
        Admission::Reject => st.stats.on_reject(&p),
        Admission::Accept => {
            if queue.is_full() {
                fabric.comms.fail(PolicyError::QueueFull {
                    kind: "input",
                    input: Some(p.input),
                    output: p.output,
                });
                return false;
            }
            queue.insert(p).expect("checked not full");
            st.stats.on_accept();
        }
        Admission::AcceptPreemptingLeast => {
            if !queue.is_full() {
                fabric.comms.fail(PolicyError::PreemptOnNonFull {
                    kind: "input",
                    input: Some(p.input),
                    output: p.output,
                });
                return false;
            }
            let victim = queue.pop_tail().expect("full queue has a tail");
            st.stats.on_preempt_input(&victim);
            queue.insert(p).expect("slot freed by preemption");
            st.stats.on_accept();
        }
    }
    true
}

/// Arrival phase for shard `s`: walk this slot's slice of the pre-bucketed
/// trace (or drain the staging cell in streaming mode), admit, insert.
/// Mirrors `Engine::arrival_phase` decision for decision.
fn arrival_phase(
    s: usize,
    cursor: &mut usize,
    fabric: &Fabric<'_>,
    mut admit: impl FnMut(&ShardView<'_>, &Packet) -> Admission,
) {
    let slot = fabric.comms.slot.load(Ordering::Relaxed);
    let mut st = write_shard(&fabric.shards[s]);
    if fabric.streamed {
        // The coordinator staged this slot's batch before the barrier;
        // take the cell's buffer (returned after the drain so the
        // allocation is reused every slot).
        let batch = std::mem::take(&mut *lock(&fabric.staged[s]));
        for &(idx, p) in &batch {
            debug_assert_eq!(p.arrival, slot, "staged batch from another slot");
            if !admit_arrival(s, &mut st, fabric, idx, p, &mut admit) {
                break;
            }
        }
        let mut cell = lock(&fabric.staged[s]);
        *cell = batch;
        cell.clear();
        return;
    }
    let bucket = &fabric.arrivals[s];
    while let Some(&(idx, p)) = bucket.get(*cursor) {
        if p.arrival != slot {
            debug_assert!(p.arrival > slot, "bucket consumed out of order");
            break;
        }
        *cursor += 1;
        if !admit_arrival(s, &mut st, fabric, idx, p, &mut admit) {
            break;
        }
    }
}

/// Transmission phase for shard `s`: send the head of every non-empty owned
/// output queue (the behaviour of every policy in the paper).
fn transmit_phase(s: usize, fabric: &Fabric<'_>) {
    let slot = fabric.comms.slot.load(Ordering::Relaxed);
    let mut st = write_shard(&fabric.shards[s]);
    let st = &mut *st;
    for (local_j, q) in st.outputs.iter_mut().enumerate() {
        if let Some(packet) = q.pop_head() {
            let j = st.out_lo + local_j;
            st.changes.output.mark(j);
            st.stats.on_transmit(&packet, slot, j);
        }
    }
}

/// Insert one routed packet into the owning shard's output queue,
/// preempting `l_j` when allowed. Returns `false` on a policy error.
fn deliver(st: &mut ShardState, fabric: &Fabric<'_>, r: Routed) -> bool {
    let j = r.output as usize;
    st.changes.output.mark(j);
    let queue = &mut st.outputs[j - st.out_lo];
    if queue.is_full() {
        if !r.preempt {
            fabric.comms.fail(PolicyError::QueueFull {
                kind: "output",
                input: Some(PortId(r.input)),
                output: PortId(r.output),
            });
            return false;
        }
        let victim = queue.pop_tail().expect("full queue has a tail");
        st.stats.on_preempt_output(&victim);
    }
    queue.insert(r.packet).expect("space ensured");
    st.stats.on_transfer();
    true
}

/// Drain this shard's mailbox cells into its output queues (≤ 1 insert per
/// queue per cycle, so drain order is immaterial).
// detlint: hot
fn apply_insert_phase(s: usize, fabric: &Fabric<'_>) {
    let mut st = write_shard(&fabric.shards[s]);
    for src in &fabric.comms.mail[s] {
        let mut cell = lock(src);
        for r in cell.drain(..) {
            if !deliver(&mut st, fabric, r) {
                return;
            }
        }
    }
}

/// Landing phase for shard `s` (delayed fabric): gather the due bucket of
/// every (s, src) ring, order by the canonical landing order
/// `(dispatch slot, dispatch cycle, output, input)` — per output queue
/// that is exactly dispatch order, the order the sequential delayed
/// engine applies — and deliver into the owned output queues. The
/// canonical order is partition-independent: it mentions only global
/// ports and dispatch times, never shard or rack boundaries.
// detlint: hot
fn land_phase(s: usize, fabric: &Fabric<'_>, gather: &mut Vec<Delayed>) {
    debug_assert!(
        fabric.comms.horizon >= 1,
        "landing phase on an immediate fabric"
    );
    let slot = fabric.comms.slot.load(Ordering::Relaxed);
    gather.clear();
    for (src, cell) in fabric.comms.rings[s].iter().enumerate() {
        let depth = fabric.comms.ring_depth[s][src];
        if depth == 0 {
            continue;
        }
        let mut cell = lock(cell);
        gather.append(&mut cell[(slot % depth) as usize]);
    }
    gather.sort_unstable_by_key(|p| (p.slot, p.cycle, p.r.output, p.r.input));
    if cfg!(debug_assertions) {
        // Strictness is the content of the check (the sort above already
        // guarantees order): a duplicate key means two transfers entered
        // one output in one cycle, which no merge may emit.
        if let Err(msg) = crate::invariants::check_canonical_order(gather, |p| {
            (p.slot, p.cycle, p.r.output, p.r.input)
        }) {
            panic!("sharded landing-order invariant violated (shard {s}): {msg}");
        }
    }
    let mut st = write_shard(&fabric.shards[s]);
    for p in gather.drain(..) {
        if !deliver(&mut st, fabric, p.r) {
            return;
        }
    }
}

/// Per-worker batching scratch: routed packets and forwarded dirty marks
/// are collected per destination locally and flushed with one lock per
/// destination per phase (instead of one lock per item).
struct WorkerCtx<W> {
    worker: W,
    /// Position in this shard's pre-bucketed arrival stream.
    arrival_cursor: usize,
    /// Per-destination staging for forwarded crossbar dirty marks.
    marks: Vec<Vec<u32>>,
    /// Reused gather buffer for inbound crossbar marks.
    inbound_scratch: Vec<u32>,
    /// Reused gather buffer for the landing phase (delayed fabric).
    land_scratch: Vec<Delayed>,
}

impl<W> WorkerCtx<W> {
    fn new(worker: W, k: usize, mark_cap: usize) -> Self {
        WorkerCtx {
            worker,
            arrival_cursor: 0,
            // Sized like the comms mark cells they swap buffers with, so
            // the circulating pool never grows mid-run.
            marks: (0..k).map(|_| Vec::with_capacity(mark_cap)).collect(),
            inbound_scratch: Vec::new(),
            land_scratch: Vec::new(),
        }
    }

    fn flush_marks(&mut self, s: usize, fabric: &Fabric<'_>) {
        for (dest, batch) in self.marks.iter_mut().enumerate() {
            if !batch.is_empty() {
                let mut cell = lock(&fabric.comms.xbar_marks[dest][s]);
                if cell.is_empty() {
                    std::mem::swap(&mut *cell, batch);
                } else {
                    // The destination hasn't drained yet (marks accumulate
                    // across subphases); append in that case.
                    cell.append(batch);
                }
            }
        }
    }
}

/// Pooled per-worker guard buffers: the apply and propose phases lock a
/// row of mailbox / ring / shard locks each cycle, and collecting the
/// guards into a fresh `Vec` every time was steady-state allocation.
/// Guards never cross a barrier (every phase clears the buffers before
/// returning), so only the capacity persists. One scratch lives per
/// worker thread — created inside the thread because lock guards make
/// the type `!Send`.
struct PhaseScratch<'f> {
    /// Read guards over every shard (global-view propose phases).
    read_guards: Vec<RwLockReadGuard<'f, ShardState>>,
    /// Per-destination mailbox guards (apply-pop phases).
    mail_boxes: Vec<Option<MutexGuard<'f, Vec<Routed>>>>,
    /// Per-destination delay-ring guards (apply-pop phases).
    ring_boxes: Vec<MutexGuard<'f, Vec<Vec<Delayed>>>>,
}

impl PhaseScratch<'_> {
    fn new() -> Self {
        PhaseScratch {
            read_guards: Vec::new(),
            mail_boxes: Vec::new(),
            ring_boxes: Vec::new(),
        }
    }
}

/// CIOQ worker phase dispatcher.
// detlint: hot
fn cioq_phase<'f>(
    ph: u8,
    s: usize,
    ctx: &mut WorkerCtx<Box<dyn CioqShardWorker>>,
    fabric: &'f Fabric<'_>,
    scr: &mut PhaseScratch<'f>,
) {
    if fabric.comms.failed.load(Ordering::Acquire) {
        return;
    }
    match ph {
        PH_ARRIVAL => {
            let cursor = &mut ctx.arrival_cursor;
            let worker = &mut ctx.worker;
            arrival_phase(s, cursor, fabric, |view, p| worker.admit(view, p));
        }
        PH_PROPOSE => {
            let st = read_shard(&fabric.shards[s]);
            let view = ShardView {
                cfg: fabric.cfg,
                partition: &fabric.partition,
                shard: s,
                state: &st,
            };
            let snap = fabric
                .comms
                .snapshot
                .read()
                .unwrap_or_else(|e| e.into_inner());
            let mut out = std::mem::take(&mut *lock(&fabric.comms.candidates[s]));
            out.clear();
            ctx.worker
                .propose(&view, &snap, fabric.comms.cycle_now(), &mut out);
            *lock(&fabric.comms.candidates[s]) = out;
        }
        PH_APPLY_POP => {
            let slot = fabric.comms.slot.load(Ordering::Relaxed);
            let cycle = fabric.comms.cycle.load(Ordering::Relaxed);
            let mut asg = std::mem::take(&mut *lock(&fabric.comms.assignments[s]));
            {
                // Each (dest, src) mailbox / ring cell has exactly one
                // writer per phase (this worker), so holding the locks for
                // the whole pop loop is contention-free and saves a copy
                // per packet. The guards land in the pooled scratch
                // buffers (cleared below, before the barrier).
                scr.mail_boxes
                    .extend(fabric.comms.mail.iter().enumerate().map(|(dest, cells)| {
                        (fabric.comms.has_zero && dest != s).then(|| lock(&cells[s]))
                    }));
                scr.ring_boxes
                    .extend(fabric.comms.rings.iter().map(|cells| lock(&cells[s])));
                let boxes = &mut scr.mail_boxes;
                let ring_boxes = &mut scr.ring_boxes;
                let mut st = write_shard(&fabric.shards[s]);
                // The proposal consumed the change log; everything from here
                // on accumulates for the next proposal (sequential flush
                // point).
                st.changes.flush();
                for t in asg.drain(..) {
                    let (i, j) = (t.input.index(), t.output.index());
                    let local_row = i - st.voq.row_offset();
                    st.changes.voq.mark(local_row * fabric.cfg.n_outputs + j);
                    let queue = st.voq.at_global_mut(i, j);
                    let Some(packet) = take_pick(queue, t.pick) else {
                        fabric.comms.fail(match t.pick {
                            PacketPick::ById(id) if !queue.is_empty() => {
                                PolicyError::NoSuchPacket { id }
                            }
                            _ => PolicyError::EmptyQueue {
                                kind: "input",
                                input: Some(t.input),
                                output: t.output,
                            },
                        });
                        break;
                    };
                    let r = Routed {
                        input: t.input.0,
                        output: t.output.0,
                        preempt: t.preempt_if_full,
                        packet,
                    };
                    let dest = fabric.partition.output_owner(j);
                    let dd = fabric.comms.spec.delay(t.input, t.output);
                    if dd >= 1 {
                        // Every positive-latency transfer — same-shard
                        // included, so results are partition-independent —
                        // rides the delay line and lands `dd` slots later.
                        let depth = fabric.comms.ring_depth[dest][s];
                        ring_boxes[dest][((slot + dd) % depth) as usize].push(Delayed {
                            slot,
                            cycle,
                            r,
                        });
                    } else if dest == s {
                        // Both endpoints owned: skip the mailbox round-trip
                        // (inserts touch `Q_j`, pops touch `Q_ij` — the
                        // families are disjoint, so early delivery cannot
                        // perturb any pop).
                        if !deliver(&mut st, fabric, r) {
                            break;
                        }
                    } else {
                        boxes[dest].as_mut().expect("foreign cell locked").push(r);
                    }
                }
            }
            scr.mail_boxes.clear();
            scr.ring_boxes.clear();
            *lock(&fabric.comms.assignments[s]) = asg;
        }
        PH_APPLY_INSERT => apply_insert_phase(s, fabric),
        PH_LAND => land_phase(s, fabric, &mut ctx.land_scratch),
        PH_TRANSMIT => transmit_phase(s, fabric),
        _ => unreachable!("phase {ph} is not a CIOQ phase"),
    }
}

/// Buffered-crossbar worker phase dispatcher.
// detlint: hot
fn xbar_phase<'f>(
    ph: u8,
    s: usize,
    ctx: &mut WorkerCtx<Box<dyn CrossbarShardWorker>>,
    fabric: &'f Fabric<'_>,
    scr: &mut PhaseScratch<'f>,
) {
    if fabric.comms.failed.load(Ordering::Acquire) {
        return;
    }
    let m = fabric.cfg.n_outputs;
    match ph {
        PH_ARRIVAL => {
            let cursor = &mut ctx.arrival_cursor;
            let worker = &mut ctx.worker;
            arrival_phase(s, cursor, fabric, |view, p| worker.admit(view, p));
        }
        PH_PROPOSE_IN => {
            let st = read_shard(&fabric.shards[s]);
            let view = ShardView {
                cfg: fabric.cfg,
                partition: &fabric.partition,
                shard: s,
                state: &st,
            };
            let mut out = std::mem::take(&mut *lock(&fabric.comms.in_assignments[s]));
            out.clear();
            ctx.worker
                .propose_input(&view, fabric.comms.cycle_now(), &mut out);
            *lock(&fabric.comms.in_assignments[s]) = out;
        }
        PH_APPLY_IN => {
            let mut asg = std::mem::take(&mut *lock(&fabric.comms.in_assignments[s]));
            {
                let mut st = write_shard(&fabric.shards[s]);
                st.changes.flush();
                for t in asg.iter() {
                    let st = &mut *st;
                    let (i, j) = (t.input.index(), t.output.index());
                    let local = (i - st.voq.row_offset()) * m + j;
                    st.changes.voq.mark(local);
                    st.changes.xbar.mark(local);
                    let queue = st.voq.at_global_mut(i, j);
                    let Some(packet) = take_pick(queue, t.pick) else {
                        fabric.comms.fail(match t.pick {
                            PacketPick::ById(id) if !queue.is_empty() => {
                                PolicyError::NoSuchPacket { id }
                            }
                            _ => PolicyError::EmptyQueue {
                                kind: "input",
                                input: Some(t.input),
                                output: t.output,
                            },
                        });
                        break;
                    };
                    let xbar = st
                        .xbar
                        .as_mut()
                        .expect("invariant: crossbar queues exist, asserted at run entry")
                        .at_global_mut(i, j);
                    if xbar.is_full() {
                        if !t.preempt_if_full {
                            fabric.comms.fail(PolicyError::QueueFull {
                                kind: "crossbar",
                                input: Some(t.input),
                                output: t.output,
                            });
                            break;
                        }
                        let victim = xbar.pop_tail().expect("full queue has a tail");
                        st.stats.on_preempt_crossbar(&victim);
                    }
                    xbar.insert(packet).expect("space ensured");
                    st.stats.on_transfer_to_crossbar();
                    // Forward the dirty crosspoint to the column owner's
                    // cache (batched, flushed below).
                    ctx.marks[fabric.partition.output_owner(j)].push((i * m + j) as u32);
                }
                asg.clear();
            }
            ctx.flush_marks(s, fabric);
            *lock(&fabric.comms.in_assignments[s]) = asg;
        }
        PH_PROPOSE_OUT => {
            let mut inbound = std::mem::take(&mut ctx.inbound_scratch);
            inbound.clear();
            for src in &fabric.comms.xbar_marks[s] {
                inbound.append(&mut lock(src));
            }
            {
                fabric.read_all_into(&mut scr.read_guards);
                let view = fabric.view_of(&scr.read_guards);
                let snap = fabric
                    .comms
                    .snapshot
                    .read()
                    .unwrap_or_else(|e| e.into_inner());
                let mut proposals = std::mem::take(&mut *lock(&fabric.comms.out_assignments[s]));
                proposals.clear();
                ctx.worker.propose_output(
                    &view,
                    s,
                    &inbound,
                    &snap,
                    fabric.comms.cycle_now(),
                    &mut proposals,
                );
                *lock(&fabric.comms.out_assignments[s]) = proposals;
            }
            scr.read_guards.clear();
            ctx.inbound_scratch = inbound;
        }
        PH_APPLY_OUT_POP => {
            let slot = fabric.comms.slot.load(Ordering::Relaxed);
            let cycle = fabric.comms.cycle.load(Ordering::Relaxed);
            let mut asg = std::mem::take(&mut *lock(&fabric.comms.out_assignments[s]));
            {
                scr.mail_boxes
                    .extend(fabric.comms.mail.iter().enumerate().map(|(dest, cells)| {
                        (fabric.comms.has_zero && dest != s).then(|| lock(&cells[s]))
                    }));
                scr.ring_boxes
                    .extend(fabric.comms.rings.iter().map(|cells| lock(&cells[s])));
                let boxes = &mut scr.mail_boxes;
                let ring_boxes = &mut scr.ring_boxes;
                let mut st = write_shard(&fabric.shards[s]);
                for t in asg.drain(..) {
                    let st = &mut *st;
                    let (i, j) = (t.input.index(), t.output.index());
                    st.changes.xbar.mark((i - st.voq.row_offset()) * m + j);
                    let xbar = st
                        .xbar
                        .as_mut()
                        .expect("invariant: crossbar queues exist, asserted at run entry")
                        .at_global_mut(i, j);
                    let Some(packet) = take_pick(xbar, t.pick) else {
                        fabric.comms.fail(match t.pick {
                            PacketPick::ById(id) if !xbar.is_empty() => {
                                PolicyError::NoSuchPacket { id }
                            }
                            _ => PolicyError::EmptyQueue {
                                kind: "crossbar",
                                input: Some(t.input),
                                output: t.output,
                            },
                        });
                        break;
                    };
                    let dest = fabric.partition.output_owner(j);
                    let r = Routed {
                        input: t.input.0,
                        output: t.output.0,
                        preempt: t.preempt_if_full,
                        packet,
                    };
                    let dd = fabric.comms.spec.delay(t.input, t.output);
                    if dd >= 1 {
                        let depth = fabric.comms.ring_depth[dest][s];
                        ring_boxes[dest][((slot + dd) % depth) as usize].push(Delayed {
                            slot,
                            cycle,
                            r,
                        });
                    } else if dest == s {
                        if !deliver(st, fabric, r) {
                            break;
                        }
                    } else {
                        boxes[dest].as_mut().expect("foreign cell locked").push(r);
                    }
                    // The crosspoint pop is control-plane news either way:
                    // the column cache must see `C_ij` shrink now.
                    ctx.marks[dest].push((i * m + j) as u32);
                }
            }
            scr.mail_boxes.clear();
            scr.ring_boxes.clear();
            ctx.flush_marks(s, fabric);
            *lock(&fabric.comms.out_assignments[s]) = asg;
        }
        PH_APPLY_INSERT => apply_insert_phase(s, fabric),
        PH_LAND => land_phase(s, fabric, &mut ctx.land_scratch),
        PH_TRANSMIT => transmit_phase(s, fabric),
        _ => unreachable!("phase {ph} is not a crossbar phase"),
    }
}

// ---------------------------------------------------------------------------
// Driver: inline or barrier-phased threads
// ---------------------------------------------------------------------------

fn drive<W: Send, S>(
    use_threads: bool,
    comms: &Comms,
    mut workers: Vec<W>,
    mk_scratch: impl Fn() -> S + Sync,
    worker_phase: impl Fn(u8, usize, &mut W, &mut S) + Sync,
    coordinate: impl FnOnce(&mut dyn FnMut(u8) -> Result<(), PolicyError>) -> Result<(), PolicyError>,
) -> Result<(), PolicyError> {
    let check = |comms: &Comms| -> Result<(), PolicyError> {
        if let Some(msg) = lock(&comms.panic).take() {
            panic!("sharded worker panicked: {msg}");
        }
        if comms.failed.load(Ordering::Acquire) {
            return Err(lock(&comms.error)
                .take()
                .expect("failed flag implies a stored error"));
        }
        Ok(())
    };

    if !use_threads {
        // One scratch serves every worker: phases run sequentially and
        // each clears the guard buffers before returning.
        let mut scratch = mk_scratch();
        let mut do_phase = |ph: u8| -> Result<(), PolicyError> {
            for (s, w) in workers.iter_mut().enumerate() {
                worker_phase(ph, s, w, &mut scratch);
            }
            check(comms)
        };
        return coordinate(&mut do_phase);
    }

    let k = workers.len();
    let phase = AtomicU8::new(PH_EXIT);
    // Spin-then-park: phases are typically shorter than a condvar
    // park/unpark round trip, so the barrier spins briefly before
    // sleeping (see [`SpinBarrier`]).
    let barrier = SpinBarrier::new(k + 1);
    std::thread::scope(|scope| {
        for (s, mut worker) in workers.into_iter().enumerate() {
            let phase = &phase;
            let barrier = &barrier;
            let worker_phase = &worker_phase;
            let mk_scratch = &mk_scratch;
            let comms: &Comms = comms;
            scope.spawn(move || {
                // Built inside the thread: the scratch holds lock guards
                // between phase entry and exit, so its type is `!Send`.
                let mut scratch = mk_scratch();
                loop {
                    barrier.wait();
                    let ph = phase.load(Ordering::Acquire);
                    if ph == PH_EXIT {
                        break;
                    }
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker_phase(ph, s, &mut worker, &mut scratch)
                    }));
                    if let Err(payload) = result {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "worker panicked".to_string());
                        let mut slot = lock(&comms.panic);
                        if slot.is_none() {
                            *slot = Some(msg);
                        }
                        comms.failed.store(true, Ordering::Release);
                    }
                    barrier.wait();
                }
            });
        }

        let mut do_phase = |ph: u8| -> Result<(), PolicyError> {
            phase.store(ph, Ordering::Release);
            barrier.wait();
            barrier.wait();
            check(comms)
        };
        // Catch coordinator panics so the workers can still be released
        // (otherwise the scope would deadlock on join).
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| coordinate(&mut do_phase)));
        phase.store(PH_EXIT, Ordering::Release);
        barrier.wait();
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

// ---------------------------------------------------------------------------
// Coordinator helpers
// ---------------------------------------------------------------------------

/// Validate a transfer set: ports in range, ≤ 1 per marked side.
fn validate_transfers(
    pairs: impl Iterator<Item = (PortId, PortId)>,
    cfg: &SwitchConfig,
    scratch: &mut MergeScratch,
    check_inputs: bool,
    check_outputs: bool,
) -> Result<(), PolicyError> {
    scratch.begin(cfg.n_inputs, cfg.n_outputs);
    for (input, output) in pairs {
        if input.index() >= cfg.n_inputs {
            return Err(PolicyError::PortOutOfRange {
                side: "input",
                port: input.index(),
            });
        }
        if output.index() >= cfg.n_outputs {
            return Err(PolicyError::PortOutOfRange {
                side: "output",
                port: output.index(),
            });
        }
        if check_inputs {
            if scratch.input_used(input.index()) {
                return Err(PolicyError::DuplicateInput { input });
            }
            scratch.use_input(input.index());
        }
        if check_outputs {
            if scratch.output_used(output.index()) {
                return Err(PolicyError::DuplicateOutput { output });
            }
            scratch.use_output(output.index());
        }
    }
    Ok(())
}

/// Pre-bucket the trace's in-window arrivals by row owner, validating
/// ports. One pass at run start; the per-slot arrival phase is then a pure
/// cursor walk (the sequential engine re-copies each slot's arrivals into a
/// scratch buffer every slot — this is strictly cheaper).
fn prebucket_arrivals(
    cfg: &SwitchConfig,
    partition: &Partition,
    trace: &Trace,
    arrival_slots: SlotId,
) -> Result<Vec<Vec<(u64, Packet)>>, PolicyError> {
    // Validate and count in a first pass so each bucket is allocated
    // exactly once at its final size: bucketing cost is then a fixed
    // `k` allocations however long the trace is, instead of a doubling
    // series proportional to it.
    let mut counts = vec![0usize; partition.k()];
    for p in trace.packets() {
        if p.arrival >= arrival_slots {
            break;
        }
        if p.input.index() >= cfg.n_inputs {
            return Err(PolicyError::PortOutOfRange {
                side: "input",
                port: p.input.index(),
            });
        }
        if p.output.index() >= cfg.n_outputs {
            return Err(PolicyError::PortOutOfRange {
                side: "output",
                port: p.output.index(),
            });
        }
        counts[partition.input_owner(p.input.index())] += 1;
    }
    let mut buckets: Vec<Vec<(u64, Packet)>> =
        counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (idx, p) in trace.packets().iter().enumerate() {
        if p.arrival >= arrival_slots {
            break;
        }
        buckets[partition.input_owner(p.input.index())].push((idx as u64, *p));
    }
    Ok(buckets)
}

fn absorb_stats(acc: &mut StatsRecorder, s: &StatsRecorder) {
    acc.arrived += s.arrived;
    acc.arrived_value += s.arrived_value;
    acc.accepted += s.accepted;
    acc.transferred += s.transferred;
    acc.transferred_to_crossbar += s.transferred_to_crossbar;
    acc.transmitted += s.transmitted;
    acc.benefit.0 += s.benefit.0;
    acc.losses.rejected += s.losses.rejected;
    acc.losses.rejected_value += s.losses.rejected_value;
    acc.losses.preempted_input += s.losses.preempted_input;
    acc.losses.preempted_input_value += s.losses.preempted_input_value;
    acc.losses.preempted_crossbar += s.losses.preempted_crossbar;
    acc.losses.preempted_crossbar_value += s.losses.preempted_crossbar_value;
    acc.losses.preempted_output += s.losses.preempted_output;
    acc.losses.preempted_output_value += s.losses.preempted_output_value;
    acc.losses.dropped += s.losses.dropped;
    acc.losses.dropped_value += s.losses.dropped_value;
    acc.retransmitted += s.retransmitted;
    acc.latency_sum += s.latency_sum;
    for (a, b) in acc.latency_histogram.iter_mut().zip(&s.latency_histogram) {
        *a += b;
    }
    for (a, b) in acc
        .per_output_transmitted
        .iter_mut()
        .zip(&s.per_output_transmitted)
    {
        *a += b;
    }
}

/// Capture an [`EngineSnapshot`] of the sharded run at the top of `slot`
/// (coordinator only, between barriers, before the landing phase) —
/// byte-compatible with the sequential engine's capture of the same
/// state: queue cells in stored order, ring contents converted back to
/// `(land slot, dispatch metadata)` landings in canonical order, merged
/// statistics, and the coordinator's live no-progress streak.
fn capture_sharded(
    fabric: &Fabric<'_>,
    options: &ShardedOptions,
    slot: SlotId,
    idle_slots: u32,
) -> EngineSnapshot {
    let cfg = fabric.cfg;
    let m = cfg.n_outputs;
    let mut input_queues = vec![Vec::new(); cfg.n_inputs * m];
    let mut crossbar_queues = cfg
        .crossbar_capacity
        .map(|_| vec![Vec::new(); cfg.n_inputs * m]);
    let mut output_queues = vec![Vec::new(); m];
    let mut stats = StatsRecorder::new(m);
    for l in &fabric.shards {
        let st = read_shard(l);
        for (i, j, q) in st.voq.iter_global() {
            input_queues[i * m + j] = q.iter().copied().collect();
        }
        if let Some(xbar) = &st.xbar {
            let cells = crossbar_queues
                .as_mut()
                .expect("both states share the config");
            for (i, j, q) in xbar.iter_global() {
                cells[i * m + j] = q.iter().copied().collect();
            }
        }
        for (local_j, q) in st.outputs.iter().enumerate() {
            output_queues[st.out_lo + local_j] = q.iter().copied().collect();
        }
        absorb_stats(&mut stats, &st.stats);
    }
    // Ring bucket `b` of a depth-`dp` ring holds packets landing at the
    // next slot congruent to `b` (mod dp) — bucket `slot % dp` is due
    // exactly now, since capture runs before the landing phase drains it.
    let mut landings = Vec::new();
    for (dest, row) in fabric.comms.rings.iter().enumerate() {
        for (src, cell) in row.iter().enumerate() {
            let depth = fabric.comms.ring_depth[dest][src];
            if depth == 0 {
                continue;
            }
            let cell = lock(cell);
            for (b, bucket) in cell.iter().enumerate() {
                let land_slot = slot + ((b as SlotId + depth - slot % depth) % depth);
                for d in bucket {
                    landings.push(SnapLanding {
                        land_slot,
                        slot: d.slot,
                        cycle: d.cycle,
                        input: d.r.input,
                        output: d.r.output,
                        preempt: d.r.preempt,
                        packet: d.r.packet,
                    });
                }
            }
        }
    }
    landings.sort_unstable_by_key(|l| (l.land_slot, l.slot, l.cycle, l.output, l.input));
    let (residual_count, residual_value) = fabric.residual();
    EngineSnapshot {
        config: cfg.clone(),
        fabric: options.fabric.clone(),
        slot,
        idle_slots,
        input_queues,
        crossbar_queues,
        output_queues,
        landings,
        held: Vec::new(),
        stats,
        window: None,
        residual_count,
        residual_value,
    }
}

/// Seed a freshly-built fabric from a checkpoint — the sharded half of
/// [`Engine::restore`](crate::engine::Engine::restore): every owner shard
/// receives its queue contents, the delay-line rings their in-flight
/// packets (bucketed by landing slot), and shard 0 the cumulative
/// statistics (per-shard stats are merged at the end, so where the
/// history sits is immaterial). Returns the slot and no-progress streak
/// the coordinator resumes at. Panics loudly on a snapshot that cannot
/// be applied here: wrong geometry or fabric, fault-held packets or a
/// stats window (the sharded engine supports neither), or landings
/// outside their ring's window.
fn seed_from_snapshot(
    fabric: &Fabric<'_>,
    snap: &EngineSnapshot,
    options: &ShardedOptions,
) -> (SlotId, u32) {
    let cfg = fabric.cfg;
    let m = cfg.n_outputs;
    assert_eq!(
        &snap.config, cfg,
        "snapshot was taken under a different switch config"
    );
    assert_eq!(
        snap.fabric, options.fabric,
        "snapshot was taken under a different fabric"
    );
    assert!(
        snap.held.is_empty(),
        "snapshot holds fault-retransmit packets; the sharded engine has no fault layer"
    );
    assert!(
        snap.window.is_none(),
        "snapshot carries a stats window; the sharded engine keeps full history"
    );
    for s in 0..fabric.partition.k() {
        let mut st = write_shard(&fabric.shards[s]);
        for i in fabric.partition.input_range(s) {
            for j in 0..m {
                for p in &snap.input_queues[i * m + j] {
                    st.voq
                        .at_global_mut(i, j)
                        .insert(*p)
                        .expect("serialized queue fits its capacity");
                }
                if let Some(cells) = &snap.crossbar_queues {
                    for p in &cells[i * m + j] {
                        st.xbar
                            .as_mut()
                            .expect("config equality implies a crossbar")
                            .at_global_mut(i, j)
                            .insert(*p)
                            .expect("serialized queue fits its capacity");
                    }
                }
            }
        }
        for j in fabric.partition.output_range(s) {
            let lo = st.out_lo;
            for p in &snap.output_queues[j] {
                st.outputs[j - lo]
                    .insert(*p)
                    .expect("serialized queue fits its capacity");
            }
        }
    }
    write_shard(&fabric.shards[0]).stats = snap.stats.clone();
    for l in &snap.landings {
        let (i, j) = (l.input as usize, l.output as usize);
        assert!(
            i < cfg.n_inputs && j < m,
            "landing on pair ({i} -> {j}) outside the switch"
        );
        let dest = fabric.partition.output_owner(j);
        let src = fabric.partition.input_owner(i);
        let depth = fabric
            .comms
            .ring_depth
            .get(dest)
            .and_then(|r| r.get(src))
            .copied()
            .unwrap_or(0);
        assert!(
            depth >= 1,
            "snapshot holds an in-flight packet on immediate pair ({i} -> {j})"
        );
        assert!(
            l.land_slot >= snap.slot && l.land_slot < snap.slot + depth,
            "landing at slot {} outside the ring window [{}, {}) — was the \
             checkpoint taken under a fault plan?",
            l.land_slot,
            snap.slot,
            snap.slot + depth
        );
        let mut cell = lock(&fabric.comms.rings[dest][src]);
        cell[(l.land_slot % depth) as usize].push(Delayed {
            slot: l.slot,
            cycle: l.cycle,
            r: Routed {
                input: l.input,
                output: l.output,
                preempt: l.preempt,
                packet: l.packet,
            },
        });
    }
    fabric.comms.slot.store(snap.slot, Ordering::Relaxed);
    // The restored-residual invariant (see `crate::invariants`): what was
    // seeded must account for exactly what the checkpoint recorded.
    let (count, value) = fabric.residual();
    assert_eq!(
        (count, value),
        (snap.residual_count, snap.residual_value),
        "restored residual does not match the checkpoint"
    );
    (snap.slot, snap.idle_slots)
}

fn finish_run(
    fabric: &Fabric<'_>,
    name: String,
    slots: SlotId,
    options: &ShardedOptions,
) -> (RunReport, Option<SwitchState>, Vec<bool>) {
    let final_state = options.capture_final_state.then(|| fabric.assemble_state());
    let mut merged = StatsRecorder::new(fabric.cfg.n_outputs);
    let mut admits: Vec<(u64, bool)> = Vec::new();
    for l in &fabric.shards {
        let st = read_shard(l);
        absorb_stats(&mut merged, &st.stats);
        admits.extend_from_slice(&st.admits);
    }
    admits.sort_unstable_by_key(|&(idx, _)| idx);
    let admissions = admits.into_iter().map(|(_, a)| a).collect();
    let (residual_count, residual_value) = fabric.residual();
    let mut report = merged.finish(name, slots, residual_count, residual_value);
    report.fabric_delay = options.fabric.max_delay();
    debug_assert_eq!(report.check_conservation(), Ok(()));
    (report, final_state, admissions)
}

fn post_slot_validate(fabric: &Fabric<'_>, options: &ShardedOptions) {
    if options.validate {
        if let Err(msg) = check_state_invariants(&fabric.assemble_state()) {
            panic!("sharded engine invariant violated: {msg}");
        }
    }
}

/// Per-slot invariant audit (debug builds only): merged-shard conservation
/// against the fabric's residual, the sharded analogue of the sequential
/// engine's audit — see [`crate::invariants`]. Called by the coordinator
/// between barriers, when no worker mutates shard state.
fn audit_sharded_slot(fabric: &Fabric<'_>) {
    if cfg!(debug_assertions) {
        let mut merged = StatsRecorder::new(fabric.cfg.n_outputs);
        for l in &fabric.shards {
            absorb_stats(&mut merged, &read_shard(l).stats);
        }
        let (residual_count, residual_value) = fabric.residual();
        if let Err(msg) =
            crate::invariants::check_conservation(&merged, residual_count, residual_value)
        {
            let slot = fabric.comms.slot.load(Ordering::Relaxed);
            panic!("sharded engine invariant violated at slot {slot}: {msg}");
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Where a sharded run's arrivals come from: a pre-recorded trace
/// (bucketed up front, cursor-walked by the workers) or a live
/// [`StreamingSource`] (pulled slot by slot on the coordinator and staged
/// to the owner shards between barriers).
enum Feed<'t, 's> {
    Trace(&'t Trace),
    Stream(&'s mut StreamingSource),
}

impl Feed<'_, '_> {
    /// Build the run's arrival plumbing: the fixed arrival-window length
    /// (if one is known), the pre-bucketed arrivals (empty for a stream)
    /// and the streamed flag.
    #[allow(clippy::type_complexity)]
    fn plumbing(
        &self,
        cfg: &SwitchConfig,
        partition: &Partition,
        options: &ShardedOptions,
    ) -> Result<(Option<SlotId>, Vec<Vec<(u64, Packet)>>, bool), PolicyError> {
        match self {
            Feed::Trace(trace) => {
                let n = options.slots.unwrap_or_else(|| trace.arrival_slots());
                Ok((
                    Some(n),
                    prebucket_arrivals(cfg, partition, trace, n)?,
                    false,
                ))
            }
            Feed::Stream(_) => Ok((
                options.slots,
                (0..partition.k()).map(|_| Vec::new()).collect(),
                true,
            )),
        }
    }

    /// A resumed streamed run must attach a channel positioned exactly at
    /// the checkpoint's stream cursor; anywhere else the replayed stream
    /// is not the one the checkpoint was taken on.
    fn check_resume(&self, start_slot: SlotId, options: &ShardedOptions) {
        if let Feed::Stream(src) = self {
            let cur = src.cursor();
            assert!(
                cur.slot == start_slot,
                "stream cursor sits at slot {} but the run starts at slot {start_slot} — \
                 open the channel at the checkpoint's stream_cursor()",
                cur.slot
            );
            if let Some(snap) = &options.resume_from {
                assert!(
                    cur.consumed == snap.stats.arrived,
                    "stream cursor consumed {} packets but the checkpoint arrived {}",
                    cur.consumed,
                    snap.stats.arrived
                );
            }
        }
    }

    /// Coordinator-side arrival-window check for the top of `slot`.
    fn in_arrival_window(&mut self, fixed_slots: Option<SlotId>, slot: SlotId) -> bool {
        match fixed_slots {
            Some(n) => slot < n,
            None => match self {
                Feed::Stream(src) => {
                    // Blocks until the source can answer (batch buffered
                    // or stream closed) — the workers are parked at the
                    // slot barrier, so only the coordinator waits.
                    crate::source::ArrivalSource::in_arrival_window(*src, slot)
                }
                Feed::Trace(_) => unreachable!("a trace feed always has a fixed horizon"),
            },
        }
    }
}

/// Stage a streamed slot's batch (coordinator only, between barriers):
/// pull it from the channel — blocking until the producer catches up —
/// validate ports, and distribute `(global index, packet)` pairs to the
/// owner shards' staging cells. Global indices continue the consumed
/// count, so they equal the trace-numbered ids of the prebucketed path
/// and recorded admissions line up across modes.
fn stage_stream_slot(
    fabric: &Fabric<'_>,
    src: &mut StreamingSource,
    slot: SlotId,
    scratch: &mut Vec<Packet>,
) -> Result<(), PolicyError> {
    scratch.clear();
    let base = src.consumed();
    src.pull(slot, scratch);
    for (off, p) in scratch.iter().enumerate() {
        if p.input.index() >= fabric.cfg.n_inputs {
            return Err(PolicyError::PortOutOfRange {
                side: "input",
                port: p.input.index(),
            });
        }
        if p.output.index() >= fabric.cfg.n_outputs {
            return Err(PolicyError::PortOutOfRange {
                side: "output",
                port: p.output.index(),
            });
        }
        lock(&fabric.staged[fabric.partition.input_owner(p.input.index())])
            .push((base + off as u64, *p));
    }
    Ok(())
}

/// Run a sharded CIOQ policy over a recorded trace.
///
/// Produces a [`RunReport`] field-for-field equal to
/// [`run_cioq`](crate::engine::run_cioq) with the sequential twin of
/// `policy`, for every shard count and execution mode.
pub fn run_cioq_sharded(
    cfg: &SwitchConfig,
    policy: &dyn CioqShardPolicy,
    trace: &Trace,
    options: ShardedOptions,
) -> Result<ShardedOutcome, PolicyError> {
    run_cioq_sharded_feed(cfg, policy, Feed::Trace(trace), options)
}

/// Run a sharded CIOQ policy against a live [`StreamingSource`] — the
/// push-fed counterpart of [`run_cioq_sharded`], transcript-byte-identical
/// to it on the same σ. With `options.slots` unset the arrival window
/// stays open until the producer closes the stream; resuming from a
/// checkpoint requires the source's cursor to sit at the checkpoint's
/// [`EngineSnapshot::stream_cursor`].
pub fn run_cioq_sharded_streamed(
    cfg: &SwitchConfig,
    policy: &dyn CioqShardPolicy,
    source: &mut StreamingSource,
    options: ShardedOptions,
) -> Result<ShardedOutcome, PolicyError> {
    run_cioq_sharded_feed(cfg, policy, Feed::Stream(source), options)
}

fn run_cioq_sharded_feed(
    cfg: &SwitchConfig,
    policy: &dyn CioqShardPolicy,
    mut feed: Feed<'_, '_>,
    options: ShardedOptions,
) -> Result<ShardedOutcome, PolicyError> {
    assert!(
        cfg.crossbar_capacity.is_none(),
        "run_cioq_sharded requires a CIOQ config"
    );
    options.fabric.assert_covers(cfg);
    let partition = Partition::new(options.shards, cfg.n_inputs, cfg.n_outputs);
    let k = partition.k();
    let (fixed_slots, arrivals, streamed) = feed.plumbing(cfg, &partition, &options)?;
    let comms = Comms::new(k, options.record, options.fabric.clone(), &partition, cfg);
    let fabric = Fabric {
        cfg,
        shards: (0..k)
            .map(|s| RwLock::new(ShardState::new(cfg, &partition, s)))
            .collect(),
        partition,
        arrivals,
        staged: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
        streamed,
        comms,
    };
    let mut workers: Vec<WorkerCtx<Box<dyn CioqShardWorker>>> = (0..k)
        .map(|s| {
            let mark_cap = 2 * fabric.partition.input_range(s).len() * cfg.speedup.max(1) as usize;
            WorkerCtx::new(policy.new_worker(s, &fabric.partition, cfg), k, mark_cap)
        })
        .collect();
    let (start_slot, start_idle) = options
        .resume_from
        .as_ref()
        .map_or((0, 0), |snap| seed_from_snapshot(&fabric, snap, &options));
    feed.check_resume(start_slot, &options);
    for (s, w) in workers.iter_mut().enumerate() {
        w.arrival_cursor = fabric.arrivals[s].partition_point(|&(_, p)| p.arrival < start_slot);
    }

    let speedup = cfg.speedup;
    let horizon = fabric.comms.horizon;
    let has_zero = fabric.comms.has_zero;
    let mut recorded: Vec<Vec<(u16, u16)>> = Vec::new();
    let mut final_slot: SlotId = 0;
    let mut checkpoints: Vec<EngineSnapshot> = Vec::new();

    let result = drive(
        options.use_threads(),
        &fabric.comms,
        workers,
        PhaseScratch::new,
        |ph, s, w, scr| cioq_phase(ph, s, w, &fabric, scr),
        |do_phase| {
            let mut slot: SlotId = start_slot;
            let mut idle_slots = start_idle;
            let mut transfers: Vec<Transfer> = Vec::new();
            let mut merge_scratch = MergeScratch::default();
            let mut validate_scratch = MergeScratch::default();
            let mut stage_scratch: Vec<Packet> = Vec::new();
            // Coordinator-side mirror of the per-shard proposal payloads:
            // swapped with the mutex contents around each merge (and
            // swapped back after), so reading every shard's candidates
            // costs two lock rounds and zero allocation per cycle.
            let mut coord_sets: Vec<CandidateSet> =
                (0..k).map(|_| CandidateSet::default()).collect();
            loop {
                let in_arrival_window = feed.in_arrival_window(fixed_slots, slot);
                if !in_arrival_window {
                    // In-flight packets always land (and count as
                    // progress), so the idle cutoff waits for the fabric.
                    let done = !options.drain
                        || fabric.residual().0 == 0
                        || (idle_slots >= 2 && fabric.in_flight_total() == 0);
                    if done {
                        break;
                    }
                }
                fabric.comms.slot.store(slot, Ordering::Relaxed);
                if let Some(every) = options.checkpoint_every {
                    if slot > 0 && slot.is_multiple_of(every) {
                        checkpoints.push(capture_sharded(&fabric, &options, slot, idle_slots));
                    }
                }
                let (tx_before, moved_before) = fabric.progress();

                if horizon >= 1 {
                    do_phase(PH_LAND)?;
                }
                if in_arrival_window {
                    if let Feed::Stream(src) = &mut feed {
                        stage_stream_slot(&fabric, src, slot, &mut stage_scratch)?;
                    }
                    do_phase(PH_ARRIVAL)?;
                }

                for s in 0..speedup {
                    fabric.comms.cycle.store(s, Ordering::Relaxed);
                    fabric.refresh_snapshot();
                    do_phase(PH_PROPOSE)?;

                    // Deterministic merge (coordinator only, state frozen).
                    transfers.clear();
                    {
                        // Swap each shard's payload out of its mutex, merge
                        // over the owned mirror, then swap back — the
                        // workers are parked at the barrier, so the mutex
                        // contents are unobserved in between and end up
                        // exactly as published (the delta-publish handshake
                        // sees nothing).
                        for (cs, m) in coord_sets.iter_mut().zip(&fabric.comms.candidates) {
                            std::mem::swap(cs, &mut *lock(m));
                        }
                        let snap = fabric
                            .comms
                            .snapshot
                            .read()
                            .unwrap_or_else(|e| e.into_inner());
                        let ctx = MergeContext {
                            cfg,
                            partition: &fabric.partition,
                            outputs: &snap,
                            cycle: Cycle { slot, index: s },
                            candidates: &coord_sets,
                        };
                        policy.merge(&ctx, &mut merge_scratch, &mut transfers);
                        for (cs, m) in coord_sets.iter_mut().zip(&fabric.comms.candidates) {
                            std::mem::swap(cs, &mut *lock(m));
                        }
                    }
                    validate_transfers(
                        transfers.iter().map(|t| (t.input, t.output)),
                        cfg,
                        &mut validate_scratch,
                        true,
                        true,
                    )?;
                    if options.record {
                        recorded.push(transfers.iter().map(|t| (t.input.0, t.output.0)).collect());
                    }
                    // One short lock per transfer (uncontended: workers are
                    // parked), preserving per-owner push order.
                    for t in &transfers {
                        let owner = fabric.partition.input_owner(t.input.index());
                        lock(&fabric.comms.assignments[owner]).push(*t);
                    }

                    do_phase(PH_APPLY_POP)?;
                    if has_zero {
                        do_phase(PH_APPLY_INSERT)?;
                    }
                }

                do_phase(PH_TRANSMIT)?;
                post_slot_validate(&fabric, &options);
                audit_sharded_slot(&fabric);

                let (tx_after, moved_after) = fabric.progress();
                let progressed = tx_after != tx_before || moved_after != moved_before;
                idle_slots = if progressed { 0 } else { idle_slots + 1 };
                slot += 1;
            }
            final_slot = slot;
            Ok(())
        },
    );
    result?;

    let (report, final_state, admissions) =
        finish_run(&fabric, policy.name().to_string(), final_slot, &options);
    let schedule = options.record.then_some(RecordedSchedule {
        admissions,
        transfers: recorded,
        fabric_delay: options.fabric.max_delay(),
    });
    if cfg!(debug_assertions) {
        if let Some(s) = &schedule {
            if let Err(msg) = crate::invariants::check_schedule(s, cfg) {
                panic!("sharded run produced an invalid schedule transcript: {msg}");
            }
        }
    }
    Ok(ShardedOutcome {
        report,
        schedule,
        crossbar_schedule: None,
        final_state,
        checkpoints,
    })
}

/// Run a sharded buffered-crossbar policy over a recorded trace.
///
/// Produces a [`RunReport`] field-for-field equal to
/// [`run_crossbar`](crate::engine::run_crossbar) with the sequential twin
/// of `policy`, for every shard count and execution mode.
pub fn run_crossbar_sharded(
    cfg: &SwitchConfig,
    policy: &dyn CrossbarShardPolicy,
    trace: &Trace,
    options: ShardedOptions,
) -> Result<ShardedOutcome, PolicyError> {
    run_crossbar_sharded_feed(cfg, policy, Feed::Trace(trace), options)
}

/// Run a sharded buffered-crossbar policy against a live
/// [`StreamingSource`]; see [`run_cioq_sharded_streamed`].
pub fn run_crossbar_sharded_streamed(
    cfg: &SwitchConfig,
    policy: &dyn CrossbarShardPolicy,
    source: &mut StreamingSource,
    options: ShardedOptions,
) -> Result<ShardedOutcome, PolicyError> {
    run_crossbar_sharded_feed(cfg, policy, Feed::Stream(source), options)
}

fn run_crossbar_sharded_feed(
    cfg: &SwitchConfig,
    policy: &dyn CrossbarShardPolicy,
    mut feed: Feed<'_, '_>,
    options: ShardedOptions,
) -> Result<ShardedOutcome, PolicyError> {
    assert!(
        cfg.crossbar_capacity.is_some(),
        "run_crossbar_sharded requires a crossbar config"
    );
    options.fabric.assert_covers(cfg);
    let partition = Partition::new(options.shards, cfg.n_inputs, cfg.n_outputs);
    let k = partition.k();
    let (fixed_slots, arrivals, streamed) = feed.plumbing(cfg, &partition, &options)?;
    let comms = Comms::new(k, options.record, options.fabric.clone(), &partition, cfg);
    let fabric = Fabric {
        cfg,
        shards: (0..k)
            .map(|s| RwLock::new(ShardState::new(cfg, &partition, s)))
            .collect(),
        partition,
        arrivals,
        staged: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
        streamed,
        comms,
    };
    let mut workers: Vec<WorkerCtx<Box<dyn CrossbarShardWorker>>> = (0..k)
        .map(|s| {
            let mark_cap = 2 * fabric.partition.input_range(s).len() * cfg.speedup.max(1) as usize;
            WorkerCtx::new(policy.new_worker(s, &fabric.partition, cfg), k, mark_cap)
        })
        .collect();
    let (start_slot, start_idle) = options
        .resume_from
        .as_ref()
        .map_or((0, 0), |snap| seed_from_snapshot(&fabric, snap, &options));
    feed.check_resume(start_slot, &options);
    for (s, w) in workers.iter_mut().enumerate() {
        w.arrival_cursor = fabric.arrivals[s].partition_point(|&(_, p)| p.arrival < start_slot);
    }

    let speedup = cfg.speedup;
    let horizon = fabric.comms.horizon;
    let has_zero = fabric.comms.has_zero;
    let mut rec_in: Vec<Vec<(u16, u16)>> = Vec::new();
    let mut rec_out: Vec<Vec<(u16, u16)>> = Vec::new();
    let mut final_slot: SlotId = 0;
    let mut checkpoints: Vec<EngineSnapshot> = Vec::new();

    let result = drive(
        options.use_threads(),
        &fabric.comms,
        workers,
        PhaseScratch::new,
        |ph, s, w, scr| xbar_phase(ph, s, w, &fabric, scr),
        |do_phase| {
            let mut slot: SlotId = start_slot;
            let mut idle_slots = start_idle;
            let mut validate_scratch = MergeScratch::default();
            let mut stage_scratch: Vec<Packet> = Vec::new();
            // Pooled coordinator buffers (guards cleared each cycle, only
            // capacity persists across the loop).
            let mut in_guards: Vec<MutexGuard<'_, Vec<InputTransfer>>> = Vec::new();
            let mut proposals: Vec<OutputTransfer> = Vec::new();
            loop {
                let in_arrival_window = feed.in_arrival_window(fixed_slots, slot);
                if !in_arrival_window {
                    let done = !options.drain
                        || fabric.residual().0 == 0
                        || (idle_slots >= 2 && fabric.in_flight_total() == 0);
                    if done {
                        break;
                    }
                }
                fabric.comms.slot.store(slot, Ordering::Relaxed);
                if let Some(every) = options.checkpoint_every {
                    if slot > 0 && slot.is_multiple_of(every) {
                        checkpoints.push(capture_sharded(&fabric, &options, slot, idle_slots));
                    }
                }
                let (tx_before, moved_before) = fabric.progress();

                if horizon >= 1 {
                    do_phase(PH_LAND)?;
                }
                if in_arrival_window {
                    if let Feed::Stream(src) = &mut feed {
                        stage_stream_slot(&fabric, src, slot, &mut stage_scratch)?;
                    }
                    do_phase(PH_ARRIVAL)?;
                }

                for s in 0..speedup {
                    fabric.comms.cycle.store(s, Ordering::Relaxed);
                    do_phase(PH_PROPOSE_IN)?;
                    // Concatenated in shard order = ascending input port
                    // order; validate the ≤ 1-per-input-port property.
                    {
                        in_guards.extend(fabric.comms.in_assignments.iter().map(|m| lock(m)));
                        let valid = validate_transfers(
                            in_guards
                                .iter()
                                .flat_map(|g| g.iter().map(|t| (t.input, t.output))),
                            cfg,
                            &mut validate_scratch,
                            true,
                            false,
                        );
                        if options.record && valid.is_ok() {
                            rec_in.push(
                                in_guards
                                    .iter()
                                    .flat_map(|g| g.iter().map(|t| (t.input.0, t.output.0)))
                                    .collect(),
                            );
                        }
                        in_guards.clear();
                        valid?;
                    }
                    do_phase(PH_APPLY_IN)?;

                    // The output subphase reads output occupancy through
                    // the snapshot (virtual fullness on a delayed fabric);
                    // refresh it at the exact point the sequential engine
                    // would read live state.
                    fabric.refresh_snapshot();
                    do_phase(PH_PROPOSE_OUT)?;
                    // Output proposals go to the *row* owners for the pop
                    // step; validate ≤ 1 per output port first.
                    {
                        proposals.clear();
                        for mbox in &fabric.comms.out_assignments {
                            proposals.extend(lock(mbox).drain(..));
                        }
                        validate_transfers(
                            proposals.iter().map(|t| (t.input, t.output)),
                            cfg,
                            &mut validate_scratch,
                            false,
                            true,
                        )?;
                        if options.record {
                            rec_out
                                .push(proposals.iter().map(|t| (t.input.0, t.output.0)).collect());
                        }
                        for t in proposals.drain(..) {
                            let owner = fabric.partition.input_owner(t.input.index());
                            lock(&fabric.comms.out_assignments[owner]).push(t);
                        }
                    }
                    do_phase(PH_APPLY_OUT_POP)?;
                    if has_zero {
                        do_phase(PH_APPLY_INSERT)?;
                    }
                }

                do_phase(PH_TRANSMIT)?;
                post_slot_validate(&fabric, &options);
                audit_sharded_slot(&fabric);

                let (tx_after, moved_after) = fabric.progress();
                let progressed = tx_after != tx_before || moved_after != moved_before;
                idle_slots = if progressed { 0 } else { idle_slots + 1 };
                slot += 1;
            }
            final_slot = slot;
            Ok(())
        },
    );
    result?;

    let (report, final_state, admissions) =
        finish_run(&fabric, policy.name().to_string(), final_slot, &options);
    let crossbar_schedule = options.record.then_some(RecordedCrossbarSchedule {
        admissions,
        input_transfers: rec_in,
        output_transfers: rec_out,
        fabric_delay: options.fabric.max_delay(),
    });
    if cfg!(debug_assertions) {
        if let Some(s) = &crossbar_schedule {
            if let Err(msg) = crate::invariants::check_crossbar_schedule(s, cfg) {
                panic!("sharded run produced an invalid schedule transcript: {msg}");
            }
        }
    }
    Ok(ShardedOutcome {
        report,
        schedule: None,
        crossbar_schedule,
        final_state,
        checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_covering() {
        for (k, n) in [(1, 5), (2, 5), (3, 7), (4, 4), (4, 2), (5, 16)] {
            let p = Partition::new(k, n, n);
            let mut seen = 0usize;
            for s in 0..k {
                let r = p.input_range(s);
                assert_eq!(r.start, seen, "ranges are contiguous");
                for i in r.clone() {
                    assert_eq!(p.input_owner(i), s);
                    assert_eq!(p.output_owner(i), s);
                }
                seen = r.end;
            }
            assert_eq!(seen, n, "ranges cover all ports");
        }
    }

    #[test]
    fn merge_scratch_stamps_reset_in_o1() {
        let mut s = MergeScratch::default();
        s.begin(3, 3);
        assert!(!s.input_used(1));
        s.use_input(1);
        s.use_output(2);
        assert!(s.input_used(1) && s.output_used(2));
        s.begin(3, 3);
        assert!(!s.input_used(1) && !s.output_used(2), "new cycle resets");
    }
}
