//! The simulation engine: executes slots phase by phase, validating every
//! policy decision against the model of §1.3.

use crate::policy::{
    Admission, CioqPolicy, CrossbarPolicy, InputTransfer, OutputTransfer, PacketPick, PolicyError,
    Transfer, TransmitChoice,
};
use crate::source::{ArrivalSource, TraceSource};
use crate::state::SwitchState;
use crate::stats::{RunReport, StatsRecorder};
use crate::trace::Trace;
use crate::transport::{DelayCalendar, FabricLink, FabricSpec, InFlightPacket};
use crate::validate::check_state_invariants;
use cioq_model::{Cycle, Packet, PortId, SlotId, SwitchConfig};
use cioq_queues::SortedQueue;

/// Options controlling a run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Arrival slots to simulate; defaults to the source's horizon.
    pub slots: Option<SlotId>,
    /// After the arrival slots, keep running (arrival-free) slots until the
    /// switch is empty or no progress is made, so buffered packets can
    /// drain. On for benefit comparisons; off for steady-state studies.
    pub drain: bool,
    /// Run full structural invariant checks after every phase (slow; meant
    /// for tests).
    pub validate: bool,
    /// Resolved fabric transport: per-pair latencies between dispatch and
    /// landing. The default (uniform 0) is the paper's same-cycle fabric.
    /// Set via [`RunOptions::link`].
    pub fabric: FabricSpec,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            slots: None,
            drain: true,
            validate: cfg!(debug_assertions),
            fabric: FabricSpec::default(),
        }
    }
}

impl RunOptions {
    /// Use the given fabric transport (see [`crate::transport`]).
    pub fn link(mut self, link: &dyn FabricLink) -> Self {
        self.fabric = link.spec();
        self
    }
}

/// Reusable engine: owns the switch state, stats, and all scratch buffers.
/// One `Engine` runs one simulation; construct a new one per run (cheap).
pub struct Engine {
    state: SwitchState,
    stats: StatsRecorder,
    options: RunOptions,
    /// Per-pair delays (clone of `options.fabric`, kept hot for the
    /// per-transfer lookup).
    spec: FabricSpec,
    /// Landing calendar of a delayed fabric (`None` = every pair
    /// immediate).
    calendar: Option<DelayCalendar>,
    // Scratch (reused every slot — the hot path never allocates).
    arrivals: Vec<Packet>,
    transfers: Vec<Transfer>,
    in_transfers: Vec<InputTransfer>,
    out_transfers: Vec<OutputTransfer>,
    input_used: Vec<bool>,
    output_used: Vec<bool>,
}

impl Engine {
    /// New engine for one run of `config` under `options`.
    pub fn new(config: SwitchConfig, options: RunOptions) -> Self {
        let n_outputs = config.n_outputs;
        let n_inputs = config.n_inputs;
        let spec = options.fabric.clone();
        spec.assert_covers(&config);
        let horizon = spec.max_delay();
        Engine {
            state: SwitchState::new(config),
            stats: StatsRecorder::new(n_outputs),
            options,
            spec,
            calendar: (horizon >= 1).then(|| DelayCalendar::new(horizon)),
            arrivals: Vec::new(),
            transfers: Vec::new(),
            in_transfers: Vec::new(),
            out_transfers: Vec::new(),
            input_used: vec![false; n_inputs],
            output_used: vec![false; n_outputs],
        }
    }

    /// Run a CIOQ policy against an arrival source.
    pub fn run_cioq<P: CioqPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<RunReport, PolicyError> {
        let slots = self.run_cioq_loop(policy, source)?;
        Ok(self.finish(policy.name().to_string(), slots))
    }

    /// Like [`Engine::run_cioq`], additionally returning the final switch
    /// state (equivalence tests compare it queue for queue against the
    /// sharded engine's).
    pub fn run_cioq_capturing<P: CioqPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<(RunReport, SwitchState), PolicyError> {
        let slots = self.run_cioq_loop(policy, source)?;
        let state = self.state.clone();
        Ok((self.finish(policy.name().to_string(), slots), state))
    }

    fn run_cioq_loop<P: CioqPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<SlotId, PolicyError> {
        assert!(
            self.state.config().crossbar_capacity.is_none(),
            "run_cioq requires a CIOQ config (no crossbar capacity)"
        );
        let arrival_slots = self.options.slots.or_else(|| source.horizon()).unwrap_or(0);
        let speedup = self.state.config().speedup;

        let mut slot: SlotId = 0;
        let mut idle_slots = 0u32;
        loop {
            let in_arrival_window = slot < arrival_slots;
            if !in_arrival_window {
                // In-flight packets always land (and count as progress), so
                // the idle cutoff only applies once the fabric is empty.
                let done = !self.options.drain
                    || self.state.residual_count() == 0
                    || (idle_slots >= 2 && self.state.inflight.is_empty());
                if done {
                    break;
                }
            }
            self.state.slot = slot;
            let transmitted_before = self.stats.transmitted;
            let moved_before = self.stats.transferred + self.stats.transferred_to_crossbar;

            // --- Landing phase (delayed fabric only) ---
            self.land_due(slot)?;

            // --- Arrival phase ---
            if in_arrival_window {
                self.arrival_phase(policy_admit_cioq(policy), source, slot)?;
            }

            // --- Scheduling phase: ŝ cycles ---
            for s in 0..speedup {
                let cycle = Cycle { slot, index: s };
                self.transfers.clear();
                let mut transfers = std::mem::take(&mut self.transfers);
                policy.schedule(&self.state.view(), cycle, &mut transfers);
                // The policy consumed the change log; everything from here
                // on accumulates for its next scheduling call.
                self.state.changes.flush();
                self.apply_cioq_transfers(&transfers, cycle)?;
                self.transfers = transfers;
                self.post_phase_check();
            }

            // --- Transmission phase ---
            for j in 0..self.state.config().n_outputs {
                let output = PortId::from(j);
                let choice = policy.transmit(&self.state.view(), output);
                self.apply_transmit(output, choice)?;
            }
            self.post_phase_check();

            self.audit_slot();
            let progressed = self.stats.transmitted != transmitted_before
                || self.stats.transferred + self.stats.transferred_to_crossbar != moved_before;
            idle_slots = if progressed { 0 } else { idle_slots + 1 };
            slot += 1;
        }

        Ok(slot)
    }

    /// Run a buffered-crossbar policy against an arrival source.
    pub fn run_crossbar<P: CrossbarPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<RunReport, PolicyError> {
        let slots = self.run_crossbar_loop(policy, source)?;
        Ok(self.finish(policy.name().to_string(), slots))
    }

    /// Like [`Engine::run_crossbar`], additionally returning the final
    /// switch state.
    pub fn run_crossbar_capturing<P: CrossbarPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<(RunReport, SwitchState), PolicyError> {
        let slots = self.run_crossbar_loop(policy, source)?;
        let state = self.state.clone();
        Ok((self.finish(policy.name().to_string(), slots), state))
    }

    fn run_crossbar_loop<P: CrossbarPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<SlotId, PolicyError> {
        assert!(
            self.state.config().crossbar_capacity.is_some(),
            "run_crossbar requires a crossbar config"
        );
        let arrival_slots = self.options.slots.or_else(|| source.horizon()).unwrap_or(0);
        let speedup = self.state.config().speedup;

        let mut slot: SlotId = 0;
        let mut idle_slots = 0u32;
        loop {
            let in_arrival_window = slot < arrival_slots;
            if !in_arrival_window {
                let done = !self.options.drain
                    || self.state.residual_count() == 0
                    || (idle_slots >= 2 && self.state.inflight.is_empty());
                if done {
                    break;
                }
            }
            self.state.slot = slot;
            let transmitted_before = self.stats.transmitted;
            let moved_before = self.stats.transferred + self.stats.transferred_to_crossbar;

            // --- Landing phase (delayed fabric only) ---
            self.land_due(slot)?;

            // --- Arrival phase ---
            if in_arrival_window {
                self.arrival_phase(policy_admit_crossbar(policy), source, slot)?;
            }

            // --- Scheduling phase: ŝ cycles of (input, output) subphases ---
            for s in 0..speedup {
                let cycle = Cycle { slot, index: s };

                self.in_transfers.clear();
                let mut input_transfers = std::mem::take(&mut self.in_transfers);
                policy.schedule_input(&self.state.view(), cycle, &mut input_transfers);
                self.state.changes.flush();
                self.apply_input_subphase(&input_transfers)?;
                self.in_transfers = input_transfers;

                self.out_transfers.clear();
                let mut output_transfers = std::mem::take(&mut self.out_transfers);
                policy.schedule_output(&self.state.view(), cycle, &mut output_transfers);
                self.state.changes.flush();
                self.apply_output_subphase(&output_transfers, cycle)?;
                self.out_transfers = output_transfers;
                self.post_phase_check();
            }

            // --- Transmission phase ---
            for j in 0..self.state.config().n_outputs {
                let output = PortId::from(j);
                let choice = policy.transmit(&self.state.view(), output);
                self.apply_transmit(output, choice)?;
            }
            self.post_phase_check();

            self.audit_slot();
            let progressed = self.stats.transmitted != transmitted_before
                || self.stats.transferred + self.stats.transferred_to_crossbar != moved_before;
            idle_slots = if progressed { 0 } else { idle_slots + 1 };
            slot += 1;
        }

        Ok(slot)
    }

    // ---- phase mechanics ----

    fn arrival_phase(
        &mut self,
        mut admit: impl FnMut(&SwitchState, &Packet) -> Admission,
        source: &mut dyn ArrivalSource,
        slot: SlotId,
    ) -> Result<(), PolicyError> {
        self.arrivals.clear();
        let mut arrivals = std::mem::take(&mut self.arrivals);
        source.arrivals(&self.state.view(), slot, &mut arrivals);
        for p in &arrivals {
            self.check_ports(p.input, p.output)?;
            self.stats.on_arrival(p);
            let decision = admit(&self.state, p);
            if !matches!(decision, Admission::Reject) {
                self.state.note_voq(p.input, p.output);
            }
            let queue = self.state.input_queues.at_mut(p.input, p.output);
            match decision {
                Admission::Reject => self.stats.on_reject(p),
                Admission::Accept => {
                    if queue.is_full() {
                        return Err(PolicyError::QueueFull {
                            kind: "input",
                            input: Some(p.input),
                            output: p.output,
                        });
                    }
                    queue.insert(*p).expect("checked not full");
                    self.stats.on_accept();
                }
                Admission::AcceptPreemptingLeast => {
                    if !queue.is_full() {
                        return Err(PolicyError::PreemptOnNonFull {
                            kind: "input",
                            input: Some(p.input),
                            output: p.output,
                        });
                    }
                    let victim = queue.pop_tail().expect("full queue has a tail");
                    self.stats.on_preempt_input(&victim);
                    queue.insert(*p).expect("slot freed by preemption");
                    self.stats.on_accept();
                }
            }
        }
        self.arrivals = arrivals;
        self.post_phase_check();
        Ok(())
    }

    /// Insert a packet that has crossed the fabric into `Q_j`, preempting
    /// `l_j` iff the transfer allowed it — the single landing site shared
    /// by the immediate path and the delay line.
    fn deliver_to_output(
        &mut self,
        input: PortId,
        output: PortId,
        preempt_if_full: bool,
        packet: Packet,
    ) -> Result<(), PolicyError> {
        self.state.note_output(output);
        let queue = &mut self.state.output_queues[output.index()];
        if queue.is_full() {
            if !preempt_if_full {
                return Err(PolicyError::QueueFull {
                    kind: "output",
                    input: Some(input),
                    output,
                });
            }
            let victim = queue.pop_tail().expect("full queue has a tail");
            self.stats.on_preempt_output(&victim);
        }
        queue.insert(packet).expect("space ensured");
        self.stats.on_transfer();
        Ok(())
    }

    /// Drain the calendar bucket due at the start of `slot` into the
    /// output queues: the landing half of every dispatch whose pair
    /// latency expires now. The bucket arrives in the canonical landing
    /// order `(dispatch slot, dispatch cycle, output, input)` — per output
    /// queue that is dispatch order, so per-queue operation order matches
    /// the uniform fabric's. A `QueueFull` here is unreachable with
    /// reservation-correct policies (the virtual occupancy they scheduled
    /// against already counted this packet) but stays a loud failure.
    fn land_due(&mut self, slot: SlotId) -> Result<(), PolicyError> {
        let Some(cal) = &mut self.calendar else {
            return Ok(());
        };
        let due = cal.take_due(slot);
        if cfg!(debug_assertions) {
            if let Err(msg) = crate::invariants::check_canonical_order(&due, |l| {
                (l.slot, l.cycle, l.p.output, l.p.input)
            }) {
                panic!("engine landing-order invariant violated: {msg}");
            }
        }
        for l in &due {
            let (input, output) = (PortId(l.p.input), PortId(l.p.output));
            self.state
                .inflight
                .land(input.index(), output.index(), l.p.packet.value);
            self.deliver_to_output(input, output, l.p.preempt, l.p.packet)?;
        }
        if let Some(cal) = &mut self.calendar {
            cal.restore(due);
        }
        self.post_phase_check();
        Ok(())
    }

    /// Hand a popped packet to the fabric: insert into `Q_j` now (pairs at
    /// latency 0), or commit it to the calendar to land `delay(src, dst)`
    /// slots later.
    fn through_fabric(
        &mut self,
        input: PortId,
        output: PortId,
        preempt_if_full: bool,
        cycle: Cycle,
        packet: Packet,
    ) -> Result<(), PolicyError> {
        let d = self.spec.delay(input, output);
        if d >= 1 {
            let cal = self
                .calendar
                .as_mut()
                .expect("positive pair delay implies a calendar");
            self.state
                .inflight
                .dispatch(input.index(), output.index(), packet.value);
            cal.dispatch(
                cycle.slot,
                cycle.index,
                d,
                InFlightPacket {
                    input: input.0,
                    output: output.0,
                    preempt: preempt_if_full,
                    packet,
                },
            );
            return Ok(());
        }
        self.deliver_to_output(input, output, preempt_if_full, packet)
    }

    fn apply_cioq_transfers(
        &mut self,
        transfers: &[Transfer],
        cycle: Cycle,
    ) -> Result<(), PolicyError> {
        self.begin_matching_check();
        for t in transfers {
            self.check_ports(t.input, t.output)?;
            self.mark_input(t.input)?;
            self.mark_output(t.output)?;
        }
        for t in transfers {
            self.state.note_voq(t.input, t.output);
            let queue = self.state.input_queues.at_mut(t.input, t.output);
            let packet = take_pick(queue, t.pick).ok_or(match t.pick {
                PacketPick::ById(id) if !queue.is_empty() => PolicyError::NoSuchPacket { id },
                _ => PolicyError::EmptyQueue {
                    kind: "input",
                    input: Some(t.input),
                    output: t.output,
                },
            })?;
            self.through_fabric(t.input, t.output, t.preempt_if_full, cycle, packet)?;
        }
        Ok(())
    }

    fn apply_input_subphase(&mut self, transfers: &[InputTransfer]) -> Result<(), PolicyError> {
        self.begin_matching_check();
        for t in transfers {
            self.check_ports(t.input, t.output)?;
            // Input subphase: ≤ 1 transfer per *input port* only.
            self.mark_input(t.input)?;
        }
        for t in transfers {
            self.state.note_voq(t.input, t.output);
            self.state.note_xbar(t.input, t.output);
            let queue = self.state.input_queues.at_mut(t.input, t.output);
            let packet = take_pick(queue, t.pick).ok_or(match t.pick {
                PacketPick::ById(id) if !queue.is_empty() => PolicyError::NoSuchPacket { id },
                _ => PolicyError::EmptyQueue {
                    kind: "input",
                    input: Some(t.input),
                    output: t.output,
                },
            })?;
            let xbar = self
                .state
                .crossbar_queues
                .as_mut()
                .expect("invariant: crossbar queues exist, asserted at run entry")
                .at_mut(t.input, t.output);
            if xbar.is_full() {
                if !t.preempt_if_full {
                    return Err(PolicyError::QueueFull {
                        kind: "crossbar",
                        input: Some(t.input),
                        output: t.output,
                    });
                }
                let victim = xbar.pop_tail().expect("full queue has a tail");
                self.stats.on_preempt_crossbar(&victim);
            }
            xbar.insert(packet).expect("space ensured");
            self.stats.on_transfer_to_crossbar();
        }
        Ok(())
    }

    fn apply_output_subphase(
        &mut self,
        transfers: &[OutputTransfer],
        cycle: Cycle,
    ) -> Result<(), PolicyError> {
        self.begin_matching_check();
        for t in transfers {
            self.check_ports(t.input, t.output)?;
            // Output subphase: ≤ 1 transfer per *output port* only.
            self.mark_output(t.output)?;
        }
        for t in transfers {
            self.state.note_xbar(t.input, t.output);
            let xbar = self
                .state
                .crossbar_queues
                .as_mut()
                .expect("invariant: crossbar queues exist, asserted at run entry")
                .at_mut(t.input, t.output);
            let packet = take_pick(xbar, t.pick).ok_or(match t.pick {
                PacketPick::ById(id) if !xbar.is_empty() => PolicyError::NoSuchPacket { id },
                _ => PolicyError::EmptyQueue {
                    kind: "crossbar",
                    input: Some(t.input),
                    output: t.output,
                },
            })?;
            self.through_fabric(t.input, t.output, t.preempt_if_full, cycle, packet)?;
        }
        Ok(())
    }

    fn apply_transmit(
        &mut self,
        output: PortId,
        choice: TransmitChoice,
    ) -> Result<(), PolicyError> {
        match choice {
            TransmitChoice::Hold => Ok(()),
            TransmitChoice::Send(pick) => {
                let slot = self.state.slot;
                self.state.note_output(output);
                let queue = &mut self.state.output_queues[output.index()];
                let packet = take_pick(queue, pick).ok_or(match pick {
                    PacketPick::ById(id) if !queue.is_empty() => PolicyError::NoSuchPacket { id },
                    _ => PolicyError::TransmitFromEmpty { output },
                })?;
                self.stats.on_transmit(&packet, slot, output.index());
                Ok(())
            }
        }
    }

    // ---- validation helpers ----

    fn check_ports(&self, input: PortId, output: PortId) -> Result<(), PolicyError> {
        if input.index() >= self.state.config().n_inputs {
            return Err(PolicyError::PortOutOfRange {
                side: "input",
                port: input.index(),
            });
        }
        if output.index() >= self.state.config().n_outputs {
            return Err(PolicyError::PortOutOfRange {
                side: "output",
                port: output.index(),
            });
        }
        Ok(())
    }

    fn begin_matching_check(&mut self) {
        self.input_used.iter_mut().for_each(|b| *b = false);
        self.output_used.iter_mut().for_each(|b| *b = false);
    }

    fn mark_input(&mut self, input: PortId) -> Result<(), PolicyError> {
        let slot = &mut self.input_used[input.index()];
        if *slot {
            return Err(PolicyError::DuplicateInput { input });
        }
        *slot = true;
        Ok(())
    }

    fn mark_output(&mut self, output: PortId) -> Result<(), PolicyError> {
        let slot = &mut self.output_used[output.index()];
        if *slot {
            return Err(PolicyError::DuplicateOutput { output });
        }
        *slot = true;
        Ok(())
    }

    fn post_phase_check(&self) {
        if self.options.validate {
            if let Err(msg) = check_state_invariants(&self.state) {
                panic!("engine invariant violated: {msg}");
            }
        }
    }

    /// Per-slot invariant audit (see [`crate::invariants`]): conservation
    /// and in-flight/calendar consistency, debug builds only — every
    /// equivalence suite run under `cargo test` exercises it for free.
    fn audit_slot(&self) {
        if cfg!(debug_assertions) {
            if let Err(msg) = crate::invariants::audit_engine_slot(
                &self.state,
                &self.stats,
                self.calendar.as_ref(),
            ) {
                panic!(
                    "engine invariant violated at slot {}: {msg}",
                    self.state.slot
                );
            }
        }
    }

    fn finish(self, policy: String, slots: SlotId) -> RunReport {
        let residual_count = self.state.residual_count();
        let residual_value = self.state.residual_value();
        let mut report = self
            .stats
            .finish(policy, slots, residual_count, residual_value);
        report.fabric_delay = self.spec.max_delay();
        debug_assert_eq!(report.check_conservation(), Ok(()));
        report
    }
}

pub(crate) fn take_pick(queue: &mut SortedQueue, pick: PacketPick) -> Option<Packet> {
    match pick {
        PacketPick::Greatest => queue.pop_head(),
        PacketPick::Least => queue.pop_tail(),
        PacketPick::ById(id) => queue.remove(id),
    }
}

// Small adapters so `arrival_phase` is shared between both policy families
// without trait-object gymnastics.
fn policy_admit_cioq<P: CioqPolicy + ?Sized>(
    policy: &mut P,
) -> impl FnMut(&SwitchState, &Packet) -> Admission + '_ {
    move |state, p| policy.admit(&state.view(), p)
}

fn policy_admit_crossbar<P: CrossbarPolicy + ?Sized>(
    policy: &mut P,
) -> impl FnMut(&SwitchState, &Packet) -> Admission + '_ {
    move |state, p| policy.admit(&state.view(), p)
}

/// Run a CIOQ policy over a recorded trace with default options
/// (drain until empty, validate in debug builds).
pub fn run_cioq<P: CioqPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
) -> Result<RunReport, PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default()).run_cioq(policy, &mut source)
}

/// Run a CIOQ policy over a recorded trace, returning both the report and
/// the final switch state (default options).
pub fn run_cioq_with_final_state<P: CioqPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
) -> Result<(RunReport, crate::state::SwitchState), PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default()).run_cioq_capturing(policy, &mut source)
}

/// Run a crossbar policy over a recorded trace, returning both the report
/// and the final switch state (default options).
pub fn run_crossbar_with_final_state<P: CrossbarPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
) -> Result<(RunReport, crate::state::SwitchState), PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default()).run_crossbar_capturing(policy, &mut source)
}

/// Run a CIOQ policy against an arbitrary (possibly adaptive) source for
/// `slots` arrival slots.
pub fn run_cioq_with_source<P: CioqPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    source: &mut dyn ArrivalSource,
    slots: SlotId,
) -> Result<RunReport, PolicyError> {
    let options = RunOptions {
        slots: Some(slots),
        ..RunOptions::default()
    };
    Engine::new(config.clone(), options).run_cioq(policy, source)
}

/// Run a CIOQ policy over a recorded trace through the given fabric
/// transport (default options otherwise). `Immediate` reproduces
/// [`run_cioq`] exactly.
pub fn run_cioq_linked<P: CioqPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
    link: &dyn crate::transport::FabricLink,
) -> Result<RunReport, PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default().link(link)).run_cioq(policy, &mut source)
}

/// Run a crossbar policy over a recorded trace through the given fabric
/// transport (default options otherwise).
pub fn run_crossbar_linked<P: CrossbarPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
    link: &dyn crate::transport::FabricLink,
) -> Result<RunReport, PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default().link(link)).run_crossbar(policy, &mut source)
}

/// Run a crossbar policy over a recorded trace with default options.
pub fn run_crossbar<P: CrossbarPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
) -> Result<RunReport, PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default()).run_crossbar(policy, &mut source)
}

/// Run a crossbar policy against an arbitrary source for `slots` slots.
pub fn run_crossbar_with_source<P: CrossbarPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    source: &mut dyn ArrivalSource,
    slots: SlotId,
) -> Result<RunReport, PolicyError> {
    let options = RunOptions {
        slots: Some(slots),
        ..RunOptions::default()
    };
    Engine::new(config.clone(), options).run_crossbar(policy, source)
}
