//! The simulation engine: executes slots phase by phase, validating every
//! policy decision against the model of §1.3.

use crate::fault::{FaultKind, FaultPlan, FaultRuntime};
use crate::policy::{
    Admission, CioqPolicy, CrossbarPolicy, InputTransfer, OutputTransfer, PacketPick, PolicyError,
    Transfer, TransmitChoice,
};
use crate::snapshot::{EngineSnapshot, SnapLanding, SnapshotError};
use crate::source::{ArrivalSource, TraceSource};
use crate::state::SwitchState;
use crate::stats::{RunReport, StatsRecorder, WindowedStats};
use crate::trace::Trace;
use crate::transport::{DelayCalendar, FabricLink, FabricSpec, InFlightPacket, Landing};
use crate::validate::check_state_invariants;
use cioq_model::{ConfigError, Cycle, Packet, PortId, SlotId, SwitchConfig};
use cioq_queues::SortedQueue;

/// Options controlling a run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Arrival slots to simulate; defaults to the source's horizon.
    pub slots: Option<SlotId>,
    /// After the arrival slots, keep running (arrival-free) slots until the
    /// switch is empty or no progress is made, so buffered packets can
    /// drain. On for benefit comparisons; off for steady-state studies.
    pub drain: bool,
    /// Run full structural invariant checks after every phase (slow; meant
    /// for tests).
    pub validate: bool,
    /// Resolved fabric transport: per-pair latencies between dispatch and
    /// landing. The default (uniform 0) is the paper's same-cycle fabric.
    /// Set via [`RunOptions::link`].
    pub fabric: FabricSpec,
    /// Take an [`EngineSnapshot`] at the top of every slot `k` with
    /// `k > 0 && k % n == 0` (before that slot's fault releases, landings
    /// and arrivals). Collected snapshots come back through
    /// [`Engine::run_cioq_full`] / [`Engine::run_crossbar_full`].
    pub checkpoint_every: Option<SlotId>,
    /// Maintain an O(window) sliding per-slot stats window alongside the
    /// cumulative recorder (see [`WindowedStats`]); `None` keeps the
    /// full-history default.
    pub stats_window: Option<usize>,
    /// Deterministic fault schedule layered onto the fabric transport
    /// (latency spikes, link-down windows with bounded retransmit queues).
    /// `None` is the fault-free fabric of the paper.
    pub faults: Option<FaultPlan>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            slots: None,
            drain: true,
            validate: cfg!(debug_assertions),
            fabric: FabricSpec::default(),
            checkpoint_every: None,
            stats_window: None,
            faults: None,
        }
    }
}

impl RunOptions {
    /// Use the given fabric transport (see [`crate::transport`]).
    pub fn link(mut self, link: &dyn FabricLink) -> Self {
        self.fabric = link.spec();
        self
    }

    /// Check the options themselves for nonsense values, so misconfigured
    /// runs fail at construction with a [`ConfigError`] instead of
    /// asserting deep inside the run (a `stats_window` of 0 used to abort
    /// in `WindowedStats::new`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.stats_window == Some(0) {
            return Err(ConfigError::ZeroStatsWindow);
        }
        if self.checkpoint_every == Some(0) {
            return Err(ConfigError::ZeroCheckpointCadence);
        }
        Ok(())
    }

    /// Calendar horizon a run under these options needs: the largest pair
    /// latency plus the worst fault-induced extra, at least 1 when
    /// link-down retransmits can occur (a released packet always rides the
    /// calendar at delay ≥ 1).
    fn horizon(&self) -> SlotId {
        let mut horizon =
            self.fabric.max_delay() + self.faults.as_ref().map_or(0, |p| p.max_extra());
        if self.faults.as_ref().is_some_and(|p| p.has_link_down()) {
            horizon = horizon.max(1);
        }
        horizon
    }
}

/// Everything a run produces: the report, the final switch state
/// (equivalence tests compare it queue for queue), and the checkpoints the
/// `checkpoint_every` option collected.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// End-of-run statistics.
    pub report: RunReport,
    /// The switch state the run ended in.
    pub final_state: SwitchState,
    /// Snapshots taken at every `checkpoint_every` boundary, in slot order.
    pub checkpoints: Vec<EngineSnapshot>,
}

/// Reusable engine: owns the switch state, stats, and all scratch buffers.
/// One `Engine` runs one simulation; construct a new one per run (cheap).
pub struct Engine {
    state: SwitchState,
    stats: StatsRecorder,
    options: RunOptions,
    /// Per-pair delays (clone of `options.fabric`, kept hot for the
    /// per-transfer lookup).
    spec: FabricSpec,
    /// Landing calendar of a delayed fabric (`None` = every pair
    /// immediate and no fault plan needs one).
    calendar: Option<DelayCalendar>,
    /// Fault-injection state (`None` = fault-free run).
    faults: Option<FaultRuntime>,
    /// Sliding per-slot stats window, when enabled.
    window: Option<WindowedStats>,
    /// Slot the run (re)starts at: 0 fresh, the checkpoint slot restored.
    start_slot: SlotId,
    /// No-progress streak entering `start_slot` (drain cutoff state).
    start_idle: u32,
    /// Snapshots collected by the `checkpoint_every` option, in slot order.
    checkpoints: Vec<EngineSnapshot>,
    // Scratch (reused every slot — the hot path never allocates).
    arrivals: Vec<Packet>,
    transfers: Vec<Transfer>,
    in_transfers: Vec<InputTransfer>,
    out_transfers: Vec<OutputTransfer>,
    input_used: Vec<bool>,
    output_used: Vec<bool>,
}

/// Largest retransmit FIFO any link-down window in `faults` allows on a
/// single pair (0 without faults): the per-pair burst a release slot can
/// add on top of regular dispatch traffic.
fn max_retransmit_cap(faults: Option<&FaultPlan>) -> usize {
    faults.map_or(0, |p| {
        p.events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkDown { retransmit_cap } => Some(retransmit_cap),
                FaultKind::LatencySpike { .. } => None,
            })
            .max()
            .unwrap_or(0)
    })
}

/// Hard occupancy bound of one calendar bucket. A bucket holds every
/// landing due at one slot; with heterogeneous pair delays those can be
/// dispatched from up to `horizon` distinct source slots, each
/// contributing at most one transfer per output per cycle across
/// `speedup` cycles — plus, on a faulted run, a worst-case simultaneous
/// release of every pair's retransmit FIFO into the same landing slot.
fn per_bucket_bound(config: &SwitchConfig, horizon: SlotId, faults: Option<&FaultPlan>) -> usize {
    let ports = config.n_inputs.min(config.n_outputs);
    let cap = max_retransmit_cap(faults);
    ports * config.speedup.max(1) as usize * horizon.max(1) as usize
        + config.n_inputs * config.n_outputs * cap
}

/// Hard bound on packets simultaneously in flight toward one output:
/// one dispatch per cycle living at most `horizon` slots, plus every
/// input's retransmit FIFO for that output released at once.
fn per_output_inflight_bound(
    config: &SwitchConfig,
    horizon: SlotId,
    faults: Option<&FaultPlan>,
) -> usize {
    config.speedup.max(1) as usize * horizon.max(1) as usize
        + config.n_inputs * max_retransmit_cap(faults)
}

impl Engine {
    /// New engine for one run of `config` under `options`. Panics on
    /// invalid options; use [`Engine::try_new`] to surface the
    /// [`ConfigError`] instead.
    pub fn new(config: SwitchConfig, options: RunOptions) -> Self {
        Self::try_new(config, options).unwrap_or_else(|e| panic!("invalid run options: {e}"))
    }

    /// New engine for one run of `config` under `options`, validating the
    /// options first (e.g. a zero-slot stats window or checkpoint cadence
    /// is [`ConfigError`], not a panic mid-run).
    pub fn try_new(config: SwitchConfig, options: RunOptions) -> Result<Self, ConfigError> {
        options.validate()?;
        let n_outputs = config.n_outputs;
        let n_inputs = config.n_inputs;
        let spec = options.fabric.clone();
        spec.assert_covers(&config);
        let horizon = options.horizon();
        let faults = options
            .faults
            .clone()
            .map(|p| FaultRuntime::new(p, n_inputs, n_outputs));
        let window = options.stats_window.map(WindowedStats::new);
        // Per-slot dispatch bound: one transfer per output per cycle,
        // `speedup` cycles per slot, plus the worst single-slot retransmit
        // release a fault plan can produce — pre-reserving it keeps the
        // slot loop from ever growing a calendar bucket or the in-flight
        // accounting.
        let per_bucket = per_bucket_bound(&config, horizon, options.faults.as_ref());
        let per_output = per_output_inflight_bound(&config, horizon, options.faults.as_ref());
        let mut state = SwitchState::new(config);
        if horizon >= 1 {
            state.inflight.reserve(per_output);
        }
        Ok(Engine {
            state,
            stats: StatsRecorder::new(n_outputs),
            options,
            spec,
            calendar: (horizon >= 1).then(|| DelayCalendar::with_reserve(horizon, per_bucket)),
            faults,
            window,
            start_slot: 0,
            start_idle: 0,
            checkpoints: Vec::new(),
            arrivals: Vec::new(),
            transfers: Vec::new(),
            in_transfers: Vec::new(),
            out_transfers: Vec::new(),
            input_used: vec![false; n_inputs],
            output_used: vec![false; n_outputs],
        })
    }

    /// Rebuild an engine from a checkpoint so the run continues exactly
    /// where [`Engine::snapshot`] (or `checkpoint_every`) captured it:
    /// driven by the same trace (resume the source with
    /// [`TraceSource::resume_at`]) and options, the continuation is
    /// byte-identical to the uninterrupted run.
    ///
    /// `options` must describe the same fabric the snapshot was taken
    /// under, and must supply a fault plan if the snapshot holds
    /// fault-retransmit packets; anything else is
    /// [`SnapshotError::Incompatible`]. Malformed snapshots (queue
    /// overflow, out-of-range ports, landings outside the calendar
    /// horizon) are [`SnapshotError::Format`].
    pub fn restore(snap: &EngineSnapshot, options: RunOptions) -> Result<Self, SnapshotError> {
        options
            .validate()
            .map_err(|e| SnapshotError::Incompatible(format!("invalid run options: {e}")))?;
        let config = snap.config.clone();
        let (n_inputs, n_outputs) = (config.n_inputs, config.n_outputs);
        if options.fabric != snap.fabric {
            return Err(SnapshotError::Incompatible(format!(
                "snapshot was taken under fabric `{}` but options carry `{}`",
                snap.fabric.label(),
                options.fabric.label()
            )));
        }
        if let Some(t) = options.fabric.topology() {
            if t.n_inputs() != n_inputs || t.n_outputs() != n_outputs {
                return Err(SnapshotError::Incompatible(format!(
                    "topology covers {}x{} ports but the switch is {n_inputs}x{n_outputs}",
                    t.n_inputs(),
                    t.n_outputs()
                )));
            }
        }
        if !snap.held.is_empty() && options.faults.is_none() {
            return Err(SnapshotError::Incompatible(
                "snapshot holds fault-retransmit packets but no fault plan was supplied".into(),
            ));
        }
        if snap.stats.per_output_transmitted.len() != n_outputs {
            return Err(SnapshotError::Format(
                "per-output stats do not match the switch geometry".into(),
            ));
        }
        if snap.input_queues.len() != n_inputs * n_outputs
            || snap.output_queues.len() != n_outputs
            || snap
                .crossbar_queues
                .as_ref()
                .is_some_and(|qs| qs.len() != n_inputs * n_outputs)
            || snap.crossbar_queues.is_some() != config.crossbar_capacity.is_some()
        {
            return Err(SnapshotError::Format(
                "queue layout does not match the switch geometry".into(),
            ));
        }

        let mut state = SwitchState::new(config);
        let overflow = |_| SnapshotError::Format("serialized queue exceeds its capacity".into());
        for (cell, packets) in snap.input_queues.iter().enumerate() {
            let q = state
                .input_queues
                .get_mut(cell / n_outputs, cell % n_outputs);
            for p in packets {
                q.insert(*p).map_err(overflow)?;
            }
        }
        if let Some(cells) = &snap.crossbar_queues {
            let grid = state
                .crossbar_queues
                .as_mut()
                .expect("layout checked above");
            for (cell, packets) in cells.iter().enumerate() {
                let q = grid.get_mut(cell / n_outputs, cell % n_outputs);
                for p in packets {
                    q.insert(*p).map_err(overflow)?;
                }
            }
        }
        for (j, packets) in snap.output_queues.iter().enumerate() {
            for p in packets {
                state.output_queues[j].insert(*p).map_err(overflow)?;
            }
        }
        state.slot = snap.slot;

        let horizon = options.horizon();
        let per_bucket = per_bucket_bound(&snap.config, horizon, options.faults.as_ref());
        let mut calendar = (horizon >= 1).then(|| DelayCalendar::with_reserve(horizon, per_bucket));
        if horizon >= 1 {
            state.inflight.reserve(per_output_inflight_bound(
                &snap.config,
                horizon,
                options.faults.as_ref(),
            ));
        }
        for l in &snap.landings {
            if l.input as usize >= n_inputs || l.output as usize >= n_outputs {
                return Err(SnapshotError::Format(format!(
                    "landing on pair ({} -> {}) outside a {n_inputs}x{n_outputs} switch",
                    l.input, l.output
                )));
            }
            let cal = calendar.as_mut().ok_or_else(|| {
                SnapshotError::Incompatible(
                    "snapshot holds in-flight packets but the options model an immediate fabric"
                        .into(),
                )
            })?;
            if l.land_slot < snap.slot || l.land_slot >= snap.slot + horizon {
                return Err(SnapshotError::Format(format!(
                    "landing at slot {} outside the calendar window [{}, {})",
                    l.land_slot,
                    snap.slot,
                    snap.slot + horizon
                )));
            }
            state
                .inflight
                .dispatch(l.input as usize, l.output as usize, l.packet.value);
            cal.insert_pending(
                l.land_slot,
                Landing {
                    slot: l.slot,
                    cycle: l.cycle,
                    p: InFlightPacket {
                        input: l.input,
                        output: l.output,
                        preempt: l.preempt,
                        packet: l.packet,
                    },
                },
            );
        }
        let mut faults = options
            .faults
            .clone()
            .map(|p| FaultRuntime::new(p, n_inputs, n_outputs));
        for (i, j, preempt, packet) in &snap.held {
            if *i as usize >= n_inputs || *j as usize >= n_outputs {
                return Err(SnapshotError::Format(format!(
                    "held packet on pair ({i} -> {j}) outside a {n_inputs}x{n_outputs} switch"
                )));
            }
            let rt = faults.as_mut().expect("held implies a plan, checked above");
            state
                .inflight
                .dispatch(*i as usize, *j as usize, packet.value);
            rt.hold(*i, *j, *preempt, *packet);
        }

        let stats = snap.stats.clone();
        let window = match (&snap.window, options.stats_window) {
            (Some((w, _)), Some(opt)) if opt != *w => {
                return Err(SnapshotError::Incompatible(format!(
                    "snapshot carries a {w}-slot stats window but options ask for {opt}"
                )));
            }
            (Some((w, entries)), _) => Some(
                WindowedStats::from_parts(*w, entries.clone(), &stats)
                    .map_err(SnapshotError::Format)?,
            ),
            (None, Some(w)) => Some(WindowedStats::new(w)),
            (None, None) => None,
        };
        crate::invariants::check_restored_residual(
            &state,
            snap.residual_count,
            snap.residual_value,
        )
        .map_err(SnapshotError::Format)?;

        let spec = options.fabric.clone();
        Ok(Engine {
            state,
            stats,
            options,
            spec,
            calendar,
            faults,
            window,
            start_slot: snap.slot,
            start_idle: snap.idle_slots,
            checkpoints: Vec::new(),
            arrivals: Vec::new(),
            transfers: Vec::new(),
            in_transfers: Vec::new(),
            out_transfers: Vec::new(),
            input_used: vec![false; n_inputs],
            output_used: vec![false; n_outputs],
        })
    }

    /// Capture the engine's complete state at the slot boundary it
    /// currently sits at (fresh, just restored, or between runs).
    /// Restoring the result reproduces this engine exactly; in particular
    /// `Engine::restore(&e.snapshot(), opts).snapshot()` is byte-identical.
    pub fn snapshot(&self) -> EngineSnapshot {
        self.capture(self.start_idle)
    }

    /// Build a snapshot of the current slot boundary with the given
    /// no-progress streak (the loop's live `idle_slots` when
    /// checkpointing mid-run).
    fn capture(&self, idle_slots: u32) -> EngineSnapshot {
        let queue_cells = |qs: &mut dyn Iterator<Item = &SortedQueue>| -> Vec<Vec<Packet>> {
            qs.map(|q| q.iter().copied().collect()).collect()
        };
        let input_queues = queue_cells(&mut self.state.input_queues.iter().map(|(_, _, q)| q));
        let crossbar_queues = self
            .state
            .crossbar_queues
            .as_ref()
            .map(|g| queue_cells(&mut g.iter().map(|(_, _, q)| q)));
        let output_queues = queue_cells(&mut self.state.output_queues.iter());
        let mut landings = Vec::new();
        if let Some(cal) = &self.calendar {
            cal.for_each_pending_at(self.state.slot, |land_slot, l| {
                landings.push(SnapLanding {
                    land_slot,
                    slot: l.slot,
                    cycle: l.cycle,
                    input: l.p.input,
                    output: l.p.output,
                    preempt: l.p.preempt,
                    packet: l.p.packet,
                });
            });
        }
        landings.sort_unstable_by_key(|l| (l.land_slot, l.slot, l.cycle, l.output, l.input));
        let mut held = Vec::new();
        if let Some(f) = &self.faults {
            f.for_each_held(|i, j, preempt, p| held.push((i, j, preempt, *p)));
        }
        EngineSnapshot {
            config: self.state.config().clone(),
            fabric: self.spec.clone(),
            slot: self.state.slot(),
            idle_slots,
            input_queues,
            crossbar_queues,
            output_queues,
            landings,
            held,
            stats: self.stats.clone(),
            window: self
                .window
                .as_ref()
                .map(|w| (w.window(), w.entries().copied().collect())),
            residual_count: self.state.residual_count(),
            residual_value: self.state.residual_value(),
        }
    }

    /// Run a CIOQ policy against an arrival source.
    pub fn run_cioq<P: CioqPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<RunReport, PolicyError> {
        let slots = self.run_cioq_loop(policy, source)?;
        Ok(self.finish(policy.name().to_string(), slots))
    }

    /// Like [`Engine::run_cioq`], additionally returning the final switch
    /// state (equivalence tests compare it queue for queue against the
    /// sharded engine's).
    pub fn run_cioq_capturing<P: CioqPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<(RunReport, SwitchState), PolicyError> {
        let slots = self.run_cioq_loop(policy, source)?;
        let state = self.state.clone();
        Ok((self.finish(policy.name().to_string(), slots), state))
    }

    /// Like [`Engine::run_cioq`], returning the report, final state and
    /// every checkpoint the `checkpoint_every` option collected.
    pub fn run_cioq_full<P: CioqPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<RunOutcome, PolicyError> {
        let slots = self.run_cioq_loop(policy, source)?;
        let final_state = self.state.clone();
        let checkpoints = std::mem::take(&mut self.checkpoints);
        Ok(RunOutcome {
            report: self.finish(policy.name().to_string(), slots),
            final_state,
            checkpoints,
        })
    }

    fn run_cioq_loop<P: CioqPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<SlotId, PolicyError> {
        assert!(
            self.state.config().crossbar_capacity.is_none(),
            "run_cioq requires a CIOQ config (no crossbar capacity)"
        );
        // A fixed horizon (explicit slot budget or a source that knows its
        // length) closes the arrival window by slot count; an open-ended
        // source (streaming) is asked each slot and may block until it
        // knows whether more arrivals are coming.
        let fixed_slots = self.options.slots.or_else(|| source.horizon());
        let speedup = self.state.config().speedup;

        let mut slot: SlotId = self.start_slot;
        let mut idle_slots = self.start_idle;
        loop {
            let in_arrival_window = match fixed_slots {
                Some(n) => slot < n,
                None => source.in_arrival_window(slot),
            };
            if !in_arrival_window {
                // In-flight packets always land (and count as progress), so
                // the idle cutoff only applies once the fabric is empty.
                let done = !self.options.drain
                    || self.state.residual_count() == 0
                    || (idle_slots >= 2 && self.state.inflight.is_empty());
                if done {
                    break;
                }
            }
            self.state.slot = slot;
            self.checkpoint_if_due(slot, idle_slots);
            let transmitted_before = self.stats.transmitted;
            let moved_before = self.stats.transferred + self.stats.transferred_to_crossbar;

            // --- Fault release (link-down windows that closed) ---
            self.release_retransmits(slot);

            // --- Landing phase (delayed fabric only) ---
            self.land_due(slot)?;

            // --- Arrival phase ---
            if in_arrival_window {
                self.arrival_phase(policy_admit_cioq(policy), source, slot)?;
            }

            // --- Scheduling phase: ŝ cycles ---
            for s in 0..speedup {
                let cycle = Cycle { slot, index: s };
                self.transfers.clear();
                let mut transfers = std::mem::take(&mut self.transfers);
                policy.schedule(&self.state.view(), cycle, &mut transfers);
                // The policy consumed the change log; everything from here
                // on accumulates for its next scheduling call.
                self.state.changes.flush();
                self.apply_cioq_transfers(&transfers, cycle)?;
                self.transfers = transfers;
                self.post_phase_check();
            }

            // --- Transmission phase ---
            for j in 0..self.state.config().n_outputs {
                let output = PortId::from(j);
                let choice = policy.transmit(&self.state.view(), output);
                self.apply_transmit(output, choice)?;
            }
            self.post_phase_check();

            self.audit_slot();
            if let Some(w) = &mut self.window {
                w.roll(slot, &self.stats);
            }
            let progressed = self.stats.transmitted != transmitted_before
                || self.stats.transferred + self.stats.transferred_to_crossbar != moved_before;
            idle_slots = if progressed { 0 } else { idle_slots + 1 };
            slot += 1;
        }

        Ok(slot)
    }

    /// Run a buffered-crossbar policy against an arrival source.
    pub fn run_crossbar<P: CrossbarPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<RunReport, PolicyError> {
        let slots = self.run_crossbar_loop(policy, source)?;
        Ok(self.finish(policy.name().to_string(), slots))
    }

    /// Like [`Engine::run_crossbar`], additionally returning the final
    /// switch state.
    pub fn run_crossbar_capturing<P: CrossbarPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<(RunReport, SwitchState), PolicyError> {
        let slots = self.run_crossbar_loop(policy, source)?;
        let state = self.state.clone();
        Ok((self.finish(policy.name().to_string(), slots), state))
    }

    /// Like [`Engine::run_crossbar`], returning the report, final state
    /// and every checkpoint the `checkpoint_every` option collected.
    pub fn run_crossbar_full<P: CrossbarPolicy + ?Sized>(
        mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<RunOutcome, PolicyError> {
        let slots = self.run_crossbar_loop(policy, source)?;
        let final_state = self.state.clone();
        let checkpoints = std::mem::take(&mut self.checkpoints);
        Ok(RunOutcome {
            report: self.finish(policy.name().to_string(), slots),
            final_state,
            checkpoints,
        })
    }

    fn run_crossbar_loop<P: CrossbarPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        source: &mut dyn ArrivalSource,
    ) -> Result<SlotId, PolicyError> {
        assert!(
            self.state.config().crossbar_capacity.is_some(),
            "run_crossbar requires a crossbar config"
        );
        // See run_cioq_loop: fixed horizon closes the window by count, an
        // open-ended source is asked (and may block) each slot.
        let fixed_slots = self.options.slots.or_else(|| source.horizon());
        let speedup = self.state.config().speedup;

        let mut slot: SlotId = self.start_slot;
        let mut idle_slots = self.start_idle;
        loop {
            let in_arrival_window = match fixed_slots {
                Some(n) => slot < n,
                None => source.in_arrival_window(slot),
            };
            if !in_arrival_window {
                let done = !self.options.drain
                    || self.state.residual_count() == 0
                    || (idle_slots >= 2 && self.state.inflight.is_empty());
                if done {
                    break;
                }
            }
            self.state.slot = slot;
            self.checkpoint_if_due(slot, idle_slots);
            let transmitted_before = self.stats.transmitted;
            let moved_before = self.stats.transferred + self.stats.transferred_to_crossbar;

            // --- Fault release (link-down windows that closed) ---
            self.release_retransmits(slot);

            // --- Landing phase (delayed fabric only) ---
            self.land_due(slot)?;

            // --- Arrival phase ---
            if in_arrival_window {
                self.arrival_phase(policy_admit_crossbar(policy), source, slot)?;
            }

            // --- Scheduling phase: ŝ cycles of (input, output) subphases ---
            for s in 0..speedup {
                let cycle = Cycle { slot, index: s };

                self.in_transfers.clear();
                let mut input_transfers = std::mem::take(&mut self.in_transfers);
                policy.schedule_input(&self.state.view(), cycle, &mut input_transfers);
                self.state.changes.flush();
                self.apply_input_subphase(&input_transfers)?;
                self.in_transfers = input_transfers;

                self.out_transfers.clear();
                let mut output_transfers = std::mem::take(&mut self.out_transfers);
                policy.schedule_output(&self.state.view(), cycle, &mut output_transfers);
                self.state.changes.flush();
                self.apply_output_subphase(&output_transfers, cycle)?;
                self.out_transfers = output_transfers;
                self.post_phase_check();
            }

            // --- Transmission phase ---
            for j in 0..self.state.config().n_outputs {
                let output = PortId::from(j);
                let choice = policy.transmit(&self.state.view(), output);
                self.apply_transmit(output, choice)?;
            }
            self.post_phase_check();

            self.audit_slot();
            if let Some(w) = &mut self.window {
                w.roll(slot, &self.stats);
            }
            let progressed = self.stats.transmitted != transmitted_before
                || self.stats.transferred + self.stats.transferred_to_crossbar != moved_before;
            idle_slots = if progressed { 0 } else { idle_slots + 1 };
            slot += 1;
        }

        Ok(slot)
    }

    // ---- phase mechanics ----

    /// Take a checkpoint at the top of `slot` when the `checkpoint_every`
    /// option says one is due (never at slot 0 — that is the fresh state).
    fn checkpoint_if_due(&mut self, slot: SlotId, idle_slots: u32) {
        if let Some(every) = self.options.checkpoint_every {
            if slot > 0 && slot.is_multiple_of(every) {
                let snap = self.capture(idle_slots);
                self.checkpoints.push(snap);
            }
        }
    }

    /// Re-dispatch the retransmit FIFOs of every pair whose link-down
    /// window has closed by `slot`, in deterministic (row-major pair,
    /// FIFO) order. Released packets ride the calendar at their pair's
    /// current effective delay (≥ 1), tagged with a cycle counter that
    /// starts past the real scheduling cycles so canonical landing keys
    /// stay unique.
    // detlint: hot
    fn release_retransmits(&mut self, slot: SlotId) {
        let Some(mut faults) = self.faults.take() else {
            return;
        };
        if faults.total_held() > 0 {
            let cfg = self.state.config();
            let (n_inputs, n_outputs) = (cfg.n_inputs as u16, cfg.n_outputs as u16);
            let mut cycle = cfg.speedup;
            for i in 0..n_inputs {
                for j in 0..n_outputs {
                    if faults.pair_held(i, j) == 0 || faults.plan().down_cap(slot, i, j).is_some() {
                        continue;
                    }
                    // The delay is per-pair, not per-packet: hoist it so the
                    // in-place drain below borrows `faults` alone.
                    let d = (self.spec.delay(PortId(i), PortId(j))
                        + faults.plan().extra_delay(slot, i, j))
                    .max(1);
                    let cal = self
                        .calendar
                        .as_mut()
                        .expect("link-down faults imply a calendar");
                    let stats = &mut self.stats;
                    faults.drain_pair_each(i, j, |preempt, packet| {
                        cal.dispatch(
                            slot,
                            cycle,
                            d,
                            InFlightPacket {
                                input: i,
                                output: j,
                                preempt,
                                packet,
                            },
                        );
                        stats.on_retransmit();
                        cycle += 1;
                    });
                }
            }
        }
        self.faults = Some(faults);
    }

    // detlint: hot
    fn arrival_phase(
        &mut self,
        mut admit: impl FnMut(&SwitchState, &Packet) -> Admission,
        source: &mut dyn ArrivalSource,
        slot: SlotId,
    ) -> Result<(), PolicyError> {
        self.arrivals.clear();
        let mut arrivals = std::mem::take(&mut self.arrivals);
        source.arrivals(&self.state.view(), slot, &mut arrivals);
        for p in &arrivals {
            self.check_ports(p.input, p.output)?;
            self.stats.on_arrival(p);
            let decision = admit(&self.state, p);
            if !matches!(decision, Admission::Reject) {
                self.state.note_voq(p.input, p.output);
            }
            let queue = self.state.input_queues.at_mut(p.input, p.output);
            match decision {
                Admission::Reject => self.stats.on_reject(p),
                Admission::Accept => {
                    if queue.is_full() {
                        return Err(PolicyError::QueueFull {
                            kind: "input",
                            input: Some(p.input),
                            output: p.output,
                        });
                    }
                    queue.insert(*p).expect("checked not full");
                    self.stats.on_accept();
                }
                Admission::AcceptPreemptingLeast => {
                    if !queue.is_full() {
                        return Err(PolicyError::PreemptOnNonFull {
                            kind: "input",
                            input: Some(p.input),
                            output: p.output,
                        });
                    }
                    let victim = queue.pop_tail().expect("full queue has a tail");
                    self.stats.on_preempt_input(&victim);
                    queue.insert(*p).expect("slot freed by preemption");
                    self.stats.on_accept();
                }
            }
        }
        self.arrivals = arrivals;
        self.post_phase_check();
        Ok(())
    }

    /// Insert a packet that has crossed the fabric into `Q_j`, preempting
    /// `l_j` iff the transfer allowed it — the single landing site shared
    /// by the immediate path and the delay line. Under a fault plan a
    /// non-preempting landing into a full queue is an overflow *drop*
    /// (the reservation the policy scheduled against can be stale once
    /// faults perturb landing times), not a policy error.
    // detlint: hot
    fn deliver_to_output(
        &mut self,
        input: PortId,
        output: PortId,
        preempt_if_full: bool,
        packet: Packet,
    ) -> Result<(), PolicyError> {
        self.state.note_output(output);
        let queue = &mut self.state.output_queues[output.index()];
        if queue.is_full() {
            if !preempt_if_full {
                if self.faults.is_some() {
                    self.stats.on_drop(&packet);
                    return Ok(());
                }
                return Err(PolicyError::QueueFull {
                    kind: "output",
                    input: Some(input),
                    output,
                });
            }
            let victim = queue.pop_tail().expect("full queue has a tail");
            self.stats.on_preempt_output(&victim);
        }
        queue.insert(packet).expect("space ensured");
        self.stats.on_transfer();
        Ok(())
    }

    /// Drain the calendar bucket due at the start of `slot` into the
    /// output queues: the landing half of every dispatch whose pair
    /// latency expires now. The bucket arrives in the canonical landing
    /// order `(dispatch slot, dispatch cycle, output, input)` — per output
    /// queue that is dispatch order, so per-queue operation order matches
    /// the uniform fabric's. A `QueueFull` here is unreachable with
    /// reservation-correct policies (the virtual occupancy they scheduled
    /// against already counted this packet) but stays a loud failure.
    // detlint: hot
    fn land_due(&mut self, slot: SlotId) -> Result<(), PolicyError> {
        let Some(cal) = &mut self.calendar else {
            return Ok(());
        };
        let due = cal.take_due(slot);
        if cfg!(debug_assertions) {
            if let Err(msg) = crate::invariants::check_canonical_order(&due, |l| {
                (l.slot, l.cycle, l.p.output, l.p.input)
            }) {
                panic!("engine landing-order invariant violated: {msg}");
            }
        }
        for l in &due {
            let (input, output) = (PortId(l.p.input), PortId(l.p.output));
            self.state
                .inflight
                .land(input.index(), output.index(), l.p.packet.value);
            self.deliver_to_output(input, output, l.p.preempt, l.p.packet)?;
        }
        if let Some(cal) = &mut self.calendar {
            cal.restore(due);
        }
        self.post_phase_check();
        Ok(())
    }

    /// Hand a popped packet to the fabric: insert into `Q_j` now (pairs at
    /// latency 0), or commit it to the calendar to land `delay(src, dst)`
    /// slots later. An active fault plan intercepts here: a link-down pair
    /// holds the packet in its bounded retransmit FIFO (overflow = drop),
    /// and latency spikes stretch the pair's effective delay.
    // detlint: hot
    fn through_fabric(
        &mut self,
        input: PortId,
        output: PortId,
        preempt_if_full: bool,
        cycle: Cycle,
        packet: Packet,
    ) -> Result<(), PolicyError> {
        let mut d = self.spec.delay(input, output);
        if let Some(faults) = &mut self.faults {
            let (i, j) = (input.0, output.0);
            if let Some(cap) = faults.plan().down_cap(cycle.slot, i, j) {
                if faults.pair_held(i, j) < cap {
                    self.state
                        .inflight
                        .dispatch(input.index(), output.index(), packet.value);
                    faults.hold(i, j, preempt_if_full, packet);
                } else {
                    self.stats.on_drop(&packet);
                }
                return Ok(());
            }
            d += faults.plan().extra_delay(cycle.slot, i, j);
        }
        if d >= 1 {
            let cal = self
                .calendar
                .as_mut()
                .expect("positive pair delay implies a calendar");
            self.state
                .inflight
                .dispatch(input.index(), output.index(), packet.value);
            cal.dispatch(
                cycle.slot,
                cycle.index,
                d,
                InFlightPacket {
                    input: input.0,
                    output: output.0,
                    preempt: preempt_if_full,
                    packet,
                },
            );
            return Ok(());
        }
        self.deliver_to_output(input, output, preempt_if_full, packet)
    }

    // detlint: hot
    fn apply_cioq_transfers(
        &mut self,
        transfers: &[Transfer],
        cycle: Cycle,
    ) -> Result<(), PolicyError> {
        self.begin_matching_check();
        for t in transfers {
            self.check_ports(t.input, t.output)?;
            self.mark_input(t.input)?;
            self.mark_output(t.output)?;
        }
        for t in transfers {
            self.state.note_voq(t.input, t.output);
            let queue = self.state.input_queues.at_mut(t.input, t.output);
            let packet = take_pick(queue, t.pick).ok_or(match t.pick {
                PacketPick::ById(id) if !queue.is_empty() => PolicyError::NoSuchPacket { id },
                _ => PolicyError::EmptyQueue {
                    kind: "input",
                    input: Some(t.input),
                    output: t.output,
                },
            })?;
            self.through_fabric(t.input, t.output, t.preempt_if_full, cycle, packet)?;
        }
        Ok(())
    }

    // detlint: hot
    fn apply_input_subphase(&mut self, transfers: &[InputTransfer]) -> Result<(), PolicyError> {
        self.begin_matching_check();
        for t in transfers {
            self.check_ports(t.input, t.output)?;
            // Input subphase: ≤ 1 transfer per *input port* only.
            self.mark_input(t.input)?;
        }
        for t in transfers {
            self.state.note_voq(t.input, t.output);
            self.state.note_xbar(t.input, t.output);
            let queue = self.state.input_queues.at_mut(t.input, t.output);
            let packet = take_pick(queue, t.pick).ok_or(match t.pick {
                PacketPick::ById(id) if !queue.is_empty() => PolicyError::NoSuchPacket { id },
                _ => PolicyError::EmptyQueue {
                    kind: "input",
                    input: Some(t.input),
                    output: t.output,
                },
            })?;
            let xbar = self
                .state
                .crossbar_queues
                .as_mut()
                .expect("invariant: crossbar queues exist, asserted at run entry")
                .at_mut(t.input, t.output);
            if xbar.is_full() {
                if !t.preempt_if_full {
                    // Under a fault plan a stale reservation is an
                    // overflow drop, not a policy error (see
                    // `deliver_to_output`).
                    if self.faults.is_some() {
                        self.stats.on_drop(&packet);
                        continue;
                    }
                    return Err(PolicyError::QueueFull {
                        kind: "crossbar",
                        input: Some(t.input),
                        output: t.output,
                    });
                }
                let victim = xbar.pop_tail().expect("full queue has a tail");
                self.stats.on_preempt_crossbar(&victim);
            }
            xbar.insert(packet).expect("space ensured");
            self.stats.on_transfer_to_crossbar();
        }
        Ok(())
    }

    // detlint: hot
    fn apply_output_subphase(
        &mut self,
        transfers: &[OutputTransfer],
        cycle: Cycle,
    ) -> Result<(), PolicyError> {
        self.begin_matching_check();
        for t in transfers {
            self.check_ports(t.input, t.output)?;
            // Output subphase: ≤ 1 transfer per *output port* only.
            self.mark_output(t.output)?;
        }
        for t in transfers {
            self.state.note_xbar(t.input, t.output);
            let xbar = self
                .state
                .crossbar_queues
                .as_mut()
                .expect("invariant: crossbar queues exist, asserted at run entry")
                .at_mut(t.input, t.output);
            let packet = take_pick(xbar, t.pick).ok_or(match t.pick {
                PacketPick::ById(id) if !xbar.is_empty() => PolicyError::NoSuchPacket { id },
                _ => PolicyError::EmptyQueue {
                    kind: "crossbar",
                    input: Some(t.input),
                    output: t.output,
                },
            })?;
            self.through_fabric(t.input, t.output, t.preempt_if_full, cycle, packet)?;
        }
        Ok(())
    }

    // detlint: hot
    fn apply_transmit(
        &mut self,
        output: PortId,
        choice: TransmitChoice,
    ) -> Result<(), PolicyError> {
        match choice {
            TransmitChoice::Hold => Ok(()),
            TransmitChoice::Send(pick) => {
                let slot = self.state.slot;
                self.state.note_output(output);
                let queue = &mut self.state.output_queues[output.index()];
                let packet = take_pick(queue, pick).ok_or(match pick {
                    PacketPick::ById(id) if !queue.is_empty() => PolicyError::NoSuchPacket { id },
                    _ => PolicyError::TransmitFromEmpty { output },
                })?;
                self.stats.on_transmit(&packet, slot, output.index());
                Ok(())
            }
        }
    }

    // ---- validation helpers ----

    fn check_ports(&self, input: PortId, output: PortId) -> Result<(), PolicyError> {
        if input.index() >= self.state.config().n_inputs {
            return Err(PolicyError::PortOutOfRange {
                side: "input",
                port: input.index(),
            });
        }
        if output.index() >= self.state.config().n_outputs {
            return Err(PolicyError::PortOutOfRange {
                side: "output",
                port: output.index(),
            });
        }
        Ok(())
    }

    fn begin_matching_check(&mut self) {
        self.input_used.iter_mut().for_each(|b| *b = false);
        self.output_used.iter_mut().for_each(|b| *b = false);
    }

    fn mark_input(&mut self, input: PortId) -> Result<(), PolicyError> {
        let slot = &mut self.input_used[input.index()];
        if *slot {
            return Err(PolicyError::DuplicateInput { input });
        }
        *slot = true;
        Ok(())
    }

    fn mark_output(&mut self, output: PortId) -> Result<(), PolicyError> {
        let slot = &mut self.output_used[output.index()];
        if *slot {
            return Err(PolicyError::DuplicateOutput { output });
        }
        *slot = true;
        Ok(())
    }

    fn post_phase_check(&self) {
        if self.options.validate {
            if let Err(msg) = check_state_invariants(&self.state) {
                panic!("engine invariant violated: {msg}");
            }
        }
    }

    /// Per-slot invariant audit (see [`crate::invariants`]): conservation
    /// and in-flight/calendar consistency, debug builds only — every
    /// equivalence suite run under `cargo test` exercises it for free.
    fn audit_slot(&self) {
        if cfg!(debug_assertions) {
            if let Err(msg) = crate::invariants::audit_engine_slot(
                &self.state,
                &self.stats,
                self.calendar.as_ref(),
                self.faults.as_ref(),
            ) {
                panic!(
                    "engine invariant violated at slot {}: {msg}",
                    self.state.slot
                );
            }
        }
    }

    fn finish(self, policy: String, slots: SlotId) -> RunReport {
        let residual_count = self.state.residual_count();
        let residual_value = self.state.residual_value();
        let mut report = self
            .stats
            .finish(policy, slots, residual_count, residual_value);
        report.fabric_delay = self.spec.max_delay();
        report.window = self.window;
        debug_assert_eq!(report.check_conservation(), Ok(()));
        report
    }
}

pub(crate) fn take_pick(queue: &mut SortedQueue, pick: PacketPick) -> Option<Packet> {
    match pick {
        PacketPick::Greatest => queue.pop_head(),
        PacketPick::Least => queue.pop_tail(),
        PacketPick::ById(id) => queue.remove(id),
    }
}

// Small adapters so `arrival_phase` is shared between both policy families
// without trait-object gymnastics.
fn policy_admit_cioq<P: CioqPolicy + ?Sized>(
    policy: &mut P,
) -> impl FnMut(&SwitchState, &Packet) -> Admission + '_ {
    move |state, p| policy.admit(&state.view(), p)
}

fn policy_admit_crossbar<P: CrossbarPolicy + ?Sized>(
    policy: &mut P,
) -> impl FnMut(&SwitchState, &Packet) -> Admission + '_ {
    move |state, p| policy.admit(&state.view(), p)
}

/// Run a CIOQ policy over a recorded trace with default options
/// (drain until empty, validate in debug builds).
pub fn run_cioq<P: CioqPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
) -> Result<RunReport, PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default()).run_cioq(policy, &mut source)
}

/// Run a CIOQ policy over a recorded trace, returning both the report and
/// the final switch state (default options).
pub fn run_cioq_with_final_state<P: CioqPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
) -> Result<(RunReport, crate::state::SwitchState), PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default()).run_cioq_capturing(policy, &mut source)
}

/// Run a crossbar policy over a recorded trace, returning both the report
/// and the final switch state (default options).
pub fn run_crossbar_with_final_state<P: CrossbarPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
) -> Result<(RunReport, crate::state::SwitchState), PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default()).run_crossbar_capturing(policy, &mut source)
}

/// Run a CIOQ policy against an arbitrary (possibly adaptive) source for
/// `slots` arrival slots.
pub fn run_cioq_with_source<P: CioqPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    source: &mut dyn ArrivalSource,
    slots: SlotId,
) -> Result<RunReport, PolicyError> {
    let options = RunOptions {
        slots: Some(slots),
        ..RunOptions::default()
    };
    Engine::new(config.clone(), options).run_cioq(policy, source)
}

/// Run a CIOQ policy over a recorded trace through the given fabric
/// transport (default options otherwise). `Immediate` reproduces
/// [`run_cioq`] exactly.
pub fn run_cioq_linked<P: CioqPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
    link: &dyn crate::transport::FabricLink,
) -> Result<RunReport, PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default().link(link)).run_cioq(policy, &mut source)
}

/// Run a crossbar policy over a recorded trace through the given fabric
/// transport (default options otherwise).
pub fn run_crossbar_linked<P: CrossbarPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
    link: &dyn crate::transport::FabricLink,
) -> Result<RunReport, PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default().link(link)).run_crossbar(policy, &mut source)
}

/// Run a crossbar policy over a recorded trace with default options.
pub fn run_crossbar<P: CrossbarPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    trace: &Trace,
) -> Result<RunReport, PolicyError> {
    let mut source = TraceSource::new(trace);
    Engine::new(config.clone(), RunOptions::default()).run_crossbar(policy, &mut source)
}

/// Run a crossbar policy against an arbitrary source for `slots` slots.
pub fn run_crossbar_with_source<P: CrossbarPolicy + ?Sized>(
    config: &SwitchConfig,
    policy: &mut P,
    source: &mut dyn ArrivalSource,
    slots: SlotId,
) -> Result<RunReport, PolicyError> {
    let options = RunOptions {
        slots: Some(slots),
        ..RunOptions::default()
    };
    Engine::new(config.clone(), options).run_crossbar(policy, source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stats_window_is_a_config_error() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let options = RunOptions {
            stats_window: Some(0),
            ..RunOptions::default()
        };
        match Engine::try_new(cfg, options) {
            Err(ConfigError::ZeroStatsWindow) => {}
            Err(other) => panic!("expected ZeroStatsWindow, got {other}"),
            Ok(_) => panic!("zero stats window accepted"),
        }
    }

    #[test]
    fn zero_checkpoint_cadence_is_a_config_error() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let options = RunOptions {
            checkpoint_every: Some(0),
            ..RunOptions::default()
        };
        match Engine::try_new(cfg, options) {
            Err(ConfigError::ZeroCheckpointCadence) => {}
            Err(other) => panic!("expected ZeroCheckpointCadence, got {other}"),
            Ok(_) => panic!("zero checkpoint cadence accepted"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid run options")]
    fn engine_new_panics_loudly_on_zero_window() {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let options = RunOptions {
            stats_window: Some(0),
            ..RunOptions::default()
        };
        let _ = Engine::new(cfg, options);
    }
}
