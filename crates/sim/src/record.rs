//! Recording wrapper: capture the full decision transcript of a policy run
//! so it can be replayed as a fixed offline schedule (the `cioq-opt` shadow
//! analysis replays such transcripts as the "OPT" of the paper's proofs).

use crate::policy::{
    Admission, CioqPolicy, CrossbarPolicy, InputTransfer, OutputTransfer, Transfer, TransmitChoice,
};
use crate::state::SwitchView;
use crate::transport::FabricLink;
use cioq_model::{Cycle, Packet, PortId, SlotId};

/// A recorded CIOQ schedule: one admission decision per processed arrival
/// (in trace order) and one transfer set per scheduling cycle (in global
/// cycle order, including post-arrival drain cycles).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordedSchedule {
    /// `true` = accepted (with or without preemption), per arrival.
    pub admissions: Vec<bool>,
    /// Transfers `(input, output)` per cycle, in engine call order. On a
    /// delayed fabric these are *dispatch* sets; the landings they imply
    /// follow `fabric_delay` slots later.
    pub transfers: Vec<Vec<(u16, u16)>>,
    /// Largest per-pair fabric latency the transcript was produced under
    /// — a replay (e.g. the `cioq-opt` shadow analysis) must run the same
    /// transport for the transcript to be feasible. 0 = the paper's
    /// immediate fabric.
    pub fabric_delay: SlotId,
}

impl RecordedSchedule {
    /// Total number of recorded transfers across all cycles.
    pub fn total_transfers(&self) -> usize {
        self.transfers.iter().map(|c| c.len()).sum()
    }
}

/// Wraps a [`CioqPolicy`], forwarding every decision while recording it.
#[derive(Debug)]
pub struct Recording<P> {
    inner: P,
    /// The transcript (read it out after the run).
    pub schedule: RecordedSchedule,
}

impl<P: CioqPolicy> Recording<P> {
    /// Wrap `inner` for recording (immediate fabric).
    pub fn new(inner: P) -> Self {
        Recording {
            inner,
            schedule: RecordedSchedule::default(),
        }
    }

    /// Wrap `inner` for recording a run on the given fabric transport,
    /// stamping the transcript with its delay.
    pub fn with_link(inner: P, link: &dyn FabricLink) -> Self {
        let mut rec = Self::new(inner);
        rec.schedule.fabric_delay = link.max_delay();
        rec
    }

    /// Unwrap into the transcript.
    pub fn into_schedule(self) -> RecordedSchedule {
        self.schedule
    }
}

impl<P: CioqPolicy> CioqPolicy for Recording<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        let decision = self.inner.admit(view, packet);
        self.schedule
            .admissions
            .push(!matches!(decision, Admission::Reject));
        decision
    }

    fn schedule(&mut self, view: &SwitchView<'_>, cycle: Cycle, out: &mut Vec<Transfer>) {
        self.inner.schedule(view, cycle, out);
        self.schedule
            .transfers
            .push(out.iter().map(|t| (t.input.0, t.output.0)).collect());
    }

    fn transmit(&mut self, view: &SwitchView<'_>, output: PortId) -> TransmitChoice {
        self.inner.transmit(view, output)
    }
}

/// A recorded buffered-crossbar schedule: one admission decision per
/// processed arrival plus the input- and output-subphase transfer sets per
/// scheduling cycle, in engine call order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordedCrossbarSchedule {
    /// `true` = accepted (with or without preemption), per arrival.
    pub admissions: Vec<bool>,
    /// Input-subphase transfers `(input, output)` per cycle.
    pub input_transfers: Vec<Vec<(u16, u16)>>,
    /// Output-subphase transfers `(input, output)` per cycle (dispatch
    /// sets on a delayed fabric, like [`RecordedSchedule::transfers`]).
    pub output_transfers: Vec<Vec<(u16, u16)>>,
    /// Largest per-pair fabric latency the transcript was produced under.
    pub fabric_delay: SlotId,
}

impl RecordedCrossbarSchedule {
    /// Total transfers recorded across both subphases.
    pub fn total_transfers(&self) -> usize {
        self.input_transfers
            .iter()
            .chain(&self.output_transfers)
            .map(|c| c.len())
            .sum()
    }
}

/// Wraps a [`CrossbarPolicy`], forwarding every decision while recording
/// it. The crossbar analogue of [`Recording`], used by the sharded-engine
/// equivalence tests to compare decision transcripts cycle by cycle.
#[derive(Debug)]
pub struct CrossbarRecording<P> {
    inner: P,
    /// The transcript (read it out after the run).
    pub schedule: RecordedCrossbarSchedule,
}

impl<P: CrossbarPolicy> CrossbarRecording<P> {
    /// Wrap `inner` for recording (immediate fabric).
    pub fn new(inner: P) -> Self {
        CrossbarRecording {
            inner,
            schedule: RecordedCrossbarSchedule::default(),
        }
    }

    /// Wrap `inner` for recording a run on the given fabric transport.
    pub fn with_link(inner: P, link: &dyn FabricLink) -> Self {
        let mut rec = Self::new(inner);
        rec.schedule.fabric_delay = link.max_delay();
        rec
    }

    /// Unwrap into the transcript.
    pub fn into_schedule(self) -> RecordedCrossbarSchedule {
        self.schedule
    }
}

impl<P: CrossbarPolicy> CrossbarPolicy for CrossbarRecording<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission {
        let decision = self.inner.admit(view, packet);
        self.schedule
            .admissions
            .push(!matches!(decision, Admission::Reject));
        decision
    }

    fn schedule_input(
        &mut self,
        view: &SwitchView<'_>,
        cycle: Cycle,
        out: &mut Vec<InputTransfer>,
    ) {
        self.inner.schedule_input(view, cycle, out);
        self.schedule
            .input_transfers
            .push(out.iter().map(|t| (t.input.0, t.output.0)).collect());
    }

    fn schedule_output(
        &mut self,
        view: &SwitchView<'_>,
        cycle: Cycle,
        out: &mut Vec<OutputTransfer>,
    ) {
        self.inner.schedule_output(view, cycle, out);
        self.schedule
            .output_transfers
            .push(out.iter().map(|t| (t.input.0, t.output.0)).collect());
    }

    fn transmit(&mut self, view: &SwitchView<'_>, output: PortId) -> TransmitChoice {
        self.inner.transmit(view, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_cioq;
    use crate::trace::Trace;
    use cioq_model::SwitchConfig;

    /// Trivial greedy policy for exercising the recorder.
    struct FirstFit;
    impl CioqPolicy for FirstFit {
        fn name(&self) -> &str {
            "first-fit"
        }
        fn admit(&mut self, view: &SwitchView<'_>, p: &Packet) -> Admission {
            if view.input_queue(p.input, p.output).is_full() {
                Admission::Reject
            } else {
                Admission::Accept
            }
        }
        fn schedule(&mut self, view: &SwitchView<'_>, _c: Cycle, out: &mut Vec<Transfer>) {
            for i in 0..view.n_inputs() {
                for j in 0..view.n_outputs() {
                    let (input, output) = (PortId::from(i), PortId::from(j));
                    if !view.input_queue(input, output).is_empty()
                        && !view.output_queue(output).is_full()
                    {
                        out.push(Transfer {
                            input,
                            output,
                            pick: crate::policy::PacketPick::Greatest,
                            preempt_if_full: false,
                        });
                        return;
                    }
                }
            }
        }
    }

    #[test]
    fn records_admissions_and_transfers() {
        let cfg = SwitchConfig::cioq(2, 1, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(0), PortId(0), 1), // rejected: B=1
            (1, PortId(1), PortId(1), 1),
        ]);
        let mut rec = Recording::new(FirstFit);
        let report = run_cioq(&cfg, &mut rec, &trace).unwrap();
        assert_eq!(report.transmitted, 2);
        assert_eq!(rec.schedule.admissions, vec![true, false, true]);
        assert_eq!(rec.schedule.total_transfers(), 2);
        // Cycle transcripts line up with engine cycles (arrival + drain).
        assert!(rec.schedule.transfers.len() as u64 >= report.slots);
    }
}
