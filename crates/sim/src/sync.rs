//! Low-latency phase synchronisation for the sharded engine.
//!
//! `std::sync::Barrier` parks every waiter on a condvar immediately, which
//! costs two syscalls per thread per phase — ruinous for the sharded
//! engine, whose phases are often microseconds long and which crosses a
//! barrier twice per phase. [`SpinBarrier`] spins briefly first (phase
//! turnaround is usually faster than a park/unpark round trip) and only
//! then falls back to a condvar park, so short phases cost a few hundred
//! nanoseconds of spinning while long or oversubscribed phases still
//! sleep instead of burning a core.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How many generation checks a waiter performs before parking. Each
/// iteration is a load plus a `spin_loop` hint; the total is well under
/// the ~10 µs cost of a futex sleep/wake round trip.
const SPIN_ROUNDS: u32 = 4096;

/// A reusable sense-reversing barrier for a fixed set of parties: spin
/// first, park only when the phase outlasts the spin budget.
///
/// Semantics match `std::sync::Barrier::wait` (minus the leader flag,
/// which the sharded engine never used): the N-th arrival releases
/// everyone and the barrier is immediately reusable for the next phase.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SpinBarrier {
    /// A barrier releasing once `parties` threads have arrived.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Block (spinning, then parking) until all parties have arrived.
    pub fn wait(&self) {
        // ORDERING: Acquire pairs with the leader's Release store below;
        // a waiter that reads generation g sees every write the previous
        // leader made before opening generation g.
        let generation = self.generation.load(Ordering::Acquire);
        // ORDERING: AcqRel — the Release half publishes this thread's
        // phase writes to the leader; the Acquire half makes the leader's
        // +1 observation synchronize with every earlier arrival.
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count *before* opening the next
            // generation — late spinners of generation g+1 must observe an
            // already-reset count.
            // ORDERING: Release orders the reset before the generation
            // bump below; pairs with the AcqRel fetch_add of generation
            // g+1 arrivals.
            self.arrived.store(0, Ordering::Release);
            // Take the lock around the generation bump so a waiter cannot
            // check the generation, decide to park, and miss the notify.
            let guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            // ORDERING: Release publishes the count reset (and all phase
            // writes) to waiters whose Acquire load observes g+1.
            self.generation.store(generation + 1, Ordering::Release);
            drop(guard);
            self.cv.notify_all();
            return;
        }
        for _ in 0..SPIN_ROUNDS {
            // ORDERING: Acquire pairs with the leader's Release store —
            // crossing the barrier must make the previous phase's writes
            // visible to this thread.
            if self.generation.load(Ordering::Acquire) != generation {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        // ORDERING: Acquire, same pairing as the spin loop; re-checked
        // under the lock so a bump between check and park is not missed.
        while self.generation.load(Ordering::Acquire) == generation {
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn single_party_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }

    #[test]
    fn phases_are_totally_ordered_across_threads() {
        // Every thread increments a counter between barrier crossings; at
        // each crossing the counter must be exactly parties × phase.
        const PARTIES: usize = 4;
        const PHASES: u32 = 200;
        let barrier = SpinBarrier::new(PARTIES);
        let counter = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..PARTIES {
                scope.spawn(|| {
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(
                            counter.load(Ordering::Relaxed),
                            (phase + 1) * PARTIES as u32,
                            "no thread may pass the barrier early"
                        );
                        barrier.wait();
                    }
                });
            }
        });
    }
}
