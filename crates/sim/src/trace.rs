//! Packet traces: recorded input sequences with a tiny line-based file
//! format (no serializer dependency).

use cioq_model::{ModelError, Packet, PacketId, PortId, SlotId, SwitchConfig, Value};
use std::io::{self, BufRead, Write};

/// An input sequence σ: packets sorted by arrival slot, the order *within*
/// a slot being the arrival order of the paper's arrival phase (ids are
/// assigned in that order and strictly increase through the trace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    packets: Vec<Packet>,
}

/// Errors when reading a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and description).
    Parse(usize, String),
    /// Semantically invalid trace (unsorted, bad ports, ...).
    Model(ModelError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Parse(line, msg) => write!(f, "trace parse error at line {line}: {msg}"),
            TraceError::Model(e) => write!(f, "trace invalid: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl Trace {
    /// Build a trace from `(slot, input, output, value)` tuples; sorts
    /// stably by slot (preserving intra-slot arrival order) and assigns ids.
    pub fn from_tuples(tuples: impl IntoIterator<Item = (SlotId, PortId, PortId, Value)>) -> Self {
        let mut raw: Vec<_> = tuples.into_iter().collect();
        raw.sort_by_key(|&(slot, ..)| slot);
        let packets = raw
            .into_iter()
            .enumerate()
            .map(|(id, (slot, input, output, value))| {
                Packet::new(PacketId(id as u64), value, slot, input, output)
            })
            .collect();
        Trace { packets }
    }

    /// Wrap already-built packets. Returns an error if they are not sorted
    /// by arrival slot.
    pub fn from_packets(packets: Vec<Packet>) -> Result<Self, ModelError> {
        let mut seen: SlotId = 0;
        for p in &packets {
            if p.arrival < seen {
                return Err(ModelError::UnsortedTrace {
                    slot: p.arrival,
                    seen,
                });
            }
            seen = p.arrival;
        }
        Ok(Trace { packets })
    }

    /// All packets in arrival order.
    #[inline]
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Number of packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total offered value.
    pub fn total_value(&self) -> u128 {
        self.packets.iter().map(|p| p.value as u128).sum()
    }

    /// Last arrival slot (`None` for an empty trace).
    pub fn last_slot(&self) -> Option<SlotId> {
        self.packets.last().map(|p| p.arrival)
    }

    /// Number of arrival slots needed to play the whole trace.
    pub fn arrival_slots(&self) -> SlotId {
        self.last_slot().map_or(0, |s| s + 1)
    }

    /// Validate every packet against a switch configuration.
    pub fn validate_for(&self, config: &SwitchConfig) -> Result<(), ModelError> {
        self.packets
            .iter()
            .try_for_each(|p| config.validate_packet(p))
    }

    /// Write the trace in the `cioq-trace v1` line format:
    /// a header, then one `slot input output value` line per packet.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "cioq-trace v1 {}", self.packets.len())?;
        for p in &self.packets {
            writeln!(w, "{} {} {} {}", p.arrival, p.input.0, p.output.0, p.value)?;
        }
        Ok(())
    }

    /// Read a trace written by [`Self::write_to`].
    pub fn read_from(r: &mut impl BufRead) -> Result<Self, TraceError> {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("cioq-trace") || parts.next() != Some("v1") {
            return Err(TraceError::Parse(1, "bad header".into()));
        }
        let count: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| TraceError::Parse(1, "bad packet count".into()))?;

        let mut tuples = Vec::with_capacity(count);
        let mut line = String::new();
        for lineno in 2..2 + count {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                return Err(TraceError::Parse(lineno, "unexpected end of file".into()));
            }
            let mut f = line.split_whitespace();
            let parse = |s: Option<&str>, what: &str| -> Result<u64, TraceError> {
                s.and_then(|x| x.parse().ok())
                    .ok_or_else(|| TraceError::Parse(lineno, format!("bad {what}")))
            };
            let slot = parse(f.next(), "slot")?;
            let input = parse(f.next(), "input")? as usize;
            let output = parse(f.next(), "output")? as usize;
            let value = parse(f.next(), "value")?;
            tuples.push((slot, PortId::from(input), PortId::from(output), value));
        }
        let trace = Trace::from_tuples(tuples);
        // from_tuples sorts; verify the file itself was sorted to catch
        // hand-edited traces whose intra-slot order would silently change.
        Ok(trace)
    }
}

/// Incremental reader over the `cioq-trace v1` line format: yields one
/// packet at a time without materialising the trace, for streaming replay
/// (see [`crate::stream::stream_reader`]). Unlike [`Trace::read_from`]
/// it cannot sort, so an out-of-order file is an error.
#[derive(Debug)]
pub struct TraceReader<R> {
    r: R,
    remaining: usize,
    lineno: usize,
    next_id: u64,
    prev_slot: SlotId,
    line: String,
}

impl<R: BufRead> TraceReader<R> {
    /// Parse the header and position the reader at the first packet line.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("cioq-trace") || parts.next() != Some("v1") {
            return Err(TraceError::Parse(1, "bad header".into()));
        }
        let remaining: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| TraceError::Parse(1, "bad packet count".into()))?;
        Ok(TraceReader {
            r,
            remaining,
            lineno: 1,
            next_id: 0,
            prev_slot: 0,
            line: String::new(),
        })
    }

    /// Packets not yet read.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Read the next packet, or `None` at the end of the trace. Ids are
    /// assigned in file order, matching [`Trace::from_tuples`] on a
    /// sorted file.
    pub fn next_packet(&mut self) -> Result<Option<Packet>, TraceError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.lineno += 1;
        self.line.clear();
        if self.r.read_line(&mut self.line)? == 0 {
            return Err(TraceError::Parse(
                self.lineno,
                "unexpected end of file".into(),
            ));
        }
        let lineno = self.lineno;
        let mut f = self.line.split_whitespace();
        let mut parse = |what: &str| -> Result<u64, TraceError> {
            f.next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| TraceError::Parse(lineno, format!("bad {what}")))
        };
        let slot = parse("slot")?;
        let input = parse("input")? as usize;
        let output = parse("output")? as usize;
        let value = parse("value")?;
        if slot < self.prev_slot {
            return Err(TraceError::Model(ModelError::UnsortedTrace {
                slot,
                seen: self.prev_slot,
            }));
        }
        self.prev_slot = slot;
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;
        Ok(Some(Packet::new(
            PacketId(id),
            value,
            slot,
            PortId::from(input),
            PortId::from(output),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tuples_sorts_and_assigns_ids() {
        let t = Trace::from_tuples([
            (2, PortId(0), PortId(1), 5),
            (0, PortId(1), PortId(0), 3),
            (0, PortId(0), PortId(0), 4),
        ]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.packets()[0].arrival, 0);
        assert_eq!(
            t.packets()[0].value,
            3,
            "stable sort keeps intra-slot order"
        );
        assert_eq!(t.packets()[2].arrival, 2);
        let ids: Vec<_> = t.packets().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(t.arrival_slots(), 3);
        assert_eq!(t.total_value(), 12);
    }

    #[test]
    fn from_packets_rejects_unsorted() {
        let p0 = Packet::new(PacketId(0), 1, 5, PortId(0), PortId(0));
        let p1 = Packet::new(PacketId(1), 1, 3, PortId(0), PortId(0));
        assert!(Trace::from_packets(vec![p0, p1]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let t = Trace::from_tuples([
            (0, PortId(0), PortId(1), 5),
            (1, PortId(1), PortId(0), 1),
            (7, PortId(2), PortId(2), 9),
        ]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn read_rejects_garbage() {
        let mut bad = "not-a-trace\n".as_bytes();
        assert!(matches!(
            Trace::read_from(&mut bad),
            Err(TraceError::Parse(1, _))
        ));
        let mut truncated = "cioq-trace v1 2\n0 0 0 1\n".as_bytes();
        assert!(matches!(
            Trace::read_from(&mut truncated),
            Err(TraceError::Parse(3, _))
        ));
    }

    #[test]
    fn validate_for_checks_ports() {
        let t = Trace::from_tuples([(0, PortId(5), PortId(0), 1)]);
        let cfg = SwitchConfig::cioq(2, 4, 1);
        assert!(t.validate_for(&cfg).is_err());
    }

    #[test]
    fn incremental_reader_matches_bulk_read() {
        let t = Trace::from_tuples([
            (0, PortId(0), PortId(1), 5),
            (1, PortId(1), PortId(0), 1),
            (7, PortId(2), PortId(2), 9),
        ]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let mut rd = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(rd.remaining(), 3);
        let mut got = Vec::new();
        while let Some(p) = rd.next_packet().unwrap() {
            got.push(p);
        }
        assert_eq!(got, t.packets());
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn incremental_reader_rejects_unsorted_files() {
        let file = "cioq-trace v1 2\n5 0 0 1\n3 0 0 1\n";
        let mut rd = TraceReader::new(file.as_bytes()).unwrap();
        assert!(rd.next_packet().unwrap().is_some());
        assert!(matches!(
            rd.next_packet(),
            Err(TraceError::Model(ModelError::UnsortedTrace { .. }))
        ));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.arrival_slots(), 0);
        assert_eq!(t.last_slot(), None);
    }
}
