//! Deterministic fault injection for the fabric transport.
//!
//! Real fabrics degrade: links see transient latency spikes, go down for
//! windows and come back, and finite crosspoint/output buffers overflow
//! (the sizing tradeoffs of Cao–Panwar and the local-recovery regime of
//! Ye–Shen–Panwar). The paper's model — and this workspace until PR 7 —
//! assumed none of that. A [`FaultPlan`] is a *deterministic, seedable*
//! schedule of such degradations layered onto the sequential engine's
//! transport:
//!
//! * **Latency spike** — while active, every matching pair's delay grows
//!   by `extra` slots. A spiked zero-delay pair rides the calendar like a
//!   delayed one.
//! * **Link down** — while active, dispatches on matching pairs are *held*
//!   in a bounded per-pair retransmit queue instead of entering the wire;
//!   beyond the bound they are **dropped** (counted in
//!   [`LossBreakdown::dropped`](crate::LossBreakdown)). When the window
//!   closes, held packets are re-dispatched in deterministic order and
//!   counted as retransmitted.
//!
//! Because a plan is pure data evaluated against `(slot, input, output)`,
//! a faulted run is exactly as replayable as a clean one: the same plan,
//! trace and policy produce bit-identical outcomes, checkpoints included —
//! the crash-recovery harness proves kill/restore equivalence *under*
//! fault plans. While a packet is held it is accounted in
//! [`InFlight`](cioq_queues::InFlight) but absent from the delay calendar;
//! the invariant auditor knows the difference and balances both.
//!
//! Conservation holds throughout:
//! `arrived == transmitted + lost (incl. dropped) + residual`.

use cioq_model::{Packet, SlotId};

/// Which (input, output) pairs a fault event applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Every pair in the fabric.
    All,
    /// Every pair dispatching from one input port.
    Input(u16),
    /// Every pair landing at one output port.
    Output(u16),
    /// Exactly one (input, output) pair.
    Pair(u16, u16),
}

impl FaultScope {
    /// Whether the scope covers the pair (input `i` → output `j`).
    #[inline]
    pub fn matches(&self, i: u16, j: u16) -> bool {
        match *self {
            FaultScope::All => true,
            FaultScope::Input(fi) => fi == i,
            FaultScope::Output(fj) => fj == j,
            FaultScope::Pair(fi, fj) => fi == i && fj == j,
        }
    }
}

/// What a fault event does while active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Matching pairs see `extra ≥ 1` additional slots of fabric latency.
    LatencySpike {
        /// Additional latency in slots.
        extra: SlotId,
    },
    /// Matching pairs cannot dispatch; up to `retransmit_cap` packets per
    /// pair are held for re-dispatch when the window closes, the rest are
    /// dropped.
    LinkDown {
        /// Bound on each pair's retransmit queue (0 = drop everything).
        retransmit_cap: usize,
    },
}

/// One scheduled degradation: `kind` applied to `scope` over the
/// half-open slot window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// First slot the fault is active.
    pub start: SlotId,
    /// First slot after the fault (exclusive; must be finite for drain
    /// runs to terminate).
    pub end: SlotId,
    /// Which pairs are affected.
    pub scope: FaultScope,
    /// What happens to them.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the event is active at `slot`.
    #[inline]
    pub fn active(&self, slot: SlotId) -> bool {
        self.start <= slot && slot < self.end
    }
}

/// A deterministic schedule of fault events — pure data, evaluated per
/// `(slot, input, output)`. Same plan + same trace + same policy ⇒
/// bit-identical run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// SplitMix64: the tiny, dependency-free generator behind
/// [`FaultPlan::seeded`]. Deterministic across platforms.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound ≥ 1`); modulo bias is
    /// irrelevant for fault scheduling.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

impl FaultPlan {
    /// A plan from explicit events (kept in the given order; overlapping
    /// events compose — spikes add, the tightest link-down cap wins).
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// A deterministic pseudo-random plan: `count` events over a switch of
    /// `n_inputs × n_outputs` ports and a horizon of `slots` slots. The
    /// same seed always yields the same plan (hand-rolled SplitMix64; no
    /// RNG dependency, no global state).
    pub fn seeded(
        seed: u64,
        n_inputs: usize,
        n_outputs: usize,
        slots: SlotId,
        count: usize,
    ) -> Self {
        let mut rng = SplitMix64(seed);
        let events = (0..count)
            .map(|_| {
                let start = rng.below(slots.max(1));
                let len = 1 + rng.below(6);
                let scope = match rng.below(4) {
                    0 => FaultScope::All,
                    1 => FaultScope::Input(rng.below(n_inputs as u64) as u16),
                    2 => FaultScope::Output(rng.below(n_outputs as u64) as u16),
                    _ => FaultScope::Pair(
                        rng.below(n_inputs as u64) as u16,
                        rng.below(n_outputs as u64) as u16,
                    ),
                };
                let kind = if rng.below(2) == 0 {
                    FaultKind::LatencySpike {
                        extra: 1 + rng.below(3),
                    }
                } else {
                    FaultKind::LinkDown {
                        retransmit_cap: rng.below(4) as usize,
                    }
                };
                FaultEvent {
                    start,
                    end: start + len,
                    scope,
                    kind,
                }
            })
            .collect();
        FaultPlan { events }
    }

    /// The scheduled events.
    #[inline]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total extra latency active on pair (`i` → `j`) at `slot`
    /// (overlapping spikes add).
    pub fn extra_delay(&self, slot: SlotId, i: u16, j: u16) -> SlotId {
        self.events
            .iter()
            .filter(|e| e.active(slot) && e.scope.matches(i, j))
            .map(|e| match e.kind {
                FaultKind::LatencySpike { extra } => extra,
                FaultKind::LinkDown { .. } => 0,
            })
            .sum()
    }

    /// `Some(cap)` iff pair (`i` → `j`) is link-down at `slot`; the
    /// tightest cap wins when windows overlap.
    pub fn down_cap(&self, slot: SlotId, i: u16, j: u16) -> Option<usize> {
        self.events
            .iter()
            .filter(|e| e.active(slot) && e.scope.matches(i, j))
            .filter_map(|e| match e.kind {
                FaultKind::LinkDown { retransmit_cap } => Some(retransmit_cap),
                FaultKind::LatencySpike { .. } => None,
            })
            .min()
    }

    /// Upper bound on the extra latency any pair can ever see — engines
    /// add this to the fabric's max delay when sizing the calendar.
    pub fn max_extra(&self) -> SlotId {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::LatencySpike { extra } => extra,
                FaultKind::LinkDown { .. } => 0,
            })
            .sum()
    }

    /// Whether any event is a link-down window (retransmits need a
    /// calendar of horizon ≥ 1 even on an otherwise immediate fabric).
    pub fn has_link_down(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
    }
}

/// Engine-owned fault state for one run: the plan plus the per-pair
/// retransmit queues of currently link-down pairs. Held packets stay
/// accounted in [`InFlight`](cioq_queues::InFlight) (they left their
/// source queue and will reach their output unless dropped) but are not on
/// the calendar until released.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    /// The schedule driving this run. snapshot: transient — pure data,
    /// supplied again through `RunOptions` at restore (restore refuses a
    /// held-packet snapshot without a plan).
    plan: FaultPlan,
    /// Per-pair retransmit FIFOs, row-major `i * n_outputs + j`; each
    /// entry is (preempt flag, packet). snapshot: serialized
    held: Vec<Vec<(bool, Packet)>>,
    /// Held-packet count across all pairs. snapshot: transient — recounted
    /// from `held` on restore.
    total: u64,
    /// Column count for pair indexing. snapshot: transient — from config.
    n_outputs: usize,
}

impl FaultRuntime {
    pub(crate) fn new(plan: FaultPlan, n_inputs: usize, n_outputs: usize) -> Self {
        // Pre-reserve each pair's FIFO to the largest retransmit cap any
        // link-down window can impose on it: `hold` never exceeds the
        // active cap, so with this one-time reservation the slot loop
        // never grows a hold FIFO mid-run — first-touch included.
        let held = (0..n_inputs * n_outputs)
            .map(|cell| {
                let (i, j) = ((cell / n_outputs) as u16, (cell % n_outputs) as u16);
                let cap = plan
                    .events()
                    .iter()
                    .filter(|e| e.scope.matches(i, j))
                    .filter_map(|e| match e.kind {
                        FaultKind::LinkDown { retransmit_cap } => Some(retransmit_cap),
                        FaultKind::LatencySpike { .. } => None,
                    })
                    .max()
                    .unwrap_or(0);
                Vec::with_capacity(cap)
            })
            .collect();
        FaultRuntime {
            plan,
            held,
            total: 0,
            n_outputs,
        }
    }

    #[inline]
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    #[inline]
    fn cell(&self, i: u16, j: u16) -> usize {
        i as usize * self.n_outputs + j as usize
    }

    /// Packets held for retransmission on pair (`i` → `j`).
    #[inline]
    pub(crate) fn pair_held(&self, i: u16, j: u16) -> usize {
        self.held[self.cell(i, j)].len()
    }

    /// Held packets across all pairs.
    #[inline]
    pub(crate) fn total_held(&self) -> u64 {
        self.total
    }

    /// Queue a packet on a link-down pair's retransmit FIFO.
    pub(crate) fn hold(&mut self, i: u16, j: u16, preempt: bool, packet: Packet) {
        let cell = self.cell(i, j);
        self.held[cell].push((preempt, packet));
        self.total += 1;
    }

    /// Drain the retransmit FIFO of a pair whose window closed, in hold
    /// order, visiting each packet in place. The FIFO keeps its capacity,
    /// so steady-state churn (hold → window closes → drain) never
    /// re-allocates the cell.
    pub(crate) fn drain_pair_each(&mut self, i: u16, j: u16, mut f: impl FnMut(bool, Packet)) {
        let cell = self.cell(i, j);
        self.total -= self.held[cell].len() as u64;
        for (preempt, packet) in self.held[cell].drain(..) {
            f(preempt, packet);
        }
    }

    /// Take the whole retransmit FIFO of a pair as a fresh vector (test
    /// convenience; the engine uses [`Self::drain_pair_each`]).
    #[cfg(test)]
    pub(crate) fn drain_pair(&mut self, i: u16, j: u16) -> Vec<(bool, Packet)> {
        let mut drained = Vec::new();
        self.drain_pair_each(i, j, |preempt, packet| drained.push((preempt, packet)));
        drained
    }

    /// Visit every held packet in deterministic (row-major pair, FIFO)
    /// order — the checkpoint serialization order.
    pub(crate) fn for_each_held(&self, mut f: impl FnMut(u16, u16, bool, &Packet)) {
        for (cell, fifo) in self.held.iter().enumerate() {
            let (i, j) = (cell / self.n_outputs, cell % self.n_outputs);
            for (preempt, packet) in fifo {
                f(i as u16, j as u16, *preempt, packet);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 4, 4, 100, 8);
        let b = FaultPlan::seeded(42, 4, 4, 100, 8);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 8);
        let c = FaultPlan::seeded(43, 4, 4, 100, 8);
        assert_ne!(a, c, "different seeds diverge");
        for e in a.events() {
            assert!(e.end > e.start, "windows are non-empty and finite");
        }
    }

    #[test]
    fn scopes_match_the_right_pairs() {
        assert!(FaultScope::All.matches(3, 1));
        assert!(FaultScope::Input(2).matches(2, 9));
        assert!(!FaultScope::Input(2).matches(3, 9));
        assert!(FaultScope::Output(1).matches(7, 1));
        assert!(FaultScope::Pair(1, 2).matches(1, 2));
        assert!(!FaultScope::Pair(1, 2).matches(2, 1));
    }

    #[test]
    fn overlapping_events_compose() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                start: 5,
                end: 10,
                scope: FaultScope::All,
                kind: FaultKind::LatencySpike { extra: 2 },
            },
            FaultEvent {
                start: 8,
                end: 12,
                scope: FaultScope::Input(0),
                kind: FaultKind::LatencySpike { extra: 3 },
            },
            FaultEvent {
                start: 8,
                end: 12,
                scope: FaultScope::Pair(0, 0),
                kind: FaultKind::LinkDown { retransmit_cap: 2 },
            },
            FaultEvent {
                start: 9,
                end: 11,
                scope: FaultScope::All,
                kind: FaultKind::LinkDown { retransmit_cap: 1 },
            },
        ]);
        assert_eq!(plan.extra_delay(4, 0, 0), 0, "before any window");
        assert_eq!(plan.extra_delay(5, 1, 1), 2);
        assert_eq!(plan.extra_delay(9, 0, 3), 5, "overlapping spikes add");
        assert_eq!(plan.extra_delay(11, 0, 3), 3, "first window closed");
        assert_eq!(plan.down_cap(7, 0, 0), None);
        assert_eq!(plan.down_cap(8, 0, 0), Some(2));
        assert_eq!(plan.down_cap(9, 0, 0), Some(1), "tightest cap wins");
        assert_eq!(plan.down_cap(9, 3, 3), Some(1));
        assert_eq!(plan.down_cap(12, 0, 0), None, "end is exclusive");
        assert_eq!(plan.max_extra(), 5);
        assert!(plan.has_link_down());
    }

    #[test]
    fn runtime_holds_and_drains_in_fifo_order() {
        use cioq_model::{PacketId, PortId};
        let mk = |id: u64| Packet::new(PacketId(id), 1 + id, 0, PortId(0), PortId(1));
        let mut rt = FaultRuntime::new(FaultPlan::default(), 2, 2);
        rt.hold(0, 1, false, mk(0));
        rt.hold(0, 1, true, mk(1));
        rt.hold(1, 0, false, mk(2));
        assert_eq!(rt.pair_held(0, 1), 2);
        assert_eq!(rt.total_held(), 3);
        let mut seen = Vec::new();
        rt.for_each_held(|i, j, _, p| seen.push((i, j, p.id.0)));
        assert_eq!(seen, vec![(0, 1, 0), (0, 1, 1), (1, 0, 2)]);
        let drained = rt.drain_pair(0, 1);
        assert_eq!(
            drained
                .iter()
                .map(|(pre, p)| (*pre, p.id.0))
                .collect::<Vec<_>>(),
            vec![(false, 0), (true, 1)]
        );
        assert_eq!(rt.total_held(), 1);
        assert_eq!(rt.pair_held(0, 1), 0);
    }
}
